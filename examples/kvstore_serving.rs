//! The §9.2.8 network-serving application: a KV server migrated to the
//! remote kernel, driven over the messaging layer.
//!
//! ```sh
//! cargo run --release --example kvstore_serving [requests]
//! ```

use stramash_repro::prelude::*;
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requests: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200);
    println!("KV store, {requests} requests per op, 1024 B payloads\n");
    println!("{:<6} {:>14} {:>14} {:>14}", "op", "TCP cyc/req", "SHM speedup", "Stramash speedup");

    for op in KvOp::ALL {
        let mut tcp = TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared)?;
        let t = run_kv(&mut tcp, op, requests, 1024)?;
        let mut shm = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared)?;
        let s = run_kv(&mut shm, op, requests, 1024)?;
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)?;
        let f = run_kv(&mut stra, op, requests, 1024)?;
        println!(
            "{:<6} {:>14.0} {:>13.2}x {:>13.2}x",
            op.to_string(),
            t.per_request,
            t.per_request / s.per_request,
            t.per_request / f.per_request
        );
    }

    println!("\nshared-memory messaging removes the TCP round trips; the fused");
    println!("kernel additionally removes the origin-kernel page-allocation");
    println!("protocol for the server's writes (set/lpush/sadd/mset).");
    Ok(())
}
