//! Fault injection demo: run the same workload fault-free and under a
//! deterministic fault schedule, and show that the functional result is
//! identical while every recovery is visible in the counters.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use stramash_repro::kernel::system::OsSystem;
use stramash_repro::prelude::*;
use stramash_repro::sim::FaultPlan;
use stramash_repro::workloads::kvstore::{run_kv, KvOp};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requests = 1_000;

    // Fault-free baseline.
    let mut clean = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)?;
    let baseline = run_kv(&mut clean, KvOp::Set, requests, 128)?;
    println!(
        "fault-free : {} requests, checksum {:#018x}, {}",
        baseline.requests, baseline.checksum, baseline.total
    );

    // The same run under a hostile schedule: 5% message drop, 1% ack
    // loss, 0.5% IPI loss, 2% transient allocation failure, and one
    // forced global-allocator exhaustion.
    let plan = FaultPlan::none()
        .with_msg_drop(0.05)
        .with_ack_drop(0.01)
        .with_ipi_loss(0.005)
        .with_alloc_fail(0.02)
        .with_galloc_exhaust_at(2);
    let mut faulty = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)?;
    faulty.install_fault_plan(plan, 0x0bad_5eed);
    let stressed = run_kv(&mut faulty, KvOp::Set, requests, 128)?;
    println!(
        "under fault: {} requests, checksum {:#018x}, {}",
        stressed.requests, stressed.checksum, stressed.total
    );

    assert_eq!(stressed.checksum, baseline.checksum, "faults must never change results");
    println!("checksums identical — recovery was transparent");

    let injector = faulty.fault_injector().expect("plan installed").clone();
    let inj = injector.borrow();
    let c = inj.counters();
    println!(
        "\ninjected {} | retried {} | recovered {} | fatal {}",
        c.injected, c.retried, c.recovered, c.fatal
    );
    println!("messaging retransmits: {}", faulty.base().msg.counters().retransmits());
    println!("first injected faults: {:?}", &inj.log()[..inj.log().len().min(5)]);

    let violations = faulty.audit();
    assert!(violations.is_empty(), "auditor found: {violations:?}");
    println!("invariant audit: clean");
    Ok(())
}
