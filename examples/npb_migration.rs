//! Cross-ISA NPB migration: one benchmark across every OS design.
//!
//! A miniature of the paper's Figure 9: the IS kernel (bucket sort)
//! migrates between the x86 and Arm kernels once per processing
//! procedure, under Vanilla (no migration), Popcorn-TCP, Popcorn-SHM
//! and Stramash.
//!
//! ```sh
//! cargo run --release --example npb_migration [is|cg|mg|ft]
//! ```

use stramash_repro::prelude::*;
use stramash_repro::workloads::driver::{run_benchmark, Configuration};
use stramash_repro::workloads::npb::{Class, NpbKind};
use stramash_repro::workloads::target::SystemKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("cg") => NpbKind::Cg,
        Some("mg") => NpbKind::Mg,
        Some("ft") => NpbKind::Ft,
        _ => NpbKind::Is,
    };
    println!("NPB {kind} under cross-ISA migration (Shared hardware model)\n");

    let configs = [
        Configuration { kind: SystemKind::Vanilla, model: HardwareModel::Shared },
        Configuration { kind: SystemKind::PopcornTcp, model: HardwareModel::Shared },
        Configuration { kind: SystemKind::PopcornShm, model: HardwareModel::Shared },
        Configuration { kind: SystemKind::Stramash, model: HardwareModel::Shared },
    ];

    let mut baseline = None;
    for config in configs {
        let report = run_benchmark(config, kind, Class::Tiny)?;
        let base = *baseline.get_or_insert(report.runtime);
        println!(
            "{:<12}  runtime {:>12} cycles  ({:.2}x Vanilla)  msgs {:>5}  replicated pages {:>4}  verified {}",
            config.label(),
            report.runtime.raw(),
            report.normalized_to(base),
            report.messages,
            report.replicated_pages,
            report.outcome.verified,
        );
        assert!(report.outcome.verified, "every design must compute the same correct result");
    }

    // A closer look at the fused mechanisms on the Stramash run.
    use stramash_repro::workloads::npb::run_npb;
    use stramash_repro::workloads::target::TargetSystem;
    let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)?;
    let pid = sys.spawn(DomainId::X86)?;
    run_npb(kind, &mut sys, pid, Class::Tiny, true)?;
    if let Some(c) = sys.stramash_counters() {
        println!("\nStramash mechanism counters for this run:");
        println!("  direct remote faults (0 messages): {}", c.direct_remote_faults);
        println!("  remote VMA walks:                  {}", c.remote_vma_walks);
        println!("  Stramash-PTL acquisitions:         {}", c.ptl_acquisitions);
        println!("  PTEs reconfigured at migrate-back: {}", c.pte_reconfigurations);
    }

    println!("\nThe fused-kernel OS resolves remote faults through shared memory;");
    println!("the multiple-kernel baseline pays message protocols and page replication.");
    Ok(())
}
