//! Quickstart: boot the fused-kernel OS, migrate a process across ISAs,
//! and watch the fused mechanisms at work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stramash_repro::fused::StramashSystem;
use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cache-coherent heterogeneous-ISA platform: Xeon Gold (x86-64)
    // + ThunderX2 (AArch64) with a CXL-style shared memory pool.
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut sys = StramashSystem::new(cfg)?;

    // Spawn a process on the x86 kernel and give it some anonymous
    // memory (demand-paged).
    let pid = sys.spawn(DomainId::X86)?;
    let buf = sys.mmap(pid, 64 << 10, VmaProt::rw())?;
    println!("spawned {pid} on {}", sys.current_domain(pid)?);

    // First touches fault pages in on the origin kernel.
    for i in 0..8u64 {
        sys.store_u64(pid, buf.offset(i * 8), i * i)?;
    }

    // Cross-ISA migration: the thread moves to the AArch64 kernel.
    sys.migrate(pid, DomainId::ARM)?;
    println!("migrated to {}", sys.current_domain(pid)?);

    // The remote kernel reads the origin's data *in place* through
    // cache-coherent shared memory — no DSM, no page replication.
    for i in 0..8u64 {
        assert_eq!(sys.load_u64(pid, buf.offset(i * 8))?, i * i);
    }

    // A remote write to a fresh page: the fused fault path allocates
    // locally and inserts into BOTH page tables under the Stramash-PTL,
    // with zero inter-kernel messages.
    sys.store_u64(pid, buf.offset(4096), 42)?;

    // Back-migration reconfigures the remote-format PTEs (§6.4).
    sys.migrate(pid, DomainId::X86)?;
    assert_eq!(sys.load_u64(pid, buf.offset(4096))?, 42);

    let c = sys.counters();
    println!("\nfused-kernel counters:");
    println!("  direct remote faults (0 messages): {}", c.direct_remote_faults);
    println!("  remote VMA walks over shared memory: {}", c.remote_vma_walks);
    println!("  Stramash-PTL acquisitions: {}", c.ptl_acquisitions);
    println!("  PTEs reconfigured at migrate-back: {}", c.pte_reconfigurations);
    println!("\ninter-kernel messages (migration handshakes only): {}",
        sys.base().msg.counters().total());
    println!("total runtime: {}", sys.runtime());
    Ok(())
}
