//! The §6.3 global memory allocator under pressure: block grants at the
//! 70 % threshold, and eviction from the peer kernel when the pool runs
//! dry.
//!
//! ```sh
//! cargo run --release --example pool_allocator
//! ```

use stramash_repro::fused::StramashSystem;
use stramash_repro::kernel::system::OsSystem;
use stramash_repro::kernel::vma::VmaProt;
use stramash_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut sys = StramashSystem::with_block_size(cfg, 32 << 20)?;
    println!(
        "pool: {} free blocks of {} MB",
        sys.global_allocator().free_blocks(),
        sys.global_allocator().block_size() >> 20
    );

    let pid = sys.spawn(DomainId::X86)?;
    let buf = sys.mmap(pid, 1 << 20, VmaProt::rw())?;

    // Drive the x86 kernel's frame allocator over the 70 % pressure
    // threshold (§6.3), then fault in more pages: the global allocator
    // grants pool blocks on demand.
    while sys.base().kernels[0].frames.pressure() < 0.71 {
        sys.base_mut().kernels[0].frames.alloc()?;
    }
    println!(
        "x86 pressure: {:.0}% — the next fault triggers a block request",
        sys.base().kernels[0].frames.pressure() * 100.0
    );
    for p in 0..16u64 {
        sys.store_u64(pid, buf.offset(p * 4096), p)?;
    }
    let c = sys.counters();
    println!(
        "blocks granted: {}   blocks evicted from the peer: {}",
        c.blocks_granted, c.blocks_evicted
    );
    println!(
        "x86 now owns {} pool blocks; {} remain free",
        sys.global_allocator().owned_by(DomainId::X86),
        sys.global_allocator().free_blocks()
    );

    // Hotplug-style costs (Table 4): offline = evacuate + isolate.
    let pages = 1u64 << 16;
    let galloc = sys.global_allocator().clone();
    let freq = 2_100_000_000;
    let off = galloc.offline_cost(&mut sys.base_mut().mem, DomainId::X86, pages);
    let on = galloc.online_cost(&mut sys.base_mut().mem, DomainId::X86, pages);
    println!(
        "\noffline {} pages: {:.1} ms    online: {:.1} ms  (Table 4's shape)",
        pages,
        off.to_millis(freq),
        on.to_millis(freq)
    );
    Ok(())
}
