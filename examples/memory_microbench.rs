//! The §9.2.4 memory-access microbenchmark, interactively sized.
//!
//! Allocates a buffer on one kernel and accesses it from either side,
//! cold and warm, on Popcorn-SHM and Stramash — the replication-vs-
//! direct-access trade-off of Figure 11 in miniature.
//!
//! ```sh
//! cargo run --release --example memory_microbench [buffer_kib]
//! ```

use stramash_repro::prelude::*;
use stramash_repro::workloads::micro::{memory_access, AccessScenario};
use stramash_repro::workloads::target::{SystemKind, TargetSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kib: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(512);
    let bytes = kib << 10;
    println!("memory-access analysis, {kib} KiB buffer (paper uses 10 MB)\n");

    println!(
        "{:<8} {:>22} {:>22} {:>10}",
        "scenario", "Popcorn-SHM (cycles)", "Stramash (cycles)", "ratio"
    );
    for scenario in AccessScenario::ALL {
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared)?;
        let p = memory_access(&mut pop, scenario, bytes)?;
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)?;
        let s = memory_access(&mut stra, scenario, bytes)?;
        println!(
            "{:<8} {:>22} {:>22} {:>9.2}x",
            scenario.label(),
            p.measured.raw(),
            s.measured.raw(),
            p.measured.raw() as f64 / s.measured.raw() as f64
        );
    }

    println!("\ncold passes favour Stramash (no replication protocol);");
    println!("warm passes can favour Popcorn once its replicas are local —");
    println!("the paper's replication-vs-direct-access trade-off (§9.2.4).");
    Ok(())
}
