//! Shared helpers for the figure/table benchmark harnesses.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper and prints it in a comparable textual form. This library holds
//! the pieces they share: table rendering, trace capture, and the NPB
//! trace-replay plumbing used by the Figure 7/8 validations.

#![warn(missing_docs)]

use stramash_kernel::system::{OsError, OsSystem, VanillaSystem};
use stramash_mem::{MemorySystem, ReferenceSystem, TraceEntry};
use stramash_sim::{Cycles, DomainId, EpochPolicy, SimConfig, WideReplay};
use stramash_workloads::npb::{run_npb, Class, NpbKind};

/// Renders an aligned text table.
///
/// ```
/// let t = stramash_bench::render_table(
///     &["benchmark", "speedup"],
///     &[vec!["IS".to_string(), "2.1x".to_string()]],
/// );
/// assert!(t.contains("IS"));
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// A captured NPB run: its access trace plus the instruction count and
/// the primary model's cycle total.
#[derive(Debug)]
pub struct CapturedRun {
    /// The benchmark.
    pub kind: NpbKind,
    /// Every memory access the run issued.
    pub trace: Vec<TraceEntry>,
    /// Instructions retired.
    pub instructions: u64,
    /// Primary-model runtime (icount + memory feedback).
    pub primary_cycles: Cycles,
}

/// Runs `kind` locally on a Vanilla system with tracing enabled and
/// captures the access trace (the Figure 7/8 input).
///
/// # Errors
///
/// OS errors.
pub fn capture_npb_trace(
    cfg: SimConfig,
    kind: NpbKind,
    class: Class,
) -> Result<CapturedRun, OsError> {
    let mut sys = VanillaSystem::new(cfg)?;
    let pid = sys.spawn(DomainId::X86)?;
    sys.base_mut().mem.enable_trace();
    let out = run_npb(kind, &mut sys, pid, class, false)?;
    assert!(out.verified, "{kind} failed verification during capture");
    let trace = sys.base_mut().mem.take_trace();
    let instructions = sys.base().mem.stats(DomainId::X86).instructions
        + sys.base().mem.stats(DomainId::ARM).instructions;
    Ok(CapturedRun { kind, trace, instructions, primary_cycles: sys.runtime() })
}

/// Replays a trace through a fresh primary [`MemorySystem`], returning
/// total memory cycles.
#[must_use]
pub fn replay_primary(cfg: &SimConfig, trace: &[TraceEntry]) -> (Cycles, MemorySystem) {
    let mut mem = MemorySystem::new(cfg.clone()).expect("valid config");
    let mut total = Cycles::ZERO;
    for e in trace {
        total += mem.access(e.domain, e.addr, e.access, e.kind).cycles;
    }
    (total, mem)
}

/// Replays a trace through the [`ReferenceSystem`] (the gem5-Ruby
/// stand-in), returning total memory cycles.
#[must_use]
pub fn replay_reference(cfg: &SimConfig, trace: &[TraceEntry]) -> (Cycles, ReferenceSystem) {
    let mut refm = ReferenceSystem::new(cfg.clone());
    for e in trace {
        refm.access(e.domain, e.addr, e.access, e.kind);
    }
    let total = DomainId::ALL.iter().map(|&d| refm.cycles(d)).sum();
    (total, refm)
}

/// Host core count (`available_parallelism`), recorded in the bench
/// JSON so comparisons can tell a single-core run from a regression.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The worker count [`parallel_map`] uses for a given item count: the
/// host's available parallelism, capped by the number of items.
/// `STRAMASH_SWEEP_WORKERS=<n>` overrides the pool size (for pinned CI
/// runners whose cgroup quota hides the real core count, or for
/// forcing a serial sweep).
#[must_use]
pub fn sweep_workers(items: usize) -> usize {
    std::env::var("STRAMASH_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(host_cores)
        .min(items)
}

/// Deterministic core-budget split for a nested sweep×epoch run: the
/// outer level takes [`sweep_workers`]`(items)` host threads, and the
/// inner level (each config's epoch-parallel boundary replay) may go
/// wide only when every outer worker can own at least two host cores —
/// so the two levels never oversubscribe the machine. The split is a
/// pure function of `STRAMASH_SWEEP_WORKERS`, the host core count and
/// the item count; it never affects simulated cycles.
#[must_use]
pub fn nested_split(items: usize) -> (usize, WideReplay) {
    let workers = sweep_workers(items).max(1);
    let wide =
        if host_cores() / workers >= 2 { WideReplay::Force } else { WideReplay::Never };
    (workers, wide)
}

/// Runs `f` over `items` with both parallelism levels active: configs
/// fan out across the sweep pool ([`parallel_map`]) while each call
/// receives the inner [`EpochPolicy`] from [`nested_split`]'s budget —
/// epochs enabled, wide replay only on the spare cores. Returns the
/// results plus the split that ran, for reporting.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map_nested<T, R, F>(items: Vec<T>, f: F) -> (Vec<R>, usize, WideReplay)
where
    T: Send,
    R: Send,
    F: Fn(T, EpochPolicy) -> R + Sync,
{
    let (workers, wide) = nested_split(items.len());
    let inner =
        EpochPolicy { enabled: true, min_lane_entries: EpochPolicy::DEFAULT_MIN_LANE, wide };
    (parallel_map(items, |t| f(t, inner)), workers, wide)
}

/// Runs `f` over `items` on scoped worker threads and returns the
/// results in input order.
///
/// Figure sweeps are embarrassingly parallel: each `TargetSystem`
/// (SystemKind × HardwareModel × workload) is fully independent
/// simulator state, so the sweeps fan out with `std::thread::scope` and
/// zero new dependencies. Workers are capped at the host's available
/// parallelism ([`sweep_workers`]) and pull items from a shared atomic
/// cursor, so heterogeneous run times (a PopcornTcp point costs ~10× a
/// Vanilla point) balance instead of serialising behind one oversized
/// chunk — and a single-core host runs the sweep serially rather than
/// thrashing between dozens of threads.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = sweep_workers(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let f = &f;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().expect("unpoisoned").take().expect("claimed once");
                *out[i].lock().expect("unpoisoned") = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("unpoisoned").expect("worker filled every claimed slot"))
        .collect()
}

/// Relative error |a − b| / b.
#[must_use]
pub fn relative_error(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        (a - b).abs() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["IS".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "2".to_string()],
            ],
        );
        assert!(t.contains("longer-name"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map((0..24u64).collect::<Vec<_>>(), |i| i * i);
        assert_eq!(out, (0..24u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep_exactly() {
        // The determinism contract behind the parallel figure sweeps:
        // each simulator instance is independent state, so fanning the
        // sweep out over threads must not change a single cycle.
        use stramash_workloads::driver::{run_benchmark, Configuration};
        let configs = Configuration::figure9_set();
        let serial: Vec<_> = configs
            .iter()
            .map(|&c| run_benchmark(c, NpbKind::Is, Class::Tiny).expect("serial run"))
            .collect();
        let parallel =
            parallel_map(configs, |c| run_benchmark(c, NpbKind::Is, Class::Tiny).expect("run"));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.runtime, p.runtime);
            assert_eq!(s.messages, p.messages);
            assert_eq!(s.remote_hits, p.remote_hits);
        }
    }

    #[test]
    fn nested_split_never_oversubscribes() {
        // The core-budget invariant: wide inner replay (2 lanes per
        // worker) is only granted when the outer pool leaves every
        // worker at least two host cores — so outer × inner threads
        // never exceed the machine.
        for items in [1usize, 2, 8, 64] {
            let (w, wide) = nested_split(items);
            assert!(w >= 1 && w <= items.max(1));
            assert_eq!(wide == WideReplay::Force, host_cores() / w >= 2);
            if wide == WideReplay::Force {
                assert!(w * 2 <= host_cores());
            }
        }
    }

    #[test]
    fn nested_map_hands_each_item_an_enabled_pinned_policy() {
        let (out, workers, wide) = parallel_map_nested((0..6u64).collect::<Vec<_>>(), |i, p| {
            assert!(p.enabled, "inner epochs must be enabled");
            assert_ne!(p.wide, WideReplay::Auto, "the split must pin the wide decision");
            i * 3
        });
        assert_eq!(out, (0..6u64).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!((workers, wide), nested_split(6));
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(104.0, 100.0) - 0.04).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 0.0), 0.0);
    }

    #[test]
    fn capture_and_replay_agree_with_live_run() {
        // The trace replay through a fresh primary model must reproduce
        // the live run's memory behaviour (same accesses, same caches).
        let cfg = SimConfig::big_pair();
        let run = capture_npb_trace(cfg.clone(), NpbKind::Is, Class::Tiny).unwrap();
        assert!(!run.trace.is_empty());
        let (replayed, mem) = replay_primary(&cfg, &run.trace);
        assert!(replayed.raw() > 0);
        // Hit-rate sanity: replay saw the same access stream.
        assert_eq!(
            mem.stats(DomainId::X86).mem_accesses
                + mem.stats(DomainId::ARM).mem_accesses,
            run.trace
                .iter()
                .filter(|e| e.kind == stramash_mem::AccessKind::Data)
                .count() as u64
        );
    }

    #[test]
    fn reference_replay_is_close_to_primary() {
        let cfg = SimConfig::big_pair();
        let run = capture_npb_trace(cfg.clone(), NpbKind::Is, Class::Tiny).unwrap();
        let (prim, _) = replay_primary(&cfg, &run.trace);
        let (refc, _) = replay_reference(&cfg, &run.trace);
        let icount = run.instructions as f64;
        let err = relative_error(icount + refc.raw() as f64, icount + prim.raw() as f64);
        assert!(err < 0.13, "cycle error {err:.3} exceeds the paper's 13% bound");
    }
}
