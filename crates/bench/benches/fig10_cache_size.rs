//! Figure 10 — cache-size sensitivity, IS vs CG (§9.2.2).
//!
//! With the L3 enlarged from 4 MB to 32 MB: CG (read-intensive) sees
//! Stramash's slowdown versus Popcorn-SHM shrink from ≈ 34 % to below
//! 1 % (fewer capacity misses → fewer remote loads), while IS
//! (write-intensive) keeps missing due to invalidations, so Stramash's
//! advantage narrows from ≈ 2.1× to ≈ 1.6× as Popcorn benefits from
//! fewer write-backs.

use stramash_bench::{banner, parallel_map, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::driver::{run_benchmark_with, Configuration};
use stramash_workloads::npb::{Class, NpbKind};
use stramash_workloads::target::SystemKind;

fn main() {
    banner("Figure 10 — IS vs CG with 4 MB and 32 MB L3 (runtime ratio Stramash/Popcorn-SHM)");
    let shm = Configuration { kind: SystemKind::PopcornShm, model: HardwareModel::Shared };
    let stra = Configuration { kind: SystemKind::Stramash, model: HardwareModel::Shared };
    let mut rows = Vec::new();
    let mut ratios = Vec::new();

    // STRAMASH_LARGE=1 runs the IS sweep at the paper-scale Large class
    // (64 MB working set, minutes of host time) where the paper's IS
    // trend regime lives.
    let is_class = if std::env::var("STRAMASH_LARGE").is_ok() { Class::Large } else { Class::Small };
    // All eight runs (2 benchmarks × 2 L3 sizes × 2 systems) are
    // independent simulators — fan the whole grid out at once.
    let mut grid = Vec::new();
    for (kind, class) in [(NpbKind::Is, is_class), (NpbKind::Cg, Class::Small)] {
        for l3 in [4u64 << 20, 32 << 20] {
            grid.push((kind, class, l3));
        }
    }
    let reports = parallel_map(grid, |(kind, class, l3)| {
        let p = run_benchmark_with(shm, kind, class, Some(l3)).expect("popcorn run");
        let s = run_benchmark_with(stra, kind, class, Some(l3)).expect("stramash run");
        (kind, l3, p, s)
    });
    for (kind, l3, p, s) in reports {
        assert!(p.outcome.verified && s.outcome.verified);
        let ratio = s.runtime.raw() as f64 / p.runtime.raw() as f64;
        ratios.push((kind, l3, ratio));
        rows.push(vec![
            kind.to_string(),
            format!("{} MB", l3 >> 20),
            p.runtime.raw().to_string(),
            s.runtime.raw().to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "L3 size", "Popcorn-SHM cycles", "Stramash cycles", "Stramash/SHM"],
            &rows
        )
    );

    let ratio = |k: NpbKind, l3: u64| {
        ratios.iter().find(|(rk, rl, _)| *rk == k && *rl == l3).map(|(_, _, r)| *r).unwrap()
    };
    let cg_small = ratio(NpbKind::Cg, 4 << 20);
    let cg_big = ratio(NpbKind::Cg, 32 << 20);
    let is_small = ratio(NpbKind::Is, 4 << 20);
    let is_big = ratio(NpbKind::Is, 32 << 20);

    println!("CG: Stramash/SHM {cg_small:.2} at 4 MB -> {cg_big:.2} at 32 MB (paper: 1.34 -> ~1.00)");
    println!("IS: Stramash/SHM {is_small:.2} at 4 MB -> {is_big:.2} at 32 MB (paper: 1/2.1 -> 1/1.6)");
    println!();
    println!("reproduced: the headline CG effect — \"a larger L3 cache reduces the cache");
    println!("miss rate and overall memory accesses, significantly reducing execution time");
    println!("for Stramash with Shared/Separated\" — the read-intensive workload's remote");
    println!("accesses collapse once the matrix fits the LLC.");
    if std::env::var("STRAMASH_LARGE").is_ok() {
        println!("IS ran at the Large class (64 MB working set): the paper's narrowing");
        println!("trend applies here — Popcorn catches up as the LLC grows.");
    } else {
        println!("note: the paper's IS trend (Popcorn catching up from 2.1x to 1.6x)");
        println!("requires working sets beyond the 32 MB LLC; rerun with STRAMASH_LARGE=1");
        println!("(64 MB IS class, minutes of host time) to reproduce that direction too.");
    }

    // Shape checks for what the model reproduces.
    assert!(
        cg_big < cg_small - 0.2,
        "larger L3 must strongly shrink Stramash's CG gap: {cg_small:.2} -> {cg_big:.2}"
    );
    assert!(cg_small > 0.95, "at 4 MB, CG must sit at/over the DSM crossover");
    assert!(is_small < 1.0, "Stramash must win IS at 4 MB");
    assert!(is_big < 1.0, "Stramash must win IS at 32 MB");
    if std::env::var("STRAMASH_LARGE").is_ok() {
        assert!(
            is_big > is_small,
            "at Large class the paper's narrowing trend must hold: {is_small:.3} -> {is_big:.3}"
        );
    }
}
