//! Parallel figure-sweep harness: determinism proof + wall-clock win.
//!
//! Each configuration of a figure sweep boots an independent simulator,
//! so the sweeps are embarrassingly parallel. This harness runs the
//! Figure 9 NPB IS sweep twice — serially and fanned out with
//! [`stramash_bench::parallel_map`] — asserts that every report is
//! *identical* (the cycle-identity contract: threading must not change
//! a single simulated cycle), and reports both wall-clocks.
//!
//! Set `STRAMASH_BENCH_JSON=<path>` to emit the timings as a JSON
//! object (`scripts/bench.sh` merges it into `BENCH_simulator.json`).

use std::time::Instant;
use stramash_bench::{banner, host_cores, parallel_map, parallel_map_nested, sweep_workers};
use stramash_kernel::system::OsSystem;
use stramash_sim::{DomainId, EpochPolicy, HardwareModel, WideReplay};
use stramash_workloads::driver::{
    run_benchmark, run_benchmark_oldpath, run_benchmark_scalar, run_pair_benchmark,
    Configuration,
};
use stramash_workloads::npb::{Class, NpbKind};
use stramash_workloads::pair::{run_pair, PairConfig, PairOutcome};
use stramash_workloads::target::{SystemKind, TargetSystem};

/// One intra-run pair leg: boots `kind`, optionally enables
/// epoch-parallel execution, runs the pair workload, and returns the
/// wall-clock, outcome, and simulated fingerprint.
fn pair_leg(kind: SystemKind, parallel: bool) -> (f64, PairOutcome, (u64, u64, u64)) {
    let mut sys = TargetSystem::build(kind, HardwareModel::Shared).expect("boot");
    // Pinned both ways so the serial leg stays serial even when the
    // environment exports STRAMASH_EPOCH_PARALLEL=1.
    let mut policy = sys.base().epoch_policy();
    policy.enabled = parallel;
    sys.base_mut().set_epoch_policy(policy);
    let cfg = PairConfig { elems: 24_000, phases: 40, heartbeat: true };
    let t0 = Instant::now();
    let out = run_pair(&mut sys, cfg).expect("pair run");
    let wall = t0.elapsed().as_secs_f64();
    let base = sys.base();
    let fp = (
        base.timebase.clock(DomainId::X86).cycles().raw(),
        base.timebase.clock(DomainId::ARM).cycles().raw(),
        base.msg.counters().total(),
    );
    (wall, out, fp)
}

fn main() {
    banner("Parallel sweep — Figure 9 IS sweep, serial vs std::thread::scope");
    let configs = Configuration::figure9_set();
    let n = configs.len();

    // End-to-end old-path leg: the same serial sweep with the memory
    // system's fast paths *and* client batching disabled (the genuine
    // pre-optimisation code).
    let t0 = Instant::now();
    let oldpath: Vec<_> = configs
        .iter()
        .map(|&c| run_benchmark_oldpath(c, NpbKind::Is, Class::Small).expect("oldpath run"))
        .collect();
    let oldpath_s = t0.elapsed().as_secs_f64();

    // Scalar leg: fast memory paths but per-element client ops — the
    // baseline the batched pipeline is measured against.
    let t0 = Instant::now();
    let scalar: Vec<_> = configs
        .iter()
        .map(|&c| run_benchmark_scalar(c, NpbKind::Is, Class::Small).expect("scalar run"))
        .collect();
    let scalar_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let serial: Vec<_> = configs
        .iter()
        .map(|&c| run_benchmark(c, NpbKind::Is, Class::Small).expect("serial run"))
        .collect();
    let serial_s = t0.elapsed().as_secs_f64();

    for (o, s) in oldpath.iter().zip(&scalar) {
        assert_eq!(o.runtime, s.runtime, "fast paths drifted from the reference implementation");
        assert_eq!(o.messages, s.messages);
        assert_eq!(o.remote_hits, s.remote_hits);
    }
    for (sc, s) in scalar.iter().zip(&serial) {
        assert_eq!(sc.runtime, s.runtime, "batched pipeline drifted from the scalar path");
        assert_eq!(sc.messages, s.messages);
        assert_eq!(sc.remote_hits, s.remote_hits);
        assert_eq!(sc.inst_cycles, s.inst_cycles);
        assert_eq!(sc.mem_cycles, s.mem_cycles);
    }
    let endtoend = oldpath_s / scalar_s;
    let batched = scalar_s / serial_s;
    println!(
        "end-to-end sweep: old path {oldpath_s:.2}s  ->  fast path {scalar_s:.2}s  \
         ({endtoend:.2}x, identical cycles)"
    );
    println!(
        "batched pipeline: scalar {scalar_s:.2}s  ->  batched {serial_s:.2}s  \
         ({batched:.2}x, identical cycles)"
    );

    let t0 = Instant::now();
    let parallel =
        parallel_map(configs, |c| run_benchmark(c, NpbKind::Is, Class::Small).expect("run"));
    let parallel_s = t0.elapsed().as_secs_f64();

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.runtime, p.runtime, "parallel sweep drifted from serial");
        assert_eq!(s.messages, p.messages);
        assert_eq!(s.remote_hits, p.remote_hits);
        assert_eq!(s.inst_cycles, p.inst_cycles);
        assert_eq!(s.mem_cycles, p.mem_cycles);
    }
    println!("all {n} configuration reports identical: threading changed nothing");

    let workers = sweep_workers(n);
    let speedup = serial_s / parallel_s;
    println!(
        "serial {serial_s:.2}s  ->  parallel {parallel_s:.2}s  \
         ({speedup:.2}x, {n} configs on {workers} worker(s))"
    );

    // Intra-run epoch-parallel leg: one simulation (the two-thread pair
    // workload) run serially and with deferred-epoch execution, on the
    // fused and popcorn kinds whose long private phases the epoch
    // engine targets. The fingerprints must be identical — the speedup
    // is pure host wall-clock.
    banner("Intra-run — pair workload, serial vs epoch-parallel boundary replay");
    let mut intra_serial_s = 0.0;
    let mut intra_parallel_s = 0.0;
    for kind in [SystemKind::Stramash, SystemKind::PopcornShm] {
        let (ws, out_s, fp_s) = pair_leg(kind, false);
        let (wp, out_p, fp_p) = pair_leg(kind, true);
        assert_eq!(
            out_s.checksum.to_bits(),
            out_p.checksum.to_bits(),
            "{kind}: epoch-parallel run drifted from serial"
        );
        assert_eq!(fp_s, fp_p, "{kind}: clocks/messages moved under epoch-parallel execution");
        assert_eq!(out_s.parallel_epochs, 0, "{kind}: serial leg must not go wide");
        intra_serial_s += ws;
        intra_parallel_s += wp;
        println!(
            "{kind:<12} serial {ws:.2}s  ->  epoch-parallel {wp:.2}s  \
             ({:.2}x, {} parallel epochs, identical fingerprints)",
            ws / wp,
            out_p.parallel_epochs
        );
    }
    let intra_speedup = intra_serial_s / intra_parallel_s;
    println!(
        "intra-run total: serial {intra_serial_s:.2}s  ->  epoch-parallel {intra_parallel_s:.2}s  \
         ({intra_speedup:.2}x on {workers} host core(s))"
    );

    // Nested leg: both parallelism levels at once. Configs fan out
    // across the sweep pool while each config runs epoch-parallel lanes
    // inside, under the deterministic core-budget split from
    // `nested_split` (STRAMASH_SWEEP_WORKERS × wide replay) — the inner
    // level only goes wide on cores the outer level left spare, so the
    // two levels never oversubscribe the host. The serial baseline runs
    // the same configs one at a time with epochs disabled; every
    // fingerprint must match bit-for-bit.
    banner("Nested — config fan-out × epoch-parallel lanes, core-budget split");
    let pair_cfg = PairConfig { elems: 24_000, phases: 20, heartbeat: true };
    let nested_items =
        vec![SystemKind::Stramash, SystemKind::PopcornShm, SystemKind::Stramash, SystemKind::PopcornShm];
    let nested_n = nested_items.len();
    let epochs_off = EpochPolicy { enabled: false, ..EpochPolicy::default() };
    let t0 = Instant::now();
    let nested_serial: Vec<_> = nested_items
        .iter()
        .map(|&k| run_pair_benchmark(k, pair_cfg, Some(epochs_off)).expect("nested serial run"))
        .collect();
    let nested_serial_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (nested, nested_workers, nested_wide) = parallel_map_nested(nested_items, |k, policy| {
        run_pair_benchmark(k, pair_cfg, Some(policy)).expect("nested run")
    });
    let nested_parallel_s = t0.elapsed().as_secs_f64();

    for (s, p) in nested_serial.iter().zip(&nested) {
        assert_eq!(s.cycles, p.cycles, "{}: nested run drifted from serial", s.kind);
        assert_eq!(s.messages, p.messages, "{}: message counters moved", s.kind);
        assert_eq!(
            s.outcome.checksum.to_bits(),
            p.outcome.checksum.to_bits(),
            "{}: checksum drifted",
            s.kind
        );
        assert_eq!(s.outcome.parallel_epochs, 0, "{}: serial leg must not go wide", s.kind);
    }
    let nested_speedup = nested_serial_s / nested_parallel_s;
    let wide_epochs: u64 = nested.iter().map(|r| r.outcome.parallel_epochs).sum();
    println!(
        "nested sweep: serial {nested_serial_s:.2}s  ->  {nested_workers} worker(s) × \
         {} inner replay {nested_parallel_s:.2}s  \
         ({nested_speedup:.2}x, {wide_epochs} wide epochs, {nested_n} configs, \
         {} host core(s), identical fingerprints)",
        if nested_wide == WideReplay::Force { "wide" } else { "serial" },
        host_cores(),
    );

    if let Ok(path) = std::env::var("STRAMASH_BENCH_JSON") {
        let json = format!(
            "{{\n  \"configs\": {n},\n  \"workers\": {workers},\n  \
             \"host_cores\": {cores},\n  \
             \"serial_oldpath_seconds\": {oldpath_s:.3},\n  \
             \"serial_scalar_seconds\": {scalar_s:.3},\n  \
             \"serial_seconds\": {serial_s:.3},\n  \
             \"endtoend_fastpath_speedup\": {endtoend:.2},\n  \
             \"endtoend_batched_speedup\": {batched:.2},\n  \
             \"parallel_seconds\": {parallel_s:.3},\n  \"parallel_speedup\": {speedup:.2},\n  \
             \"intra_run_serial_seconds\": {intra_serial_s:.3},\n  \
             \"intra_run_parallel_seconds\": {intra_parallel_s:.3},\n  \
             \"intra_run_parallel_speedup\": {intra_speedup:.2},\n  \
             \"nested_workers\": {nested_workers},\n  \
             \"nested_wide_replay\": {nested_is_wide},\n  \
             \"nested_serial_seconds\": {nested_serial_s:.3},\n  \
             \"nested_sweep_seconds\": {nested_parallel_s:.3},\n  \
             \"nested_sweep_epoch_speedup\": {nested_speedup:.2}\n}}\n",
            cores = host_cores(),
            nested_is_wide = u8::from(nested_wide == WideReplay::Force),
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
