//! Figure 7 — icount validation (§9.1.2).
//!
//! The paper approximates cycle counts from Stramash-QEMU's icount +
//! cache feedback and compares against native `perf` cycles on two real
//! machine pairs, finding errors always below 13 % and about 4 % on
//! average. Hardware being unavailable, the reproduction preserves the
//! methodology with two *independent* timing models: each NPB benchmark
//! runs once, its access trace is replayed through the primary model
//! (our "icount") and through the reference model (the ground-truth
//! stand-in), and the relative cycle error is reported per benchmark on
//! both machine configurations (small pair `*_s`, big pair `*_b`).

use stramash_bench::{
    banner, capture_npb_trace, relative_error, render_table, replay_primary, replay_reference,
};
use stramash_sim::SimConfig;
use stramash_workloads::npb::{Class, NpbKind};

fn main() {
    banner("Figure 7 — icount validation (relative cycle error vs reference model)");
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for (suffix, cfg) in [("s", SimConfig::small_pair()), ("b", SimConfig::big_pair())] {
        for kind in NpbKind::ALL {
            let run = capture_npb_trace(cfg.clone(), kind, Class::Validation)
                .expect("NPB capture must succeed");
            let (prim_mem, _) = replay_primary(&cfg, &run.trace);
            let (ref_mem, _) = replay_reference(&cfg, &run.trace);
            let icount_cycles = run.instructions + prim_mem.raw();
            let reference_cycles = run.instructions + ref_mem.raw();
            let err = relative_error(icount_cycles as f64, reference_cycles as f64);
            errors.push(err);
            rows.push(vec![
                format!("{kind}_{suffix}"),
                run.instructions.to_string(),
                icount_cycles.to_string(),
                reference_cycles.to_string(),
                format!("{:.2}%", err * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "instructions", "ICOUNT cycles", "reference cycles", "rel. error"],
            &rows
        )
    );
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    println!("average error: {:.2}%   max error: {:.2}%", avg * 100.0, max * 100.0);
    println!("paper: \"always less than 13%, and about 4% on average\"");
    assert!(max < 0.13, "max error {:.2}% exceeds the paper's 13% bound", max * 100.0);
    assert!(avg < 0.08, "average error {:.2}% too far from the paper's ~4%", avg * 100.0);
}
