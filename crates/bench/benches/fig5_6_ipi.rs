//! Figures 5 & 6 — IPI latency characterisation (§9.1.1).
//!
//! The paper measures IPI latency between all core pairs on the big_Arm
//! and big_x86 machines (kernel module, RDTSC + MONITOR/MWAIT) and finds
//! an average of ≈ 2 µs, which becomes the simulated cross-ISA IPI cost.
//! This harness runs the same all-pairs experiment on the topology
//! models and prints the per-regime averages and histogram.

use stramash_bench::{banner, render_table};
use stramash_sim::ipi::{IpiCharacterization, IpiTopology};
use stramash_sim::rng::SimRng;

fn characterize(figure: u32, name: &str, topo: IpiTopology, freq_hz: u64, seed: u64) {
    let mut rng = SimRng::new(seed);
    let run = IpiCharacterization::run(topo, 16, &mut rng);
    banner(&format!("Figure {figure} — IPI latency, {name}"));
    let rows = vec![
        vec![
            "same-socket avg".to_string(),
            format!("{:.0} ns", run.average_ns_by_socket(false)),
        ],
        vec![
            "cross-socket avg".to_string(),
            format!("{:.0} ns", run.average_ns_by_socket(true)),
        ],
        vec!["all-pairs avg".to_string(), format!("{:.0} ns", run.average_ns())],
        vec![
            "simulator IPI cost".to_string(),
            format!(
                "{} cycles at {:.1} GHz",
                run.average_cycles(freq_hz).raw(),
                freq_hz as f64 / 1e9
            ),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));

    println!("latency histogram (250 ns buckets):");
    for (upper, count) in run.histogram(250.0, 16) {
        if count > 0 {
            let bar = "#".repeat((count / 32).max(1));
            println!("  <= {upper:>6.0} ns  {count:>5}  {bar}");
        }
    }

    let avg = run.average_ns();
    assert!(
        (1500.0..2500.0).contains(&avg),
        "average IPI latency {avg:.0} ns strays from the paper's ~2 µs"
    );
}

fn main() {
    characterize(5, "big_Arm (dual ThunderX2)", IpiTopology::big_arm(), 2_000_000_000, 56);
    characterize(6, "big_x86 (dual Xeon Gold)", IpiTopology::big_x86(), 2_100_000_000, 65);
    println!("\nPaper: \"The average IPI latency is about 2 us in large machine pairs,");
    println!("and we have used this value as our simulated cross-ISA IPI cost.\"");
}
