//! Table 3 — message count during migration and replicated page count
//! during runtime migration (§9.2.3).
//!
//! Popcorn's DSM exchanges hundreds of thousands of messages and
//! replicates tens of thousands of pages; Stramash reduces messages by
//! ≈ 99 %+ and nearly eliminates replication (the residue being the
//! §9.2.3 origin-handled faults on missing upper-level page tables).

use stramash_bench::{banner, render_table};
use stramash_kernel::msg::MsgType;
use stramash_sim::HardwareModel;
use stramash_workloads::npb::run_npb;
use stramash_workloads::target::TargetSystem;
use stramash_sim::DomainId;
use stramash_workloads::driver::{run_benchmark, Configuration};
use stramash_workloads::npb::{Class, NpbKind};
use stramash_workloads::target::SystemKind;

fn main() {
    banner("Table 3 — messages and replicated pages (Popcorn-SHM vs Stramash, Shared model)");
    let shm = Configuration { kind: SystemKind::PopcornShm, model: HardwareModel::Shared };
    let stra = Configuration { kind: SystemKind::Stramash, model: HardwareModel::Shared };
    let mut rows = Vec::new();

    for kind in NpbKind::ALL {
        let p = run_benchmark(shm, kind, Class::Small).expect("popcorn run");
        let s = run_benchmark(stra, kind, Class::Small).expect("stramash run");
        assert!(p.outcome.verified && s.outcome.verified);
        let msg_reduction = 100.0 * (1.0 - s.messages as f64 / p.messages.max(1) as f64);
        let rep_reduction =
            100.0 * (1.0 - s.replicated_pages as f64 / p.replicated_pages.max(1) as f64);
        rows.push(vec![
            kind.to_string(),
            p.messages.to_string(),
            s.messages.to_string(),
            format!("{msg_reduction:.2}%"),
            p.replicated_pages.to_string(),
            s.replicated_pages.to_string(),
            format!("{rep_reduction:.2}%"),
        ]);
        assert!(
            msg_reduction > 80.0,
            "{kind}: message reduction {msg_reduction:.1}% too low (paper: 99%+)"
        );
        assert!(
            s.replicated_pages < p.replicated_pages,
            "{kind}: Stramash must replicate fewer pages"
        );
    }

    println!(
        "{}",
        render_table(
            &[
                "bench",
                "Popcorn msgs",
                "Stramash msgs",
                "reduced",
                "Popcorn repl. pages",
                "Stramash repl. pages",
                "reduced",
            ],
            &rows
        )
    );
    println!("paper (Table 3): IS 207124->22 msgs (99.98%), 16918->7 pages (99.96%);");
    println!("                 FT keeps some Stramash replication (83.34%) via");
    println!("                 origin-handled faults on missing upper-level tables.");

    banner("Table 3 detail — Popcorn-SHM message breakdown on IS (by protocol type)");
    let mut sys = TargetSystem::build(stramash_workloads::target::SystemKind::PopcornShm,
        HardwareModel::Shared).expect("boot");
    let pid = sys.spawn(DomainId::X86).expect("spawn");
    use stramash_kernel::system::OsSystem as _;
    run_npb(NpbKind::Is, &mut sys, pid, Class::Small, true).expect("run");
    let counters = sys.base().msg.counters();
    let mut rows = Vec::new();
    for ty in MsgType::ALL {
        let n = counters.of_type(ty);
        if n > 0 {
            rows.push(vec![ty.to_string(), n.to_string()]);
        }
    }
    println!("{}", render_table(&["message type", "count"], &rows));
    println!("total bytes over the ring: {}", counters.total_bytes());
    assert!(
        counters.of_type(MsgType::PageRequest) > counters.of_type(MsgType::MigrationRequest),
        "DSM page traffic must dominate migration handshakes"
    );
}
