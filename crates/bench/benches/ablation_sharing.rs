//! Ablation — what each fused mechanism is worth (design choices of
//! §5/§6, quantified one at a time).
//!
//! * remote software page-table walk (§6.4) vs a message round-trip,
//! * direct remote PTE insertion vs the origin-handled fault path,
//! * IPI-notified vs polling message delivery (§6.2),
//! * CAS (LSE) vs translated LL/SC atomics (§6.5/§7.1).

use stramash_bench::{banner, render_table};
use stramash_isa::atomic::AtomicModel;
use stramash_isa::{IsaKind, PteFlags};
use stramash_kernel::addr::{VirtAddr, PAGE_SIZE};
use stramash_kernel::msg::{Message, MsgType, Transport};
use stramash_kernel::pagetable::PageTable;
use stramash_kernel::system::{protocol_round_trip, BaseSystem, OsSystem};
use stramash_kernel::{BootConfig, FrameAllocator};
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::ipi::NotifyMode;
use stramash_sim::{Cycles, DomainId, HardwareModel, Interconnect, SimConfig};
use stramash_workloads::target::{SystemKind, TargetSystem};

fn cfg() -> SimConfig {
    SimConfig::big_pair().with_hw_model(HardwareModel::Shared)
}

/// Remote software PT walk vs a message round trip for one translation.
fn walk_vs_message() -> (u64, u64) {
    let mut mem = MemorySystem::new(cfg()).unwrap();
    let mut frames = FrameAllocator::new();
    frames.add_region(PhysAddr::new(64 << 20), 16 << 20).unwrap();
    let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
    let va = VirtAddr::new(0x4000_0000);
    pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x70_0000), PteFlags::user_data(), false)
        .unwrap();
    mem.flush_caches();
    let (_, walk) = pt.walk(&mut mem, DomainId::ARM, va);

    let mut base = BaseSystem::new(cfg(), &BootConfig::paper_default()).unwrap();
    let rtt = protocol_round_trip(
        &mut base,
        DomainId::ARM,
        Message::control(MsgType::VmaRequest),
        Message::control(MsgType::VmaResponse),
        Cycles::new(400),
    );
    (walk.raw(), rtt.raw())
}

/// Direct remote fault vs origin-handled fault, measured end to end on
/// fresh systems (both measure the *second* remote fault, so ARM-side
/// warm-up is identical; the origin-handled path inherently includes
/// the chain building that forces it to the origin in the first place).
fn direct_vs_origin_fault() -> (u64, u64) {
    use stramash_kernel::vma::VmaProt;
    let fault_cost = |same_region: bool| {
        let mut sys = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let va = sys.mmap(pid, 1 << 20, VmaProt::rw()).unwrap();
        let far = sys.mmap(pid, 4 << 20, VmaProt::rw()).unwrap();
        // Origin builds the chain for `va`'s region only.
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        // Warm the ARM-side tables with one fault in the warmed region.
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap();
        let target = if same_region {
            va.offset(2 * PAGE_SIZE) // origin chain present → direct
        } else {
            far.offset(2 << 20) // distant 2 MB region → origin-handled
        };
        let t0 = sys.runtime();
        sys.store_u64(pid, target, 3).unwrap();
        (sys.runtime() - t0).raw()
    };
    (fault_cost(true), fault_cost(false))
}

/// SHM message send cost: interrupt vs polling delivery.
fn ipi_vs_polling() -> (u64, u64) {
    let mut costs = [0u64; 2];
    for (i, notify) in [NotifyMode::Interrupt, NotifyMode::Polling].into_iter().enumerate() {
        let boot = BootConfig { transport: Transport::Shm { notify }, ..BootConfig::paper_default() };
        let mut base = BaseSystem::new(cfg(), &boot).unwrap();
        let c = protocol_round_trip(
            &mut base,
            DomainId::X86,
            Message::control(MsgType::FutexRequest),
            Message::control(MsgType::FutexResponse),
            Cycles::new(400),
        );
        costs[i] = c.raw();
    }
    (costs[0], costs[1])
}

fn main() {
    banner("Ablation — per-mechanism costs of the fused design");
    let (walk, rtt) = walk_vs_message();
    let (direct, origin) = direct_vs_origin_fault();
    let (ipi, poll) = ipi_vs_polling();
    let cas = AtomicModel::paper_default(IsaKind::Aarch64).rmw_penalty().raw();
    let llsc = AtomicModel::without_lse(IsaKind::Aarch64).rmw_penalty().raw();

    let rows = vec![
        vec![
            "translation: remote SW walk vs message RTT".to_string(),
            walk.to_string(),
            rtt.to_string(),
            format!("{:.1}x", rtt as f64 / walk as f64),
        ],
        vec![
            "remote fault: direct PTE insert vs origin-handled".to_string(),
            direct.to_string(),
            origin.to_string(),
            format!("{:.1}x", origin as f64 / direct as f64),
        ],
        vec![
            "msg round trip: polling vs IPI notify".to_string(),
            poll.to_string(),
            ipi.to_string(),
            format!("{:.1}x", ipi as f64 / poll as f64),
        ],
        vec![
            "atomic RMW penalty: LSE CAS vs LL/SC".to_string(),
            cas.to_string(),
            llsc.to_string(),
            format!("{:.1}x", llsc as f64 / cas as f64),
        ],
    ];
    println!(
        "{}",
        render_table(&["mechanism (fused vs unfused)", "fused cycles", "unfused cycles", "ratio"], &rows)
    );

    assert!(walk < rtt, "the remote walk must undercut a message round trip");
    assert!(direct < origin, "direct insertion must undercut the origin-handled path");
    assert!(poll < ipi, "polling saves the IPI cost");
    assert!(cas < llsc, "LSE CAS must be cheaper than emulated LL/SC");

    banner("Interconnect sensitivity — §8.1's CXL / QPI / Infinity Fabric option");
    let mut ic_rows = Vec::new();
    let mut cxl_walk = 0u64;
    for ic in [Interconnect::Cxl, Interconnect::Qpi, Interconnect::InfinityFabric] {
        let cfg = SimConfig::big_pair()
            .with_hw_model(HardwareModel::Separated)
            .with_interconnect(ic);
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut frames = FrameAllocator::new();
        frames.add_region(PhysAddr::new(64 << 20), 16 << 20).unwrap();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x70_0000), PteFlags::user_data(), false)
            .unwrap();
        mem.flush_caches();
        let (_, walk) = pt.walk(&mut mem, DomainId::ARM, va);
        if ic == Interconnect::Cxl {
            cxl_walk = walk.raw();
        }
        ic_rows.push(vec![ic.to_string(), walk.raw().to_string()]);
    }
    println!("{}", render_table(&["interconnect", "remote PT walk (cycles)"], &ic_rows));
    println!("faster NUMA links shrink the remote-walk cost, widening the fused");
    println!("design's advantage over message protocols on such platforms.");
    let qpi_walk: u64 = ic_rows[1][1].parse().unwrap();
    assert!(qpi_walk < cxl_walk, "QPI remote walks must be cheaper than CXL");
}
