//! Figure 12 — software vs hardware consistency at cacheline
//! granularity (§9.2.5).
//!
//! A producer/consumer page ping at 1..64-cacheline granularity: DSM
//! (Popcorn) re-replicates the entire 4 KiB page every round, while
//! hardware coherence (Stramash over CXL) moves only the touched lines.
//! The paper reports DSM overhead exceeding 300× at one cacheline and
//! ≈ 2× at a full page.

use stramash_bench::{banner, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::micro::granularity;
use stramash_workloads::target::{SystemKind, TargetSystem};

const ROUNDS: u64 = 200;

fn main() {
    banner("Figure 12 — page access at cacheline granularity (cycles per round)");
    let mut rows = Vec::new();
    let mut first_ratio = 0.0f64;
    let mut last_ratio = 0.0f64;

    for lines in [1u64, 2, 4, 8, 16, 32, 64] {
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared)
            .expect("boot popcorn");
        let p = granularity(&mut pop, lines, ROUNDS).expect("popcorn run");
        let mut stra =
            TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).expect("boot stramash");
        let s = granularity(&mut stra, lines, ROUNDS).expect("stramash run");
        let ratio = p.cycles_per_round / s.cycles_per_round;
        if lines == 1 {
            first_ratio = ratio;
        }
        if lines == 64 {
            last_ratio = ratio;
        }
        rows.push(vec![
            format!("{lines} ({} B)", lines * 64),
            format!("{:.0}", p.cycles_per_round),
            format!("{:.0}", s.cycles_per_round),
            format!("{ratio:.1}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["cachelines", "DSM (Popcorn) cyc/round", "HW coherence (Stramash) cyc/round", "DSM overhead"],
            &rows
        )
    );
    println!("paper: DSM overhead exceeds 300x at one cacheline; ~2x at a full page.");
    println!("measured: {first_ratio:.0}x at one line, {last_ratio:.1}x at 64 lines.");

    assert!(first_ratio > 20.0, "DSM must be dramatically worse at 1 line: {first_ratio:.1}x");
    assert!(last_ratio > 1.0, "hardware coherence still wins at full-page granularity");
    assert!(
        last_ratio < first_ratio / 4.0,
        "the gap must collapse as granularity approaches the page"
    );
}
