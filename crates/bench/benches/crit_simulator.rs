//! Microbenchmarks of the simulator itself.
//!
//! Not a paper figure: these measure the *host-side* performance of the
//! reproduction's hot paths (cache access, page-table walks, red-black
//! tree and buddy operations), so regressions in the simulator's own
//! speed are caught. Built only with `--features criterion` so the
//! default tier-1 build stays free of bench-only code; the harness
//! itself is a self-contained `Instant`-based timer with no external
//! crates.
//!
//! The cache-access benchmarks run twice: once with the reference slow
//! paths (`set_fast_paths(false)` reinstates the original modulo set
//! indexing and multi-pass way scans) and once with the fast paths, so
//! the fast-path win is measured against the genuine old code, not a
//! synthetic strawman. Simulated cycles are bit-identical either way —
//! `tests/golden_stats.rs` enforces that.
//!
//! Set `STRAMASH_BENCH_JSON=<path>` to also emit the results as a flat
//! JSON object (`scripts/bench.sh` merges it into
//! `BENCH_simulator.json`).

use std::hint::black_box;
use std::time::{Duration, Instant};
use stramash_isa::{IsaKind, PteFlags};
use stramash_kernel::addr::VirtAddr;
use stramash_kernel::pagetable::PageTable;
use stramash_kernel::FrameAllocator;
use stramash_mem::{Access, AccessKind, AccessPlan, MemorySystem, PhysAddr};
use stramash_sim::{DomainId, HardwareModel, SimConfig};

const WARM_UP: Duration = Duration::from_millis(500);
const MEASURE: Duration = Duration::from_secs(2);
const PAIR_ROUNDS: usize = 5;
const PAIR_WINDOW: Duration = Duration::from_millis(300);

/// One timed window: runs `f` until `window` elapses, returns ns/iter.
fn timed_window<F: FnMut()>(f: &mut F, window: Duration) -> f64 {
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < window {
        // Batches of 64 keep the clock out of the measured loop.
        for _ in 0..64 {
            f();
        }
        iters += 64;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `f` repeatedly for a warm-up window and then a measurement
/// window, printing and returning the mean iteration time in
/// nanoseconds.
fn bench_function<F: FnMut()>(name: &str, mut f: F) -> f64 {
    let warm_end = Instant::now() + WARM_UP;
    while Instant::now() < warm_end {
        f();
    }
    let per_iter = timed_window(&mut f, MEASURE);
    println!("{name:<34} {per_iter:>12.1} ns/iter");
    per_iter
}

/// Measures a reference/optimised pair with interleaved windows and
/// takes the per-variant minimum: the host clock on a shared box
/// drifts by tens of percent between back-to-back runs, so two long
/// sequential measurements would compare different machines. Short
/// alternating windows see the same conditions, and the minimum is
/// robust against contention spikes.
fn bench_pair<F: FnMut(), G: FnMut()>(
    name_old: &str,
    name_new: &str,
    mut old: F,
    mut new: G,
) -> (f64, f64) {
    let warm_end = Instant::now() + WARM_UP;
    while Instant::now() < warm_end {
        old();
        new();
    }
    let (mut best_old, mut best_new) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIR_ROUNDS {
        best_old = best_old.min(timed_window(&mut old, PAIR_WINDOW));
        best_new = best_new.min(timed_window(&mut new, PAIR_WINDOW));
    }
    println!("{name_old:<34} {best_old:>12.1} ns/iter");
    println!("{name_new:<34} {best_new:>12.1} ns/iter");
    (best_old, best_new)
}

fn hot_access_system() -> MemorySystem {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    MemorySystem::new(cfg).unwrap()
}

/// The `memory_system_access_hot` walk: the full L1-miss/L2-hit
/// probe-and-fill pipeline (probe L1, probe L2, fill L1 with an
/// eviction every access) over a 64 KB working set at line stride —
/// every stage of the per-access machinery runs on every iteration.
struct PipelineWalk {
    addr: u64,
}

impl PipelineWalk {
    fn step(&mut self, mem: &mut MemorySystem) {
        self.addr = (self.addr + 64) % (64 << 10);
        let out = mem.access(
            DomainId::X86,
            PhysAddr::new(0x10_0000 + self.addr),
            Access::Read,
            AccessKind::Data,
        );
        black_box(out.cycles);
    }
}

/// The `memory_system_access_npb_mix` walk, shaped like the NPB runs
/// the golden stats pin (81–86 % L1 hits): seven of every eight
/// accesses cycle an 8 KB resident buffer (L1 hits), the eighth
/// streams through a 1 MB region at line stride — 87.5 % L1 hits.
#[derive(Default)]
struct MixWalk {
    i: u64,
    resident: u64,
    stream: u64,
}

impl MixWalk {
    fn next_addr(&mut self) -> u64 {
        self.i += 1;
        if self.i.is_multiple_of(8) {
            self.stream = (self.stream + 64) % (1 << 20);
            0x20_0000 + self.stream
        } else {
            self.resident = (self.resident + 64) % (8 << 10);
            0x10_0000 + self.resident
        }
    }

    fn step(&mut self, mem: &mut MemorySystem) {
        let addr = self.next_addr();
        let out =
            mem.access(DomainId::X86, PhysAddr::new(addr), Access::Read, AccessKind::Data);
        black_box(out.cycles);
    }
}

fn access_pair(fast: bool) -> (MemorySystem, MemorySystem) {
    let mut old = hot_access_system();
    old.set_fast_paths(false);
    let mut new = hot_access_system();
    new.set_fast_paths(fast);
    (old, new)
}

fn bench_cache_access(results: &mut Vec<(String, f64)>) {
    let (mut mem_old, mut mem_new) = access_pair(true);
    let (mut wo, mut wn) = (PipelineWalk { addr: 0 }, PipelineWalk { addr: 0 });
    let (old, new) = bench_pair(
        "memory_system_access_hot_oldpath",
        "memory_system_access_hot",
        || wo.step(&mut mem_old),
        || wn.step(&mut mem_new),
    );
    let speedup = old / new;
    println!(
        "fast-path speedup: {speedup:.2}x  ({old:.1} -> {new:.1} ns/access, \
         {:.1}M accesses/sec)",
        1e3 / new
    );
    results.push(("memory_system_access_hot_oldpath".to_string(), old));
    results.push(("memory_system_access_hot".to_string(), new));
    results.push(("memory_system_access_hot_speedup".to_string(), speedup));
    results.push(("memory_system_access_hot_accesses_per_sec".to_string(), 1e9 / new));

    let (mut mem_old, mut mem_new) = access_pair(true);
    let (mut wo, mut wn) = (MixWalk::default(), MixWalk::default());
    let (old, new) = bench_pair(
        "memory_system_access_npb_mix_oldpath",
        "memory_system_access_npb_mix",
        || wo.step(&mut mem_old),
        || wn.step(&mut mem_new),
    );
    println!("npb-mix speedup:   {:.2}x  ({old:.1} -> {new:.1} ns/access)", old / new);
    results.push(("memory_system_access_npb_mix_oldpath".to_string(), old));
    results.push(("memory_system_access_npb_mix".to_string(), new));
    results.push(("memory_system_access_npb_mix_speedup".to_string(), old / new));

    // Plan leg: the identical mix sequence compiled once into an
    // [`AccessPlan`] and replayed through `run_plan`'s dense fast-hit
    // loop, vs the same sequence issued as per-access `access` calls —
    // what the workloads' `plan_map` loops buy per access.
    const PLAN_OPS: usize = 2048;
    let mut w = MixWalk::default();
    let mut plan = AccessPlan::default();
    for _ in 0..PLAN_OPS {
        plan.push(w.next_addr(), false);
    }
    let mut mem_loop = hot_access_system();
    let mut mem_plan = hot_access_system();
    // The replay is cycle-identical to the loop before we start timing.
    let loop_cycles: u64 = plan
        .iter()
        .map(|op| {
            mem_loop
                .access(DomainId::X86, PhysAddr::new(op.addr), Access::Read, AccessKind::Data)
                .cycles
                .raw()
        })
        .sum();
    let plan_cycles = mem_plan.run_plan(DomainId::X86, &plan, 0..plan.len()).raw();
    assert_eq!(loop_cycles, plan_cycles, "plan replay drifted from the per-access loop");
    let (old, new) = bench_pair(
        "memory_system_access_npb_mix_loop",
        "memory_system_access_npb_mix_plan",
        || {
            for &addr in plan.addrs() {
                let out = mem_loop.access(
                    DomainId::X86,
                    PhysAddr::new(addr),
                    Access::Read,
                    AccessKind::Data,
                );
                black_box(out.cycles);
            }
        },
        || {
            black_box(mem_plan.run_plan(DomainId::X86, &plan, 0..plan.len()));
        },
    );
    let (old, new) = (old / PLAN_OPS as f64, new / PLAN_OPS as f64);
    let speedup = old / new;
    println!("npb-mix plan speedup: {speedup:.2}x  ({old:.1} -> {new:.1} ns/access)");
    results.push(("memory_system_access_npb_mix_loop".to_string(), old));
    results.push(("memory_system_access_npb_mix_plan".to_string(), new));
    results.push(("npb_mix_plan_speedup".to_string(), speedup));
}

/// One 4 KB bulk read, streaming over 1 MB page by page: the
/// `access_range` path.
fn read4k_step(mem: &mut MemorySystem, page: &mut u64, buf: &mut [u8; 4096]) {
    *page = (*page + 1) % 256;
    let c = mem.read_bytes(DomainId::X86, PhysAddr::new(0x10_0000 + *page * 4096), buf);
    black_box(c);
}

fn bench_stream_read(results: &mut Vec<(String, f64)>) {
    let (mut mem_old, mut mem_new) = access_pair(true);
    let mut bufs = ([0u8; 4096], [0u8; 4096]);
    let (mut po, mut pn) = (0u64, 0u64);
    let (old, new) = bench_pair(
        "memory_system_read4k_oldpath",
        "memory_system_read4k",
        || read4k_step(&mut mem_old, &mut po, &mut bufs.0),
        || read4k_step(&mut mem_new, &mut pn, &mut bufs.1),
    );
    results.push(("memory_system_read4k_oldpath".to_string(), old));
    results.push(("memory_system_read4k".to_string(), new));
}

/// Word-run batching: eight 8-byte stores covering one cache line,
/// issued as eight scalar `write_u64` calls vs one `write_u64_run` —
/// the bulk entry point the batched client slice ops drive. Both sides
/// use the fast-path hierarchy; the win measured here is pure dispatch
/// amortisation at identical simulated cycles.
fn bench_word_run(results: &mut Vec<(String, f64)>) {
    let mut mem_old = hot_access_system();
    let mut mem_new = hot_access_system();
    let words = [0x5a5a_5a5a_5a5a_5a5au64; 8];
    let (mut po, mut pn) = (0u64, 0u64);
    let (old, new) = bench_pair(
        "memory_system_write8_scalar",
        "memory_system_write8_run",
        || {
            po = (po + 64) % (1 << 20);
            let base = 0x10_0000 + po;
            for (k, &w) in words.iter().enumerate() {
                black_box(mem_old.write_u64(
                    DomainId::X86,
                    PhysAddr::new(base + 8 * k as u64),
                    w,
                ));
            }
        },
        || {
            pn = (pn + 64) % (1 << 20);
            black_box(mem_new.write_u64_run(DomainId::X86, PhysAddr::new(0x10_0000 + pn), &words));
        },
    );
    let speedup = old / new;
    println!("word-run speedup:  {speedup:.2}x  ({old:.1} -> {new:.1} ns/line)");
    results.push(("memory_system_write8_scalar".to_string(), old));
    results.push(("memory_system_write8_run".to_string(), new));
    results.push(("memory_system_write8_run_speedup".to_string(), speedup));
}

fn bench_cache_access_coherent(results: &mut Vec<(String, f64)>) {
    let mut mem = hot_access_system();
    let mut i = 0u64;
    let ns = bench_function("memory_system_access_pingpong", || {
        // Alternating writers force MESI transitions every access.
        i += 1;
        let domain = if i.is_multiple_of(2) { DomainId::X86 } else { DomainId::ARM };
        let out =
            mem.access(domain, PhysAddr::new(0x1_4000_0000), Access::Write, AccessKind::Data);
        black_box(out.cycles);
    });
    results.push(("memory_system_access_pingpong".to_string(), ns));
}

fn bench_page_walk(results: &mut Vec<(String, f64)>) {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut mem = MemorySystem::new(cfg).unwrap();
    let mut frames = FrameAllocator::new();
    frames.add_region(PhysAddr::new(64 << 20), 64 << 20).unwrap();
    let pt = PageTable::new(&mut mem, &mut frames, IsaKind::Aarch64).unwrap();
    for p in 0..512u64 {
        pt.map(
            &mut mem,
            &mut frames,
            DomainId::ARM,
            VirtAddr::new(0x4000_0000 + p * 4096),
            PhysAddr::new((128 << 20) + p * 4096),
            PteFlags::user_data(),
            false,
        )
        .unwrap();
    }
    let mut p = 0u64;
    let ns = bench_function("software_page_walk", || {
        p = (p + 1) % 512;
        let (res, cycles) = pt.walk(&mut mem, DomainId::ARM, VirtAddr::new(0x4000_0000 + p * 4096));
        black_box((res, cycles));
    });
    results.push(("software_page_walk".to_string(), ns));
}

fn bench_rbtree(results: &mut Vec<(String, f64)>) {
    use stramash_kernel::rbtree::RbTree;
    let mut tree = RbTree::new();
    for k in 0..4096u64 {
        tree.insert(k.wrapping_mul(0x9e37_79b9) % 65536, k);
    }
    let mut probe = 0u64;
    let ns = bench_function("rbtree_floor_lookup", || {
        probe = probe.wrapping_add(977) % 65536;
        black_box(tree.floor(&probe));
    });
    results.push(("rbtree_floor_lookup".to_string(), ns));
    let mut k = 0u64;
    let ns = bench_function("rbtree_insert_remove", || {
        k = k.wrapping_add(1);
        let key = 70_000 + (k % 1024);
        tree.insert(key, k);
        black_box(tree.remove(&key));
    });
    results.push(("rbtree_insert_remove".to_string(), ns));
}

fn bench_buddy(results: &mut Vec<(String, f64)>) {
    use stramash_kernel::buddy::BuddyAllocator;
    let mut buddy = BuddyAllocator::new(PhysAddr::new(64 << 20), 64 << 20);
    let ns = bench_function("buddy_alloc_free_order0", || {
        let f = buddy.alloc(0).expect("space available");
        buddy.free(black_box(f)).expect("just allocated");
    });
    results.push(("buddy_alloc_free_order0".to_string(), ns));
}

/// Serialises the results as one flat JSON object.
fn to_json(results: &[(String, f64)]) -> String {
    let fields: Vec<String> =
        results.iter().map(|(name, v)| format!("  \"{name}\": {v:.1}")).collect();
    format!("{{\n{}\n}}\n", fields.join(",\n"))
}

fn main() {
    let mut results = Vec::new();
    bench_cache_access(&mut results);
    bench_stream_read(&mut results);
    bench_word_run(&mut results);
    bench_cache_access_coherent(&mut results);
    bench_page_walk(&mut results);
    bench_rbtree(&mut results);
    bench_buddy(&mut results);
    if let Ok(path) = std::env::var("STRAMASH_BENCH_JSON") {
        std::fs::write(&path, to_json(&results)).expect("write bench JSON");
        println!("wrote {path}");
    }
}
