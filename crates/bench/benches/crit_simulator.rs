//! Microbenchmarks of the simulator itself.
//!
//! Not a paper figure: these measure the *host-side* performance of the
//! reproduction's hot paths (cache access, page-table walks, red-black
//! tree and buddy operations), so regressions in the simulator's own
//! speed are caught. Built only with `--features criterion` so the
//! default tier-1 build stays free of bench-only code; the harness
//! itself is a self-contained `Instant`-based timer with no external
//! crates.

use std::hint::black_box;
use std::time::{Duration, Instant};
use stramash_isa::{IsaKind, PteFlags};
use stramash_kernel::addr::VirtAddr;
use stramash_kernel::pagetable::PageTable;
use stramash_kernel::FrameAllocator;
use stramash_mem::{Access, AccessKind, MemorySystem, PhysAddr};
use stramash_sim::{DomainId, HardwareModel, SimConfig};

const WARM_UP: Duration = Duration::from_millis(500);
const MEASURE: Duration = Duration::from_secs(2);

/// Runs `f` repeatedly for a warm-up window and then a measurement
/// window, printing the mean iteration time.
fn bench_function<F: FnMut()>(name: &str, mut f: F) {
    let warm_end = Instant::now() + WARM_UP;
    while Instant::now() < warm_end {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < MEASURE {
        // Batches of 64 keep the clock out of the measured loop.
        for _ in 0..64 {
            f();
        }
        iters += 64;
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {per_iter:>12.1} ns/iter  ({iters} iters)");
}

fn bench_cache_access() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut mem = MemorySystem::new(cfg).unwrap();
    let mut addr = 0u64;
    bench_function("memory_system_access_hot", || {
        // 64 KB working set → mostly L1/L2 hits.
        addr = (addr + 64) % (64 << 10);
        let out = mem.access(
            DomainId::X86,
            PhysAddr::new(0x10_0000 + addr),
            Access::Read,
            AccessKind::Data,
        );
        black_box(out.cycles);
    });
}

fn bench_cache_access_coherent() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut mem = MemorySystem::new(cfg).unwrap();
    let mut i = 0u64;
    bench_function("memory_system_access_pingpong", || {
        // Alternating writers force MESI transitions every access.
        i += 1;
        let domain = if i.is_multiple_of(2) { DomainId::X86 } else { DomainId::ARM };
        let out =
            mem.access(domain, PhysAddr::new(0x1_4000_0000), Access::Write, AccessKind::Data);
        black_box(out.cycles);
    });
}

fn bench_page_walk() {
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut mem = MemorySystem::new(cfg).unwrap();
    let mut frames = FrameAllocator::new();
    frames.add_region(PhysAddr::new(64 << 20), 64 << 20).unwrap();
    let pt = PageTable::new(&mut mem, &mut frames, IsaKind::Aarch64).unwrap();
    for p in 0..512u64 {
        pt.map(
            &mut mem,
            &mut frames,
            DomainId::ARM,
            VirtAddr::new(0x4000_0000 + p * 4096),
            PhysAddr::new((128 << 20) + p * 4096),
            PteFlags::user_data(),
            false,
        )
        .unwrap();
    }
    let mut p = 0u64;
    bench_function("software_page_walk", || {
        p = (p + 1) % 512;
        let (res, cycles) = pt.walk(&mut mem, DomainId::ARM, VirtAddr::new(0x4000_0000 + p * 4096));
        black_box((res, cycles));
    });
}

fn bench_rbtree() {
    use stramash_kernel::rbtree::RbTree;
    let mut tree = RbTree::new();
    for k in 0..4096u64 {
        tree.insert(k.wrapping_mul(0x9e37_79b9) % 65536, k);
    }
    let mut probe = 0u64;
    bench_function("rbtree_floor_lookup", || {
        probe = probe.wrapping_add(977) % 65536;
        black_box(tree.floor(&probe));
    });
    let mut k = 0u64;
    bench_function("rbtree_insert_remove", || {
        k = k.wrapping_add(1);
        let key = 70_000 + (k % 1024);
        tree.insert(key, k);
        black_box(tree.remove(&key));
    });
}

fn bench_buddy() {
    use stramash_kernel::buddy::BuddyAllocator;
    let mut buddy = BuddyAllocator::new(PhysAddr::new(64 << 20), 64 << 20);
    bench_function("buddy_alloc_free_order0", || {
        let f = buddy.alloc(0).expect("space available");
        buddy.free(black_box(f)).expect("just allocated");
    });
}

fn main() {
    bench_cache_access();
    bench_cache_access_coherent();
    bench_page_walk();
    bench_rbtree();
    bench_buddy();
}
