//! Table 4 — global memory allocator offline/online overheads (§9.2.7).
//!
//! The hotplug-style allocator's cost is dominated by per-page isolation
//! work. The paper sweeps slice sizes from 2^15 to 2^20 pages on both
//! QEMU instances and reports milliseconds; the reproduction runs the
//! same sweep through the simulated memory system.

use stramash::StramashSystem;
use stramash_bench::{banner, render_table};
use stramash_kernel::system::OsSystem as _;
use stramash_sim::{DomainId, HardwareModel, SimConfig};

fn main() {
    banner("Table 4 — allocator offline/online cost by slice size (milliseconds)");
    let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
    let mut sys = StramashSystem::new(cfg.clone()).expect("boot");
    let mut rows = Vec::new();
    let mut last_off_x86 = 0.0f64;

    for exp in 15..=20u32 {
        let pages = 1u64 << exp;
        let mut cells = vec![format!("2^{exp}")];
        let mut off_x86 = 0.0;
        for domain in DomainId::ALL {
            let freq = cfg.domain(domain).freq_hz;
            let galloc = sys.global_allocator().clone();
            let off = galloc
                .offline_cost(&mut sys.base_mut().mem, domain, pages)
                .to_millis(freq);
            sys.base_mut().mem.flush_caches();
            let on = galloc
                .online_cost(&mut sys.base_mut().mem, domain, pages)
                .to_millis(freq);
            sys.base_mut().mem.flush_caches();
            if domain == DomainId::X86 {
                off_x86 = off;
            }
            cells.push(format!("{off:.1} ms"));
            cells.push(format!("{on:.1} ms"));
        }
        // Cost must scale roughly linearly with the page count.
        if last_off_x86 > 0.0 {
            let growth = off_x86 / last_off_x86;
            assert!(
                (1.5..3.0).contains(&growth),
                "offline cost must roughly double per size step, got {growth:.2}"
            );
        }
        last_off_x86 = off_x86;
        rows.push(cells);
    }

    println!(
        "{}",
        render_table(
            &["pages", "x86 offline", "x86 online", "Arm offline", "Arm online"],
            &rows
        )
    );
    println!("paper (Table 4): 2^15 pages = 12.5/5.8 ms (x86), 4.8/5.8 ms (Arm);");
    println!("                 2^20 pages = 246.3/68.1 ms (x86), 64.4/80.9 ms (Arm).");
    println!("shape: ms-scale costs growing linearly with slice size,");
    println!("       offline more expensive than online.");
}
