//! Figure 14 — network-serving application speedup (§9.2.8).
//!
//! A KV server (the Redis stand-in) is migrated to the remote kernel
//! and serves 10 K requests of 1024 B per operation. The figure reports
//! per-operation speedup normalised to the Popcorn-TCP baseline: SHM
//! messaging gains ≈ 4–10×, and Stramash (which also removes the
//! origin-kernel page-allocation round-trips for the server's
//! allocations) reaches up to ≈ 12×.

use stramash_bench::{banner, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::kvstore::{run_kv, KvOp};
use stramash_workloads::target::{SystemKind, TargetSystem};

const REQUESTS: u64 = 2_000; // scaled from the paper's 10 K
const PAYLOAD: u32 = 1024;

fn main() {
    banner("Figure 14 — KV-store speedup over Popcorn-TCP (higher is better)");
    let mut rows = Vec::new();
    let mut best = 0.0f64;
    let mut worst_shm = f64::MAX;

    for op in KvOp::ALL {
        let mut tcp =
            TargetSystem::build(SystemKind::PopcornTcp, HardwareModel::Shared).expect("boot tcp");
        let t = run_kv(&mut tcp, op, REQUESTS, PAYLOAD).expect("tcp run");
        let mut shm =
            TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared).expect("boot shm");
        let s = run_kv(&mut shm, op, REQUESTS, PAYLOAD).expect("shm run");
        let mut stra = TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared)
            .expect("boot stramash");
        let f = run_kv(&mut stra, op, REQUESTS, PAYLOAD).expect("stramash run");

        let shm_speedup = t.per_request / s.per_request;
        let stra_speedup = t.per_request / f.per_request;
        best = best.max(stra_speedup);
        worst_shm = worst_shm.min(shm_speedup);
        rows.push(vec![
            op.to_string(),
            format!("{:.0}", t.per_request),
            format!("{shm_speedup:.2}x"),
            format!("{stra_speedup:.2}x"),
        ]);
        assert!(
            stra_speedup >= shm_speedup * 0.98,
            "{op}: Stramash ({stra_speedup:.2}x) must match or beat SHM ({shm_speedup:.2}x)"
        );
    }

    println!(
        "{}",
        render_table(
            &["op", "POPCORN-TCP cyc/req", "POPCORN-SHM speedup", "STRAMASH speedup"],
            &rows
        )
    );
    println!("paper: SHM gains ~4-10x over TCP; Stramash up to ~12x.");
    println!("best Stramash speedup measured: {best:.1}x; weakest SHM speedup: {worst_shm:.1}x");
    println!("note: the paper runs this experiment WITHOUT the cache plugin (functional");
    println!("validation, wall-clock QEMU time); this harness keeps the timing model on,");
    println!("which shrinks the messaging-dominated magnitudes while preserving the");
    println!("TCP < SHM < Stramash ordering and the write-op advantage of Stramash");
    println!("(no origin-kernel round trips for the server's allocations).");

    assert!(worst_shm > 1.5, "SHM must clearly beat TCP on every op: {worst_shm:.2}x");
    assert!(best > 4.0, "Stramash must reach a clear best-case speedup: {best:.2}x");
    assert!(best > worst_shm, "Stramash's best must exceed SHM's weakest");
}
