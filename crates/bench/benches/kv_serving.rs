//! KV serving — throughput and tail latency vs offered load (§9.2.8
//! extended to an open-loop, event-driven serving scenario).
//!
//! A sharded KV store served by workers on both ISA domains handles a
//! deterministic open-loop schedule (seeded Poisson arrivals, Zipfian
//! key popularity) multiplexed over `kernel::msg` streams. Each offered
//! load is run once per OS design; the table shows achieved throughput
//! and p50/p99 request latency. Popcorn-TCP saturates at the top load
//! while SHM messaging and the fused kernel keep up — the p99 headline
//! is the fused kernel's tail-latency advantage over Popcorn-TCP at
//! that load.
//!
//! Set `STRAMASH_BENCH_JSON=<path>` to also emit the results as a flat
//! JSON object (`scripts/bench.sh` merges it into
//! `BENCH_simulator.json`).

use stramash_bench::{banner, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::serve::{run_serve_curve, ServeConfig, ServeResult};
use stramash_workloads::target::SystemKind;

const LOADS: [f64; 3] = [2.0, 10.0, 40.0];

fn cfg() -> ServeConfig {
    ServeConfig {
        requests: 1_500,
        keyspace: 400,
        workers: 4,
        connections: 32,
        window: 8,
        ..ServeConfig::default()
    }
}

fn kind_slug(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Vanilla => "vanilla",
        SystemKind::PopcornTcp => "popcorn_tcp",
        SystemKind::PopcornShm => "popcorn_shm",
        SystemKind::Stramash => "stramash",
    }
}

fn main() {
    banner("KV serving — throughput / tail latency vs offered load");
    let base = cfg();
    let kinds = [
        SystemKind::Stramash,
        SystemKind::PopcornShm,
        SystemKind::PopcornTcp,
        SystemKind::Vanilla,
    ];

    let mut rows = Vec::new();
    let mut curves: Vec<(SystemKind, Vec<ServeResult>)> = Vec::new();
    for kind in kinds {
        let curve =
            run_serve_curve(kind, HardwareModel::Shared, &base, &LOADS).expect("serve curve");
        for r in &curve {
            rows.push(vec![
                kind.to_string(),
                format!("{:.1}", r.offered_load),
                format!("{:.2}", r.throughput),
                format!("{}", r.p50()),
                format!("{}", r.p99()),
                format!("{}", r.window_stalls),
            ]);
        }
        curves.push((kind, curve));
    }
    println!(
        "{}",
        render_table(
            &["system", "offered (req/Mcyc)", "achieved", "p50 (cyc)", "p99 (cyc)", "stalls"],
            &rows,
        )
    );

    // At each load point every design must have served the identical
    // schedule, and a re-run of one point must be byte-identical (the
    // determinism contract).
    for (i, _) in LOADS.iter().enumerate() {
        let sched = curves[0].1[i].schedule_fingerprint;
        for (kind, curve) in &curves {
            assert_eq!(
                curve[i].schedule_fingerprint, sched,
                "{kind}: schedule fingerprint diverged at load {}",
                LOADS[i]
            );
        }
    }
    let sched = curves[0].1[LOADS.len() - 1].schedule_fingerprint;
    let replay = run_serve_curve(SystemKind::Stramash, HardwareModel::Shared, &base, &[LOADS[2]])
        .expect("replay");
    assert_eq!(
        replay[0].fingerprint, curves[0].1[2].fingerprint,
        "Stramash top-load run must replay byte-identically"
    );

    let at = |kind: SystemKind, i: usize| -> &ServeResult {
        &curves.iter().find(|(k, _)| *k == kind).expect("kind").1[i]
    };
    let top = LOADS.len() - 1;
    let fused = at(SystemKind::Stramash, top);
    let tcp = at(SystemKind::PopcornTcp, top);
    let p99_speedup = tcp.p99() as f64 / fused.p99() as f64;
    let tput_speedup = fused.throughput / tcp.throughput;
    assert!(
        p99_speedup > 2.0,
        "fused p99 must clearly beat TCP at the top load: {p99_speedup:.2}x"
    );
    assert!(
        tput_speedup > 1.1,
        "fused must out-serve TCP at the top load: {tput_speedup:.2}x"
    );
    println!(
        "\nheadline @ load {:.0}: fused p99 {:.2}x better, throughput {:.2}x vs Popcorn-TCP",
        LOADS[top], p99_speedup, tput_speedup
    );

    if let Ok(path) = std::env::var("STRAMASH_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"requests\": {},\n", base.requests));
        json.push_str(&format!("  \"workers\": {},\n", base.workers));
        json.push_str(&format!(
            "  \"schedule_fingerprint\": \"{sched:#018x}\",\n"
        ));
        for (kind, curve) in &curves {
            let slug = kind_slug(*kind);
            for r in curve {
                let l = r.offered_load as u64;
                json.push_str(&format!(
                    "  \"kvserve_{slug}_l{l}_throughput\": {:.3},\n",
                    r.throughput
                ));
                json.push_str(&format!("  \"kvserve_{slug}_l{l}_p50\": {},\n", r.p50()));
                json.push_str(&format!("  \"kvserve_{slug}_l{l}_p99\": {},\n", r.p99()));
            }
        }
        json.push_str(&format!(
            "  \"kvserve_fused_over_tcp_p99_speedup\": {p99_speedup:.3},\n"
        ));
        json.push_str(&format!(
            "  \"kvserve_fused_over_tcp_throughput_speedup\": {tput_speedup:.3}\n"
        ));
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
