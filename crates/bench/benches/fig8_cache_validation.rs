//! Figure 8 — cache-plugin validation against the reference MESI
//! three-level model (§9.1.3).
//!
//! The paper compares its extended QEMU cache plugin with the gem5 Ruby
//! MESI Three Level model on NPB CG/IS/MG/FT and finds per-level hit
//! rate discrepancies below 5 %. This harness replays each benchmark's
//! access trace through the primary cache model and the independently
//! structured reference model (tree-PLRU + directory coherence) and
//! prints both sets of hit rates.

use stramash_bench::{banner, capture_npb_trace, render_table, replay_primary, replay_reference};
use stramash_sim::{DomainId, SimConfig};
use stramash_workloads::npb::{Class, NpbKind};

fn main() {
    banner("Figure 8 — cache simulation validation (hit rates, primary vs reference)");
    let cfg = SimConfig::big_pair();
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for kind in NpbKind::ALL {
        let run = capture_npb_trace(cfg.clone(), kind, Class::Validation)
            .expect("capture must succeed");
        let (_, prim) = replay_primary(&cfg, &run.trace);
        let (_, refm) = replay_reference(&cfg, &run.trace);
        let p = prim.stats(DomainId::X86);
        let r = refm.stats(DomainId::X86);
        for (level, a, b) in [
            ("L1I", p.l1i.hit_rate(), r.l1i.hit_rate()),
            ("L1D", p.l1d.hit_rate(), r.l1d.hit_rate()),
            ("L2", p.l2.hit_rate(), r.l2.hit_rate()),
            ("L3", p.l3.hit_rate(), r.l3.hit_rate()),
        ] {
            let gap = (a - b).abs();
            worst = worst.max(gap);
            rows.push(vec![
                kind.to_string(),
                level.to_string(),
                format!("{:.2}%", a * 100.0),
                format!("{:.2}%", b * 100.0),
                format!("{:.2} pts", gap * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["benchmark", "level", "primary", "reference", "discrepancy"], &rows)
    );
    println!("worst per-level discrepancy: {:.2} percentage points", worst * 100.0);
    println!("paper: \"discrepancies in L1, L2, and L3 caches being less than 5%\"");
    assert!(worst < 0.05, "discrepancy {:.2} pts exceeds the paper's 5%", worst * 100.0);
}
