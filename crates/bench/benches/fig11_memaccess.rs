//! Figure 11 — memory access analysis (§9.2.4).
//!
//! 10 MB is allocated on one kernel and sequentially accessed from
//! either side, cold and warm. Popcorn-SHM replicates pages so its warm
//! accesses are local (and its performance is hardware-model
//! independent); Stramash accesses data in place, so the Shared and
//! Separated models pay remote-memory latency while Fully-Shared
//! approaches Vanilla — up to 2.5× (Shared) and 4.5× (Fully Shared)
//! faster than SHM on the cold pass, but *slower* on warm re-access.

use stramash_bench::{banner, parallel_map, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::micro::{memory_access, AccessScenario};
use stramash_workloads::target::{SystemKind, TargetSystem};

const BYTES: u64 = 10 << 20; // the paper's 10 MB

fn main() {
    banner("Figure 11 — memory access analysis (measured pass cycles; lower is better)");
    let configs: Vec<(String, SystemKind, HardwareModel)> = vec![
        ("Vanilla*".into(), SystemKind::Vanilla, HardwareModel::Shared),
        ("Popcorn-SHM".into(), SystemKind::PopcornShm, HardwareModel::Shared),
        ("Stramash-Separated".into(), SystemKind::Stramash, HardwareModel::Separated),
        ("Stramash-Shared".into(), SystemKind::Stramash, HardwareModel::Shared),
        ("Stramash-FullyShared".into(), SystemKind::Stramash, HardwareModel::FullyShared),
    ];

    // Every (scenario, system) cell is an independent simulator boot —
    // fan the full grid out across threads in one go.
    let mut grid = Vec::new();
    for scenario in AccessScenario::ALL {
        for (label, kind, model) in &configs {
            // Vanilla only has the local scenario.
            if *kind == SystemKind::Vanilla && scenario != AccessScenario::Vanilla {
                continue;
            }
            if *kind != SystemKind::Vanilla && scenario == AccessScenario::Vanilla {
                continue;
            }
            grid.push((scenario, label.clone(), *kind, *model));
        }
    }
    let results: Vec<(AccessScenario, String, u64)> =
        parallel_map(grid, |(scenario, label, kind, model)| {
            let mut sys = TargetSystem::build(kind, model).expect("boot");
            let r = memory_access(&mut sys, scenario, BYTES).expect("scenario run");
            (scenario, label, r.measured.raw())
        });
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(scenario, label, cycles)| {
            vec![scenario.label().to_string(), label.clone(), cycles.to_string()]
        })
        .collect();
    println!("{}", render_table(&["scenario", "system", "measured cycles"], &rows));

    let get = |sc: AccessScenario, label: &str| {
        results
            .iter()
            .find(|(s, l, _)| *s == sc && l == label)
            .map(|(_, _, c)| *c as f64)
            .expect("result present")
    };
    let shm_cold = get(AccessScenario::RemoteAccessOrigin, "Popcorn-SHM");
    let stra_shared_cold = get(AccessScenario::RemoteAccessOrigin, "Stramash-Shared");
    let stra_fs_cold = get(AccessScenario::RemoteAccessOrigin, "Stramash-FullyShared");
    println!(
        "\ncold RaO: Stramash-Shared {:.2}x faster than SHM (paper: up to 2.5x); \
         Fully-Shared {:.2}x (paper: up to 4.5x)",
        shm_cold / stra_shared_cold,
        shm_cold / stra_fs_cold
    );

    let shm_warm = get(AccessScenario::RemoteAccessOriginNoCold, "Popcorn-SHM");
    let stra_warm = get(AccessScenario::RemoteAccessOriginNoCold, "Stramash-Shared");
    println!(
        "warm RaO (No Cold): Popcorn {} vs Stramash-Shared {} — \"replicating data into \
         local memory can potentially outperform direct remote access\"",
        shm_warm as u64, stra_warm as u64
    );

    assert!(shm_cold > stra_shared_cold, "Stramash must win the cold remote pass");
    assert!(stra_fs_cold < stra_shared_cold, "Fully-Shared must beat Shared");
    assert!(
        stra_warm > shm_warm,
        "the takeaway trade-off: warm DSM re-access beats direct remote access \
         (10 MB exceeds the 4 MB L3, so Stramash keeps reloading remotely)"
    );
}
