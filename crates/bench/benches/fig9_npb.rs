//! Figure 9 — NPB cross-ISA migration benchmark (§9.2.1).
//!
//! Single-threaded NPB applications migrate between the ISA-different
//! CPUs (migration + back-migration per processing procedure). The
//! figure reports execution time normalised to the Vanilla case for:
//! Popcorn-TCP, Popcorn-SHM on three hardware models, and Stramash on
//! three hardware models. Headline result: Stramash up to ≈ 2.1× faster
//! than Popcorn-SHM (2.6× vs TCP) on IS; Fully-Shared Stramash closely
//! matches Vanilla; CG favours Popcorn's replication on the Shared and
//! Separated models.

use stramash_bench::{banner, parallel_map, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::driver::{run_benchmark, Configuration};
use stramash_workloads::npb::{Class, NpbKind};
use stramash_workloads::target::SystemKind;

fn main() {
    banner("Figure 9 — NPB benchmark results (runtime normalised to Vanilla; lower is better)");
    let configs = Configuration::figure9_set();
    let mut rows = Vec::new();
    let mut summary: Vec<(NpbKind, f64, f64, f64)> = Vec::new();

    for kind in NpbKind::ALL {
        // Each configuration boots an independent simulator, so the
        // whole sweep fans out across threads; results come back in
        // configuration order, Vanilla (the baseline) first.
        let reports = parallel_map(configs.clone(), |config| {
            (config, run_benchmark(config, kind, Class::Small).expect("benchmark run"))
        });
        let vanilla = &reports[0].1;
        assert!(vanilla.outcome.verified, "{kind} Vanilla failed verification");
        let mut normalized = Vec::new();
        for (config, report) in &reports {
            assert!(report.outcome.verified, "{kind} on {config} failed verification");
            let norm = report.normalized_to(vanilla.runtime);
            normalized.push((*config, norm));
            let total = (report.inst_cycles + report.mem_cycles).max(1) as f64;
            rows.push(vec![
                kind.to_string(),
                config.label(),
                report.runtime.raw().to_string(),
                format!("{norm:.3}"),
                format!("{:.0}%", report.inst_cycles as f64 / total * 100.0),
                format!("{:.0}%", report.mem_cycles as f64 / total * 100.0),
                report.messages.to_string(),
                report.remote_hits.to_string(),
            ]);
        }
        let norm_of = |k: SystemKind, m: HardwareModel| {
            normalized
                .iter()
                .find(|(c, _)| c.kind == k && (c.model == m || k == SystemKind::PopcornTcp))
                .map(|(_, n)| *n)
                .expect("config present")
        };
        let tcp = norm_of(SystemKind::PopcornTcp, HardwareModel::Shared);
        let shm = norm_of(SystemKind::PopcornShm, HardwareModel::Shared);
        let stra = norm_of(SystemKind::Stramash, HardwareModel::Shared);
        summary.push((kind, shm / stra, tcp / stra, stra));

        // The artifact's A.5 derivation: estimate the Fully-Shared
        // runtime from the Separated run by subtracting the remote
        // differential, and compare with the directly simulated one.
        // Both runs are already in the sweep (runs are deterministic,
        // so reusing them is identical to re-running).
        let cfg = stramash_sim::SimConfig::big_pair();
        let report_of = |k: SystemKind, m: HardwareModel| {
            reports
                .iter()
                .find(|(c, _)| c.kind == k && c.model == m)
                .map(|(_, r)| r)
                .expect("config present")
        };
        let separated = report_of(SystemKind::Stramash, HardwareModel::Separated);
        let estimated = separated.ae_fully_shared_estimate(&cfg);
        let simulated = report_of(SystemKind::Stramash, HardwareModel::FullyShared).runtime;
        let err = (estimated.raw() as f64 - simulated.raw() as f64).abs()
            / simulated.raw() as f64;
        println!(
            "{kind}: A.5 Fully-Shared estimate {} vs simulated {} ({:.1}% apart)",
            estimated.raw(),
            simulated.raw(),
            err * 100.0
        );
        assert!(
            err < 0.35,
            "{kind}: the artifact derivation should approximate the simulated              Fully-Shared runtime, got {:.1}%",
            err * 100.0
        );
    }

    println!(
        "{}",
        render_table(
            &["benchmark", "configuration", "runtime (cycles)", "vs Vanilla", "INST", "MEM+MSG", "messages", "remote hits"],
            &rows
        )
    );

    banner("Figure 9 summary — Stramash (Shared) speedups");
    let srows: Vec<Vec<String>> = summary
        .iter()
        .map(|(k, vs_shm, vs_tcp, vs_vanilla)| {
            vec![
                k.to_string(),
                format!("{vs_shm:.2}x vs Popcorn-SHM"),
                format!("{vs_tcp:.2}x vs Popcorn-TCP"),
                format!("{vs_vanilla:.2}x of Vanilla"),
            ]
        })
        .collect();
    println!("{}", render_table(&["benchmark", "speedup", "speedup", "overhead"], &srows));
    println!("paper: up to 2.1x over Popcorn-SHM and 2.6x over TCP on IS;");
    println!("       Stramash Fully-Shared closely matches Vanilla.");

    // Shape assertions for the headline results.
    let is = summary.iter().find(|(k, ..)| *k == NpbKind::Is).expect("IS ran");
    assert!(is.1 > 1.2, "IS: Stramash must clearly beat Popcorn-SHM, got {:.2}x", is.1);
    assert!(is.2 > is.1, "IS: the TCP gap must exceed the SHM gap");
}
