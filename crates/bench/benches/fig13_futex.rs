//! Figure 13 — futex experiment (§9.2.6).
//!
//! "The origin kernel continuously locks the Futex, while the remote
//! kernel continuously unlocks the same Futex, performing a simple
//! addition in each loop." The Stramash futex optimisation operates on
//! the shared futex word and the origin's list directly (one cross-ISA
//! IPI per wake); the regular path forwards every remote operation to
//! the origin kernel over the full message protocol.

use stramash_bench::{banner, render_table};
use stramash_sim::HardwareModel;
use stramash_workloads::micro::futex_pingpong;
use stramash_workloads::target::{SystemKind, TargetSystem};

fn main() {
    banner("Figure 13 — futex lock/unlock ping-pong (total cycles; lower is better)");
    let mut rows = Vec::new();
    let mut final_speedup = 0.0f64;

    for loops in [100u64, 200, 400, 800, 1600] {
        let mut pop = TargetSystem::build(SystemKind::PopcornShm, HardwareModel::Shared)
            .expect("boot popcorn");
        let p = futex_pingpong(&mut pop, loops).expect("popcorn run");
        let mut stra =
            TargetSystem::build(SystemKind::Stramash, HardwareModel::Shared).expect("boot stramash");
        let s = futex_pingpong(&mut stra, loops).expect("stramash run");
        let speedup = p.total.raw() as f64 / s.total.raw() as f64;
        final_speedup = speedup;
        rows.push(vec![
            loops.to_string(),
            p.total.raw().to_string(),
            s.total.raw().to_string(),
            format!("{speedup:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["loops", "regular (Popcorn) cycles", "Futex-optimized (Stramash) cycles", "speedup"],
            &rows
        )
    );
    println!("paper: \"only one cross-ISA IPI is needed to wake up the waiting thread,");
    println!("whereas the original solution requires a full Futex management protocol\".");

    assert!(
        final_speedup > 1.5,
        "the fused futex must clearly beat the message protocol: {final_speedup:.2}x"
    );
}
