//! The multiple-kernel baseline OS (Popcorn-Linux model).
//!
//! Popcorn-Linux is "the state-of-the-art multiple-kernel OS" the paper
//! compares against (§8): shared-nothing kernel instances that provide a
//! single system image by *message passing* — software DSM for the
//! application address space (pages shipped and replicated between
//! kernels), origin-kernel futex management, and message-based VMA and
//! migration protocols.
//!
//! Two transports reproduce the §8.2 baselines:
//!
//! * [`PopcornSystem::new_shm`] — messaging over shared-memory ring
//!   buffers (Popcorn-SHM),
//! * [`PopcornSystem::new_tcp`] — messaging over TCP with the measured
//!   75 µs round trip (Popcorn-TCP).
//!
//! # Example
//!
//! ```
//! use popcorn_os::PopcornSystem;
//! use stramash_kernel::system::OsSystem;
//! use stramash_kernel::vma::VmaProt;
//! use stramash_sim::{DomainId, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = PopcornSystem::new_shm(SimConfig::big_pair())?;
//! let pid = sys.spawn(DomainId::X86)?;
//! let buf = sys.mmap(pid, 4096, VmaProt::rw())?;
//! sys.migrate(pid, DomainId::ARM)?;          // cross-ISA migration
//! sys.store_u64(pid, buf, 7)?;               // DSM replicates the page
//! assert!(sys.replicated_pages(pid) >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dsm;
pub mod system;

pub use dsm::{DsmDirectory, DsmPage, DsmPageState};
pub use system::{migration_cost_model, PopcornSystem, HANDLER_COST};
