//! The Popcorn-Linux baseline system: shared-nothing kernels coordinated
//! purely by messages (§2, §6.4, §8.2).
//!
//! Every cross-kernel interaction is a message round-trip over the
//! configured transport (shared-memory rings or TCP): remote VMA
//! lookups, anonymous page allocation, DSM page replication and
//! invalidation, futex operations, and thread migration. The fused
//! Stramash system replaces almost all of these with direct shared-
//! memory accesses — the quantitative difference is Figure 9/Table 3.

use crate::dsm::{DsmDirectory, DsmPageState};
use std::collections::{HashMap, HashSet};
use stramash_isa::PteFlags;
use stramash_kernel::addr::{VirtAddr, PAGE_SHIFT, PAGE_SIZE};
use stramash_kernel::msg::{Message, MsgType, Transport};
use stramash_kernel::pagetable::PageTable;
use stramash_kernel::process::Pid;
use stramash_kernel::system::{
    BaseSystem, OsError, OsSystem, FAULT_TRAP_COST, MIGRATION_SCHED_COST,
};
use stramash_kernel::BootConfig;
use stramash_mem::PhysAddr;
use stramash_sim::trace::{FutexOp, TraceEvent, HIST_DSM_TRANSFER};
use stramash_sim::{Cycles, DomainId, EpochHorizon, SharedTracer, SimConfig};

/// Kernel-side work to service one received protocol message.
pub const HANDLER_COST: Cycles = Cycles::new(400);

/// The Popcorn-toolchain migration cost model (§5: migration "carr\[ies\]
/// over the existing application state minus the CPU-state that is
/// converted" — the payload and the register transformation cost come
/// from [`stramash_isa::regs`]).
pub fn migration_cost_model() -> stramash_isa::MigrationCostModel {
    stramash_isa::MigrationCostModel::popcorn_toolchain()
}

/// The multiple-kernel baseline OS.
#[derive(Debug)]
pub struct PopcornSystem {
    base: BaseSystem,
    dsm: HashMap<u32, DsmDirectory>,
    /// VMAs already fetched by the remote kernel, per process.
    vma_cache: HashMap<u32, HashSet<u64>>,
}

impl PopcornSystem {
    /// Boots Popcorn with shared-memory messaging (Popcorn-SHM, §8.2).
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn new_shm(cfg: SimConfig) -> Result<Self, OsError> {
        Self::with_boot(cfg, BootConfig::paper_default())
    }

    /// Boots Popcorn with TCP messaging (Popcorn-TCP, §8.2).
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn new_tcp(cfg: SimConfig) -> Result<Self, OsError> {
        Self::with_boot(cfg, BootConfig::tcp())
    }

    /// Boots Popcorn with an explicit boot configuration.
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn with_boot(cfg: SimConfig, boot: BootConfig) -> Result<Self, OsError> {
        Ok(PopcornSystem {
            base: BaseSystem::new(cfg, &boot)?,
            dsm: HashMap::new(),
            vma_cache: HashMap::new(),
        })
    }

    /// Spawns a process on `origin`.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn spawn(&mut self, origin: DomainId) -> Result<Pid, OsError> {
        let pid = self.base.spawn(origin)?;
        self.dsm.insert(pid.0, DsmDirectory::new());
        self.vma_cache.insert(pid.0, HashSet::new());
        Ok(pid)
    }

    /// The messaging transport in use.
    #[must_use]
    pub fn transport(&self) -> Transport {
        self.base.msg.transport()
    }

    /// Installs a shared tracer across the whole stack (memory system,
    /// messaging layer, IPI fabric, and the DSM protocol events emitted
    /// by this system).
    pub fn install_tracer(&mut self, tracer: SharedTracer) {
        self.base.install_tracer(tracer);
    }

    /// DSM replication count for `pid` (Table 3).
    #[must_use]
    pub fn replicated_pages(&self, pid: Pid) -> u64 {
        self.dsm.get(&pid.0).map_or(0, DsmDirectory::replications)
    }

    /// Runs the cross-layer invariant auditor and returns every
    /// violation found (an empty vector means the system is sound).
    ///
    /// On top of the base checks (messaging-ring cursor sanity and
    /// MESI directory ↔ cache-state agreement) this verifies the DSM
    /// protocol's bookkeeping against the real page tables:
    ///
    /// * every tracked page still lies inside a live VMA,
    /// * every replica frame is owned by the kernel that holds it,
    /// * an `Exclusive` page is mapped by its owner at the recorded
    ///   frame and by nobody else,
    /// * a `SharedBoth` page is mapped read-only, and only at frames
    ///   the directory records.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut violations = self.base.audit();
        for proc in self.base.processes() {
            let pid = proc.pid;
            let Some(dir) = self.dsm.get(&pid.0) else {
                violations.push(format!("{pid}: process has no DSM directory"));
                continue;
            };
            for (vpn, page) in dir.iter() {
                let va = VirtAddr::new(vpn << PAGE_SHIFT);
                if proc.vmas.find(va).is_none() {
                    violations.push(format!("{pid} {va}: DSM tracks a page outside every VMA"));
                }
                for d in DomainId::ALL {
                    if let Some(frame) = page.frames[d.index()] {
                        if !self.base.kernels[d.index()].frames.owns(frame) {
                            violations.push(format!(
                                "{pid} {va}: {d} replica frame {frame} not owned by that kernel"
                            ));
                        }
                    }
                }
                let mapped = DomainId::ALL.map(|d| {
                    proc.page_table(d).and_then(|pt| pt.walk_untimed(&self.base.mem, va))
                });
                match page.state {
                    DsmPageState::Exclusive(owner) => {
                        match mapped[owner.index()] {
                            Some((pa, _)) if Some(pa) == page.frames[owner.index()] => {}
                            Some(_) => violations.push(format!(
                                "{pid} {va}: exclusive owner maps a frame the directory does not record"
                            )),
                            None => violations.push(format!(
                                "{pid} {va}: exclusive owner {owner} has no mapping"
                            )),
                        }
                        if mapped[owner.other().index()].is_some() {
                            violations.push(format!(
                                "{pid} {va}: peer of exclusive owner {owner} still maps the page"
                            ));
                        }
                    }
                    DsmPageState::SharedBoth => {
                        for d in DomainId::ALL {
                            if let Some((pa, flags)) = mapped[d.index()] {
                                if Some(pa) != page.frames[d.index()] {
                                    violations.push(format!(
                                        "{pid} {va}: {d} maps a frame the directory does not record"
                                    ));
                                }
                                if flags.writable {
                                    violations.push(format!(
                                        "{pid} {va}: shared page is writable on {d}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        violations
    }

    /// Fails every process's DSM directory over after `dead`'s kernel
    /// died (see [`DsmDirectory::fail_over`]). Returns the totals
    /// `(pages lost, replicas shed)` across all processes.
    pub fn fail_over(&mut self, dead: DomainId) -> (u64, u64) {
        let mut lost = 0;
        let mut shed = 0;
        let mut pids: Vec<u32> = self.dsm.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            if let Some(dir) = self.dsm.get_mut(&pid) {
                let (l, s) = dir.fail_over(dead);
                lost += l;
                shed += s;
            }
        }
        (lost, shed)
    }

    /// Serializes the whole system — base machine, per-process DSM
    /// directories and remote-VMA caches — into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x504f_5043); // "POPC"
        self.base.save_state(e);
        let mut pids: Vec<u32> = self.dsm.keys().copied().collect();
        pids.sort_unstable();
        e.u64(pids.len() as u64);
        for pid in pids {
            e.u32(pid);
            self.dsm[&pid].save_state(e);
        }
        let mut pids: Vec<u32> = self.vma_cache.keys().copied().collect();
        pids.sort_unstable();
        e.u64(pids.len() as u64);
        for pid in pids {
            e.u32(pid);
            let mut starts: Vec<u64> = self.vma_cache[&pid].iter().copied().collect();
            starts.sort_unstable();
            e.u64s(&starts);
        }
    }

    /// Restores state written by [`PopcornSystem::save_state`] into this
    /// freshly booted system (same boot configuration required).
    ///
    /// # Errors
    ///
    /// Decoding errors; geometry mismatches surface as `ConfigMismatch`.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x504f_5043)?;
        self.base.load_state(d)?;
        let n = d.len()?;
        let mut dsm = HashMap::with_capacity(n);
        for _ in 0..n {
            let pid = d.u32()?;
            dsm.insert(pid, DsmDirectory::load_state(d)?);
        }
        self.dsm = dsm;
        let n = d.len()?;
        let mut vma_cache = HashMap::with_capacity(n);
        for _ in 0..n {
            let pid = d.u32()?;
            vma_cache.insert(pid, d.u64s()?.into_iter().collect::<HashSet<u64>>());
        }
        self.vma_cache = vma_cache;
        Ok(())
    }

    /// A full protocol round-trip: `from` sends `req`, the peer handles
    /// it and answers `resp`. Charges each side's clock.
    fn round_trip(&mut self, from: DomainId, req: Message, resp: Message) -> Cycles {
        stramash_kernel::system::protocol_round_trip(&mut self.base, from, req, resp, HANDLER_COST)
    }

    /// Ensures the remote kernel has fetched the VMA covering `va`
    /// (Popcorn's remote-VMA fault protocol: "a VMA fault triggers a
    /// message exchange to the original kernel", §6.4).
    fn ensure_vma(&mut self, pid: Pid, domain: DomainId, va: VirtAddr) -> Result<Cycles, OsError> {
        let (origin, vma_start, prot_ok) = {
            let proc = self.base.process(pid)?;
            match proc.vmas.find(va) {
                Some(vma) => (proc.origin, vma.start.raw(), true),
                None => (proc.origin, 0, false),
            }
        };
        if !prot_ok {
            return Err(OsError::Segfault { pid, va });
        }
        if domain == origin {
            return Ok(Cycles::ZERO);
        }
        let cache = self.vma_cache.entry(pid.0).or_default();
        if !cache.insert(vma_start) {
            return Ok(Cycles::ZERO);
        }
        Ok(self.round_trip(
            domain,
            Message::control(MsgType::VmaRequest),
            Message::control(MsgType::VmaResponse),
        ))
    }

    /// Allocates (and zeroes) a frame from `domain`'s kernel.
    fn alloc_frame(&mut self, domain: DomainId) -> Result<PhysAddr, OsError> {
        let frame = self.base.kernels[domain.index()].frames.alloc()?;
        self.base.mem.store_mut().fill(frame, PAGE_SIZE, 0);
        Ok(frame)
    }

    /// Maps `frame` at `va` in `domain`'s page table (timed), creating
    /// the table if the process does not have one on that kernel yet.
    fn map_into(
        &mut self,
        pid: Pid,
        domain: DomainId,
        va: VirtAddr,
        frame: PhysAddr,
        writable: bool,
    ) -> Result<Cycles, OsError> {
        let pt = self.ensure_pt(pid, domain)?;
        let mut flags = PteFlags::user_data();
        flags.writable = writable;
        let di = domain.index();
        // Split borrows: frames and mem live in different fields.
        let base = &mut self.base;
        let cycles = {
            let (mem, kernels) = (&mut base.mem, &mut base.kernels);
            match pt.map(mem, &mut kernels[di].frames, domain, va.page_base(), frame, flags, true) {
                Ok(c) => c,
                Err(stramash_kernel::pagetable::MapError::AlreadyMapped(_)) => {
                    // Remap: clear then set (ownership returned to us).
                    let (_, c1) = pt.unmap(mem, domain, va.page_base(), true);
                    let c2 = pt
                        .map(mem, &mut kernels[di].frames, domain, va.page_base(), frame, flags, true)
                        .map_err(OsError::Map)?;
                    c1 + c2
                }
                Err(e) => return Err(OsError::Map(e)),
            }
        };
        base.charge(domain, cycles);
        let proc = base.process_mut(pid)?;
        proc.tlb_mut(domain).invalidate(va);
        Ok(cycles)
    }

    /// Removes `domain`'s mapping of `va` (DSM invalidation receiver
    /// side).
    fn unmap_from(&mut self, pid: Pid, domain: DomainId, va: VirtAddr) -> Result<Cycles, OsError> {
        let Some(pt) = self.base.process(pid)?.page_table(domain).copied() else {
            return Ok(Cycles::ZERO);
        };
        let (_, cycles) = pt.unmap(&mut self.base.mem, domain, va.page_base(), true);
        self.base.charge(domain, cycles);
        let proc = self.base.process_mut(pid)?;
        proc.tlb_mut(domain).invalidate(va);
        Ok(cycles)
    }

    /// Downgrades `domain`'s mapping of `va` to read-only (DSM share).
    fn downgrade(&mut self, pid: Pid, domain: DomainId, va: VirtAddr) -> Result<Cycles, OsError> {
        let Some(pt) = self.base.process(pid)?.page_table(domain).copied() else {
            return Ok(Cycles::ZERO);
        };
        let (_, cycles) = pt.protect(
            &mut self.base.mem,
            domain,
            va.page_base(),
            PteFlags::user_data().read_only(),
            true,
        );
        self.base.charge(domain, cycles);
        let proc = self.base.process_mut(pid)?;
        proc.tlb_mut(domain).invalidate(va);
        Ok(cycles)
    }

    fn ensure_pt(&mut self, pid: Pid, domain: DomainId) -> Result<PageTable, OsError> {
        if let Some(pt) = self.base.process(pid)?.page_table(domain).copied() {
            return Ok(pt);
        }
        let kernel = &mut self.base.kernels[domain.index()];
        let pt = PageTable::new(&mut self.base.mem, &mut kernel.frames, kernel.isa)?;
        self.base.process_mut(pid)?.page_tables[domain.index()] = Some(pt);
        Ok(pt)
    }

    /// Translates `va` as if the executing thread were on `domain`
    /// (the origin kernel servicing a forwarded futex operation),
    /// running the full DSM fault path if needed.
    fn translate_as(
        &mut self,
        pid: Pid,
        domain: DomainId,
        va: VirtAddr,
        write: bool,
    ) -> Result<(PhysAddr, Cycles), OsError> {
        let saved = self.base.process(pid)?.current;
        self.base.process_mut(pid)?.current = domain;
        let res = self.translate(pid, va, write);
        self.base.process_mut(pid)?.current = saved;
        res
    }

    /// Looks up the DSM directory for `pid`, which every spawned
    /// process owns for its entire lifetime.
    fn dsm_mut(&mut self, pid: Pid) -> Result<&mut DsmDirectory, OsError> {
        self.dsm
            .get_mut(&pid.0)
            .ok_or(OsError::InvariantViolation("process has no DSM directory"))
    }

    /// The replication transfer: the holder reads its copy and ships it
    /// as a 4 KiB page message; the requester writes it into its own
    /// frame. Returns cycles charged.
    ///
    /// Reliability: the PageRequest/PageResponse round trip goes
    /// through [`stramash_kernel::msg::MessagingLayer`], so dropped or
    /// corrupted page messages are retransmitted (with acks, timeouts,
    /// and capped exponential backoff) transparently — DSM never sees a
    /// lost page, only a higher cycle charge.
    fn ship_page(
        &mut self,
        requester: DomainId,
        src_frame: PhysAddr,
        dst_frame: PhysAddr,
    ) -> Cycles {
        let holder = requester.other();
        let base = &mut self.base;
        // Holder reads the page out of its frame (into the ring).
        let mut scratch = vec![0u8; PAGE_SIZE as usize];
        let c_read = base.mem.read_bytes(holder, src_frame, &mut scratch);
        base.charge(holder, c_read);
        // Message round-trip with the page payload on the response.
        let total = self.round_trip(
            requester,
            Message::control(MsgType::PageRequest),
            Message::page(MsgType::PageResponse),
        );
        // Requester stores the payload into its local frame.
        let base = &mut self.base;
        let c_write = base.mem.write_bytes(requester, dst_frame, &scratch);
        base.charge(requester, c_write);
        // The actual bytes move so later reads see real data.
        base.mem.store_mut().copy(src_frame, dst_frame, PAGE_SIZE);
        let cost = c_read + c_write + total;
        self.base.emit(TraceEvent::DsmTransfer {
            from: holder,
            to: requester,
            bytes: PAGE_SIZE,
            cost,
        });
        self.base.observe(HIST_DSM_TRANSFER, cost);
        cost
    }
}

impl OsSystem for PopcornSystem {
    fn base(&self) -> &BaseSystem {
        &self.base
    }

    fn base_mut(&mut self) -> &mut BaseSystem {
        &mut self.base
    }

    fn name(&self) -> &'static str {
        "popcorn"
    }

    fn epoch_horizon(&self) -> EpochHorizon {
        // On top of the base channels: a page replicated on both
        // domains couples them through DSM invalidation round-trips.
        let base = self.base.cross_domain_horizon();
        if self.dsm.values().any(DsmDirectory::has_replicas) {
            return base.and(EpochHorizon::Blocked("replicated DSM pages"));
        }
        base
    }

    fn handle_fault(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<Cycles, OsError> {
        let (domain, origin, prot) = {
            let proc = self.base.process(pid)?;
            let vma = proc.vmas.find(va).ok_or(OsError::Segfault { pid, va })?;
            (proc.current, proc.origin, vma.prot)
        };
        if write && !prot.write {
            return Err(OsError::PermissionDenied { pid, va });
        }
        self.base.charge(domain, FAULT_TRAP_COST);
        let mut total = FAULT_TRAP_COST;
        total += self.ensure_vma(pid, domain, va)?;

        let vpn = va.vpn();
        let entry = self.dsm.get(&pid.0).and_then(|d| d.page(vpn)).copied();
        match entry {
            None => {
                if domain == origin {
                    // Plain local anonymous fault.
                    let frame = self.alloc_frame(domain)?;
                    total += self.map_into(pid, domain, va, frame, prot.write)?;
                    self.dsm_mut(pid)?.insert_exclusive(vpn, domain, frame);
                    self.base.kernels[domain.index()].counters.local_faults += 1;
                } else {
                    // §6.4: "anonymous pages are allocated in the origin
                    // kernel … at least 2 rounds of message passing".
                    let origin_frame = self.alloc_frame(origin)?;
                    let local_frame = self.alloc_frame(domain)?;
                    total += self.ship_page(domain, origin_frame, local_frame);
                    let dsm = self.dsm_mut(pid)?;
                    dsm.insert_exclusive(vpn, origin, origin_frame);
                    dsm.count_replication();
                    let page = dsm
                        .page_mut(vpn)
                        .ok_or(OsError::InvariantViolation("DSM page vanished after insert"))?;
                    page.frames[domain.index()] = Some(local_frame);
                    if write {
                        page.state = DsmPageState::Exclusive(domain);
                        total += self.map_into(pid, domain, va, local_frame, true)?;
                        // Origin's copy is stale the moment we write.
                        total += self.unmap_from(pid, origin, va)?;
                    } else {
                        page.state = DsmPageState::SharedBoth;
                        total += self.map_into(pid, domain, va, local_frame, false)?;
                        total += self.map_into(pid, origin, va, origin_frame, false)?;
                    }
                    self.base.emit(TraceEvent::DsmReplicate {
                        to: domain,
                        page_va: va.page_base().raw(),
                    });
                    self.base.kernels[domain.index()].counters.replicated_pages += 1;
                    self.base.kernels[domain.index()].counters.origin_handled_faults += 1;
                }
            }
            Some(page) => match page.state {
                DsmPageState::Exclusive(owner) if owner == domain => {
                    // We own it; the mapping was merely missing or RO.
                    let frame = page.frames[domain.index()]
                        .ok_or(OsError::InvariantViolation("exclusive DSM owner has no frame"))?;
                    total += self.map_into(pid, domain, va, frame, prot.write)?;
                    self.base.kernels[domain.index()].counters.local_faults += 1;
                }
                DsmPageState::Exclusive(owner) => {
                    // Fetch from the current owner.
                    let src = page.frames[owner.index()]
                        .ok_or(OsError::InvariantViolation("exclusive DSM owner has no frame"))?;
                    let dst = match page.frames[domain.index()] {
                        Some(f) => f,
                        None => self.alloc_frame(domain)?,
                    };
                    total += self.ship_page(domain, src, dst);
                    {
                        let dsm = self.dsm_mut(pid)?;
                        dsm.count_replication();
                        let p = dsm.page_mut(vpn).ok_or(OsError::InvariantViolation(
                            "DSM page vanished during replication",
                        ))?;
                        p.frames[domain.index()] = Some(dst);
                        p.state = if write {
                            DsmPageState::Exclusive(domain)
                        } else {
                            DsmPageState::SharedBoth
                        };
                    }
                    self.base.emit(TraceEvent::DsmReplicate {
                        to: domain,
                        page_va: va.page_base().raw(),
                    });
                    self.base.kernels[domain.index()].counters.replicated_pages += 1;
                    if write {
                        total += self.map_into(pid, domain, va, dst, true)?;
                        total += self.unmap_from(pid, owner, va)?;
                    } else {
                        total += self.map_into(pid, domain, va, dst, false)?;
                        total += self.downgrade(pid, owner, va)?;
                    }
                }
                DsmPageState::SharedBoth => {
                    let frame = match page.frames[domain.index()] {
                        Some(f) => f,
                        None => {
                            // Shouldn't normally happen; re-fetch.
                            let src = page.frames[domain.other().index()].ok_or(
                                OsError::InvariantViolation("shared DSM page has no peer frame"),
                            )?;
                            let dst = self.alloc_frame(domain)?;
                            let c = self.ship_page(domain, src, dst);
                            self.dsm_mut(pid)?
                                .page_mut(vpn)
                                .ok_or(OsError::InvariantViolation(
                                    "DSM page vanished during re-fetch",
                                ))?
                                .frames[domain.index()] = Some(dst);
                            total += c;
                            dst
                        }
                    };
                    if write {
                        // Invalidate the peer's replica, then upgrade.
                        let peer = domain.other();
                        total += self.round_trip(
                            domain,
                            Message::control(MsgType::PageInvalidate),
                            Message::control(MsgType::PageResponse),
                        );
                        total += self.unmap_from(pid, peer, va)?;
                        {
                            let dsm = self.dsm_mut(pid)?;
                            dsm.count_invalidation();
                            let p = dsm.page_mut(vpn).ok_or(OsError::InvariantViolation(
                                "DSM page vanished during invalidation",
                            ))?;
                            p.state = DsmPageState::Exclusive(domain);
                        }
                        self.base.emit(TraceEvent::DsmInvalidate {
                            to: peer,
                            page_va: va.page_base().raw(),
                        });
                        self.base.kernels[domain.other().index()].counters.dsm_invalidations += 1;
                        total += self.map_into(pid, domain, va, frame, true)?;
                    } else {
                        total += self.map_into(pid, domain, va, frame, false)?;
                        self.base.kernels[domain.index()].counters.local_faults += 1;
                    }
                }
            },
        }
        Ok(total)
    }

    fn migrate(&mut self, pid: Pid, to: DomainId) -> Result<Cycles, OsError> {
        let from = self.base.process(pid)?.current;
        if from == to {
            return Ok(Cycles::ZERO);
        }
        self.ensure_pt(pid, to)?;
        let cost_model = migration_cost_model();
        let mut total = self.round_trip(
            from,
            Message { ty: MsgType::MigrationRequest, payload: cost_model.payload_bytes },
            Message::control(MsgType::MigrationResponse),
        );
        // The destination transforms the register state to its ISA (§5).
        self.base.retire(to, cost_model.transform_insns);
        self.base.charge(to, MIGRATION_SCHED_COST);
        total += MIGRATION_SCHED_COST + cost_model.transform_cycles();
        self.base.process_mut(pid)?.switch_domain(to);
        self.base.kernels[to.index()].counters.migrations_in += 1;
        self.base.record_migration(from, to);
        Ok(total)
    }

    fn futex_lock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        let origin = self.base.process(pid)?.origin;
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        let mut total = Cycles::ZERO;
        if domain != origin {
            // §6.5: "the remote kernel must message the origin kernel to
            // engage the lock".
            total += self.round_trip(
                domain,
                Message::control(MsgType::FutexRequest),
                Message::control(MsgType::FutexResponse),
            );
        }
        // The origin kernel performs the lock on its copy of the word,
        // faulting it in through the DSM protocol if the page currently
        // lives on the remote kernel.
        let (pa, walk) = self.translate_as(pid, origin, uaddr, true)?;
        total += walk;
        let penalty = self.base.kernels[origin.index()].atomics.rmw_penalty();
        let (_, c) = self.base.mem.cas_u64(origin, pa, 0, 1, penalty);
        self.base.charge(origin, c);
        total += c;
        self.base.emit(TraceEvent::Futex { domain, op: FutexOp::Acquire, va: uaddr.raw() });
        Ok(total)
    }

    fn futex_unlock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        let origin = self.base.process(pid)?.origin;
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        let mut total = Cycles::ZERO;
        if domain != origin {
            total += self.round_trip(
                domain,
                Message::control(MsgType::FutexRequest),
                Message::control(MsgType::FutexResponse),
            );
        }
        let (pa, walk) = self.translate_as(pid, origin, uaddr, true)?;
        total += walk;
        let c = self.base.mem.write_u64(origin, pa, 0);
        self.base.charge(origin, c);
        total += c;
        // Wake a waiter if one exists; cross-domain waiters need a wake
        // message.
        if let Some(w) = self.base.kernels[origin.index()].futexes.wake_one(uaddr) {
            self.base.emit(TraceEvent::Futex { domain: w.domain, op: FutexOp::Wake, va: uaddr.raw() });
            if w.domain != origin {
                let base = &mut self.base;
                let c = base.msg.send(
                    &mut base.mem,
                    &mut base.ipi,
                    origin,
                    Message::control(MsgType::FutexWake),
                );
                base.charge(origin, c);
                total += c;
            }
        }
        Ok(total)
    }

    fn munmap(&mut self, pid: Pid, start: VirtAddr) -> Result<[u64; 2], OsError> {
        let (domain, vma) = {
            let proc = self.base.process_mut(pid)?;
            let vma = proc.vmas.remove(start).ok_or(OsError::Segfault { pid, va: start })?;
            (proc.current, vma)
        };
        // The peer kernel must tear down its replicas and VMA copy — a
        // message round trip under the shared-nothing design.
        let peer_has_state = self.base.process(pid)?.page_table(domain.other()).is_some();
        if peer_has_state {
            self.round_trip(
                domain,
                Message::control(MsgType::VmaRequest),
                Message::control(MsgType::VmaResponse),
            );
        }
        self.vma_cache.entry(pid.0).or_default().remove(&start.raw());
        let mut freed = [0u64; 2];
        for p in 0..vma.pages() {
            let va = start.offset(p * PAGE_SIZE);
            let vpn = va.vpn();
            // Each kernel unmaps and frees ITS OWN replica.
            for d in stramash_sim::DomainId::ALL {
                let Some(pt) = self.base.process(pid)?.page_table(d).copied() else { continue };
                let (old, c) = pt.unmap(&mut self.base.mem, d, va, true);
                self.base.charge(d, c);
                if old.is_some() {
                    self.base.process_mut(pid)?.tlb_mut(d).invalidate(va);
                }
            }
            if let Some(page) = self.dsm.get_mut(&pid.0).and_then(|dir| dir.remove(vpn)) {
                for d in stramash_sim::DomainId::ALL {
                    if let Some(frame) = page.frames[d.index()] {
                        self.base.kernels[d.index()].frames.free(frame)?;
                        freed[d.index()] += 1;
                    }
                }
            }
        }
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::vma::VmaProt;
    use stramash_sim::HardwareModel;

    fn popcorn() -> (PopcornSystem, Pid) {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = PopcornSystem::new_shm(cfg).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        (sys, pid)
    }

    #[test]
    fn local_faults_send_no_messages() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 16 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        assert_eq!(sys.base().msg.counters().total(), 0);
        assert_eq!(sys.replicated_pages(pid), 0);
    }

    #[test]
    fn migration_exchanges_messages_and_switches_domain() {
        let (mut sys, pid) = popcorn();
        sys.migrate(pid, DomainId::ARM).unwrap();
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::ARM);
        let c = sys.base().msg.counters();
        assert_eq!(c.of_type(MsgType::MigrationRequest), 1);
        assert_eq!(c.of_type(MsgType::MigrationResponse), 1);
        assert_eq!(sys.base().kernels[1].counters.migrations_in, 1);
    }

    #[test]
    fn remote_first_touch_replicates_via_messages() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va, 0xbeef).unwrap();
        let c = sys.base().msg.counters();
        // VMA fetch + page request/response.
        assert_eq!(c.of_type(MsgType::VmaRequest), 1);
        assert_eq!(c.of_type(MsgType::PageRequest), 1);
        assert_eq!(c.of_type(MsgType::PageResponse), 1);
        assert_eq!(sys.replicated_pages(pid), 1);
        assert_eq!(sys.load_u64(pid, va).unwrap(), 0xbeef);
    }

    #[test]
    fn data_written_remotely_survives_migration_back() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va, 77).unwrap();
        sys.migrate(pid, DomainId::X86).unwrap();
        // Origin's copy was invalidated by the remote write; reading it
        // back must re-fetch via DSM and see 77.
        assert_eq!(sys.load_u64(pid, va).unwrap(), 77);
        assert!(sys.replicated_pages(pid) >= 2, "page shipped both ways");
    }

    #[test]
    fn read_sharing_then_write_invalidates() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        // Origin writes first (owns the page).
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        // Remote read → SharedBoth.
        assert_eq!(sys.load_u64(pid, va).unwrap(), 1);
        let before = sys.base().msg.counters().of_type(MsgType::PageInvalidate);
        // Remote write on a shared page → invalidate the peer replica.
        sys.store_u64(pid, va, 2).unwrap();
        let after = sys.base().msg.counters().of_type(MsgType::PageInvalidate);
        assert_eq!(after - before, 1);
        sys.migrate(pid, DomainId::X86).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 2);
    }

    #[test]
    fn vma_fetched_once_per_area() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        for i in 0..8u64 {
            sys.store_u64(pid, va.offset(i * PAGE_SIZE), i).unwrap();
        }
        assert_eq!(sys.base().msg.counters().of_type(MsgType::VmaRequest), 1);
        // But each page needed its own replication round.
        assert_eq!(sys.base().msg.counters().of_type(MsgType::PageRequest), 8);
    }

    #[test]
    fn remote_futex_round_trips_to_origin() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        // Fault the word in at the origin.
        sys.store_u64(pid, va, 0).unwrap();
        let origin_cost = sys.futex_lock(pid, DomainId::X86, va).unwrap();
        sys.futex_unlock(pid, DomainId::X86, va).unwrap();
        assert_eq!(sys.base().msg.counters().of_type(MsgType::FutexRequest), 0);
        let remote_cost = sys.futex_lock(pid, DomainId::ARM, va).unwrap();
        assert_eq!(sys.base().msg.counters().of_type(MsgType::FutexRequest), 1);
        assert!(
            remote_cost.raw() > origin_cost.raw() * 2,
            "remote futex ops pay the message protocol: {remote_cost} vs {origin_cost}"
        );
    }

    #[test]
    fn audit_clean_after_dsm_workload() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 16 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 1);
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap();
        sys.store_u64(pid, va, 3).unwrap();
        sys.migrate(pid, DomainId::X86).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 3);
        let violations = sys.audit();
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }

    #[test]
    fn audit_flags_forged_directory_state() {
        let (mut sys, pid) = popcorn();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        assert!(sys.audit().is_empty());
        // Forge: claim the writable origin mapping is a shared replica.
        let dir = sys.dsm.get_mut(&pid.0).unwrap();
        dir.page_mut(va.vpn()).unwrap().state = DsmPageState::SharedBoth;
        let violations = sys.audit();
        assert!(
            violations.iter().any(|v| v.contains("writable")),
            "expected a writable-shared-page violation, got {violations:?}"
        );
    }

    #[test]
    fn dropped_page_messages_retransmit_and_dsm_stays_sound() {
        use stramash_sim::{shared_injector, FaultPlan};
        let (mut sys, pid) = popcorn();
        let inj = shared_injector(FaultPlan::none().with_msg_drop(0.4), 0xb0c0);
        sys.base.install_fault_injector(inj.clone());
        let va = sys.mmap(pid, 16 << 10, VmaProt::rw()).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        for i in 0..4u64 {
            sys.store_u64(pid, va.offset(i * PAGE_SIZE), 0x1000 + i).unwrap();
        }
        for i in 0..4u64 {
            assert_eq!(sys.load_u64(pid, va.offset(i * PAGE_SIZE)).unwrap(), 0x1000 + i);
        }
        let c = sys.base().msg.counters();
        assert!(c.retransmits() > 0, "a 40% drop rate must force retransmissions");
        assert!(inj.borrow().counters().recovered > 0);
        let violations = sys.audit();
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }

    #[test]
    fn tcp_transport_is_much_slower_per_fault() {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut shm = PopcornSystem::new_shm(cfg.clone()).unwrap();
        let mut tcp = PopcornSystem::new_tcp(cfg).unwrap();
        let mut costs = Vec::new();
        for sys in [&mut shm, &mut tcp] {
            let pid = sys.spawn(DomainId::X86).unwrap();
            let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
            sys.migrate(pid, DomainId::ARM).unwrap();
            let before = sys.runtime();
            sys.store_u64(pid, va, 1).unwrap();
            costs.push((sys.runtime() - before).raw());
        }
        assert!(
            costs[1] > 2 * costs[0],
            "TCP remote fault ({}) should dwarf SHM ({})",
            costs[1],
            costs[0]
        );
    }
}
