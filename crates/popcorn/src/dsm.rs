//! Software distributed shared memory at page granularity.
//!
//! Popcorn-Linux "uses software DSM to provide a single application
//! virtual address space among kernels — passing memory pages as
//! messages" (§6.4). Each domain maps its *own physical copy* of a
//! shared page; coherence is an MSI-style page state machine driven by
//! page faults:
//!
//! * read fault on a remote-owned page → request/response messages, the
//!   page is **replicated** and both copies map read-only,
//! * write fault → the writer obtains exclusive ownership; every other
//!   copy is invalidated (unmapped) by message.
//!
//! The per-page replication and message counts feed Table 3; the
//! "always local after replication" property is what makes Popcorn-SHM
//! insensitive to the hardware model (§9.2.1).

use std::collections::HashMap;
use stramash_mem::PhysAddr;
use stramash_sim::DomainId;

/// Coherence state of one DSM page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsmPageState {
    /// One domain holds the only valid, writable copy.
    Exclusive(DomainId),
    /// Both domains hold read-only replicas.
    SharedBoth,
}

/// Per-page DSM bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct DsmPage {
    /// The physical copy each domain owns (allocated lazily).
    pub frames: [Option<PhysAddr>; 2],
    /// Current coherence state.
    pub state: DsmPageState,
}

/// The DSM directory of one process's address space.
#[derive(Debug, Default)]
pub struct DsmDirectory {
    pages: HashMap<u64, DsmPage>,
    replications: u64,
    invalidations: u64,
}

impl DsmDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        DsmDirectory::default()
    }

    /// Looks up a page's entry.
    #[must_use]
    pub fn page(&self, vpn: u64) -> Option<&DsmPage> {
        self.pages.get(&vpn)
    }

    /// Mutable page entry.
    pub fn page_mut(&mut self, vpn: u64) -> Option<&mut DsmPage> {
        self.pages.get_mut(&vpn)
    }

    /// Records the first allocation of a page, exclusively owned.
    pub fn insert_exclusive(&mut self, vpn: u64, owner: DomainId, frame: PhysAddr) {
        let mut frames = [None, None];
        frames[owner.index()] = Some(frame);
        self.pages.insert(vpn, DsmPage { frames, state: DsmPageState::Exclusive(owner) });
    }

    /// Removes a page's entry (munmap / teardown), returning it.
    pub fn remove(&mut self, vpn: u64) -> Option<DsmPage> {
        self.pages.remove(&vpn)
    }

    /// Records a replication event (a page copy crossed kernels).
    pub fn count_replication(&mut self) {
        self.replications += 1;
    }

    /// Records an invalidation event.
    pub fn count_invalidation(&mut self) {
        self.invalidations += 1;
    }

    /// Pages replicated so far (the Table 3 "Replicated Pages" column).
    #[must_use]
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Invalidations sent so far.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Whether any page is currently replicated on both domains. A
    /// write to such a page triggers a cross-domain invalidation
    /// round-trip, so replicas block the deferred-epoch horizon.
    #[must_use]
    pub fn has_replicas(&self) -> bool {
        self.pages.values().any(|p| p.state == DsmPageState::SharedBoth)
    }

    /// Number of pages the directory tracks.
    #[must_use]
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates over every tracked page (used by the invariant auditor).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &DsmPage)> {
        self.pages.iter().map(|(vpn, page)| (*vpn, page))
    }

    /// Resets the event counters (page state is preserved).
    pub fn reset_counters(&mut self) {
        self.replications = 0;
        self.invalidations = 0;
    }

    /// Fails the directory over after `dead`'s kernel died: every page
    /// falls back to the surviving domain's copy. Pages the dead domain
    /// held exclusively lose their only valid copy and are dropped (the
    /// survivor re-faults them as fresh zero pages); shared pages and
    /// survivor-exclusive pages just shed the dead replica. Returns
    /// `(pages lost, replicas shed)`.
    pub fn fail_over(&mut self, dead: DomainId) -> (u64, u64) {
        let survivor = dead.other();
        let mut lost = 0;
        let mut shed = 0;
        self.pages.retain(|_, p| {
            if p.state == DsmPageState::Exclusive(dead) {
                lost += 1;
                return false;
            }
            if p.frames[dead.index()].take().is_some() {
                shed += 1;
            }
            p.state = DsmPageState::Exclusive(survivor);
            true
        });
        self.invalidations += shed;
        (lost, shed)
    }

    /// Serializes the directory (pages in vpn order, then the event
    /// counters) into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4453_4d44); // "DSMD"
        let mut vpns: Vec<u64> = self.pages.keys().copied().collect();
        vpns.sort_unstable();
        e.u64(vpns.len() as u64);
        for vpn in vpns {
            let p = &self.pages[&vpn];
            e.u64(vpn);
            for f in p.frames {
                e.opt_u64(f.map(|pa| pa.raw()));
            }
            match p.state {
                DsmPageState::Exclusive(d) => e.u8(d.index() as u8),
                DsmPageState::SharedBoth => e.u8(2),
            }
        }
        e.u64(self.replications);
        e.u64(self.invalidations);
    }

    /// Restores a directory written by [`DsmDirectory::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<Self, stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4453_4d44)?;
        let n = d.len()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let vpn = d.u64()?;
            let mut frames = [None, None];
            for f in &mut frames {
                *f = d.opt_u64()?.map(PhysAddr::new);
            }
            let state = match d.u8()? {
                0 => DsmPageState::Exclusive(DomainId::X86),
                1 => DsmPageState::Exclusive(DomainId::ARM),
                2 => DsmPageState::SharedBoth,
                _ => return Err(CheckpointError::Malformed("unknown DSM page state")),
            };
            pages.insert(vpn, DsmPage { frames, state });
        }
        Ok(DsmDirectory { pages, replications: d.u64()?, invalidations: d.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_insert_and_lookup() {
        let mut d = DsmDirectory::new();
        d.insert_exclusive(5, DomainId::X86, PhysAddr::new(0x4000));
        let p = d.page(5).unwrap();
        assert_eq!(p.state, DsmPageState::Exclusive(DomainId::X86));
        assert_eq!(p.frames[0], Some(PhysAddr::new(0x4000)));
        assert_eq!(p.frames[1], None);
        assert!(d.page(6).is_none());
        assert_eq!(d.tracked_pages(), 1);
    }

    #[test]
    fn counters() {
        let mut d = DsmDirectory::new();
        d.count_replication();
        d.count_replication();
        d.count_invalidation();
        assert_eq!(d.replications(), 2);
        assert_eq!(d.invalidations(), 1);
        d.reset_counters();
        assert_eq!(d.replications(), 0);
    }

    #[test]
    fn state_transitions_via_page_mut() {
        let mut d = DsmDirectory::new();
        d.insert_exclusive(1, DomainId::ARM, PhysAddr::new(0x8000));
        let p = d.page_mut(1).unwrap();
        p.frames[0] = Some(PhysAddr::new(0x9000));
        p.state = DsmPageState::SharedBoth;
        assert_eq!(d.page(1).unwrap().state, DsmPageState::SharedBoth);
    }
}
