//! The OS-system abstraction shared by every kernel design.
//!
//! [`BaseSystem`] owns the simulated machine (memory system, timebase,
//! IPI fabric, messaging layer, the two kernel instances, and the
//! process table). The [`OsSystem`] trait adds the design-specific
//! policies on top — page-fault handling, migration, and futexes — and
//! provides the common execution primitives (translate / load / store /
//! retire instructions) that the workloads run against.
//!
//! Three implementations exist in the workspace:
//!
//! * [`VanillaSystem`] (here) — a single-kernel baseline; the paper's
//!   "Vanilla" normalisation case (application runs locally, §9.2.1),
//! * `popcorn_os::PopcornSystem` — the multiple-kernel baseline,
//! * `stramash::StramashSystem` — the fused-kernel OS.

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::boot::{boot_pair, BootConfig, BootedPlatform};
use crate::device::{DeviceError, DeviceRegistry};
use crate::frame::FrameError;
use crate::kernel::KernelInstance;
use crate::msg::{Message, MessagingLayer, MsgType};
use crate::pagetable::{MapError, PageTable};
use crate::process::{Pid, Process};
use crate::session::AccessSession;
use crate::vma::{VmaError, VmaKind, VmaProt};
use crate::watchdog::{Watchdog, WatchdogReport};
use std::collections::HashMap;
use std::fmt;
use stramash_isa::PteFlags;
use stramash_mem::{MemorySystem, PhysAddr, PhysLayout};
use stramash_sim::config::ConfigError;
use stramash_sim::ipi::IpiFabric;
use stramash_sim::trace::{
    FutexOp, TraceEvent, CTR_WATCHDOG_DEATHS, HIST_FAULT_SERVICE, HIST_MSG_ROUND_TRIP,
};
use stramash_sim::{
    Cycles, DomainId, EpochHorizon, EpochPolicy, EpochReport, SharedFaultInjector, SharedTracer,
    SimConfig, Timebase,
};

/// Trap entry/exit plus generic fault-path bookkeeping, charged for
/// every page fault regardless of how it is resolved.
pub const FAULT_TRAP_COST: Cycles = Cycles::new(600);

/// Scheduler/context-switch cost of resuming a migrated thread.
pub const MIGRATION_SCHED_COST: Cycles = Cycles::new(1_500);

/// Errors surfaced by OS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// Unknown pid.
    NoSuchProcess(Pid),
    /// Access outside any VMA.
    Segfault {
        /// Faulting process.
        pid: Pid,
        /// Faulting address.
        va: VirtAddr,
    },
    /// Write to a read-only VMA.
    PermissionDenied {
        /// Faulting process.
        pid: Pid,
        /// Faulting address.
        va: VirtAddr,
    },
    /// Out of physical frames.
    Frame(FrameError),
    /// Page-table mutation failed.
    Map(MapError),
    /// VMA bookkeeping failed.
    Vma(VmaError),
    /// This system does not support cross-ISA migration.
    MigrationUnsupported,
    /// Platform configuration was invalid.
    Config(ConfigError),
    /// MMIO device access failed.
    Device(DeviceError),
    /// A cross-ISA lock acquisition exhausted its retry budget.
    LockTimeout {
        /// Process whose lock acquisition timed out.
        pid: Pid,
    },
    /// An uncorrectable (double-bit) memory fault was detected.
    UncorrectableMemory {
        /// The corrupted physical address.
        pa: PhysAddr,
    },
    /// A kernel invariant that should always hold was violated — the
    /// typed replacement for what used to be a panic site.
    InvariantViolation(&'static str),
    /// The operation needed a domain whose kernel the watchdog has
    /// declared dead.
    DomainDead(DomainId),
    /// A lock operation found its futex poisoned: the holder's domain
    /// died while holding it, and the waiter is woken instead of
    /// blocking forever (the robust-futex `EOWNERDEAD` contract).
    OwnerDied,
    /// A checkpoint artifact could not be decoded or did not match the
    /// running configuration.
    Checkpoint(stramash_sim::checkpoint::CheckpointError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            OsError::Segfault { pid, va } => write!(f, "segmentation fault: {pid} at {va}"),
            OsError::PermissionDenied { pid, va } => {
                write!(f, "permission denied: {pid} writing {va}")
            }
            OsError::Frame(e) => write!(f, "frame allocation failed: {e}"),
            OsError::Map(e) => write!(f, "page-table update failed: {e}"),
            OsError::Vma(e) => write!(f, "vma update failed: {e}"),
            OsError::MigrationUnsupported => f.write_str("this OS cannot migrate across ISAs"),
            OsError::Config(e) => write!(f, "bad configuration: {e}"),
            OsError::Device(e) => write!(f, "device access failed: {e}"),
            OsError::LockTimeout { pid } => {
                write!(f, "cross-ISA lock acquisition timed out for {pid}")
            }
            OsError::UncorrectableMemory { pa } => {
                write!(f, "uncorrectable memory fault at {pa}")
            }
            OsError::InvariantViolation(what) => write!(f, "kernel invariant violated: {what}"),
            OsError::DomainDead(d) => write!(f, "domain {d} was declared dead by the watchdog"),
            OsError::OwnerDied => f.write_str("futex owner died; lock is poisoned"),
            OsError::Checkpoint(e) => write!(f, "checkpoint restore failed: {e}"),
        }
    }
}

impl From<stramash_sim::checkpoint::CheckpointError> for OsError {
    fn from(e: stramash_sim::checkpoint::CheckpointError) -> Self {
        OsError::Checkpoint(e)
    }
}

impl From<DeviceError> for OsError {
    fn from(e: DeviceError) -> Self {
        OsError::Device(e)
    }
}

impl std::error::Error for OsError {}

impl From<FrameError> for OsError {
    fn from(e: FrameError) -> Self {
        OsError::Frame(e)
    }
}

impl From<MapError> for OsError {
    fn from(e: MapError) -> Self {
        OsError::Map(e)
    }
}

impl From<VmaError> for OsError {
    fn from(e: VmaError) -> Self {
        OsError::Vma(e)
    }
}

impl From<ConfigError> for OsError {
    fn from(e: ConfigError) -> Self {
        OsError::Config(e)
    }
}

/// The simulated machine plus OS-neutral kernel state.
#[derive(Debug)]
pub struct BaseSystem {
    /// The coherent memory system (caches, DRAM, snoops).
    pub mem: MemorySystem,
    /// Per-domain icount clocks.
    pub timebase: Timebase,
    /// IPI delivery.
    pub ipi: IpiFabric,
    /// Inter-kernel messaging.
    pub msg: MessagingLayer,
    /// The §7.3 perf+icount session: OS layers record a marker at every
    /// migration so per-phase, per-domain execution can be reported.
    pub perf: stramash_sim::PerfSession,
    /// The two kernel instances.
    pub kernels: [KernelInstance; 2],
    /// Shared MMIO devices (§7.4): all accessible from both instances,
    /// with redirection for the non-owner.
    pub devices: DeviceRegistry,
    /// Start of the global pool arena (after the message rings).
    pub pool_start: PhysAddr,
    /// End of the global pool arena.
    pub pool_end: PhysAddr,
    processes: HashMap<u32, Process>,
    next_pid: u32,
    /// Whether the workload layer's batched ops take their fast path.
    /// With batching off every batched op delegates to the scalar
    /// primitive — the reference execution the golden tests compare
    /// against. Simulated cycles are identical either way.
    batching: bool,
    /// The deterministic fault injector, shared with the messaging layer
    /// and IPI fabric once installed.
    fault_injector: Option<SharedFaultInjector>,
    /// The shared event tracer, wired through every simulated layer once
    /// installed. Emission is passive: it never adds a simulated cycle.
    tracer: Option<SharedTracer>,
    /// Per-domain code region base for instruction-fetch modelling.
    code_base: [PhysAddr; 2],
    /// Modelled code working-set bytes.
    code_bytes: u64,
    /// One modelled I-fetch per this many retired instructions.
    ifetch_interval: u64,
    ip: u64,
    /// Domain-failure detector (inert until armed).
    watchdog: Watchdog,
    /// Deferred-epoch policy. Host-side tuning only — it can never
    /// change simulated cycles — so it is not checkpointed.
    epoch_policy: EpochPolicy,
}

impl BaseSystem {
    /// Boots the platform for `cfg` over the Figure 4 layout.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Config`] if the configuration is inconsistent.
    pub fn new(cfg: SimConfig, boot: &BootConfig) -> Result<Self, OsError> {
        let layout = PhysLayout::paper_default();
        let mem = MemorySystem::with_layout(cfg.clone(), layout.clone())?;
        let BootedPlatform { kernels, msg, ipi, pool_start, pool_end } =
            boot_pair(&cfg, &layout, boot);
        let code_base = [
            layout.private_region(DomainId::X86).start.offset(1 << 20),
            layout.private_region(DomainId::ARM).start.offset(1 << 20),
        ];
        let mut perf = stramash_sim::PerfSession::new();
        let timebase = Timebase::new();
        perf.sample("start", &timebase);
        Ok(BaseSystem {
            mem,
            timebase,
            ipi,
            msg,
            perf,
            kernels,
            devices: DeviceRegistry::paper_platform(),
            pool_start,
            pool_end,
            processes: HashMap::new(),
            next_pid: 1,
            batching: true,
            fault_injector: None,
            tracer: None,
            code_base,
            code_bytes: 32 << 10,
            ifetch_interval: 64,
            ip: 0,
            watchdog: Watchdog::new(),
            epoch_policy: EpochPolicy::from_env(),
        })
    }

    /// Spawns a process on `origin` with an empty address space.
    ///
    /// # Errors
    ///
    /// Propagates frame-allocation failures.
    pub fn spawn(&mut self, origin: DomainId) -> Result<Pid, OsError> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let kernel = &mut self.kernels[origin.index()];
        let pt = PageTable::new(&mut self.mem, &mut kernel.frames, kernel.isa)?;
        // One frame of lock words: VMA lock and the Stramash-PTL live on
        // separate cache lines so cross-ISA CAS traffic does not
        // false-share.
        let lock_frame = kernel.frames.alloc()?;
        self.mem.store_mut().fill(lock_frame, PAGE_SIZE, 0);
        let proc =
            Process::new(pid, origin, pt, lock_frame, lock_frame.offset(64));
        self.processes.insert(pid.0, proc);
        Ok(pid)
    }

    /// Toggles the workload layer's batched fast path (see the
    /// `batching` field). `false` reinstates the scalar reference
    /// execution for comparison runs.
    pub fn set_batching(&mut self, enabled: bool) {
        self.batching = enabled;
    }

    /// Whether batched ops currently take their fast path.
    #[must_use]
    pub fn batching_enabled(&self) -> bool {
        self.batching
    }

    /// Installs a deterministic fault injector, sharing it with the
    /// messaging layer and the IPI fabric so every layer draws from the
    /// same seeded schedule.
    pub fn install_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.msg.set_fault_injector(injector.clone());
        self.ipi.set_fault_injector(injector.clone());
        self.fault_injector = Some(injector);
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.fault_injector.as_ref()
    }

    /// Installs the shared event tracer, wiring it through the memory
    /// system, the messaging layer and the IPI fabric so every layer of
    /// the stack records into the same bounded ring.
    pub fn install_tracer(&mut self, tracer: SharedTracer) {
        self.mem.set_tracer(tracer.clone());
        self.msg.set_tracer(tracer.clone());
        self.ipi.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The installed tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// Records one event into the tracer, if installed.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    /// Records a latency sample into a named registry histogram, if a
    /// tracer is installed.
    #[inline]
    pub fn observe(&self, hist: &'static str, cycles: Cycles) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().metrics_mut().observe(hist, cycles);
        }
    }

    /// Iterates every live process (for the invariant auditors, which
    /// must inspect all address spaces without timing side effects).
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Audits the OS-neutral machine invariants: messaging-ring cursor
    /// sanity and MESI coherence agreement. Design-specific systems
    /// extend this with page-table/ownership checks.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut violations = self.msg.audit();
        violations.extend(self.mem.audit_coherence());
        violations
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] when absent.
    pub fn process(&self, pid: Pid) -> Result<&Process, OsError> {
        self.processes.get(&pid.0).ok_or(OsError::NoSuchProcess(pid))
    }

    /// Mutable process lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] when absent.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, OsError> {
        self.processes.get_mut(&pid.0).ok_or(OsError::NoSuchProcess(pid))
    }

    /// Charges `cycles` of kernel/memory overhead to `domain`'s clock.
    ///
    /// Inside a deferred epoch a zero charge is a *mark*: accesses
    /// issued under the epoch returned zero and their real cost is
    /// re-attached to the next mark at replay, credited to the clock at
    /// the epoch boundary. A non-zero charge is credited immediately
    /// (only its trace position is deferred), so the clock never lags
    /// by more than the accesses since the last mark.
    pub fn charge(&mut self, domain: DomainId, cycles: Cycles) {
        if self.mem.epoch_active() {
            self.timebase.clock_mut(domain).add_memory(cycles);
            self.mem.epoch_note_charge(domain, cycles);
            return;
        }
        self.timebase.clock_mut(domain).add_memory(cycles);
        if cycles.raw() != 0 {
            self.emit(TraceEvent::Charge { domain, cost: cycles });
        }
    }

    /// Retires `insns` instructions on `domain`, modelling periodic
    /// instruction fetches over a small code working set.
    pub fn retire(&mut self, domain: DomainId, insns: u64) {
        if insns != 0 {
            if self.mem.epoch_active() {
                self.mem.epoch_note_retire(domain, insns);
            } else {
                self.emit(TraceEvent::Retire { domain, insns });
            }
        }
        self.timebase.clock_mut(domain).retire(insns);
        self.mem.stats_mut(domain).instructions += insns;
        let fetches = insns / self.ifetch_interval;
        let mut cycles = Cycles::ZERO;
        for _ in 0..fetches {
            let addr = self.code_base[domain.index()].offset(self.ip % self.code_bytes);
            self.ip += 64;
            cycles += self
                .mem
                .access(
                    domain,
                    addr,
                    stramash_mem::Access::Read,
                    stramash_mem::AccessKind::Instruction,
                )
                .cycles;
        }
        self.charge(domain, cycles);
    }

    /// Reads an MMIO device register as `domain`, charging the access
    /// (with §7.4's redirection cost for non-owners) to its clock.
    ///
    /// # Errors
    ///
    /// [`OsError::Device`] for unmapped addresses.
    pub fn mmio_read(&mut self, domain: DomainId, addr: PhysAddr) -> Result<u64, OsError> {
        let (value, cycles) = self.devices.mmio_read(domain, addr)?;
        self.charge(domain, cycles);
        Ok(value)
    }

    /// Writes an MMIO device register as `domain`.
    ///
    /// # Errors
    ///
    /// [`OsError::Device`] for unmapped addresses.
    pub fn mmio_write(&mut self, domain: DomainId, addr: PhysAddr, value: u64) -> Result<(), OsError> {
        let cycles = self.devices.mmio_write(domain, addr, value)?;
        self.charge(domain, cycles);
        Ok(())
    }

    /// Records a perf marker for a migration between domains.
    pub fn record_migration(&mut self, from: DomainId, to: DomainId) {
        debug_assert!(
            !self.mem.epoch_active(),
            "migration is a cross-domain event; suspend or close the epoch first"
        );
        let label = format!("migrate {from}->{to}");
        self.perf.sample(label, &self.timebase);
        self.emit(TraceEvent::Migration { from, to });
    }

    /// Copies each domain's accumulated runtime into its statistics
    /// block (call before printing reports).
    pub fn sync_runtime_stats(&mut self) {
        for d in DomainId::ALL {
            let cycles = self.timebase.clock(d).cycles();
            self.mem.stats_mut(d).runtime = cycles;
        }
    }

    /// Total runtime over both domains (the paper's final-runtime
    /// formula, Artifact Appendix A.5).
    #[must_use]
    pub fn total_runtime(&self) -> Cycles {
        self.timebase.total_runtime()
    }

    // ---- deferred-epoch plumbing ------------------------------------------

    /// The deferred-epoch policy in force.
    #[must_use]
    pub fn epoch_policy(&self) -> EpochPolicy {
        self.epoch_policy
    }

    /// Overrides the deferred-epoch policy (tests and the CLI
    /// `--parallel` flag; the boot default comes from
    /// [`EpochPolicy::from_env`]).
    pub fn set_epoch_policy(&mut self, policy: EpochPolicy) {
        self.epoch_policy = policy;
    }

    /// Opens (or nests into) a deferred epoch, unconditionally. Most
    /// callers want [`OsSystem::epoch_open`], which checks the policy
    /// and the cross-domain horizon first.
    pub fn epoch_enter(&mut self) {
        self.mem
            .epoch_enter(self.epoch_policy.min_lane_entries, self.epoch_policy.wide.allows());
    }

    /// Closes one epoch level; the outermost close replays the log and
    /// credits the deferred cycles to the domain clocks.
    pub fn epoch_exit(&mut self) -> EpochReport {
        let out = self.mem.epoch_exit();
        self.apply_epoch_credit(out.credit);
        out.report
    }

    /// Flushes and deactivates an open epoch so kernel work that emits
    /// events or crosses domains (page-table walks, fault handlers,
    /// messages, shootdowns) runs live. Returns whether an epoch was
    /// actually suspended — pass that to [`BaseSystem::epoch_resume`].
    pub fn epoch_suspend(&mut self) -> bool {
        match self.mem.epoch_suspend() {
            Some(out) => {
                self.apply_epoch_credit(out.credit);
                true
            }
            None => false,
        }
    }

    /// Reactivates deferral after [`BaseSystem::epoch_suspend`] (no-op
    /// when `suspended` is false).
    pub fn epoch_resume(&mut self, suspended: bool) {
        if suspended {
            self.mem.epoch_resume();
        }
    }

    fn apply_epoch_credit(&mut self, credit: [Cycles; 2]) {
        for d in DomainId::ALL {
            let c = credit[d.index()];
            if c.raw() != 0 {
                self.timebase.clock_mut(d).add_memory(c);
            }
        }
    }

    /// The machine-level cross-domain horizon: undelivered message
    /// bytes couple the domains through ring polls and IPIs, and an
    /// armed watchdog exchanges heartbeats on every tick. Designs layer
    /// their own channels on top via [`OsSystem::epoch_horizon`].
    #[must_use]
    pub fn cross_domain_horizon(&self) -> EpochHorizon {
        if self.msg.outstanding_total() != 0 {
            return EpochHorizon::Blocked("undelivered messages");
        }
        if self.watchdog.is_armed() {
            return EpochHorizon::Blocked("armed watchdog");
        }
        EpochHorizon::Clear
    }

    /// Arms the domain watchdog: from now on every
    /// [`BaseSystem::watchdog_tick`] runs a heartbeat round, and a
    /// domain silent for `threshold` consecutive rounds is declared
    /// dead. Disarmed systems pay nothing (see [`crate::watchdog`]).
    pub fn enable_watchdog(&mut self, threshold: u32) {
        self.watchdog.arm(threshold);
    }

    /// The domain-failure detector.
    #[must_use]
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Mutable detector access (the recovery supervisor clears its
    /// flags after a successful restart).
    pub fn watchdog_mut(&mut self) -> &mut Watchdog {
        &mut self.watchdog
    }

    /// Whether `domain`'s kernel is still running (not halted by an
    /// injected fail-stop and not declared dead).
    #[must_use]
    pub fn domain_alive(&self, domain: DomainId) -> bool {
        !self.watchdog.is_halted(domain)
    }

    /// One supervisor step of the failure protocol: fires any injected
    /// fail-stop that is due at `step`, runs the heartbeat round (each
    /// live kernel beacons its peer over the messaging layer), and —
    /// when a domain crosses the missed-beat threshold — declares it
    /// dead and quarantines it. Returns the death report, produced at
    /// most once per crash.
    ///
    /// Quarantine drops the dead domain's unconsumed ring messages and
    /// drains both futex tables: the dead domain's waiters vanish with
    /// it, and survivors queued behind its lock holders are returned in
    /// the report so the OS can wake them with [`OsError::OwnerDied`].
    pub fn watchdog_tick(&mut self, step: u64) -> Option<WatchdogReport> {
        if !self.watchdog.is_armed() {
            return None;
        }
        if let Some(inj) = &self.fault_injector {
            let due = inj.borrow_mut().crash_due(step);
            if let Some(idx) = due {
                let d = if idx == 0 { DomainId::X86 } else { DomainId::ARM };
                self.watchdog.mark_crashed(d);
            }
        }
        let mut beat = [false; 2];
        for d in DomainId::ALL {
            if self.watchdog.is_halted(d) {
                continue;
            }
            beat[d.index()] = true;
            // Beacon the peer; a halted peer never consumes it, so the
            // round is skipped rather than stalling the ring.
            if !self.watchdog.is_halted(d.other()) {
                let hb = Message::control(MsgType::Heartbeat);
                let c_send = self.msg.send(&mut self.mem, &mut self.ipi, d, hb);
                self.charge(d, c_send);
                let c_recv = self.msg.receive(&mut self.mem, d.other(), hb);
                self.charge(d.other(), c_recv);
            }
        }
        let (dead, missed) = self.watchdog.observe(beat)?;
        let dropped_msg_bytes = self.msg.quarantine(dead);
        let mut orphaned_waiters: [Vec<_>; 2] = [Vec::new(), Vec::new()];
        for k in &mut self.kernels {
            orphaned_waiters[k.domain.index()] = k.futexes.drain_domain(dead);
        }
        self.emit(TraceEvent::Watchdog { domain: dead, missed });
        if let Some(t) = &self.tracer {
            t.borrow_mut().metrics_mut().inc(CTR_WATCHDOG_DEATHS);
        }
        Some(WatchdogReport { dead, missed, dropped_msg_bytes, orphaned_waiters })
    }

    /// Serializes every piece of mutable machine state — simulated
    /// memory, clocks, IPI fabric, message rings, perf samples, both
    /// kernels, devices, the process table, the watchdog, and (when
    /// installed) the fault injector's stream positions — into a
    /// checkpoint section. Structure derived from the boot
    /// configuration (layout, transports, namespaces, code regions) is
    /// rebuilt by [`BaseSystem::new`], not stored.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4241_5345); // "BASE"
        self.mem.save_state(e);
        self.timebase.save_state(e);
        self.ipi.save_state(e);
        self.msg.save_state(e);
        self.perf.save_state(e);
        for k in &self.kernels {
            k.save_state(e);
        }
        self.devices.save_state(e);
        let mut pids: Vec<u32> = self.processes.keys().copied().collect();
        pids.sort_unstable();
        e.u64(pids.len() as u64);
        for pid in pids {
            self.processes[&pid].save_state(e);
        }
        e.u32(self.next_pid);
        e.bool(self.batching);
        e.u64(self.ip);
        self.watchdog.save_state(e);
        match &self.fault_injector {
            Some(inj) => {
                e.bool(true);
                inj.borrow().save_state(e);
            }
            None => e.bool(false),
        }
    }

    /// Restores state written by [`BaseSystem::save_state`] into this
    /// freshly booted system. The boot configuration must match the one
    /// the checkpoint was taken under.
    ///
    /// # Errors
    ///
    /// Decoding errors; `ConfigMismatch` when the platform geometry
    /// disagrees with the checkpoint.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4241_5345)?;
        self.mem.load_state(d)?;
        self.timebase.load_state(d)?;
        self.ipi.load_state(d)?;
        self.msg.load_state(d)?;
        self.perf.load_state(d)?;
        for k in &mut self.kernels {
            k.load_state(d)?;
        }
        self.devices.load_state(d)?;
        let n = d.len()?;
        let mut processes = HashMap::with_capacity(n);
        for _ in 0..n {
            let proc = Process::load_state(d)?;
            processes.insert(proc.pid.0, proc);
        }
        self.processes = processes;
        self.next_pid = d.u32()?;
        self.batching = d.bool()?;
        self.ip = d.u64()?;
        self.watchdog.load_state(d)?;
        if d.bool()? {
            let inj = self
                .fault_injector
                .as_ref()
                .ok_or(CheckpointError::Malformed("checkpoint carries injector state but none is installed"))?;
            inj.borrow_mut().restore_state(d)?;
        }
        Ok(())
    }
}

/// Runs a full protocol round-trip over the messaging layer: `from`
/// sends `req`, the peer receives it, spends `handler_cost` servicing
/// it, and answers `resp`. Each side's cycles land on its own clock;
/// the total added is returned.
pub fn protocol_round_trip(
    base: &mut BaseSystem,
    from: DomainId,
    req: crate::msg::Message,
    resp: crate::msg::Message,
    handler_cost: Cycles,
) -> Cycles {
    let to = from.other();
    let mut c_from = base.msg.send(&mut base.mem, &mut base.ipi, from, req);
    let mut c_to = base.msg.receive(&mut base.mem, to, req);
    c_to += handler_cost;
    c_to += base.msg.send(&mut base.mem, &mut base.ipi, to, resp);
    c_from += base.msg.receive(&mut base.mem, from, resp);
    base.charge(from, c_from);
    base.charge(to, c_to);
    let total = c_from + c_to;
    base.observe(HIST_MSG_ROUND_TRIP, total);
    total
}

/// The single source of truth for page-chunk iteration over a process
/// buffer: resolves the executing domain once (it cannot change
/// mid-call — only an explicit migrate does that), translates each
/// page-sized chunk, and hands `(base, domain, pa, done, n)` to `op`,
/// charging whatever cycles it returns. Both the scalar
/// `read_mem`/`write_mem` and any batched transfer share this walk, so
/// chunking semantics cannot drift between them.
fn walk_page_chunks<S: OsSystem + ?Sized>(
    sys: &mut S,
    pid: Pid,
    va: VirtAddr,
    len: usize,
    write: bool,
    op: &mut dyn FnMut(&mut BaseSystem, DomainId, PhysAddr, usize, usize) -> Cycles,
) -> Result<Cycles, OsError> {
    let domain = sys.base().process(pid)?.current;
    let mut total = Cycles::ZERO;
    let mut done = 0usize;
    while done < len {
        let cur = va.offset(done as u64);
        let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
        let n = in_page.min(len - done);
        let (pa, tc) = sys.translate(pid, cur, write)?;
        total += tc;
        let base = sys.base_mut();
        let c = op(base, domain, pa, done, n);
        base.charge(domain, c);
        total += c;
        done += n;
    }
    Ok(total)
}

/// The OS-design abstraction: policy hooks plus provided execution
/// primitives.
pub trait OsSystem {
    /// Shared machine state.
    fn base(&self) -> &BaseSystem;

    /// Mutable shared machine state.
    fn base_mut(&mut self) -> &mut BaseSystem;

    /// Human-readable design name ("vanilla", "popcorn", "stramash").
    fn name(&self) -> &'static str;

    /// Resolves a page fault at `va` (design-specific). Charges its own
    /// costs to the appropriate clocks and returns the total added.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`]/[`OsError::PermissionDenied`] for invalid
    /// accesses, allocation errors otherwise.
    fn handle_fault(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<Cycles, OsError>;

    /// Migrates the process's thread to `to` (design-specific).
    ///
    /// # Errors
    ///
    /// [`OsError::MigrationUnsupported`] for single-kernel designs.
    fn migrate(&mut self, pid: Pid, to: DomainId) -> Result<Cycles, OsError>;

    /// Futex lock executed by a thread of `pid` running on `domain`.
    ///
    /// # Errors
    ///
    /// Translation errors for an unmapped futex word.
    fn futex_lock(&mut self, pid: Pid, domain: DomainId, uaddr: VirtAddr)
        -> Result<Cycles, OsError>;

    /// Futex unlock executed by a thread of `pid` running on `domain`.
    ///
    /// # Errors
    ///
    /// Translation errors for an unmapped futex word.
    fn futex_unlock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError>;

    /// Unmaps the VMA starting at `start`, releasing its pages under the
    /// design's ownership discipline. Returns frames freed per kernel.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`] if no VMA starts at `start`.
    fn munmap(&mut self, pid: Pid, start: VirtAddr) -> Result<[u64; 2], OsError>;

    // ---- provided methods ---------------------------------------------

    /// The domain currently executing `pid`.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`].
    fn current_domain(&self, pid: Pid) -> Result<DomainId, OsError> {
        Ok(self.base().process(pid)?.current)
    }

    /// The design's cross-domain event horizon: [`EpochHorizon::Clear`]
    /// when nothing couples the domains right now. The base answer
    /// covers messages and the watchdog; designs with extra channels
    /// (e.g. Popcorn's DSM replication) override and `and` theirs in.
    fn epoch_horizon(&self) -> EpochHorizon {
        self.base().cross_domain_horizon()
    }

    /// Opens a deferred epoch for a private batch phase — if the policy
    /// enables them, the wide replay is possible on this host, and no
    /// cross-domain channel blocks the horizon. Deferral only ever pays
    /// off through the two-thread boundary replay, so a host where the
    /// policy's [`stramash_sim::WideReplay`] resolves to "never spawn"
    /// (e.g. `Auto` on a single core) skips epochs entirely rather
    /// than paying the log-and-replay overhead for nothing.
    /// Returns whether an epoch opened; call [`OsSystem::epoch_close`]
    /// iff it did.
    fn epoch_open(&mut self) -> bool {
        let policy = self.base().epoch_policy();
        if !policy.enabled || !policy.wide.allows() {
            return false;
        }
        if !self.epoch_horizon().is_clear() {
            return false;
        }
        self.base_mut().epoch_enter();
        true
    }

    /// Closes an epoch opened by [`OsSystem::epoch_open`].
    fn epoch_close(&mut self) -> EpochReport {
        self.base_mut().epoch_exit()
    }

    /// Reserves anonymous VA space.
    ///
    /// # Errors
    ///
    /// VMA bookkeeping errors.
    fn mmap(&mut self, pid: Pid, len: u64, prot: VmaProt) -> Result<VirtAddr, OsError> {
        let proc = self.base_mut().process_mut(pid)?;
        Ok(proc.mmap(len, prot, VmaKind::Anon)?)
    }

    /// Changes the protections of the VMA starting at `start` (whole-VMA
    /// granularity, like [`OsSystem::munmap`]): rewrites the leaf flags
    /// of every present PTE in every existing per-domain page table and
    /// shoots the affected pages out of both TLBs, so a downgraded
    /// mapping can never be reached through a stale cached translation.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`] if no VMA starts at `start`.
    fn mprotect(&mut self, pid: Pid, start: VirtAddr, prot: VmaProt) -> Result<Cycles, OsError> {
        // A protection change is a TLB shootdown: it must run live (and
        // flush any deferred work first) so the generation bump and the
        // invalidate events are ordered before everything that follows
        // — a peer's cached `AccessSession` revalidates against the
        // post-shootdown generation, never a stale one.
        let suspended = self.base_mut().epoch_suspend();
        let res = self.mprotect_inner(pid, start, prot);
        self.base_mut().epoch_resume(suspended);
        res
    }

    /// The body of [`OsSystem::mprotect`]; runs with any deferred epoch
    /// suspended.
    #[doc(hidden)]
    fn mprotect_inner(&mut self, pid: Pid, start: VirtAddr, prot: VmaProt) -> Result<Cycles, OsError> {
        let (domain, vma) = {
            let proc = self.base_mut().process_mut(pid)?;
            let domain = proc.current;
            let mut vma =
                proc.vmas.remove(start).ok_or(OsError::Segfault { pid, va: start })?;
            vma.prot = prot;
            proc.vmas.insert(vma)?;
            (domain, vma)
        };
        let mut flags = PteFlags::user_data();
        flags.writable = prot.write;
        let mut total = Cycles::ZERO;
        for d in DomainId::ALL {
            let Some(pt) = self.base().process(pid)?.page_table(d).copied() else {
                continue;
            };
            for p in 0..vma.pages() {
                let base = self.base_mut();
                let (_, c) = pt.protect(&mut base.mem, domain, start.offset(p * PAGE_SIZE), flags, true);
                base.charge(domain, c);
                total += c;
            }
        }
        {
            let proc = self.base_mut().process_mut(pid)?;
            for d in DomainId::ALL {
                for p in 0..vma.pages() {
                    proc.tlb_mut(d).invalidate(start.offset(p * PAGE_SIZE));
                }
            }
        }
        let base = self.base();
        for d in DomainId::ALL {
            for p in 0..vma.pages() {
                base.emit(TraceEvent::TlbInvalidate {
                    domain: d,
                    va: start.offset(p * PAGE_SIZE).raw(),
                });
            }
        }
        Ok(total)
    }

    /// Translates `va` for an access, faulting once if needed. Returns
    /// the physical address and the translation cycles charged.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`] if the fault handler cannot map the page.
    fn translate(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        write: bool,
    ) -> Result<(PhysAddr, Cycles), OsError> {
        let (domain, tlb_hit) = {
            let proc = self.base_mut().process_mut(pid)?;
            let domain = proc.current;
            let hit = proc.tlb_mut(domain).lookup(va).filter(|(_, f)| !write || f.writable);
            (domain, hit)
        };
        if let Some((page_pa, _)) = tlb_hit {
            self.base_mut().mem.note_tlb_hit(domain);
            return Ok((page_pa.offset(va.page_offset()), Cycles::ZERO));
        }
        self.base_mut().mem.note_tlb_miss(domain);
        // The miss path walks page tables and may run a fault handler
        // that allocates, messages the peer, or shoots down TLBs — all
        // of which emit events directly and may couple the domains.
        // Suspend any deferred epoch so it runs live, in order.
        let suspended = self.base_mut().epoch_suspend();
        let res = self.translate_miss(pid, va, write, domain);
        self.base_mut().epoch_resume(suspended);
        res
    }

    /// The miss path of [`OsSystem::translate`]; runs with any deferred
    /// epoch suspended.
    #[doc(hidden)]
    fn translate_miss(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        write: bool,
        domain: DomainId,
    ) -> Result<(PhysAddr, Cycles), OsError> {
        let mut total = Cycles::ZERO;
        for attempt in 0..2 {
            let pt = {
                let proc = self.base().process(pid)?;
                proc.page_table(domain).copied()
            };
            if let Some(pt) = pt {
                let base = self.base_mut();
                let (res, cycles) = pt.walk(&mut base.mem, domain, va);
                base.charge(domain, cycles);
                total += cycles;
                if let Some((pa, flags)) = res {
                    if !write || flags.writable {
                        let proc = base.process_mut(pid)?;
                        proc.tlb_mut(domain).insert(va, pa.align_down(PAGE_SIZE), flags);
                        return Ok((pa, total));
                    }
                }
            }
            if attempt == 0 {
                let fault_cost = self.handle_fault(pid, va, write)?;
                total += fault_cost;
                let base = self.base();
                base.emit(TraceEvent::PageFault { domain, va: va.raw(), write, cost: fault_cost });
                base.observe(HIST_FAULT_SERVICE, fault_cost);
            }
        }
        Err(OsError::Segfault { pid, va })
    }

    /// Revalidates a batch's [`AccessSession`] against the process's
    /// current domain and TLB generation: one process-table probe per
    /// batch instead of one per element. Returns the executing domain.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`].
    fn session_begin(&mut self, session: &mut AccessSession) -> Result<DomainId, OsError> {
        let proc = self.base().process(session.pid())?;
        Ok(session.revalidate(proc))
    }

    /// Translates `va` through a validated session. A session hit is
    /// exactly a (zero-cycle) scalar TLB hit — the session only ever
    /// holds copies of live TLB entries, and [`OsSystem::session_begin`]
    /// dropped it if any invalidation happened since — so the TLB
    /// hit/miss statistics come out identical to per-element
    /// [`OsSystem::translate`] calls. A miss falls back to `translate`
    /// (counted, timed, may fault) and then adopts the fresh TLB entry,
    /// resyncing first in case the fault path invalidated translations.
    ///
    /// # Errors
    ///
    /// As [`OsSystem::translate`].
    fn session_translate(
        &mut self,
        session: &mut AccessSession,
        va: VirtAddr,
        write: bool,
    ) -> Result<(PhysAddr, Cycles), OsError> {
        if let Some(pa) = session.lookup(va, write) {
            let domain = session.domain();
            self.base_mut().mem.note_tlb_hit(domain);
            return Ok((pa, Cycles::ZERO));
        }
        let pid = session.pid();
        let (pa, cycles) = self.translate(pid, va, write)?;
        let proc = self.base().process(pid)?;
        let domain = session.revalidate(proc);
        if let Some((page_pa, flags)) = proc.tlb(domain).peek(va) {
            session.insert(va, page_pa, flags.writable);
        }
        Ok((pa, cycles))
    }

    /// Reads `buf.len()` bytes from the process's address space,
    /// charging translation and memory-system costs to its domain.
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn read_mem(&mut self, pid: Pid, va: VirtAddr, buf: &mut [u8]) -> Result<Cycles, OsError> {
        let len = buf.len();
        walk_page_chunks(self, pid, va, len, false, &mut |base, domain, pa, done, n| {
            base.mem.read_bytes(domain, pa, &mut buf[done..done + n])
        })
    }

    /// Writes bytes into the process's address space.
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn write_mem(&mut self, pid: Pid, va: VirtAddr, data: &[u8]) -> Result<Cycles, OsError> {
        walk_page_chunks(self, pid, va, data.len(), true, &mut |base, domain, pa, done, n| {
            base.mem.write_bytes(domain, pa, &data[done..done + n])
        })
    }

    /// Loads a `u64` (assumed not to straddle a page).
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn load_u64(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, OsError> {
        let domain = self.base().process(pid)?.current;
        let (pa, _) = self.translate(pid, va, false)?;
        let base = self.base_mut();
        let (v, c) = base.mem.read_u64(domain, pa);
        base.charge(domain, c);
        Ok(v)
    }

    /// Stores a `u64`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn store_u64(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), OsError> {
        let domain = self.base().process(pid)?.current;
        let (pa, _) = self.translate(pid, va, true)?;
        let base = self.base_mut();
        let c = base.mem.write_u64(domain, pa, value);
        base.charge(domain, c);
        Ok(())
    }

    /// Loads an `f64`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn load_f64(&mut self, pid: Pid, va: VirtAddr) -> Result<f64, OsError> {
        Ok(f64::from_bits(self.load_u64(pid, va)?))
    }

    /// Stores an `f64`.
    ///
    /// # Errors
    ///
    /// Translation errors.
    fn store_f64(&mut self, pid: Pid, va: VirtAddr, value: f64) -> Result<(), OsError> {
        self.store_u64(pid, va, value.to_bits())
    }

    /// Retires `insns` compute instructions on the process's current
    /// domain.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`].
    fn exec(&mut self, pid: Pid, insns: u64) -> Result<(), OsError> {
        let domain = self.current_domain(pid)?;
        self.base_mut().retire(domain, insns);
        Ok(())
    }

    /// Total runtime so far (both domains).
    fn runtime(&self) -> Cycles {
        self.base().total_runtime()
    }
}

/// Single-kernel baseline: the application runs where it started and
/// never migrates (the "Vanilla" case of §9.2.1).
#[derive(Debug)]
pub struct VanillaSystem {
    base: BaseSystem,
}

impl VanillaSystem {
    /// Boots a vanilla system.
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn new(cfg: SimConfig) -> Result<Self, OsError> {
        Ok(VanillaSystem { base: BaseSystem::new(cfg, &BootConfig::paper_default())? })
    }

    /// Spawns a process on `origin`.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn spawn(&mut self, origin: DomainId) -> Result<Pid, OsError> {
        self.base.spawn(origin)
    }
}

impl OsSystem for VanillaSystem {
    fn base(&self) -> &BaseSystem {
        &self.base
    }

    fn base_mut(&mut self) -> &mut BaseSystem {
        &mut self.base
    }

    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn handle_fault(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<Cycles, OsError> {
        let (domain, prot) = {
            let proc = self.base.process(pid)?;
            let vma = proc.vmas.find(va).ok_or(OsError::Segfault { pid, va })?;
            (proc.current, vma.prot)
        };
        if write && !prot.write {
            return Err(OsError::PermissionDenied { pid, va });
        }
        let frame = self.base.kernels[domain.index()].frames.alloc()?;
        self.base.mem.store_mut().fill(frame, PAGE_SIZE, 0);
        let pt = self
            .base
            .process(pid)?
            .page_table(domain)
            .copied()
            .ok_or(OsError::InvariantViolation("origin kernel lost its page table"))?;
        let mut flags = PteFlags::user_data();
        flags.writable = prot.write;
        let cycles = pt.map(
            &mut self.base.mem,
            &mut self.base.kernels[domain.index()].frames,
            domain,
            va.page_base(),
            frame,
            flags,
            true,
        )? + FAULT_TRAP_COST;
        self.base.kernels[domain.index()].counters.local_faults += 1;
        self.base.charge(domain, cycles);
        Ok(cycles)
    }

    fn migrate(&mut self, _pid: Pid, _to: DomainId) -> Result<Cycles, OsError> {
        Err(OsError::MigrationUnsupported)
    }

    fn futex_lock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        // Local-only fast path: CAS on the futex word.
        let (pa, _) = self.translate(pid, uaddr, true)?;
        let penalty = self.base.kernels[domain.index()].atomics.rmw_penalty();
        let (_, c) = self.base.mem.cas_u64(domain, pa, 0, 1, penalty);
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        self.base.charge(domain, c);
        self.base.emit(TraceEvent::Futex { domain, op: FutexOp::Acquire, va: uaddr.raw() });
        Ok(c)
    }

    fn futex_unlock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        let (pa, _) = self.translate(pid, uaddr, true)?;
        let c = self.base.mem.write_u64(domain, pa, 0);
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        self.base.charge(domain, c);
        Ok(c)
    }

    fn munmap(&mut self, pid: Pid, start: VirtAddr) -> Result<[u64; 2], OsError> {
        let (domain, vma) = {
            let proc = self.base.process_mut(pid)?;
            let vma = proc.vmas.remove(start).ok_or(OsError::Segfault { pid, va: start })?;
            (proc.current, vma)
        };
        let pt = self
            .base
            .process(pid)?
            .page_table(domain)
            .copied()
            .ok_or(OsError::InvariantViolation("origin kernel lost its page table"))?;
        let mut freed = [0u64; 2];
        for p in 0..vma.pages() {
            let va = start.offset(p * PAGE_SIZE);
            let (old, c) = pt.unmap(&mut self.base.mem, domain, va, true);
            self.base.charge(domain, c);
            if let Some(frame) = old {
                self.base.kernels[domain.index()].frames.free(frame)?;
                freed[domain.index()] += 1;
            }
            self.base.process_mut(pid)?.tlb_mut(domain).invalidate(va);
            self.base.emit(TraceEvent::TlbInvalidate { domain, va: va.raw() });
        }
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::HardwareModel;

    fn vanilla() -> (VanillaSystem, Pid) {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = VanillaSystem::new(cfg).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        (sys, pid)
    }

    #[test]
    fn spawn_and_mmap() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        assert_eq!(va.raw(), crate::process::MMAP_BASE);
        assert_eq!(sys.current_domain(pid).unwrap(), DomainId::X86);
        assert_eq!(sys.name(), "vanilla");
    }

    #[test]
    fn demand_paging_on_first_touch() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 16 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 0xfeed).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 0xfeed);
        assert_eq!(sys.base().kernels[0].counters.local_faults, 1);
        // Second page faults separately.
        sys.store_u64(pid, va.offset(PAGE_SIZE), 1).unwrap();
        assert_eq!(sys.base().kernels[0].counters.local_faults, 2);
        assert!(sys.runtime().raw() > 0);
    }

    #[test]
    fn unmapped_access_segfaults() {
        let (mut sys, pid) = vanilla();
        let err = sys.load_u64(pid, VirtAddr::new(0xdead_0000)).unwrap_err();
        assert!(matches!(err, OsError::Segfault { .. }));
    }

    #[test]
    fn write_to_read_only_vma_denied() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 4096, VmaProt::ro()).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 0, "read of RO page is fine");
        let err = sys.store_u64(pid, va, 1).unwrap_err();
        assert!(matches!(err, OsError::PermissionDenied { .. }));
    }

    #[test]
    fn vanilla_cannot_migrate() {
        let (mut sys, pid) = vanilla();
        assert_eq!(sys.migrate(pid, DomainId::ARM).unwrap_err(), OsError::MigrationUnsupported);
    }

    #[test]
    fn bulk_read_write_roundtrip() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        sys.write_mem(pid, va.offset(100), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        sys.read_mem(pid, va.offset(100), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn float_roundtrip() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_f64(pid, va, 3.25).unwrap();
        assert_eq!(sys.load_f64(pid, va).unwrap(), 3.25);
    }

    #[test]
    fn exec_advances_clock_and_models_ifetch() {
        let (mut sys, pid) = vanilla();
        sys.exec(pid, 10_000).unwrap();
        let clock = sys.base().timebase.clock(DomainId::X86);
        assert_eq!(clock.icount(), 10_000);
        assert!(clock.memory_cycles().raw() > 0, "ifetches cost memory cycles");
        let s = sys.base().mem.stats(DomainId::X86);
        assert_eq!(s.instructions, 10_000);
        assert!(s.l1i.accesses > 0);
    }

    #[test]
    fn translation_caches_in_tlb() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        let before = sys.base().mem.stats(DomainId::X86).mem_accesses;
        // Repeated access to the same page: no more walks.
        for i in 1..10 {
            sys.store_u64(pid, va.offset(8 * i), i).unwrap();
        }
        let walked = sys.base().mem.stats(DomainId::X86).mem_accesses - before;
        assert_eq!(walked, 9, "only the data accesses, no PT walks");
    }

    #[test]
    fn futex_lock_unlock_local() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.futex_lock(pid, DomainId::X86, va).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 1, "lock word set");
        sys.futex_unlock(pid, DomainId::X86, va).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 0);
        assert_eq!(sys.base().kernels[0].counters.futex_ops, 2);
    }

    #[test]
    fn sync_runtime_stats_populates_report() {
        let (mut sys, pid) = vanilla();
        sys.exec(pid, 1000).unwrap();
        sys.base_mut().sync_runtime_stats();
        assert!(sys.base().mem.stats(DomainId::X86).runtime.raw() >= 1000);
    }

    #[test]
    fn mmio_access_through_base_system() {
        let (mut sys, _) = vanilla();
        // The NIC lives at the start of the 3–4 GB hole (x86-owned).
        let nic = PhysAddr::new(3 << 30);
        sys.base_mut().mmio_write(DomainId::X86, nic, 0xD00D).unwrap();
        let t0 = sys.base().timebase.clock(DomainId::ARM).cycles();
        let v = sys.base_mut().mmio_read(DomainId::ARM, nic).unwrap();
        assert_eq!(v, 0xD00D);
        let cost = sys.base().timebase.clock(DomainId::ARM).cycles() - t0;
        assert!(cost.raw() > 500, "redirected MMIO pays forwarding: {cost}");
        assert!(matches!(
            sys.base_mut().mmio_read(DomainId::X86, PhysAddr::new(0x10)),
            Err(OsError::Device(_))
        ));
    }

    #[test]
    fn os_error_display() {
        let e = OsError::Segfault { pid: Pid(1), va: VirtAddr::new(0x10) };
        assert!(e.to_string().contains("segmentation fault"));
        assert!(!OsError::MigrationUnsupported.to_string().is_empty());
        assert!(OsError::LockTimeout { pid: Pid(3) }.to_string().contains("timed out"));
        assert!(OsError::UncorrectableMemory { pa: PhysAddr::new(0x40) }
            .to_string()
            .contains("uncorrectable"));
        assert!(OsError::InvariantViolation("x").to_string().contains("invariant"));
    }

    #[test]
    fn base_audit_clean_after_workload() {
        let (mut sys, pid) = vanilla();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        for i in 0..16 {
            sys.store_u64(pid, va.offset(i * 512), i).unwrap();
        }
        assert!(sys.base().audit().is_empty());
    }

    #[test]
    fn installed_injector_is_shared_with_msg_and_ipi() {
        let (mut sys, pid) = vanilla();
        let inj = stramash_sim::shared_injector(
            stramash_sim::FaultPlan::none().with_ipi_loss(1.0),
            42,
        );
        sys.base_mut().install_fault_injector(inj.clone());
        assert!(sys.base().fault_injector().is_some());
        // Any IPI now draws from the shared schedule and recovers.
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        let base = sys.base_mut();
        let c = base.ipi.send(DomainId::X86);
        base.charge(DomainId::X86, c);
        assert!(inj.borrow().counters().recovered > 0, "lost IPIs were retried");
    }
}
