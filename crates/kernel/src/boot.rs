//! Booting the kernel pair (§6.1).
//!
//! "Stramash-Linux will discover all memory and devices, but initialize
//! only a minimal set of those … At the time of writing, we limit the
//! area usable by each kernel instance using BIOS tables/device trees.
//! The OS reads the memory map tables provided by the firmware and
//! adjusts its boundaries based on that. Thus, kernel instances' memory
//! areas do not overlap."
//!
//! The boot layer partitions the Figure 4 layout: each kernel's frame
//! allocator receives its private region (minus a kernel-image reserve),
//! the first 128 MB of the shared pool becomes the message rings (§8.2),
//! and the rest of the pool stays in the global free pool for the §6.3
//! allocator to hand out.

use crate::kernel::KernelInstance;
use crate::msg::{MessagingLayer, Transport};
use crate::namespace::fused_cpu_list;
use stramash_mem::{PhysAddr, PhysLayout};
use stramash_sim::ipi::IpiFabric;
use stramash_sim::{DomainId, SimConfig};

/// Boot-time partitioning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootConfig {
    /// Bytes reserved at the start of each private region for the kernel
    /// image, static data and early allocations.
    pub kernel_reserve: u64,
    /// Size of the message-ring area carved from the start of the pool
    /// (§8.2 uses a 128 MB shared-memory message layer).
    pub msg_ring_bytes: u64,
    /// Messaging transport.
    pub transport: Transport,
}

impl BootConfig {
    /// The paper's configuration: 128 MB rings, SHM transport with IPIs.
    #[must_use]
    pub fn paper_default() -> Self {
        BootConfig {
            kernel_reserve: 64 << 20,
            msg_ring_bytes: 128 << 20,
            transport: Transport::Shm { notify: stramash_sim::ipi::NotifyMode::Interrupt },
        }
    }

    /// Same, but with the TCP transport (Popcorn-TCP baseline).
    #[must_use]
    pub fn tcp() -> Self {
        BootConfig { transport: Transport::Tcp, ..Self::paper_default() }
    }
}

/// Everything the boot sequence produces.
#[derive(Debug)]
pub struct BootedPlatform {
    /// The two kernel instances (indexed by domain).
    pub kernels: [KernelInstance; 2],
    /// The messaging layer connecting them.
    pub msg: MessagingLayer,
    /// The IPI fabric.
    pub ipi: IpiFabric,
    /// First pool byte *after* the message rings — the global
    /// allocator's arena.
    pub pool_start: PhysAddr,
    /// One past the last pool byte.
    pub pool_end: PhysAddr,
}

/// Boots both kernels over `layout` and establishes the communication
/// channel ("Once the boot is complete, kernel instances establish a
/// communication channel to coordinate", §6.1).
///
/// # Panics
///
/// Panics if the layout regions overlap or are too small for the
/// requested reserves — a mis-partitioned firmware table is a
/// configuration bug, not a runtime condition.
#[must_use]
pub fn boot_pair(cfg: &SimConfig, layout: &PhysLayout, boot: &BootConfig) -> BootedPlatform {
    assert!(layout.is_disjoint(), "firmware memory map must not overlap (§6.1)");
    let mut kernels = [KernelInstance::new(DomainId::X86), KernelInstance::new(DomainId::ARM)];

    for k in &mut kernels {
        let region = layout.private_region(k.domain);
        assert!(
            region.len > boot.kernel_reserve,
            "private region smaller than the kernel reserve"
        );
        k.frames
            .add_region(region.start.offset(boot.kernel_reserve), region.len - boot.kernel_reserve)
            .expect("boot regions are aligned and disjoint");
    }

    // Fuse the namespaces and CPU topology (§6.6).
    let cpus = fused_cpu_list(52, 64);
    kernels[0].namespaces.set_cpus(cpus);
    let x86_ns = kernels[0].namespaces.clone();
    kernels[1].namespaces.fuse_with(&x86_ns);

    // Message rings at the start of the pool: local to x86 / remote to
    // Arm under Separated, remote-shared under Shared, local under
    // Fully Shared — exactly the §8.2 placements.
    let pool = layout.pool_region(DomainId::X86);
    let ring_len = boot.msg_ring_bytes / 2;
    let ring_base = [pool.start, pool.start.offset(ring_len)];
    let msg = MessagingLayer::new(boot.transport, ring_base, ring_len, cfg.tcp_rtt)
        .expect("boot ring configuration is validated by the firmware map");
    let ipi = IpiFabric::new(cfg.ipi_latency);

    let pool_end = layout.pool_region(DomainId::ARM).end();
    BootedPlatform {
        kernels,
        msg,
        ipi,
        pool_start: pool.start.offset(boot.msg_ring_bytes),
        pool_end,
    }
}

/// One stage of a kernel instance's boot sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootStage {
    /// Stage name.
    pub name: &'static str,
    /// Cycles the stage takes on each domain.
    pub cycles: [u64; 2],
}

/// The §6.1/§7 boot timing model: both QEMU instances boot **in
/// parallel** (a Stramash-QEMU mechanism), then rendezvous to establish
/// the communication channel. Under §5's *Minimal Resource
/// Provisioning*, each kernel initialises only its private memory —
/// discovery covers everything, initialisation does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootTimeline {
    stages: Vec<BootStage>,
}

impl BootTimeline {
    /// Derives the timeline from the platform configuration.
    #[must_use]
    pub fn model(cfg: &SimConfig, layout: &PhysLayout, boot: &BootConfig) -> Self {
        // Firmware/BIOS table parsing: fixed per kernel.
        let firmware = BootStage { name: "firmware tables", cycles: [180_000, 150_000] };
        // Discovery walks the full memory map (§5: "all resources are
        // discovered ... at boot") — proportional to region count, not
        // size.
        let regions = layout.regions().len() as u64;
        let discovery =
            BootStage { name: "resource discovery", cycles: [regions * 40_000; 2] };
        // Initialisation touches only the kernel's PRIVATE memory
        // (struct-page setup ~ cycles per frame).
        let init = DomainId::ALL.map(|d| {
            // One cycle per frame of batched struct-page initialisation.
            (layout.private_region(d).len - boot.kernel_reserve) / 4096
        });
        let init = BootStage { name: "minimal memory init", cycles: init };
        // Channel establishment: ring setup + IPI handshake (§6.1
        // "kernel instances establish a communication channel").
        let ipi = cfg.ipi_latency.raw();
        let channel = BootStage { name: "channel handshake", cycles: [ipi * 2 + 50_000; 2] };
        BootTimeline { stages: vec![firmware, discovery, init, channel] }
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[BootStage] {
        &self.stages
    }

    /// Boot-to-ready time with **parallel bootup** (both instances boot
    /// concurrently; each stage gates on the slower instance).
    #[must_use]
    pub fn parallel_cycles(&self) -> u64 {
        self.stages.iter().map(|s| *s.cycles.iter().max().expect("two domains")).sum()
    }

    /// Boot-to-ready time if the instances booted serially (the naive
    /// alternative the fused simulator avoids).
    #[must_use]
    pub fn serial_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles.iter().sum::<u64>()).sum()
    }

    /// What full (non-minimal) provisioning would cost: initialising
    /// the whole machine's memory on every kernel instead of only the
    /// private region — quantifies §5's *Minimal Resource Provisioning*.
    #[must_use]
    pub fn full_provisioning_cycles(&self, layout: &PhysLayout) -> u64 {
        let all_frames: u64 = layout.regions().iter().map(|r| r.len / 4096).sum();
        let extra = all_frames;
        self.stages
            .iter()
            .map(|s| {
                if s.name == "minimal memory init" {
                    extra
                } else {
                    *s.cycles.iter().max().expect("two domains")
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_assigns_disjoint_private_memory() {
        let cfg = SimConfig::big_pair();
        let layout = PhysLayout::paper_default();
        let p = boot_pair(&cfg, &layout, &BootConfig::paper_default());
        let x = &p.kernels[0].frames;
        let a = &p.kernels[1].frames;
        // 1.5 GB private minus 64 MB reserve each.
        let expect = ((3u64 << 29) - (64 << 20)) / 4096;
        assert_eq!(x.total_frames(), expect);
        assert_eq!(a.total_frames(), expect);
        // Neither kernel owns the other's memory.
        assert!(!x.owns(PhysAddr::new(2 << 30)));
        assert!(!a.owns(PhysAddr::new(0x10_0000 + (64 << 20))));
    }

    #[test]
    fn boot_fuses_namespaces() {
        let cfg = SimConfig::big_pair();
        let p = boot_pair(&cfg, &PhysLayout::paper_default(), &BootConfig::paper_default());
        assert!(p.kernels[0].namespaces.is_fused_with(&p.kernels[1].namespaces));
        assert_eq!(p.kernels[1].namespaces.cpus().len(), 116);
    }

    #[test]
    fn pool_arena_excludes_rings() {
        let cfg = SimConfig::big_pair();
        let p = boot_pair(&cfg, &PhysLayout::paper_default(), &BootConfig::paper_default());
        assert_eq!(p.pool_start.raw(), (4u64 << 30) + (128 << 20));
        assert_eq!(p.pool_end.raw(), 8u64 << 30);
    }

    #[test]
    fn parallel_bootup_beats_serial() {
        let cfg = SimConfig::big_pair();
        let layout = PhysLayout::paper_default();
        let t = BootTimeline::model(&cfg, &layout, &BootConfig::paper_default());
        assert_eq!(t.stages().len(), 4);
        assert!(
            t.parallel_cycles() < t.serial_cycles(),
            "fused parallel bootup must beat serial bring-up"
        );
        // Roughly 2x: the two instances overlap almost completely.
        let ratio = t.serial_cycles() as f64 / t.parallel_cycles() as f64;
        assert!((1.5..2.1).contains(&ratio), "overlap ratio {ratio:.2}");
    }

    #[test]
    fn minimal_provisioning_pays_off_at_boot() {
        // §5: initialising only the private memory beats initialising
        // the whole 8 GB machine on every kernel.
        let cfg = SimConfig::big_pair();
        let layout = PhysLayout::paper_default();
        let t = BootTimeline::model(&cfg, &layout, &BootConfig::paper_default());
        assert!(
            t.full_provisioning_cycles(&layout) > 2 * t.parallel_cycles(),
            "full provisioning should cost far more than minimal"
        );
    }

    #[test]
    fn tcp_boot_config() {
        let cfg = SimConfig::big_pair();
        let p = boot_pair(&cfg, &PhysLayout::paper_default(), &BootConfig::tcp());
        assert_eq!(p.msg.transport(), Transport::Tcp);
    }
}
