//! Minimal/secure kernel-level data sharing via data packing (§5, §6).
//!
//! "Kernel instances should share only required data structures.
//! Everything else should be in private memory or protected by hardware
//! enforcement … we also propose to pack data structures' data in
//! contiguous physical memory — so it is simple to categorize and share
//! between kernels." §6 adds: "we did implement support for data packing
//! in contiguous physical memory — including moving pages to reorganize
//! data".
//!
//! [`PackedRegion`] is that mechanism: a kernel registers data
//! structures with a sharing class, the packer segregates them into
//! contiguous *shared* and *private* physical areas (moving pages if a
//! structure was first allocated on the wrong side), and an enforcement
//! check verifies the invariant a hardware MPU/IOMMU window would rely
//! on: no private byte inside the shared window.

use crate::addr::PAGE_SIZE;
use std::fmt;
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::{Cycles, DomainId};

/// Sharing classification of a kernel data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingClass {
    /// Required by the fused mechanisms; must live in the shared window
    /// (page tables, futex lists, VMA locks, message rings).
    Shared,
    /// Everything else; must stay outside the shared window.
    Private,
}

/// A registered kernel data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedObject {
    /// Opaque identifier supplied by the kernel.
    pub tag: u64,
    /// Current physical placement.
    pub addr: PhysAddr,
    /// Size in bytes.
    pub len: u64,
    /// Sharing class.
    pub class: SharingClass,
}

/// Errors from the packer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackingError {
    /// The destination window is full.
    WindowFull(SharingClass),
    /// An object spans outside its class's window after packing — the
    /// enforcement invariant would be violated.
    Misplaced {
        /// The offending object's tag.
        tag: u64,
    },
    /// The requested length overflows the 64-bit address arithmetic
    /// (alignment rounding or cursor advance would wrap).
    LengthOverflow {
        /// The requested object length in bytes.
        len: u64,
    },
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::WindowFull(class) => write!(f, "{class:?} packing window is full"),
            PackingError::Misplaced { tag } => {
                write!(f, "object {tag} is outside its class window")
            }
            PackingError::LengthOverflow { len } => {
                write!(f, "object length {len} overflows the packing arithmetic")
            }
        }
    }
}

impl std::error::Error for PackingError {}

/// One kernel's packer: two contiguous physical windows and the objects
/// placed in them.
#[derive(Debug)]
pub struct PackedRegion {
    owner: DomainId,
    shared_base: PhysAddr,
    shared_len: u64,
    shared_cursor: u64,
    private_base: PhysAddr,
    private_len: u64,
    private_cursor: u64,
    objects: Vec<PackedObject>,
    pages_moved: u64,
}

impl PackedRegion {
    /// Creates a packer with the kernel's shared and private windows
    /// (both page-aligned, carved by the boot layer).
    #[must_use]
    pub fn new(
        owner: DomainId,
        shared_base: PhysAddr,
        shared_len: u64,
        private_base: PhysAddr,
        private_len: u64,
    ) -> Self {
        assert!(shared_base.is_aligned(PAGE_SIZE) && private_base.is_aligned(PAGE_SIZE));
        PackedRegion {
            owner,
            shared_base,
            shared_len,
            shared_cursor: 0,
            private_base,
            private_len,
            private_cursor: 0,
            objects: Vec::new(),
            pages_moved: 0,
        }
    }

    /// The shared window `(base, len)` — what an MPU/IOMMU entry or a
    /// CXL-IDE region would be programmed with.
    #[must_use]
    pub fn shared_window(&self) -> (PhysAddr, u64) {
        (self.shared_base, self.shared_len)
    }

    /// Pages physically moved so far to reorganise data (§6).
    #[must_use]
    pub fn pages_moved(&self) -> u64 {
        self.pages_moved
    }

    /// Registered objects.
    #[must_use]
    pub fn objects(&self) -> &[PackedObject] {
        &self.objects
    }

    /// Places a new structure directly in its class's window.
    ///
    /// # Errors
    ///
    /// [`PackingError::WindowFull`].
    pub fn place(
        &mut self,
        tag: u64,
        len: u64,
        class: SharingClass,
    ) -> Result<PhysAddr, PackingError> {
        let addr = self.reserve(len, class)?;
        self.objects.push(PackedObject { tag, addr, len, class });
        Ok(addr)
    }

    /// Adopts a structure that already lives at `addr` (e.g. allocated
    /// before classification). If it sits on the wrong side, its pages
    /// are **moved** into the right window through the memory system —
    /// the timed copy is the §6 "moving pages to reorganize data" cost.
    ///
    /// # Errors
    ///
    /// [`PackingError::WindowFull`].
    pub fn adopt(
        &mut self,
        mem: &mut MemorySystem,
        tag: u64,
        addr: PhysAddr,
        len: u64,
        class: SharingClass,
    ) -> Result<(PhysAddr, Cycles), PackingError> {
        if self.in_window(addr, len, class) {
            self.objects.push(PackedObject { tag, addr, len, class });
            return Ok((addr, Cycles::ZERO));
        }
        let dst = self.reserve(len, class)?;
        let cycles = mem.copy_bytes(self.owner, addr, dst, len);
        self.pages_moved = self.pages_moved.saturating_add(len.div_ceil(PAGE_SIZE));
        self.objects.push(PackedObject { tag, addr: dst, len, class });
        Ok((dst, cycles))
    }

    /// Verifies the hardware-enforcement invariant: every shared object
    /// inside the shared window, every private object outside it.
    ///
    /// # Errors
    ///
    /// [`PackingError::Misplaced`] with the first offender.
    pub fn verify_isolation(&self) -> Result<(), PackingError> {
        for o in &self.objects {
            let inside = self.in_window(o.addr, o.len, SharingClass::Shared);
            let ok = match o.class {
                SharingClass::Shared => inside,
                SharingClass::Private => !self.overlaps_shared(o.addr, o.len),
            };
            if !ok {
                return Err(PackingError::Misplaced { tag: o.tag });
            }
        }
        Ok(())
    }

    fn reserve(&mut self, len: u64, class: SharingClass) -> Result<PhysAddr, PackingError> {
        let aligned = len
            .div_ceil(64)
            .checked_mul(64)
            .ok_or(PackingError::LengthOverflow { len })?;
        let (base, cap, cursor) = match class {
            SharingClass::Shared => (self.shared_base, self.shared_len, &mut self.shared_cursor),
            SharingClass::Private => {
                (self.private_base, self.private_len, &mut self.private_cursor)
            }
        };
        let end = cursor
            .checked_add(aligned)
            .ok_or(PackingError::LengthOverflow { len })?;
        if end > cap {
            return Err(PackingError::WindowFull(class));
        }
        let addr = base.offset(*cursor);
        *cursor = end;
        Ok(addr)
    }

    fn in_window(&self, addr: PhysAddr, len: u64, class: SharingClass) -> bool {
        let (base, cap) = match class {
            SharingClass::Shared => (self.shared_base, self.shared_len),
            SharingClass::Private => (self.private_base, self.private_len),
        };
        // Subtraction form: `addr + len <= base + cap` wraps for lengths
        // or addresses near u64::MAX, silently admitting objects that
        // hang off the end of the window.
        addr.raw() >= base.raw() && len <= cap && addr.raw() - base.raw() <= cap - len
    }

    fn overlaps_shared(&self, addr: PhysAddr, len: u64) -> bool {
        let base = self.shared_base.raw();
        // `[addr, addr+len)` meets `[base, base+cap)` — written so neither
        // end computation can wrap.
        let below_window_end = addr.raw() < base || addr.raw() - base < self.shared_len;
        let above_window_start = base < addr.raw() || base - addr.raw() < len;
        below_window_end && above_window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::SimConfig;

    fn packer() -> PackedRegion {
        PackedRegion::new(
            DomainId::X86,
            PhysAddr::new(0x40_0000),
            1 << 20,
            PhysAddr::new(0x80_0000),
            1 << 20,
        )
    }

    #[test]
    fn place_segregates_by_class() {
        let mut p = packer();
        let shared = p.place(1, 4096, SharingClass::Shared).unwrap();
        let private = p.place(2, 4096, SharingClass::Private).unwrap();
        assert!(shared.raw() >= 0x40_0000 && shared.raw() < 0x50_0000);
        assert!(private.raw() >= 0x80_0000);
        p.verify_isolation().unwrap();
        assert_eq!(p.objects().len(), 2);
    }

    #[test]
    fn adopt_moves_misplaced_pages() {
        let cfg = SimConfig::big_pair();
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut p = packer();
        // A "futex list" allocated in random private memory, then
        // classified as shared: it must be moved into the window, with
        // its contents intact.
        let stray = PhysAddr::new(0x90_0000);
        mem.store_mut().write_u64(stray, 0xf00d);
        let (new_addr, cycles) =
            p.adopt(&mut mem, 7, stray, 8192, SharingClass::Shared).unwrap();
        assert_ne!(new_addr, stray);
        assert!(cycles.raw() > 0, "the move is a timed copy");
        assert_eq!(p.pages_moved(), 2);
        assert_eq!(mem.store().read_u64(new_addr), 0xf00d);
        p.verify_isolation().unwrap();
    }

    #[test]
    fn adopt_in_place_when_already_correct() {
        let cfg = SimConfig::big_pair();
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut p = packer();
        let inside = PhysAddr::new(0x40_0000 + 4096);
        // Reserve past it so nothing else lands there.
        p.place(1, 8192, SharingClass::Shared).unwrap();
        let (addr, cycles) = p.adopt(&mut mem, 2, inside, 1024, SharingClass::Shared).unwrap();
        assert_eq!(addr, inside);
        assert_eq!(cycles, Cycles::ZERO);
        assert_eq!(p.pages_moved(), 0);
    }

    #[test]
    fn window_exhaustion() {
        let mut p = PackedRegion::new(
            DomainId::ARM,
            PhysAddr::new(0x1000),
            4096,
            PhysAddr::new(0x10_000),
            4096,
        );
        p.place(1, 4096, SharingClass::Shared).unwrap();
        assert_eq!(
            p.place(2, 64, SharingClass::Shared),
            Err(PackingError::WindowFull(SharingClass::Shared))
        );
        // The private window is unaffected.
        p.place(3, 64, SharingClass::Private).unwrap();
    }

    #[test]
    fn isolation_violation_detected() {
        let mut p = packer();
        // Forge a private object inside the shared window (as a buggy
        // kernel subsystem might).
        p.objects.push(PackedObject {
            tag: 99,
            addr: PhysAddr::new(0x40_0000),
            len: 64,
            class: SharingClass::Private,
        });
        assert_eq!(p.verify_isolation(), Err(PackingError::Misplaced { tag: 99 }));
    }

    #[test]
    fn error_display() {
        assert!(!PackingError::WindowFull(SharingClass::Shared).to_string().is_empty());
        assert!(!PackingError::Misplaced { tag: 3 }.to_string().is_empty());
        assert!(!PackingError::LengthOverflow { len: u64::MAX }.to_string().is_empty());
    }

    #[test]
    fn huge_length_is_rejected_not_wrapped() {
        let mut p = packer();
        // Alignment rounding of u64::MAX wraps past 2^64; before the
        // checked arithmetic this either panicked (debug) or reserved a
        // tiny region (release).
        assert_eq!(
            p.place(1, u64::MAX, SharingClass::Shared),
            Err(PackingError::LengthOverflow { len: u64::MAX })
        );
        // A length that survives alignment but not the cursor bound is a
        // plain WindowFull, not a wrap to success.
        assert_eq!(
            p.place(2, u64::MAX - 63, SharingClass::Shared),
            Err(PackingError::WindowFull(SharingClass::Shared))
        );
        assert!(p.objects().is_empty());
    }

    #[test]
    fn isolation_check_is_overflow_safe_near_address_top() {
        let mut p = packer();
        // A private object whose end would wrap past u64::MAX. The old
        // `addr + len` comparisons overflowed here; it must simply be
        // "not in the shared window" and "not overlapping" it.
        p.objects.push(PackedObject {
            tag: 1,
            addr: PhysAddr::new(u64::MAX - 32),
            len: 64,
            class: SharingClass::Private,
        });
        p.verify_isolation().unwrap();
        // The same object claimed as Shared must be caught as misplaced
        // rather than wrapping into the window bounds check.
        p.objects[0].class = SharingClass::Shared;
        assert_eq!(p.verify_isolation(), Err(PackingError::Misplaced { tag: 1 }));
    }

    #[test]
    fn object_ending_exactly_at_window_end_is_inside() {
        let cfg = SimConfig::big_pair();
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut p = packer();
        let tail = PhysAddr::new(0x40_0000 + (1 << 20) - 64);
        let (addr, cycles) = p.adopt(&mut mem, 5, tail, 64, SharingClass::Shared).unwrap();
        assert_eq!(addr, tail, "exact-fit tail object must not be copied");
        assert_eq!(cycles, Cycles::ZERO);
        // One byte further hangs off the end and must be moved.
        let (moved, _) = p.adopt(&mut mem, 6, tail, 65, SharingClass::Shared).unwrap();
        assert_ne!(moved, tail);
        p.verify_isolation().unwrap();
    }
}
