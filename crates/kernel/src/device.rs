//! Shared MMIO devices (§3, §7.4).
//!
//! The hardware model makes "all MMIO devices accessible by all
//! processors"; Stramash-QEMU realises this by creating a memory mapping
//! for a device an instance lacks, "redirect\[ing\] all memory accesses to
//! the QEMU instance containing the respective device" (§7.4). This
//! module models that: a registry of devices, each physically attached
//! to one domain, with register accesses from the other domain paying a
//! forwarding cost over the interconnect.

use std::collections::HashMap;
use std::fmt;
use stramash_mem::PhysAddr;
use stramash_sim::{Cycles, DomainId};

/// Identifier of a registered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub u32);

/// Classes of devices the platform exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// The NIC (used by the TCP messaging baseline and the KV store).
    Nic,
    /// A block device.
    Block,
    /// The interrupt-routing peripheral that carries cross-ISA IPIs
    /// (§7.2 routes native IPIs through a peripheral device).
    IpiBridge,
    /// A UART console.
    Console,
}

/// One MMIO device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Registry id.
    pub id: DeviceId,
    /// Device class.
    pub class: DeviceClass,
    /// The domain whose instance physically hosts the device.
    pub owner: DomainId,
    /// Base of its MMIO window.
    pub mmio_base: PhysAddr,
    /// Window length in bytes.
    pub mmio_len: u64,
}

impl Device {
    /// Whether `addr` falls inside this device's window.
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.raw() >= self.mmio_base.raw() && addr.raw() < self.mmio_base.raw() + self.mmio_len
    }
}

/// Errors from device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// No device maps the address.
    NoDevice(PhysAddr),
    /// The MMIO window collides with an existing device.
    WindowOverlap,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoDevice(pa) => write!(f, "no device mapped at {pa}"),
            DeviceError::WindowOverlap => f.write_str("MMIO window overlaps an existing device"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Latency of an uncached MMIO register access on the owning instance.
const LOCAL_MMIO_COST: u64 = 120;
/// Additional forwarding latency when the access is redirected to the
/// other instance (§7.4) — a posted transaction over the interconnect.
const FORWARD_COST: u64 = 900;

/// The platform's device registry.
///
/// # Examples
///
/// ```
/// use stramash_kernel::device::DeviceRegistry;
/// use stramash_mem::PhysAddr;
/// use stramash_sim::DomainId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut devices = DeviceRegistry::paper_platform();
/// let nic = PhysAddr::new(3 << 30); // x86-owned, in the PCI hole
/// devices.mmio_write(DomainId::X86, nic, 0x1)?;
/// // §7.4: the Arm instance's access is redirected to the x86 one.
/// let (value, cost) = devices.mmio_read(DomainId::ARM, nic)?;
/// assert_eq!(value, 0x1);
/// assert!(cost.raw() > 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
    /// Device register backing state (registers really hold values).
    regs: HashMap<u64, u64>,
    /// Accesses forwarded across instances, per requesting domain.
    forwarded: [u64; 2],
    next_id: u32,
}

impl DeviceRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// The paper platform's device set: the NIC and IPI bridge attached
    /// to the x86 instance, a console on the Arm instance, with MMIO
    /// windows in the 3–4 GB hole of the Figure 4 layout.
    #[must_use]
    pub fn paper_platform() -> Self {
        let mut r = DeviceRegistry::new();
        let hole = 3u64 << 30;
        r.register(DeviceClass::Nic, DomainId::X86, PhysAddr::new(hole), 64 << 10)
            .expect("fresh registry");
        r.register(DeviceClass::IpiBridge, DomainId::X86, PhysAddr::new(hole + (1 << 20)), 4096)
            .expect("fresh registry");
        r.register(DeviceClass::Block, DomainId::X86, PhysAddr::new(hole + (2 << 20)), 16 << 10)
            .expect("fresh registry");
        r.register(DeviceClass::Console, DomainId::ARM, PhysAddr::new(hole + (3 << 20)), 4096)
            .expect("fresh registry");
        r
    }

    /// Registers a device.
    ///
    /// # Errors
    ///
    /// [`DeviceError::WindowOverlap`] when windows collide.
    pub fn register(
        &mut self,
        class: DeviceClass,
        owner: DomainId,
        mmio_base: PhysAddr,
        mmio_len: u64,
    ) -> Result<DeviceId, DeviceError> {
        for d in &self.devices {
            if mmio_base.raw() < d.mmio_base.raw() + d.mmio_len
                && d.mmio_base.raw() < mmio_base.raw() + mmio_len
            {
                return Err(DeviceError::WindowOverlap);
            }
        }
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.devices.push(Device { id, class, owner, mmio_base, mmio_len });
        Ok(id)
    }

    /// All registered devices — "each kernel always knows about those"
    /// (§5: resources are discovered globally even when not provisioned).
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device mapping `addr`, if any.
    #[must_use]
    pub fn device_at(&self, addr: PhysAddr) -> Option<&Device> {
        self.devices.iter().find(|d| d.contains(addr))
    }

    /// Accesses by `domain` that were forwarded to the peer instance.
    #[must_use]
    pub fn forwarded_from(&self, domain: DomainId) -> u64 {
        self.forwarded[domain.index()]
    }

    /// Reads a device register as `from`.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoDevice`] for unmapped addresses.
    pub fn mmio_read(&mut self, from: DomainId, addr: PhysAddr) -> Result<(u64, Cycles), DeviceError> {
        let owner = self.device_at(addr).ok_or(DeviceError::NoDevice(addr))?.owner;
        let cost = self.access_cost(from, owner);
        Ok((self.regs.get(&addr.raw()).copied().unwrap_or(0), cost))
    }

    /// Writes a device register as `from`.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoDevice`] for unmapped addresses.
    pub fn mmio_write(
        &mut self,
        from: DomainId,
        addr: PhysAddr,
        value: u64,
    ) -> Result<Cycles, DeviceError> {
        let owner = self.device_at(addr).ok_or(DeviceError::NoDevice(addr))?.owner;
        let cost = self.access_cost(from, owner);
        self.regs.insert(addr.raw(), value);
        Ok(cost)
    }

    fn access_cost(&mut self, from: DomainId, owner: DomainId) -> Cycles {
        if from == owner {
            Cycles::new(LOCAL_MMIO_COST)
        } else {
            self.forwarded[from.index()] += 1;
            Cycles::new(LOCAL_MMIO_COST + FORWARD_COST)
        }
    }

    /// Serializes the registry's mutable state (register values in
    /// address order, forwarding counters) into a checkpoint section.
    /// The device list itself is platform configuration and is rebuilt,
    /// not restored.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4445_5653); // "DEVS"
        let mut addrs: Vec<u64> = self.regs.keys().copied().collect();
        addrs.sort_unstable();
        e.u64(addrs.len() as u64);
        for a in addrs {
            e.u64(a);
            e.u64(self.regs[&a]);
        }
        e.u64s(&self.forwarded);
    }

    /// Restores state written by [`DeviceRegistry::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4445_5653)?;
        let n = d.len()?;
        let mut regs = HashMap::with_capacity(n);
        for _ in 0..n {
            let a = d.u64()?;
            regs.insert(a, d.u64()?);
        }
        self.regs = regs;
        self.forwarded = d
            .u64s()?
            .try_into()
            .map_err(|_| CheckpointError::Malformed("expected a per-domain pair"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_devices() {
        let r = DeviceRegistry::paper_platform();
        assert_eq!(r.devices().len(), 4);
        assert!(r.devices().iter().any(|d| d.class == DeviceClass::Nic));
        // Windows live in the 3–4 GB hole, outside every DRAM region.
        let layout = stramash_mem::PhysLayout::paper_default();
        for d in r.devices() {
            assert!(layout.region_of(d.mmio_base).is_none(), "{:?} must sit in the hole", d.class);
        }
    }

    #[test]
    fn registers_hold_values_for_both_domains() {
        let mut r = DeviceRegistry::paper_platform();
        let nic = PhysAddr::new(3 << 30);
        r.mmio_write(DomainId::X86, nic, 0x55).unwrap();
        // §7.4: the Arm instance lacks the NIC; its access is redirected
        // and sees the same register state.
        let (v, _) = r.mmio_read(DomainId::ARM, nic).unwrap();
        assert_eq!(v, 0x55);
    }

    #[test]
    fn remote_access_pays_forwarding() {
        let mut r = DeviceRegistry::paper_platform();
        let nic = PhysAddr::new(3 << 30);
        let local = r.mmio_write(DomainId::X86, nic, 1).unwrap();
        let remote = r.mmio_write(DomainId::ARM, nic, 2).unwrap();
        assert!(remote > local, "redirected access must cost more: {remote} vs {local}");
        assert_eq!(r.forwarded_from(DomainId::ARM), 1);
        assert_eq!(r.forwarded_from(DomainId::X86), 0);
    }

    #[test]
    fn unmapped_address_errors() {
        let mut r = DeviceRegistry::paper_platform();
        let err = r.mmio_read(DomainId::X86, PhysAddr::new(0x1000)).unwrap_err();
        assert!(matches!(err, DeviceError::NoDevice(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn window_overlap_rejected() {
        let mut r = DeviceRegistry::paper_platform();
        let err = r
            .register(DeviceClass::Block, DomainId::ARM, PhysAddr::new(3 << 30), 4096)
            .unwrap_err();
        assert_eq!(err, DeviceError::WindowOverlap);
        // Disjoint is fine.
        r.register(DeviceClass::Block, DomainId::ARM, PhysAddr::new((3u64 << 30) + (8 << 20)), 4096)
            .unwrap();
    }

    #[test]
    fn console_is_arm_owned() {
        let mut r = DeviceRegistry::paper_platform();
        let console = PhysAddr::new((3u64 << 30) + (3 << 20));
        let arm = r.mmio_write(DomainId::ARM, console, b'S' as u64).unwrap();
        let x86 = r.mmio_write(DomainId::X86, console, b'!' as u64).unwrap();
        assert!(x86 > arm);
    }
}
