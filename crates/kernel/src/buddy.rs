//! A binary buddy allocator — the engine behind each kernel's physical
//! frame allocation, as in Linux (whose buddy/LRU lists the §6.3 hotplug
//! offline path walks). It also provides the *contiguous* multi-page
//! allocations that §5's data packing relies on ("pack data structures'
//! data in contiguous physical memory").

use crate::addr::PAGE_SIZE;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Largest block order (2¹⁰ pages = 4 MiB), matching Linux's MAX_ORDER
/// neighbourhood.
pub const MAX_ORDER: u32 = 10;

/// Errors from the buddy allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuddyError {
    /// No free block of the requested (or any larger) order.
    OutOfMemory {
        /// The order that could not be satisfied.
        order: u32,
    },
    /// The order exceeds [`MAX_ORDER`].
    OrderTooLarge(u32),
    /// The address was not allocated by this allocator.
    NotAllocated,
}

impl fmt::Display for BuddyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuddyError::OutOfMemory { order } => {
                write!(f, "no free block of order {order} or above")
            }
            BuddyError::OrderTooLarge(o) => write!(f, "order {o} exceeds MAX_ORDER"),
            BuddyError::NotAllocated => f.write_str("address was not allocated here"),
        }
    }
}

impl std::error::Error for BuddyError {}

/// A binary buddy allocator over one physical region.
///
/// # Examples
///
/// ```
/// use stramash_kernel::buddy::BuddyAllocator;
/// use stramash_mem::PhysAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buddy = BuddyAllocator::new(PhysAddr::new(0x10_0000), 1 << 20);
/// let a = buddy.alloc(0)?; // one 4 KiB frame
/// let b = buddy.alloc(4)?; // 16 contiguous frames (64 KiB)
/// assert!(b.is_aligned(16 * 4096), "buddy blocks are naturally aligned");
/// buddy.free(a)?;
/// buddy.free(b)?;
/// assert_eq!(buddy.allocated_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    total_pages: u64,
    /// Free blocks per order, as page indices relative to `base`.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated block order per starting page index.
    allocated: HashMap<u64, u32>,
    allocated_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics unless `base` and `len` are page-aligned and `len > 0`.
    #[must_use]
    pub fn new(base: stramash_mem::PhysAddr, len: u64) -> Self {
        assert!(base.is_aligned(PAGE_SIZE), "buddy base must be page-aligned");
        assert!(len > 0 && len.is_multiple_of(PAGE_SIZE), "buddy length must be whole pages");
        let total_pages = len / PAGE_SIZE;
        let mut a = BuddyAllocator {
            base: base.raw(),
            total_pages,
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            allocated: HashMap::new(),
            allocated_pages: 0,
        };
        // Greedy seeding: carve the region into naturally aligned
        // power-of-two blocks (alignment relative to the region base).
        let mut idx = 0;
        while idx < total_pages {
            let align_order = if idx == 0 { MAX_ORDER } else { idx.trailing_zeros().min(MAX_ORDER) };
            let fit_order = (63 - (total_pages - idx).leading_zeros()).min(MAX_ORDER);
            let order = align_order.min(fit_order);
            a.free_lists[order as usize].insert(idx);
            idx += 1 << order;
        }
        a
    }

    /// Total pages managed.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages currently allocated.
    #[must_use]
    pub fn allocated_pages(&self) -> u64 {
        self.allocated_pages
    }

    /// Whether `pa` lies inside this allocator's region.
    #[must_use]
    pub fn contains(&self, pa: stramash_mem::PhysAddr) -> bool {
        pa.raw() >= self.base && pa.raw() < self.base + self.total_pages * PAGE_SIZE
    }

    /// Allocates a naturally aligned block of `2^order` pages.
    ///
    /// # Errors
    ///
    /// [`BuddyError::OrderTooLarge`] or [`BuddyError::OutOfMemory`].
    pub fn alloc(&mut self, order: u32) -> Result<stramash_mem::PhysAddr, BuddyError> {
        if order > MAX_ORDER {
            return Err(BuddyError::OrderTooLarge(order));
        }
        // Find the smallest order with a free block.
        let mut from = order;
        while from <= MAX_ORDER && self.free_lists[from as usize].is_empty() {
            from += 1;
        }
        if from > MAX_ORDER {
            return Err(BuddyError::OutOfMemory { order });
        }
        let idx = *self.free_lists[from as usize].iter().next().expect("non-empty");
        self.free_lists[from as usize].remove(&idx);
        // Split down to the requested order, freeing the upper halves.
        let mut cur = from;
        while cur > order {
            cur -= 1;
            let buddy = idx + (1 << cur);
            self.free_lists[cur as usize].insert(buddy);
        }
        self.allocated.insert(idx, order);
        self.allocated_pages += 1 << order;
        Ok(stramash_mem::PhysAddr::new(self.base + idx * PAGE_SIZE))
    }

    /// Frees a previously allocated block, coalescing with free buddies.
    ///
    /// # Errors
    ///
    /// [`BuddyError::NotAllocated`] if `pa` is not a live allocation.
    pub fn free(&mut self, pa: stramash_mem::PhysAddr) -> Result<(), BuddyError> {
        if !self.contains(pa) || !pa.is_aligned(PAGE_SIZE) {
            return Err(BuddyError::NotAllocated);
        }
        let mut idx = (pa.raw() - self.base) / PAGE_SIZE;
        let mut order = self.allocated.remove(&idx).ok_or(BuddyError::NotAllocated)?;
        self.allocated_pages -= 1 << order;
        // Coalesce while the buddy is free at the same order.
        while order < MAX_ORDER {
            let buddy = idx ^ (1 << order);
            if buddy + (1 << order) > self.total_pages
                || !self.free_lists[order as usize].remove(&buddy)
            {
                break;
            }
            idx = idx.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(idx);
        Ok(())
    }

    /// The number of free blocks at each order (diagnostics; the §6.3
    /// offline path inspects exactly these lists).
    #[must_use]
    pub fn free_list_lengths(&self) -> Vec<usize> {
        self.free_lists.iter().map(BTreeSet::len).collect()
    }

    /// Verifies conservation and disjointness (for tests): allocated +
    /// free pages equals the total, and no two live blocks overlap.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn assert_invariants(&self) {
        let free_pages: u64 = self
            .free_lists
            .iter()
            .enumerate()
            .map(|(o, l)| (l.len() as u64) << o)
            .sum();
        assert_eq!(
            free_pages + self.allocated_pages,
            self.total_pages,
            "pages must be conserved"
        );
        // Disjointness: collect every block (free + allocated) and check
        // for overlaps.
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (o, list) in self.free_lists.iter().enumerate() {
            for &idx in list {
                blocks.push((idx, 1u64 << o));
            }
        }
        for (&idx, &o) in &self.allocated {
            blocks.push((idx, 1u64 << o));
        }
        blocks.sort_unstable();
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "blocks overlap: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        let covered: u64 = blocks.iter().map(|&(_, l)| l).sum();
        assert_eq!(covered, self.total_pages, "blocks must tile the region");
    }

    /// Serializes the allocator's mutable state (free lists, allocated
    /// map, allocation count) into a checkpoint section. `BTreeSet` and
    /// the sorted allocated map give a canonical byte stream.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4244_4459); // "BDDY"
        e.u64(self.base);
        e.u64(self.total_pages);
        for list in &self.free_lists {
            let v: Vec<u64> = list.iter().copied().collect();
            e.u64s(&v);
        }
        let mut allocs: Vec<(u64, u32)> = self.allocated.iter().map(|(&i, &o)| (i, o)).collect();
        allocs.sort_unstable();
        e.u64(allocs.len() as u64);
        for (idx, order) in allocs {
            e.u64(idx);
            e.u32(order);
        }
        e.u64(self.allocated_pages);
    }

    /// Restores mutable state written by [`BuddyAllocator::save_state`]
    /// into this allocator.
    ///
    /// # Errors
    ///
    /// Decoding errors; `ConfigMismatch` if the section was written for
    /// a region with a different base or size.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4244_4459)?;
        if d.u64()? != self.base || d.u64()? != self.total_pages {
            return Err(CheckpointError::ConfigMismatch);
        }
        let mut free_lists = Vec::with_capacity((MAX_ORDER + 1) as usize);
        for _ in 0..=MAX_ORDER {
            free_lists.push(d.u64s()?.into_iter().collect::<BTreeSet<u64>>());
        }
        let n = d.len()?;
        let mut allocated = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = d.u64()?;
            let order = d.u32()?;
            if order > MAX_ORDER || idx >= self.total_pages {
                return Err(CheckpointError::Malformed("buddy allocation out of range"));
            }
            allocated.insert(idx, order);
        }
        self.free_lists = free_lists;
        self.allocated = allocated;
        self.allocated_pages = d.u64()?;
        Ok(())
    }
}

/// The smallest order whose block covers `pages` pages.
#[must_use]
pub fn order_for_pages(pages: u64) -> u32 {
    pages.next_power_of_two().trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_mem::PhysAddr;
    use stramash_sim::rng::SimRng;

    fn buddy(pages: u64) -> BuddyAllocator {
        BuddyAllocator::new(PhysAddr::new(0x40_0000), pages * PAGE_SIZE)
    }

    #[test]
    fn single_frame_alloc_free() {
        let mut b = buddy(16);
        let f = b.alloc(0).unwrap();
        assert!(b.contains(f));
        assert_eq!(b.allocated_pages(), 1);
        b.free(f).unwrap();
        assert_eq!(b.allocated_pages(), 0);
        b.assert_invariants();
        // After freeing everything, coalescing restores one big block.
        assert_eq!(b.free_list_lengths()[4], 1);
    }

    #[test]
    fn natural_alignment() {
        let mut b = buddy(64);
        for order in 0..=5u32 {
            let blk = b.alloc(order).unwrap();
            assert!(
                blk.is_aligned((1 << order) * PAGE_SIZE),
                "order-{order} block must be naturally aligned"
            );
            b.assert_invariants();
        }
    }

    #[test]
    fn split_and_coalesce_roundtrip() {
        let mut b = buddy(8);
        let blocks: Vec<_> = (0..8).map(|_| b.alloc(0).unwrap()).collect();
        assert_eq!(b.allocated_pages(), 8);
        assert!(matches!(b.alloc(0), Err(BuddyError::OutOfMemory { .. })));
        for blk in &blocks {
            b.free(*blk).unwrap();
        }
        b.assert_invariants();
        // Fully coalesced: a single order-3 block again.
        assert_eq!(b.free_list_lengths()[3], 1);
        assert!(b.alloc(3).is_ok());
    }

    #[test]
    fn double_free_and_foreign_free_rejected() {
        let mut b = buddy(8);
        let f = b.alloc(0).unwrap();
        b.free(f).unwrap();
        assert_eq!(b.free(f), Err(BuddyError::NotAllocated));
        assert_eq!(b.free(PhysAddr::new(0x9999_0000)), Err(BuddyError::NotAllocated));
        assert_eq!(b.alloc(MAX_ORDER + 1), Err(BuddyError::OrderTooLarge(MAX_ORDER + 1)));
    }

    #[test]
    fn non_power_of_two_regions_fully_usable() {
        // 13 pages: seeds 8 + 4 + 1.
        let mut b = buddy(13);
        b.assert_invariants();
        let mut got = 0;
        while b.alloc(0).is_ok() {
            got += 1;
        }
        assert_eq!(got, 13, "every page must be allocatable");
    }

    #[test]
    fn order_for_pages_helper() {
        assert_eq!(order_for_pages(1), 0);
        assert_eq!(order_for_pages(2), 1);
        assert_eq!(order_for_pages(3), 2);
        assert_eq!(order_for_pages(16), 4);
        assert_eq!(order_for_pages(17), 5);
    }

    #[test]
    fn randomized_against_model() {
        let mut rng = SimRng::new(0xBDD7);
        let mut b = buddy(256);
        let mut live: Vec<(PhysAddr, u32)> = Vec::new();
        for step in 0..5_000u32 {
            if rng.gen_range(2) == 0 || live.is_empty() {
                let order = rng.gen_range(4) as u32;
                if let Ok(blk) = b.alloc(order) {
                    // No overlap with any live block.
                    for &(other, oo) in &live {
                        let a0 = blk.raw();
                        let a1 = a0 + (PAGE_SIZE << order);
                        let b0 = other.raw();
                        let b1 = b0 + (PAGE_SIZE << oo);
                        assert!(a1 <= b0 || b1 <= a0, "overlap at step {step}");
                    }
                    live.push((blk, order));
                }
            } else {
                let i = rng.gen_range(live.len() as u64) as usize;
                let (blk, _) = live.swap_remove(i);
                b.free(blk).unwrap();
            }
            if step % 256 == 0 {
                b.assert_invariants();
            }
        }
        for (blk, _) in live {
            b.free(blk).unwrap();
        }
        b.assert_invariants();
        assert_eq!(b.allocated_pages(), 0);
    }
}
