//! OS kernel substrate for the Stramash reproduction.
//!
//! Everything a monolithic kernel needs and both OS designs share,
//! running over the simulated machine of [`stramash_mem`]:
//!
//! * [`addr`] / [`frame`] — virtual addresses and per-kernel physical
//!   frame allocation (§5 *Minimal Resource Provisioning*),
//! * [`pagetable`] — per-ISA page tables stored in simulated physical
//!   memory, so remote walks pay real remote-memory latencies (§6.4),
//! * [`vma`] — ordered VMA trees (§6.4),
//! * [`futex`] — futex tables with cross-domain waiters (§6.5),
//! * [`msg`] — the ring-buffer + IPI messaging layer and the TCP
//!   baseline transport (§6.2, §8.2),
//! * [`namespace`] — fused namespaces (§6.6),
//! * [`boot`] — the §6.1 boot partitioning over the Figure 4 layout,
//! * [`process`] — migratable processes with per-domain page tables and
//!   software TLBs,
//! * [`system`] — [`BaseSystem`], the [`OsSystem`] trait that Popcorn
//!   and Stramash implement, and the single-kernel [`VanillaSystem`]
//!   baseline.
//!
//! # Example
//!
//! ```
//! use stramash_kernel::system::{OsSystem, VanillaSystem};
//! use stramash_kernel::vma::VmaProt;
//! use stramash_sim::{DomainId, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = VanillaSystem::new(SimConfig::big_pair())?;
//! let pid = sys.spawn(DomainId::X86)?;
//! let buf = sys.mmap(pid, 4096, VmaProt::rw())?;
//! sys.store_u64(pid, buf, 42)?; // demand-paged on first touch
//! assert_eq!(sys.load_u64(pid, buf)?, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod boot;
pub mod buddy;
pub mod device;
pub mod frame;
pub mod futex;
pub mod kernel;
pub mod msg;
pub mod namespace;
pub mod packing;
pub mod pagetable;
pub mod process;
pub mod rbtree;
pub mod session;
pub mod system;
pub mod vma;
pub mod watchdog;

pub use addr::{VirtAddr, PAGE_SIZE};
pub use boot::{boot_pair, BootConfig, BootStage, BootTimeline, BootedPlatform};
pub use buddy::{BuddyAllocator, BuddyError};
pub use device::{Device, DeviceClass, DeviceError, DeviceId, DeviceRegistry};
pub use frame::{FrameAllocator, FrameError};
pub use futex::{FutexTable, ThreadId, Waiter};
pub use kernel::{KernelCounters, KernelInstance};
pub use msg::{Message, MessagingLayer, MsgCounters, MsgType, Transport};
pub use packing::{PackedRegion, PackingError, SharingClass};
pub use pagetable::{MapError, PageTable};
pub use process::{Pid, Process, SoftTlb};
pub use rbtree::{RbTree, RbTreeError};
pub use session::AccessSession;
pub use system::{BaseSystem, OsError, OsSystem, VanillaSystem};
pub use vma::{Vma, VmaKind, VmaProt, VmaTree};
pub use watchdog::{Watchdog, WatchdogReport};
