//! Multi-level page tables stored *in simulated physical memory*.
//!
//! Table frames live in the owning kernel's memory and every timed walk
//! or update goes through the [`MemorySystem`], so a **software remote
//! page table walk** (§6.4) automatically pays remote-memory and
//! coherence costs: the walker domain reads five entries that physically
//! reside in the origin kernel's DRAM.

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::frame::{FrameAllocator, FrameError};
use std::fmt;
use stramash_isa::pte::{decode_table_entry, encode_table_entry};
use stramash_isa::{IsaKind, PteFlags, RawPte};
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::{Cycles, DomainId};

/// Errors from page-table mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page already has a present leaf entry.
    AlreadyMapped(VirtAddr),
    /// A required intermediate table is missing (PTE-level insertion
    /// only — the §9.2.3 condition that forces an origin-handled fault).
    MissingTable {
        /// The level whose table was absent (0 = root's child).
        level: u8,
    },
    /// The frame allocator could not supply a table frame.
    Frame(FrameError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped(va) => write!(f, "virtual page {va} is already mapped"),
            MapError::MissingTable { level } => {
                write!(f, "intermediate table missing at level {level}")
            }
            MapError::Frame(e) => write!(f, "table frame allocation failed: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<FrameError> for MapError {
    fn from(e: FrameError) -> Self {
        MapError::Frame(e)
    }
}

/// A per-kernel, per-process page table in one ISA's format.
///
/// # Examples
///
/// ```
/// use stramash_isa::{IsaKind, PteFlags};
/// use stramash_kernel::addr::VirtAddr;
/// use stramash_kernel::{FrameAllocator, PageTable};
/// use stramash_mem::{MemorySystem, PhysAddr};
/// use stramash_sim::{DomainId, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(SimConfig::big_pair())?;
/// let mut frames = FrameAllocator::new();
/// frames.add_region(PhysAddr::new(64 << 20), 1 << 20)?;
/// let pt = PageTable::new(&mut mem, &mut frames, IsaKind::Aarch64)?;
/// let va = VirtAddr::new(0x4000_0000);
/// pt.map(&mut mem, &mut frames, DomainId::ARM, va, PhysAddr::new(0x70_0000),
///        PteFlags::user_data(), false)?;
/// // A software walk — by EITHER domain (§6.4's remote walker).
/// let (hit, _cycles) = pt.walk(&mut mem, DomainId::X86, va);
/// assert_eq!(hit.unwrap().0, PhysAddr::new(0x70_0000));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    isa: IsaKind,
    root: PhysAddr,
}

impl PageTable {
    /// Allocates an empty (zeroed) root table from `frames`.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError`] if no frame is available.
    pub fn new(
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        isa: IsaKind,
    ) -> Result<Self, FrameError> {
        let root = frames.alloc()?;
        mem.store_mut().fill(root, PAGE_SIZE, 0);
        Ok(PageTable { isa, root })
    }

    /// Rebinds a handle to an existing root table — the restore path:
    /// the table *contents* live in (already-restored) simulated memory,
    /// so a checkpointed page table is just this pair.
    #[must_use]
    pub fn from_existing(isa: IsaKind, root: PhysAddr) -> Self {
        PageTable { isa, root }
    }

    /// The table's ISA format.
    #[must_use]
    pub fn isa(&self) -> IsaKind {
        self.isa
    }

    /// Physical address of the root table.
    #[must_use]
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// Timed software walk performed by `walker` (which may be the
    /// *other* domain — the remote walker of §6.4). Returns the
    /// translation, if present, and the cycles spent reading entries.
    pub fn walk(
        &self,
        mem: &mut MemorySystem,
        walker: DomainId,
        va: VirtAddr,
    ) -> (Option<(PhysAddr, PteFlags)>, Cycles) {
        let fmt = self.isa.format();
        let mut table = self.root;
        let mut cycles = Cycles::ZERO;
        for level in 0..fmt.levels - 1 {
            let entry_pa = PhysAddr::new(table.raw() + fmt.va_index(va.raw(), level) * 8);
            let (raw, c) = mem.read_u64(walker, entry_pa);
            cycles += c;
            match decode_table_entry(fmt, raw) {
                Some(next) => table = PhysAddr::new(next),
                None => return (None, cycles),
            }
        }
        let leaf_pa =
            PhysAddr::new(table.raw() + fmt.va_index(va.raw(), fmt.levels - 1) * 8);
        let (raw, c) = mem.read_u64(walker, leaf_pa);
        cycles += c;
        match (RawPte { raw, isa: self.isa }).decode() {
            Some((pfn, flags)) => {
                let pa = PhysAddr::new((pfn << fmt.page_shift) + va.page_offset());
                (Some((pa, flags)), cycles)
            }
            None => (None, cycles),
        }
    }

    /// Untimed walk (boot-time setup, checkers).
    #[must_use]
    pub fn walk_untimed(&self, mem: &MemorySystem, va: VirtAddr) -> Option<(PhysAddr, PteFlags)> {
        let fmt = self.isa.format();
        let mut table = self.root;
        for level in 0..fmt.levels - 1 {
            let entry_pa = PhysAddr::new(table.raw() + fmt.va_index(va.raw(), level) * 8);
            let raw = mem.store().read_u64(entry_pa);
            table = PhysAddr::new(decode_table_entry(fmt, raw)?);
        }
        let leaf_pa =
            PhysAddr::new(table.raw() + fmt.va_index(va.raw(), fmt.levels - 1) * 8);
        let raw = mem.store().read_u64(leaf_pa);
        let (pfn, flags) = (RawPte { raw, isa: self.isa }).decode()?;
        Some((PhysAddr::new((pfn << fmt.page_shift) + va.page_offset()), flags))
    }

    /// Maps `va → pa` with `flags`, creating intermediate tables as
    /// needed from `frames`. When `timed`, entry reads/writes are
    /// charged to `walker`.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if a present leaf exists;
    /// [`MapError::Frame`] if a table frame cannot be allocated.
    #[allow(clippy::too_many_arguments)] // mirrors the kernel fault-path signature
    pub fn map(
        &self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        walker: DomainId,
        va: VirtAddr,
        pa: PhysAddr,
        flags: PteFlags,
        timed: bool,
    ) -> Result<Cycles, MapError> {
        let fmt = self.isa.format();
        let mut table = self.root;
        let mut cycles = Cycles::ZERO;
        for level in 0..fmt.levels - 1 {
            let entry_pa = PhysAddr::new(table.raw() + fmt.va_index(va.raw(), level) * 8);
            let raw = if timed {
                let (r, c) = mem.read_u64(walker, entry_pa);
                cycles += c;
                r
            } else {
                mem.store().read_u64(entry_pa)
            };
            match decode_table_entry(fmt, raw) {
                Some(next) => table = PhysAddr::new(next),
                None => {
                    let new_table = frames.alloc()?;
                    mem.store_mut().fill(new_table, PAGE_SIZE, 0);
                    let entry = encode_table_entry(fmt, new_table.raw());
                    if timed {
                        cycles += mem.write_u64(walker, entry_pa, entry);
                    } else {
                        mem.store_mut().write_u64(entry_pa, entry);
                    }
                    table = new_table;
                }
            }
        }
        let leaf_pa =
            PhysAddr::new(table.raw() + fmt.va_index(va.raw(), fmt.levels - 1) * 8);
        let existing = if timed {
            let (r, c) = mem.read_u64(walker, leaf_pa);
            cycles += c;
            r
        } else {
            mem.store().read_u64(leaf_pa)
        };
        if (RawPte { raw: existing, isa: self.isa }).is_present() {
            return Err(MapError::AlreadyMapped(va.page_base()));
        }
        let pte = stramash_isa::pte::encode_pte(fmt, pa.raw() >> fmt.page_shift, flags);
        if timed {
            cycles += mem.write_u64(walker, leaf_pa, pte.raw);
        } else {
            mem.store_mut().write_u64(leaf_pa, pte.raw);
        }
        Ok(cycles)
    }

    /// Physical address of the *leaf entry slot* for `va`, if the whole
    /// intermediate chain exists. This is the §9.2.3 test: Stramash's
    /// remote kernel may insert "at the PTE level" only when the upper
    /// layers are present. When `timed`, the intermediate reads are
    /// charged to `walker`.
    pub fn leaf_slot(
        &self,
        mem: &mut MemorySystem,
        walker: DomainId,
        va: VirtAddr,
        timed: bool,
    ) -> (Result<PhysAddr, MapError>, Cycles) {
        let fmt = self.isa.format();
        let mut table = self.root;
        let mut cycles = Cycles::ZERO;
        for level in 0..fmt.levels - 1 {
            let entry_pa = PhysAddr::new(table.raw() + fmt.va_index(va.raw(), level) * 8);
            let raw = if timed {
                let (r, c) = mem.read_u64(walker, entry_pa);
                cycles += c;
                r
            } else {
                mem.store().read_u64(entry_pa)
            };
            match decode_table_entry(fmt, raw) {
                Some(next) => table = PhysAddr::new(next),
                None => return (Err(MapError::MissingTable { level }), cycles),
            }
        }
        let slot = PhysAddr::new(table.raw() + fmt.va_index(va.raw(), fmt.levels - 1) * 8);
        (Ok(slot), cycles)
    }

    /// Writes a pre-encoded leaf entry into an existing slot (the remote
    /// PTE-level insertion of §6.4, possibly "with the remote node ISA
    /// format" — `raw.isa` must match this table's ISA).
    ///
    /// # Errors
    ///
    /// [`MapError::MissingTable`] if the chain is incomplete.
    ///
    /// # Panics
    ///
    /// Panics if `raw` was encoded for a different ISA.
    pub fn set_leaf(
        &self,
        mem: &mut MemorySystem,
        walker: DomainId,
        va: VirtAddr,
        raw: RawPte,
        timed: bool,
    ) -> (Result<(), MapError>, Cycles) {
        assert_eq!(raw.isa, self.isa, "leaf entry encoded for the wrong ISA");
        let (slot, mut cycles) = self.leaf_slot(mem, walker, va, timed);
        match slot {
            Ok(slot) => {
                if timed {
                    cycles += mem.write_u64(walker, slot, raw.raw);
                } else {
                    mem.store_mut().write_u64(slot, raw.raw);
                }
                (Ok(()), cycles)
            }
            Err(e) => (Err(e), cycles),
        }
    }

    /// Clears the leaf entry for `va`, returning the old translation.
    pub fn unmap(
        &self,
        mem: &mut MemorySystem,
        walker: DomainId,
        va: VirtAddr,
        timed: bool,
    ) -> (Option<PhysAddr>, Cycles) {
        let (slot, mut cycles) = self.leaf_slot(mem, walker, va, timed);
        let Ok(slot) = slot else {
            return (None, cycles);
        };
        let raw = if timed {
            let (r, c) = mem.read_u64(walker, slot);
            cycles += c;
            r
        } else {
            mem.store().read_u64(slot)
        };
        let fmt = self.isa.format();
        let old = (RawPte { raw, isa: self.isa })
            .decode()
            .map(|(pfn, _)| PhysAddr::new(pfn << fmt.page_shift));
        if old.is_some() {
            if timed {
                cycles += mem.write_u64(walker, slot, 0);
            } else {
                mem.store_mut().write_u64(slot, 0);
            }
        }
        (old, cycles)
    }

    /// Rewrites the leaf flags for `va` (COW downgrades/upgrades).
    /// Returns `false` if the page is not mapped.
    pub fn protect(
        &self,
        mem: &mut MemorySystem,
        walker: DomainId,
        va: VirtAddr,
        flags: PteFlags,
        timed: bool,
    ) -> (bool, Cycles) {
        let (slot, mut cycles) = self.leaf_slot(mem, walker, va, timed);
        let Ok(slot) = slot else {
            return (false, cycles);
        };
        let raw = if timed {
            let (r, c) = mem.read_u64(walker, slot);
            cycles += c;
            r
        } else {
            mem.store().read_u64(slot)
        };
        let Some((pfn, _)) = (RawPte { raw, isa: self.isa }).decode() else {
            return (false, cycles);
        };
        let pte = stramash_isa::pte::encode_pte(self.isa.format(), pfn, flags);
        if timed {
            cycles += mem.write_u64(walker, slot, pte.raw);
        } else {
            mem.store_mut().write_u64(slot, pte.raw);
        }
        (true, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::{HardwareModel, SimConfig};

    fn setup() -> (MemorySystem, FrameAllocator) {
        let mem =
            MemorySystem::new(SimConfig::big_pair().with_hw_model(HardwareModel::Shared)).unwrap();
        let mut frames = FrameAllocator::new();
        frames.add_region(PhysAddr::new(0x10_0000), 4 << 20).unwrap();
        (mem, frames)
    }

    #[test]
    fn map_then_walk_both_isas() {
        for isa in IsaKind::ALL {
            let (mut mem, mut frames) = setup();
            let pt = PageTable::new(&mut mem, &mut frames, isa).unwrap();
            let va = VirtAddr::new(0x4000_2000);
            let pa = PhysAddr::new(0x50_3000);
            pt.map(&mut mem, &mut frames, DomainId::X86, va, pa, PteFlags::user_data(), false)
                .unwrap();
            let got = pt.walk_untimed(&mem, va).unwrap();
            assert_eq!(got.0, pa);
            assert!(got.1.writable);
            // Offsets carry through.
            let got = pt.walk_untimed(&mem, va.offset(0x123)).unwrap();
            assert_eq!(got.0.raw(), pa.raw() + 0x123);
        }
    }

    #[test]
    fn walk_unmapped_is_none() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        assert!(pt.walk_untimed(&mem, VirtAddr::new(0x1234_5000)).is_none());
        let (res, cycles) = pt.walk(&mut mem, DomainId::X86, VirtAddr::new(0x1234_5000));
        assert!(res.is_none());
        assert!(cycles.raw() > 0, "even a failed walk reads the root entry");
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::Aarch64).unwrap();
        let va = VirtAddr::new(0x7000);
        pt.map(&mut mem, &mut frames, DomainId::ARM, va, PhysAddr::new(0x60_0000), PteFlags::user_data(), false)
            .unwrap();
        let err = pt
            .map(&mut mem, &mut frames, DomainId::ARM, va, PhysAddr::new(0x61_0000), PteFlags::user_data(), false)
            .unwrap_err();
        assert_eq!(err, MapError::AlreadyMapped(va));
    }

    #[test]
    fn timed_walk_charges_five_reads() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let va = VirtAddr::new(0x9000);
        pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x70_0000), PteFlags::user_data(), false)
            .unwrap();
        mem.reset_stats();
        let (res, cycles) = pt.walk(&mut mem, DomainId::X86, va);
        assert!(res.is_some());
        // 5 levels → 5 entry reads, all data accesses.
        assert_eq!(mem.stats(DomainId::X86).mem_accesses, 5);
        assert!(cycles.raw() >= 5 * 4);
    }

    #[test]
    fn remote_walker_pays_remote_latency() {
        // Table frames live in x86-local memory (0x10_0000 region); a
        // walk by the Arm domain is a §6.4 remote software walk.
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let va = VirtAddr::new(0xA000);
        pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x70_0000), PteFlags::user_data(), false)
            .unwrap();
        mem.flush_caches();
        mem.reset_stats();
        let (_, remote_cost) = pt.walk(&mut mem, DomainId::ARM, va);
        assert_eq!(mem.stats(DomainId::ARM).remote_mem_hits, 5);
        // 5 remote DRAM reads at 620 cycles each (ThunderX2 row).
        assert!(remote_cost.raw() >= 5 * 620);
    }

    #[test]
    fn leaf_slot_missing_table() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let (res, _) = pt.leaf_slot(&mut mem, DomainId::X86, VirtAddr::new(0x5000), false);
        assert_eq!(res, Err(MapError::MissingTable { level: 0 }));
    }

    #[test]
    fn set_leaf_into_existing_chain() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let va = VirtAddr::new(0xB000);
        // Create the chain with one mapping, then insert a sibling page
        // purely at the PTE level.
        pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x70_0000), PteFlags::user_data(), false)
            .unwrap();
        let sibling = VirtAddr::new(0xC000);
        let pte = stramash_isa::pte::encode_pte(
            IsaKind::X86_64.format(),
            0x70_1000 >> 12,
            PteFlags::user_data(),
        );
        let (res, _) = pt.set_leaf(&mut mem, DomainId::ARM, sibling, pte, false);
        res.unwrap();
        assert_eq!(pt.walk_untimed(&mem, sibling).unwrap().0, PhysAddr::new(0x70_1000));
    }

    #[test]
    #[should_panic(expected = "wrong ISA")]
    fn set_leaf_rejects_foreign_format() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let pte = stramash_isa::pte::encode_pte(IsaKind::Aarch64.format(), 1, PteFlags::user_data());
        let _ = pt.set_leaf(&mut mem, DomainId::X86, VirtAddr::new(0), pte, false);
    }

    #[test]
    fn unmap_clears_translation() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::Aarch64).unwrap();
        let va = VirtAddr::new(0xD000);
        pt.map(&mut mem, &mut frames, DomainId::ARM, va, PhysAddr::new(0x71_0000), PteFlags::user_data(), false)
            .unwrap();
        let (old, _) = pt.unmap(&mut mem, DomainId::ARM, va, false);
        assert_eq!(old, Some(PhysAddr::new(0x71_0000)));
        assert!(pt.walk_untimed(&mem, va).is_none());
        let (old, _) = pt.unmap(&mut mem, DomainId::ARM, va, false);
        assert_eq!(old, None);
    }

    #[test]
    fn protect_downgrades_to_read_only() {
        let (mut mem, mut frames) = setup();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        let va = VirtAddr::new(0xE000);
        pt.map(&mut mem, &mut frames, DomainId::X86, va, PhysAddr::new(0x72_0000), PteFlags::user_data(), false)
            .unwrap();
        let (ok, _) =
            pt.protect(&mut mem, DomainId::X86, va, PteFlags::user_data().read_only(), false);
        assert!(ok);
        let (_, flags) = pt.walk_untimed(&mem, va).unwrap();
        assert!(!flags.writable);
        let (ok, _) =
            pt.protect(&mut mem, DomainId::X86, VirtAddr::new(0xFF000), PteFlags::user_data(), false);
        assert!(!ok);
    }

    #[test]
    fn map_error_display() {
        assert!(!MapError::AlreadyMapped(VirtAddr::new(0)).to_string().is_empty());
        assert!(!MapError::MissingTable { level: 2 }.to_string().is_empty());
        assert!(!MapError::Frame(FrameError::OutOfMemory).to_string().is_empty());
    }
}
