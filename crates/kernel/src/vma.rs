//! Virtual memory areas.
//!
//! Each process's address space is described by an ordered set of VMAs.
//! The paper's kernels keep "the VMA lists … maintained using the
//! RB-tree structure" (§6.4); this reproduction backs [`VmaTree`] with
//! its own red-black tree ([`crate::rbtree::RbTree`]), keyed by start
//! address.
//! Stramash lets one kernel walk the *other* kernel's VMA tree directly
//! ("with appropriate VMA locks acquired", §6.4) — the lock word lives
//! in simulated shared memory and is taken with a cross-ISA CAS.

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::rbtree::{RbTree, RbTreeError};
use std::fmt;

/// Access protections of a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmaProt {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl VmaProt {
    /// `rw-` — ordinary data.
    #[must_use]
    pub fn rw() -> Self {
        VmaProt { read: true, write: true, exec: false }
    }

    /// `r-x` — text.
    #[must_use]
    pub fn rx() -> Self {
        VmaProt { read: true, write: false, exec: true }
    }

    /// `r--`.
    #[must_use]
    pub fn ro() -> Self {
        VmaProt { read: true, write: false, exec: false }
    }
}

/// What backs a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Anonymous memory (heap, mmap).
    Anon,
    /// The main stack.
    Stack,
    /// Program text/data (treated as pre-populated at spawn).
    Image,
}

/// One virtual memory area, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start (page-aligned).
    pub start: VirtAddr,
    /// Exclusive end (page-aligned).
    pub end: VirtAddr,
    /// Protections.
    pub prot: VmaProt,
    /// Backing kind.
    pub kind: VmaKind,
}

impl Vma {
    /// Whether `va` falls inside.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether the area is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages spanned.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.len() / PAGE_SIZE
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#x},{:#x}) {}{}{} {:?}",
            self.start.raw(),
            self.end.raw(),
            if self.prot.read { 'r' } else { '-' },
            if self.prot.write { 'w' } else { '-' },
            if self.prot.exec { 'x' } else { '-' },
            self.kind
        )
    }
}

/// Errors from VMA-tree mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaError {
    /// Bounds are not page-aligned or end ≤ start.
    BadRange,
    /// The new area overlaps an existing one.
    Overlap(VirtAddr),
    /// The backing red-black tree is structurally corrupt; the address
    /// space can no longer be mutated safely.
    Corrupt(RbTreeError),
}

impl fmt::Display for VmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmaError::BadRange => f.write_str("VMA bounds must be page-aligned and non-empty"),
            VmaError::Overlap(va) => write!(f, "VMA overlaps existing area at {va}"),
            VmaError::Corrupt(e) => write!(f, "VMA tree corrupt: {e}"),
        }
    }
}

impl std::error::Error for VmaError {}

/// An ordered set of non-overlapping VMAs.
///
/// # Examples
///
/// ```
/// use stramash_kernel::addr::VirtAddr;
/// use stramash_kernel::vma::{Vma, VmaKind, VmaProt, VmaTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vmas = VmaTree::new();
/// vmas.insert(Vma {
///     start: VirtAddr::new(0x4000_0000),
///     end: VirtAddr::new(0x4000_4000),
///     prot: VmaProt::rw(),
///     kind: VmaKind::Anon,
/// })?;
/// // The fault path's lookup:
/// assert!(vmas.find(VirtAddr::new(0x4000_1234)).is_some());
/// assert!(vmas.find(VirtAddr::new(0x4000_4000)).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct VmaTree {
    map: RbTree<u64, Vma>,
}

impl VmaTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        VmaTree::default()
    }

    /// Inserts a VMA.
    ///
    /// # Errors
    ///
    /// [`VmaError::BadRange`] for unaligned/empty areas,
    /// [`VmaError::Overlap`] when intersecting an existing VMA,
    /// [`VmaError::Corrupt`] if the tree's invariants fail during
    /// rebalancing (surfaced instead of unwinding through the kernel).
    pub fn insert(&mut self, vma: Vma) -> Result<(), VmaError> {
        if !vma.start.is_page_aligned() || !vma.end.is_page_aligned() || vma.end <= vma.start {
            return Err(VmaError::BadRange);
        }
        // Neighbour starting at or before our last byte, ending after
        // our start?
        if let Some((_, prev)) = self.map.floor(&(vma.end.raw() - 1)) {
            if prev.end > vma.start {
                return Err(VmaError::Overlap(prev.start));
            }
        }
        self.map.try_insert(vma.start.raw(), vma).map_err(VmaError::Corrupt)?;
        Ok(())
    }

    /// The VMA containing `va`, if any — the fault-path lookup (an
    /// RB-tree floor query, as in the paper's kernels).
    #[must_use]
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.map.floor(&va.raw()).map(|(_, v)| v).filter(|v| v.contains(va))
    }

    /// Removes the VMA starting at `start`.
    pub fn remove(&mut self, start: VirtAddr) -> Option<Vma> {
        self.map.remove(&start.raw())
    }

    /// Number of areas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates areas in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.map.iter().map(|(_, v)| v)
    }

    /// Total mapped bytes.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.map.iter().map(|(_, v)| v.len()).sum()
    }

    /// Serializes the tree (exact arena layout, see
    /// [`RbTree::save_state`]) into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        self.map.save_state(e, |e, k| e.u64(*k), |e, v| {
            e.u64(v.start.raw());
            e.u64(v.end.raw());
            e.bool(v.prot.read);
            e.bool(v.prot.write);
            e.bool(v.prot.exec);
            e.u8(match v.kind {
                VmaKind::Anon => 0,
                VmaKind::Stack => 1,
                VmaKind::Image => 2,
            });
        });
    }

    /// Restores a tree from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<Self, stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        let map = RbTree::load_state(d, |d| d.u64(), |d| {
            let start = VirtAddr::new(d.u64()?);
            let end = VirtAddr::new(d.u64()?);
            let prot = VmaProt { read: d.bool()?, write: d.bool()?, exec: d.bool()? };
            let kind = match d.u8()? {
                0 => VmaKind::Anon,
                1 => VmaKind::Stack,
                2 => VmaKind::Image,
                _ => return Err(CheckpointError::Malformed("unknown VMA kind")),
            };
            Ok(Vma { start, end, prot, kind })
        })?;
        Ok(VmaTree { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, end: u64) -> Vma {
        Vma { start: VirtAddr::new(start), end: VirtAddr::new(end), prot: VmaProt::rw(), kind: VmaKind::Anon }
    }

    #[test]
    fn insert_and_find() {
        let mut t = VmaTree::new();
        t.insert(vma(0x1000, 0x3000)).unwrap();
        t.insert(vma(0x5000, 0x6000)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.find(VirtAddr::new(0x1000)).is_some());
        assert!(t.find(VirtAddr::new(0x2fff)).is_some());
        assert!(t.find(VirtAddr::new(0x3000)).is_none());
        assert!(t.find(VirtAddr::new(0x4500)).is_none());
        assert_eq!(t.find(VirtAddr::new(0x5800)).unwrap().start.raw(), 0x5000);
    }

    #[test]
    fn rejects_overlap() {
        let mut t = VmaTree::new();
        t.insert(vma(0x2000, 0x4000)).unwrap();
        assert_eq!(t.insert(vma(0x3000, 0x5000)), Err(VmaError::Overlap(VirtAddr::new(0x2000))));
        assert_eq!(t.insert(vma(0x1000, 0x2001)), Err(VmaError::BadRange));
        assert_eq!(t.insert(vma(0x1000, 0x3000)), Err(VmaError::Overlap(VirtAddr::new(0x2000))));
        // Adjacent is fine.
        t.insert(vma(0x4000, 0x5000)).unwrap();
        t.insert(vma(0x1000, 0x2000)).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn rejects_bad_ranges() {
        let mut t = VmaTree::new();
        assert_eq!(t.insert(vma(0x1000, 0x1000)), Err(VmaError::BadRange));
        assert_eq!(t.insert(vma(0x3000, 0x2000)), Err(VmaError::BadRange));
        assert_eq!(t.insert(vma(0x1234, 0x3000)), Err(VmaError::BadRange));
    }

    #[test]
    fn remove_and_accounting() {
        let mut t = VmaTree::new();
        t.insert(vma(0x1000, 0x3000)).unwrap();
        t.insert(vma(0x8000, 0xA000)).unwrap();
        assert_eq!(t.mapped_bytes(), 0x4000);
        let removed = t.remove(VirtAddr::new(0x1000)).unwrap();
        assert_eq!(removed.pages(), 2);
        assert!(t.remove(VirtAddr::new(0x1000)).is_none());
        assert_eq!(t.mapped_bytes(), 0x2000);
        assert!(!t.is_empty());
    }

    #[test]
    fn iteration_in_address_order() {
        let mut t = VmaTree::new();
        t.insert(vma(0x9000, 0xA000)).unwrap();
        t.insert(vma(0x1000, 0x2000)).unwrap();
        t.insert(vma(0x5000, 0x6000)).unwrap();
        let starts: Vec<u64> = t.iter().map(|v| v.start.raw()).collect();
        assert_eq!(starts, vec![0x1000, 0x5000, 0x9000]);
    }

    #[test]
    fn display_formats() {
        let v = Vma {
            start: VirtAddr::new(0x1000),
            end: VirtAddr::new(0x2000),
            prot: VmaProt::rx(),
            kind: VmaKind::Image,
        };
        let s = v.to_string();
        assert!(s.contains("r-x"));
        assert!(s.contains("Image"));
        assert!(!VmaError::BadRange.to_string().is_empty());
    }
}
