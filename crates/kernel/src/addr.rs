//! Virtual addresses and page arithmetic.

use std::fmt;

/// Page size used by both prototype ISAs (4 KiB granule, §6.4).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address in a process or kernel address space.
///
/// ```
/// use stramash_kernel::addr::VirtAddr;
/// let va = VirtAddr::new(0x4000_1234);
/// assert_eq!(va.page_base().raw(), 0x4000_1000);
/// assert_eq!(va.page_offset(), 0x234);
/// assert_eq!(va.vpn(), 0x4000_1234 >> 12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address plus `off` bytes.
    #[must_use]
    pub const fn offset(self, off: u64) -> VirtAddr {
        VirtAddr(self.0 + off)
    }

    /// The base of the containing page.
    #[must_use]
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Offset within the containing page.
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The virtual page number.
    #[must_use]
    pub const fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Whether this address is page-aligned.
    #[must_use]
    pub const fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// Number of whole pages covering `len` bytes.
#[must_use]
pub const fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let va = VirtAddr::new(0x12_3456);
        assert_eq!(va.page_base().raw(), 0x12_3000);
        assert_eq!(va.page_offset(), 0x456);
        assert_eq!(va.vpn(), 0x123);
        assert!(!va.is_page_aligned());
        assert!(va.page_base().is_page_aligned());
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(10 << 20), 2560);
    }

    #[test]
    fn display() {
        assert_eq!(VirtAddr::new(0x40).to_string(), "VA:0x40");
    }
}
