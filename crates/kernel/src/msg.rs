//! The inter-kernel messaging layer (§6.2, §8.2).
//!
//! Both OSes communicate through "one or more pairs of shared memory
//! ring buffers per kernel pair": a send writes the message into the
//! receiver's ring *through the simulated memory system* (so ring
//! placement interacts with the hardware model exactly as in §8.2), then
//! notifies the receiver with a cross-ISA IPI — or lets it poll.
//!
//! The Popcorn-TCP baseline instead charges the measured 75 µs
//! round-trip per message exchange (§8.2), independent of the hardware
//! model.

use std::collections::BTreeMap;
use std::fmt;
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::ipi::{IpiFabric, NotifyMode};
use stramash_sim::{Cycles, DomainId};

/// Message kinds exchanged by the OS protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgType {
    /// DSM page fetch request (Popcorn).
    PageRequest,
    /// DSM page contents response (Popcorn).
    PageResponse,
    /// DSM invalidation of a replicated page (Popcorn).
    PageInvalidate,
    /// Remote VMA lookup request (Popcorn).
    VmaRequest,
    /// Remote VMA lookup response (Popcorn).
    VmaResponse,
    /// Futex operation forwarded to the origin kernel (Popcorn).
    FutexRequest,
    /// Futex operation acknowledgement (Popcorn).
    FutexResponse,
    /// Wake notification for a remote waiter.
    FutexWake,
    /// Thread migration request carrying the register state.
    MigrationRequest,
    /// Migration acknowledgement.
    MigrationResponse,
    /// Origin-handled fault in Stramash (missing upper-level table,
    /// §9.2.3).
    OriginFaultRequest,
    /// Response to an origin-handled fault.
    OriginFaultResponse,
    /// Network-service request (the Figure 14 KV store).
    KvRequest,
    /// Network-service response.
    KvResponse,
}

impl MsgType {
    /// All message kinds (for counter reports).
    pub const ALL: [MsgType; 14] = [
        MsgType::PageRequest,
        MsgType::PageResponse,
        MsgType::PageInvalidate,
        MsgType::VmaRequest,
        MsgType::VmaResponse,
        MsgType::FutexRequest,
        MsgType::FutexResponse,
        MsgType::FutexWake,
        MsgType::MigrationRequest,
        MsgType::MigrationResponse,
        MsgType::OriginFaultRequest,
        MsgType::OriginFaultResponse,
        MsgType::KvRequest,
        MsgType::KvResponse,
    ];
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One message: a kind plus a payload size (contents are modelled by the
/// bytes written into the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Protocol kind.
    pub ty: MsgType,
    /// Payload bytes (header excluded).
    pub payload: u32,
}

impl Message {
    /// A header-only control message.
    #[must_use]
    pub fn control(ty: MsgType) -> Self {
        Message { ty, payload: 0 }
    }

    /// A message carrying one 4 KiB page (DSM replication).
    #[must_use]
    pub fn page(ty: MsgType) -> Self {
        Message { ty, payload: 4096 }
    }
}

/// Fixed per-message header bytes written to the ring.
pub const MSG_HEADER_BYTES: u32 = 64;

/// How messages travel (§8.2's two Popcorn baselines; Stramash always
/// uses Shm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Shared-memory ring buffers + IPI (or polling).
    Shm {
        /// Interrupt or polling delivery.
        notify: NotifyMode,
    },
    /// TCP/IP over the NIC: a flat measured round-trip per exchange.
    Tcp,
}

/// Per-direction message counters (Table 3 reports these).
#[derive(Debug, Clone, Default)]
pub struct MsgCounters {
    sent: [u64; 2],
    bytes: [u64; 2],
    by_type: BTreeMap<MsgType, u64>,
}

impl MsgCounters {
    /// Messages sent by `domain`.
    #[must_use]
    pub fn sent_by(&self, domain: DomainId) -> u64 {
        self.sent[domain.index()]
    }

    /// Total messages in both directions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total payload+header bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages of one kind.
    #[must_use]
    pub fn of_type(&self, ty: MsgType) -> u64 {
        self.by_type.get(&ty).copied().unwrap_or(0)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = MsgCounters::default();
    }
}

/// The messaging layer of a kernel pair.
///
/// # Examples
///
/// ```
/// use stramash_kernel::msg::{Message, MessagingLayer, MsgType, Transport};
/// use stramash_mem::{MemorySystem, PhysAddr};
/// use stramash_sim::ipi::{IpiFabric, NotifyMode};
/// use stramash_sim::{DomainId, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SimConfig::big_pair();
/// let mut ipi = IpiFabric::new(cfg.ipi_latency);
/// let mut mem = MemorySystem::new(cfg)?;
/// let pool = PhysAddr::new(4 << 30);
/// let mut msg = MessagingLayer::new(
///     Transport::Shm { notify: NotifyMode::Interrupt },
///     [pool, pool.offset(64 << 20)],
///     64 << 20,
///     stramash_sim::Cycles::new(157_500),
/// );
/// // A DSM page response: ring write + cross-ISA IPI, all timed.
/// let cost = msg.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
/// assert!(cost.raw() > 4200, "at least the 2 µs IPI");
/// assert_eq!(msg.counters().total(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MessagingLayer {
    transport: Transport,
    /// Ring buffer base for messages *received by* each domain.
    ring_base: [PhysAddr; 2],
    ring_len: u64,
    /// Producer cursors (offsets into each ring).
    cursor: [u64; 2],
    tcp_rtt: Cycles,
    counters: MsgCounters,
}

impl MessagingLayer {
    /// Creates a messaging layer.
    ///
    /// `ring_base[d]` is where messages *to* domain `d` are written —
    /// §8.2 places this 128 MB area differently per hardware model; with
    /// the Figure 4 layout, putting it at the start of the 4 GB pool
    /// reproduces all three placements at once.
    #[must_use]
    pub fn new(
        transport: Transport,
        ring_base: [PhysAddr; 2],
        ring_len: u64,
        tcp_rtt: Cycles,
    ) -> Self {
        assert!(ring_len > 0, "ring length must be positive");
        MessagingLayer { transport, ring_base, ring_len, cursor: [0, 0], tcp_rtt, counters: MsgCounters::default() }
    }

    /// The transport in use.
    #[must_use]
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> &MsgCounters {
        &self.counters
    }

    /// Resets the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Sends `msg` from `from` to the other domain, returning the cost
    /// charged to the *sender*.
    pub fn send(
        &mut self,
        mem: &mut MemorySystem,
        ipi: &mut IpiFabric,
        from: DomainId,
        msg: Message,
    ) -> Cycles {
        let to = from.other();
        let total = MSG_HEADER_BYTES + msg.payload;
        self.counters.sent[from.index()] += 1;
        self.counters.bytes[from.index()] += u64::from(total);
        *self.counters.by_type.entry(msg.ty).or_insert(0) += 1;
        match self.transport {
            Transport::Shm { notify } => {
                let addr = self.slot(to, total);
                let payload = vec![0u8; total as usize];
                let mut cycles = mem.write_bytes(from, addr, &payload);
                match notify {
                    NotifyMode::Interrupt => {
                        cycles += ipi.send(from);
                        mem.stats_mut(from).ipi += 1;
                    }
                    NotifyMode::Polling => {}
                }
                cycles
            }
            // One way is half the measured 75 µs round trip; a protocol
            // request/response pair thus costs one full RTT.
            Transport::Tcp => self.tcp_rtt / 2,
        }
    }

    /// Receiver-side cost of consuming the oldest message addressed to
    /// `to` (reading it out of the ring). In polling mode the receiver
    /// additionally pays the head-word poll that discovered the message
    /// (§6.2 supports polling in place of interrupt dispatching).
    pub fn receive(&mut self, mem: &mut MemorySystem, to: DomainId, msg: Message) -> Cycles {
        let total = MSG_HEADER_BYTES + msg.payload;
        match self.transport {
            Transport::Shm { notify } => {
                let mut cycles = Cycles::ZERO;
                if notify == NotifyMode::Polling {
                    let (_, c) = mem.read_u64(to, self.ring_base[to.index()]);
                    cycles += c;
                }
                // Re-read the most recent slot of our ring.
                let addr = self.peek_slot(to, total);
                let mut buf = vec![0u8; total as usize];
                cycles + mem.read_bytes(to, addr, &mut buf)
            }
            // Receive-side copy out of the NIC; folded into the RTT.
            Transport::Tcp => Cycles::ZERO,
        }
    }

    /// Allocates ring space for a message to `to` and advances the
    /// cursor (wrapping).
    fn slot(&mut self, to: DomainId, total: u32) -> PhysAddr {
        let ti = to.index();
        if self.cursor[ti] + u64::from(total) > self.ring_len {
            self.cursor[ti] = 0;
        }
        let addr = self.ring_base[ti].offset(self.cursor[ti]);
        self.cursor[ti] += u64::from(total);
        addr
    }

    /// The slot just written for `to` (receiver reads it back).
    fn peek_slot(&self, to: DomainId, total: u32) -> PhysAddr {
        let ti = to.index();
        let start = self.cursor[ti].saturating_sub(u64::from(total));
        self.ring_base[ti].offset(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::{HardwareModel, SimConfig};

    const POOL: u64 = 4 << 30;

    fn setup(model: HardwareModel, transport: Transport) -> (MemorySystem, IpiFabric, MessagingLayer) {
        let cfg = SimConfig::big_pair().with_hw_model(model);
        let ipi = IpiFabric::new(cfg.ipi_latency);
        let tcp = cfg.tcp_rtt;
        let mem = MemorySystem::new(cfg).unwrap();
        let ml = MessagingLayer::new(
            transport,
            [PhysAddr::new(POOL), PhysAddr::new(POOL + (64 << 20))],
            64 << 20,
            tcp,
        );
        (mem, ipi, ml)
    }

    #[test]
    fn shm_send_charges_ring_writes_and_ipi() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexRequest));
        // 64-byte header = 1 cache line into remote-shared memory (640)
        // plus the 2 µs IPI (4200 cycles at 2.1 GHz).
        assert_eq!(c.raw(), 640 + 4200);
        assert_eq!(ipi.delivered_to(DomainId::ARM), 1);
        assert_eq!(mem.stats(DomainId::X86).ipi, 1);
        assert_eq!(ml.counters().total(), 1);
    }

    #[test]
    fn polling_skips_ipi() {
        let (mut mem, mut ipi, mut ml) =
            setup(HardwareModel::Shared, Transport::Shm { notify: NotifyMode::Polling });
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexRequest));
        assert_eq!(c.raw(), 640);
        assert_eq!(ipi.delivered_to(DomainId::ARM), 0);
    }

    #[test]
    fn ring_placement_feels_hardware_model() {
        // §8.2: Separated-SHM has the ring local to x86, remote to Arm.
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Separated,
            Transport::Shm { notify: NotifyMode::Polling },
        );
        let from_x86 =
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::PageRequest));
        mem.flush_caches();
        let from_arm =
            ml.send(&mut mem, &mut ipi, DomainId::ARM, Message::control(MsgType::PageRequest));
        assert!(from_x86 < from_arm, "x86 writes locally, Arm pays CXL: {from_x86} vs {from_arm}");
    }

    #[test]
    fn tcp_charges_half_rtt_each_way() {
        let (mut mem, mut ipi, mut ml) = setup(HardwareModel::Shared, Transport::Tcp);
        let send = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
        let recv = ml.receive(&mut mem, DomainId::ARM, Message::page(MsgType::PageResponse));
        // 75 µs at 2.1 GHz = 157_500 cycles per round trip.
        assert_eq!(send.raw() + recv.raw(), 157_500 / 2);
    }

    #[test]
    fn receive_reads_back_what_was_sent() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Polling },
        );
        let msg = Message::page(MsgType::PageResponse);
        ml.send(&mut mem, &mut ipi, DomainId::X86, msg);
        let c = ml.receive(&mut mem, DomainId::ARM, msg);
        // (64 + 4096) bytes = 65 lines; all were just written by the
        // peer, so the reader pays snoop-data transitions.
        assert!(c.raw() > 0);
        assert!(mem.stats(DomainId::ARM).snoop_data_hits > 0);
    }

    #[test]
    fn counters_by_type_and_bytes() {
        let (mut mem, mut ipi, mut ml) = setup(HardwareModel::Shared, Transport::Tcp);
        for _ in 0..3 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::PageRequest));
        }
        ml.send(&mut mem, &mut ipi, DomainId::ARM, Message::page(MsgType::PageResponse));
        let c = ml.counters();
        assert_eq!(c.of_type(MsgType::PageRequest), 3);
        assert_eq!(c.of_type(MsgType::PageResponse), 1);
        assert_eq!(c.of_type(MsgType::FutexWake), 0);
        assert_eq!(c.sent_by(DomainId::X86), 3);
        assert_eq!(c.total(), 4);
        assert_eq!(c.total_bytes(), 3 * 64 + 64 + 4096);
        ml.reset_counters();
        assert_eq!(ml.counters().total(), 0);
    }

    #[test]
    fn ring_cursor_wraps() {
        let cfg = SimConfig::big_pair();
        let tcp = cfg.tcp_rtt;
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut ipi = IpiFabric::new(Cycles::new(10));
        // Tiny 8 KB ring forces wrapping after two page messages.
        let mut ml = MessagingLayer::new(
            Transport::Shm { notify: NotifyMode::Polling },
            [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
            8192,
            tcp,
        );
        for _ in 0..5 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
        }
        assert_eq!(ml.counters().total(), 5);
    }
}
