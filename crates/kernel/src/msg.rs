//! The inter-kernel messaging layer (§6.2, §8.2).
//!
//! Both OSes communicate through "one or more pairs of shared memory
//! ring buffers per kernel pair": a send writes the message into the
//! receiver's ring *through the simulated memory system* (so ring
//! placement interacts with the hardware model exactly as in §8.2), then
//! notifies the receiver with a cross-ISA IPI — or lets it poll.
//!
//! The Popcorn-TCP baseline instead charges the measured 75 µs
//! round-trip per message exchange (§8.2), independent of the hardware
//! model.

use std::collections::BTreeMap;
use std::fmt;
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::ipi::{IpiFabric, NotifyMode};
use stramash_sim::trace::TraceEvent;
use stramash_sim::{Cycles, DomainId, FaultKind, SharedFaultInjector, SharedTracer};

/// Retransmission cap per logical message. With sane fault plans the
/// probability of this many consecutive losses is negligible; the cap
/// keeps adversarial plans (drop = 1.0) from hanging the simulation —
/// the final attempt is delivered and counted as `fatal`.
const MAX_SEND_ATTEMPTS: u32 = 16;

/// Exponent cap for the retransmission backoff (base × 2^min(n, 3)).
const BACKOFF_CAP: u32 = 3;

/// Errors from the messaging layer's configuration and flow control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgError {
    /// The ring length was zero.
    ZeroRing,
    /// The ring cannot hold even one maximum-size message.
    RingTooSmall {
        /// The configured ring length.
        ring_len: u64,
        /// The minimum length (header + one 4 KiB page).
        min: u64,
    },
    /// The message (header + payload) does not fit the ring in one
    /// piece. The length arithmetic is done in `u64`, so an adversarial
    /// payload near `u32::MAX` is reported here instead of silently
    /// wrapping the byte count.
    Oversized {
        /// Header + payload bytes requested.
        bytes: u64,
        /// The largest message the ring can carry.
        max: u64,
    },
    /// A stream operation named a stream that was never opened (or was
    /// closed).
    UnknownStream {
        /// The offending stream id.
        id: u32,
    },
    /// A request send on a stream whose credit window is exhausted: the
    /// initiator already has `window` unanswered requests in flight and
    /// must wait for a response before issuing another.
    StreamWindowFull {
        /// The stream id.
        id: u32,
        /// The configured credit window.
        window: u32,
    },
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::ZeroRing => write!(f, "message ring length must be positive"),
            MsgError::RingTooSmall { ring_len, min } => {
                write!(f, "message ring of {ring_len} B cannot hold one {min} B message")
            }
            MsgError::Oversized { bytes, max } => {
                write!(f, "{bytes} B message exceeds the {max} B ring capacity")
            }
            MsgError::UnknownStream { id } => {
                write!(f, "stream {id} is not open")
            }
            MsgError::StreamWindowFull { id, window } => {
                write!(f, "stream {id} has all {window} window credits in flight")
            }
        }
    }
}

impl std::error::Error for MsgError {}

/// Message kinds exchanged by the OS protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgType {
    /// DSM page fetch request (Popcorn).
    PageRequest,
    /// DSM page contents response (Popcorn).
    PageResponse,
    /// DSM invalidation of a replicated page (Popcorn).
    PageInvalidate,
    /// Remote VMA lookup request (Popcorn).
    VmaRequest,
    /// Remote VMA lookup response (Popcorn).
    VmaResponse,
    /// Futex operation forwarded to the origin kernel (Popcorn).
    FutexRequest,
    /// Futex operation acknowledgement (Popcorn).
    FutexResponse,
    /// Wake notification for a remote waiter.
    FutexWake,
    /// Thread migration request carrying the register state.
    MigrationRequest,
    /// Migration acknowledgement.
    MigrationResponse,
    /// Origin-handled fault in Stramash (missing upper-level table,
    /// §9.2.3).
    OriginFaultRequest,
    /// Response to an origin-handled fault.
    OriginFaultResponse,
    /// Network-service request (the Figure 14 KV store).
    KvRequest,
    /// Network-service response.
    KvResponse,
    /// Watchdog liveness beacon. Only sent when the watchdog is armed,
    /// so fault-free runs without one stay byte- and cycle-identical.
    Heartbeat,
}

impl MsgType {
    /// Short static name (used by trace events and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgType::PageRequest => "PageRequest",
            MsgType::PageResponse => "PageResponse",
            MsgType::PageInvalidate => "PageInvalidate",
            MsgType::VmaRequest => "VmaRequest",
            MsgType::VmaResponse => "VmaResponse",
            MsgType::FutexRequest => "FutexRequest",
            MsgType::FutexResponse => "FutexResponse",
            MsgType::FutexWake => "FutexWake",
            MsgType::MigrationRequest => "MigrationRequest",
            MsgType::MigrationResponse => "MigrationResponse",
            MsgType::OriginFaultRequest => "OriginFaultRequest",
            MsgType::OriginFaultResponse => "OriginFaultResponse",
            MsgType::KvRequest => "KvRequest",
            MsgType::KvResponse => "KvResponse",
            MsgType::Heartbeat => "Heartbeat",
        }
    }

    /// All message kinds (for counter reports).
    pub const ALL: [MsgType; 15] = [
        MsgType::PageRequest,
        MsgType::PageResponse,
        MsgType::PageInvalidate,
        MsgType::VmaRequest,
        MsgType::VmaResponse,
        MsgType::FutexRequest,
        MsgType::FutexResponse,
        MsgType::FutexWake,
        MsgType::MigrationRequest,
        MsgType::MigrationResponse,
        MsgType::OriginFaultRequest,
        MsgType::OriginFaultResponse,
        MsgType::KvRequest,
        MsgType::KvResponse,
        MsgType::Heartbeat,
    ];
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One message: a kind plus a payload size (contents are modelled by the
/// bytes written into the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Protocol kind.
    pub ty: MsgType,
    /// Payload bytes (header excluded).
    pub payload: u32,
}

impl Message {
    /// A header-only control message.
    #[must_use]
    pub fn control(ty: MsgType) -> Self {
        Message { ty, payload: 0 }
    }

    /// A message carrying one 4 KiB page (DSM replication).
    #[must_use]
    pub fn page(ty: MsgType) -> Self {
        Message { ty, payload: 4096 }
    }
}

/// Fixed per-message header bytes written to the ring.
pub const MSG_HEADER_BYTES: u32 = 64;

/// How messages travel (§8.2's two Popcorn baselines; Stramash always
/// uses Shm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Shared-memory ring buffers + IPI (or polling).
    Shm {
        /// Interrupt or polling delivery.
        notify: NotifyMode,
    },
    /// TCP/IP over the NIC: a flat measured round-trip per exchange.
    Tcp,
}

/// Per-direction message counters (Table 3 reports these; the fault
/// harness adds the reliability counters).
#[derive(Debug, Clone, Default)]
pub struct MsgCounters {
    sent: [u64; 2],
    bytes: [u64; 2],
    by_type: BTreeMap<MsgType, u64>,
    retransmits: [u64; 2],
    timeouts: [u64; 2],
    dup_delivered: [u64; 2],
    backpressure_stalls: [u64; 2],
}

impl MsgCounters {
    /// Messages sent by `domain`.
    #[must_use]
    pub fn sent_by(&self, domain: DomainId) -> u64 {
        self.sent[domain.index()]
    }

    /// Total messages in both directions. Counts *logical* messages: a
    /// message retransmitted five times is still one send.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total payload+header bytes (logical, excluding retransmissions).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages of one kind.
    #[must_use]
    pub fn of_type(&self, ty: MsgType) -> u64 {
        self.by_type.get(&ty).copied().unwrap_or(0)
    }

    /// Retransmissions performed by `domain` after a timeout.
    #[must_use]
    pub fn retransmits_by(&self, domain: DomainId) -> u64 {
        self.retransmits[domain.index()]
    }

    /// Total retransmissions in both directions.
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.retransmits.iter().sum()
    }

    /// Ack timeouts `domain` waited out (each is followed by a
    /// retransmission charged real simulated cycles).
    #[must_use]
    pub fn timeouts_by(&self, domain: DomainId) -> u64 {
        self.timeouts[domain.index()]
    }

    /// Total ack timeouts in both directions.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.iter().sum()
    }

    /// Duplicate deliveries `domain` received and discarded by sequence
    /// number (the sender's ack was lost, so it retransmitted).
    #[must_use]
    pub fn dup_delivered_to(&self, domain: DomainId) -> u64 {
        self.dup_delivered[domain.index()]
    }

    /// Total duplicate deliveries (both receivers).
    #[must_use]
    pub fn dup_delivered(&self) -> u64 {
        self.dup_delivered.iter().sum()
    }

    /// Times `domain`'s sends found the peer ring full and had to stall
    /// for the receiver to drain it (ring-overflow backpressure).
    #[must_use]
    pub fn backpressure_stalls_by(&self, domain: DomainId) -> u64 {
        self.backpressure_stalls[domain.index()]
    }

    /// Total backpressure stalls in both directions.
    #[must_use]
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.iter().sum()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = MsgCounters::default();
    }
}

/// Identifier of one multiplexed logical connection over the shared
/// kernel-pair rings (see [`MessagingLayer::open_stream`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Per-stream bookkeeping. Streams are *logical* connections — every
/// byte still travels through the two physical rings (or the TCP RTT
/// model) and is charged there; the mux adds request/response credit
/// flow control and per-connection accounting on top, without touching
/// the wire model. Stream state is run-scoped (reset by checkpoint
/// restore and quarantine) and never feeds back into simulated timing
/// except through the explicit window check in
/// [`MessagingLayer::stream_send`].
#[derive(Debug, Clone)]
struct StreamState {
    /// The domain that opened the connection (requests flow
    /// initiator → peer, responses peer → initiator).
    initiator: DomainId,
    /// Max unanswered requests the initiator may have outstanding.
    window: u32,
    /// Requests sent but not yet answered.
    in_flight: u32,
    /// Logical messages sent in each direction [initiator, peer].
    sent: [u64; 2],
    /// Wire bytes (header + payload) in each direction.
    bytes: [u64; 2],
    /// Request sends refused because the window was exhausted.
    window_stalls: u64,
}

/// Read-only snapshot of one stream's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// The domain that opened the connection.
    pub initiator: DomainId,
    /// Configured credit window.
    pub window: u32,
    /// Requests currently unanswered.
    pub in_flight: u32,
    /// Requests the initiator has sent.
    pub requests: u64,
    /// Responses the peer has sent back.
    pub responses: u64,
    /// Total wire bytes both ways.
    pub bytes: u64,
    /// Request sends refused on a full window.
    pub window_stalls: u64,
}

/// The messaging layer of a kernel pair.
///
/// # Examples
///
/// ```
/// use stramash_kernel::msg::{Message, MessagingLayer, MsgType, Transport};
/// use stramash_mem::{MemorySystem, PhysAddr};
/// use stramash_sim::ipi::{IpiFabric, NotifyMode};
/// use stramash_sim::{DomainId, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SimConfig::big_pair();
/// let mut ipi = IpiFabric::new(cfg.ipi_latency);
/// let mut mem = MemorySystem::new(cfg)?;
/// let pool = PhysAddr::new(4 << 30);
/// let mut msg = MessagingLayer::new(
///     Transport::Shm { notify: NotifyMode::Interrupt },
///     [pool, pool.offset(64 << 20)],
///     64 << 20,
///     stramash_sim::Cycles::new(157_500),
/// )?;
/// // A DSM page response: ring write + cross-ISA IPI, all timed.
/// let cost = msg.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
/// assert!(cost.raw() > 4200, "at least the 2 µs IPI");
/// assert_eq!(msg.counters().total(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MessagingLayer {
    transport: Transport,
    /// Ring buffer base for messages *received by* each domain.
    ring_base: [PhysAddr; 2],
    ring_len: u64,
    /// Producer cursors (offsets into each ring).
    cursor: [u64; 2],
    /// Bytes written to each ring but not yet consumed by its receiver;
    /// exceeding `ring_len` is the overflow condition that triggers
    /// backpressure instead of silently overwriting unread messages.
    outstanding: [u64; 2],
    /// Per-sender sequence numbers; receivers dedup retransmissions by
    /// sequence (a retransmit after a lost ack re-delivers the same seq).
    next_seq: [u64; 2],
    tcp_rtt: Cycles,
    counters: MsgCounters,
    injector: Option<SharedFaultInjector>,
    tracer: Option<SharedTracer>,
    /// Open multiplexed connections, keyed by id. Run-scoped: not
    /// checkpointed (restore clears it) — streams carry flow-control
    /// and accounting for serving workloads, not simulated machine
    /// state.
    streams: BTreeMap<u32, StreamState>,
    /// Next stream id to hand out.
    next_stream: u32,
}

impl MessagingLayer {
    /// Creates a messaging layer.
    ///
    /// `ring_base[d]` is where messages *to* domain `d` are written —
    /// §8.2 places this 128 MB area differently per hardware model; with
    /// the Figure 4 layout, putting it at the start of the 4 GB pool
    /// reproduces all three placements at once.
    ///
    /// # Errors
    ///
    /// [`MsgError::ZeroRing`] for an empty ring, and
    /// [`MsgError::RingTooSmall`] when the ring cannot hold even one
    /// maximum-size (header + 4 KiB page) message.
    pub fn new(
        transport: Transport,
        ring_base: [PhysAddr; 2],
        ring_len: u64,
        tcp_rtt: Cycles,
    ) -> Result<Self, MsgError> {
        if ring_len == 0 {
            return Err(MsgError::ZeroRing);
        }
        let min = u64::from(MSG_HEADER_BYTES) + 4096;
        if ring_len < min {
            return Err(MsgError::RingTooSmall { ring_len, min });
        }
        Ok(MessagingLayer {
            transport,
            ring_base,
            ring_len,
            cursor: [0, 0],
            outstanding: [0, 0],
            next_seq: [0, 0],
            tcp_rtt,
            counters: MsgCounters::default(),
            injector: None,
            tracer: None,
            streams: BTreeMap::new(),
            next_stream: 0,
        })
    }

    /// The transport in use.
    #[must_use]
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> &MsgCounters {
        &self.counters
    }

    /// Resets the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Installs a fault injector; subsequent sends may be dropped,
    /// corrupted or delayed and recover via timeout + retransmission.
    /// Without an injector the layer consumes zero RNG and charges the
    /// exact fault-free costs.
    pub fn set_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.injector = Some(injector);
    }

    /// Installs the shared event tracer; sends, receives, retransmits
    /// and backpressure stalls are mirrored into it from then on.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Records one event into the tracer, if installed.
    #[inline]
    fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    /// The largest message (header + payload) the rings carry in one
    /// piece.
    #[must_use]
    pub fn max_message_bytes(&self) -> u64 {
        self.ring_len
    }

    /// Validates that `msg` fits the ring in one piece.
    ///
    /// # Errors
    ///
    /// [`MsgError::Oversized`] when it does not. The send path also
    /// clamps internally, so skipping this check degrades gracefully
    /// instead of corrupting the cursor arithmetic.
    pub fn check_fits(&self, msg: Message) -> Result<(), MsgError> {
        let bytes = u64::from(MSG_HEADER_BYTES) + u64::from(msg.payload);
        if bytes > self.ring_len {
            return Err(MsgError::Oversized { bytes, max: self.ring_len });
        }
        Ok(())
    }

    /// Total undelivered wire bytes across both rings. Non-zero means a
    /// receiver may act on a message at its next poll — a cross-domain
    /// coupling that blocks the deferred-epoch horizon.
    #[must_use]
    pub fn outstanding_total(&self) -> u64 {
        self.outstanding[0] + self.outstanding[1]
    }

    /// Opens a multiplexed logical connection initiated by `initiator`
    /// with a credit window of `window` unanswered requests (minimum 1).
    ///
    /// Streams let a serving workload carry thousands of client
    /// connections over the one physical ring pair: each stream gets
    /// request/response flow control and its own accounting, while the
    /// wire costs stay exactly those of [`MessagingLayer::send`] /
    /// [`MessagingLayer::receive`] — opening a stream consumes no
    /// simulated cycles and no RNG.
    pub fn open_stream(&mut self, initiator: DomainId, window: u32) -> StreamId {
        let id = self.next_stream;
        self.next_stream += 1;
        self.streams.insert(
            id,
            StreamState {
                initiator,
                window: window.max(1),
                in_flight: 0,
                sent: [0, 0],
                bytes: [0, 0],
                window_stalls: 0,
            },
        );
        StreamId(id)
    }

    /// Closes a stream, returning its final accounting (`None` if it
    /// was never open).
    pub fn close_stream(&mut self, id: StreamId) -> Option<StreamStats> {
        let stats = self.stream_stats(id);
        self.streams.remove(&id.0);
        stats
    }

    /// Number of currently open streams.
    #[must_use]
    pub fn streams_open(&self) -> usize {
        self.streams.len()
    }

    /// Accounting snapshot for one stream.
    #[must_use]
    pub fn stream_stats(&self, id: StreamId) -> Option<StreamStats> {
        self.streams.get(&id.0).map(|s| StreamStats {
            initiator: s.initiator,
            window: s.window,
            in_flight: s.in_flight,
            requests: s.sent[0],
            responses: s.sent[1],
            bytes: s.bytes[0] + s.bytes[1],
            window_stalls: s.window_stalls,
        })
    }

    /// Sends a *request* on a stream from its initiator, consuming one
    /// window credit. The wire behavior (ring write + IPI or TCP RTT,
    /// backpressure, fault retransmission) is exactly
    /// [`MessagingLayer::send`]. Roles are explicit — request vs
    /// response is a property of the call, never inferred from domains,
    /// because non-migrating designs legitimately serve from the same
    /// domain the client lives on.
    ///
    /// # Errors
    ///
    /// [`MsgError::UnknownStream`] for a closed/unopened stream;
    /// [`MsgError::StreamWindowFull`] when the credit window is
    /// exhausted — the stall is counted in [`StreamStats`] and the
    /// caller decides how to back off (open-loop generators keep
    /// queueing, closed-loop clients block).
    pub fn stream_request(
        &mut self,
        mem: &mut MemorySystem,
        ipi: &mut IpiFabric,
        id: StreamId,
        msg: Message,
    ) -> Result<Cycles, MsgError> {
        let s = self.streams.get_mut(&id.0).ok_or(MsgError::UnknownStream { id: id.0 })?;
        if s.in_flight >= s.window {
            s.window_stalls += 1;
            return Err(MsgError::StreamWindowFull { id: id.0, window: s.window });
        }
        s.in_flight += 1;
        s.sent[0] += 1;
        s.bytes[0] += u64::from(MSG_HEADER_BYTES) + u64::from(msg.payload);
        let from = s.initiator;
        Ok(self.send(mem, ipi, from, msg))
    }

    /// Responder-side receive of a request addressed to `to` (the
    /// domain currently serving this stream). Wire behavior is exactly
    /// [`MessagingLayer::receive`]; no credit changes hands.
    ///
    /// # Errors
    ///
    /// [`MsgError::UnknownStream`] for a closed/unopened stream.
    pub fn stream_serve_receive(
        &mut self,
        mem: &mut MemorySystem,
        id: StreamId,
        to: DomainId,
        msg: Message,
    ) -> Result<Cycles, MsgError> {
        if !self.streams.contains_key(&id.0) {
            return Err(MsgError::UnknownStream { id: id.0 });
        }
        Ok(self.receive(mem, to, msg))
    }

    /// Sends a *response* on a stream from the responder's domain
    /// (`from` — explicit because shard workers live on either kernel).
    ///
    /// # Errors
    ///
    /// [`MsgError::UnknownStream`] for a closed/unopened stream.
    pub fn stream_respond(
        &mut self,
        mem: &mut MemorySystem,
        ipi: &mut IpiFabric,
        id: StreamId,
        from: DomainId,
        msg: Message,
    ) -> Result<Cycles, MsgError> {
        let s = self.streams.get_mut(&id.0).ok_or(MsgError::UnknownStream { id: id.0 })?;
        s.sent[1] += 1;
        s.bytes[1] += u64::from(MSG_HEADER_BYTES) + u64::from(msg.payload);
        Ok(self.send(mem, ipi, from, msg))
    }

    /// Initiator-side receive of a response, returning its window
    /// credit. Wire behavior is exactly [`MessagingLayer::receive`]
    /// addressed to the initiator's domain.
    ///
    /// # Errors
    ///
    /// [`MsgError::UnknownStream`] for a closed/unopened stream.
    pub fn stream_consume(
        &mut self,
        mem: &mut MemorySystem,
        id: StreamId,
        msg: Message,
    ) -> Result<Cycles, MsgError> {
        let s = self.streams.get_mut(&id.0).ok_or(MsgError::UnknownStream { id: id.0 })?;
        s.in_flight = s.in_flight.saturating_sub(1);
        let to = s.initiator;
        Ok(self.receive(mem, to, msg))
    }

    /// Checks the layer's internal invariants, returning one line per
    /// violation (empty = clean). Run by the system auditors after every
    /// fault-injection round.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for d in DomainId::ALL {
            let i = d.index();
            if self.cursor[i] > self.ring_len {
                violations.push(format!(
                    "ring cursor for {d:?} at {} exceeds ring length {}",
                    self.cursor[i], self.ring_len
                ));
            }
            if self.outstanding[i] > self.ring_len {
                violations.push(format!(
                    "outstanding bytes for {d:?} at {} exceed ring length {} (overflow)",
                    self.outstanding[i], self.ring_len
                ));
            }
        }
        for (&id, s) in &self.streams {
            if s.in_flight > s.window {
                violations.push(format!(
                    "stream {id} has {} requests in flight over its window of {}",
                    s.in_flight, s.window
                ));
            }
            if s.sent[1] > s.sent[0] {
                violations.push(format!(
                    "stream {id} recorded {} responses for only {} requests",
                    s.sent[1], s.sent[0]
                ));
            }
        }
        violations
    }

    /// The capped exponential retransmission timeout for attempt `n`
    /// (1-based): `base × 2^min(n−1, 3)`, saturating — an adversarially
    /// large base must clamp rather than silently wrap the shift.
    fn backoff(base: Cycles, attempt: u32) -> Cycles {
        let exp = attempt.saturating_sub(1).min(BACKOFF_CAP);
        Cycles::new(base.raw().saturating_mul(1u64 << exp))
    }

    /// Sends `msg` from `from` to the other domain, returning the cost
    /// charged to the *sender*.
    ///
    /// Reliability is built in: each message carries a sequence number
    /// and is acknowledged by the receiver. If an injected fault drops or
    /// corrupts the transmission (or its ack), the sender waits out a
    /// capped-exponential timeout and retransmits — every retry pays the
    /// real ring-write (or TCP half-RTT) cost again, the receiver dedups
    /// re-deliveries by sequence number, and all of it lands in
    /// [`MsgCounters`] and the per-domain fault statistics. With no
    /// injector installed the fast path is byte- and cycle-identical to
    /// the fault-free model.
    pub fn send(
        &mut self,
        mem: &mut MemorySystem,
        ipi: &mut IpiFabric,
        from: DomainId,
        msg: Message,
    ) -> Cycles {
        let to = from.other();
        // Length arithmetic is u64 end to end: `MSG_HEADER_BYTES +
        // payload` as u32 would wrap for payloads near `u32::MAX`. The
        // on-wire size is additionally clamped to one ring's worth so an
        // oversized message (rejected by `check_fits`) degrades to a
        // bounded write instead of breaking the cursor invariants.
        let total = u64::from(MSG_HEADER_BYTES) + u64::from(msg.payload);
        let wire = total.min(self.ring_len);
        self.counters.sent[from.index()] += 1;
        self.counters.bytes[from.index()] += total;
        *self.counters.by_type.entry(msg.ty).or_insert(0) += 1;
        // Sequence-number the message (modelled inside the 64 B header,
        // so it adds no bytes and no extra timed accesses).
        self.next_seq[from.index()] += 1;

        // Mirrored into the per-domain fault statistics at the end.
        let mut injected = 0u64;
        let mut retried = 0u64;
        let mut recovered = 0u64;
        let mut fatal = 0u64;

        let cycles = match self.transport {
            Transport::Shm { notify } => {
                let mut cycles = Cycles::ZERO;
                // Ring-overflow backpressure: never overwrite unread
                // messages. The sender stalls (~one notify round trip)
                // for the receiver to drain its ring, then restarts at
                // the ring base.
                if self.outstanding[to.index()] + wire > self.ring_len {
                    cycles += Cycles::new(ipi.latency().raw() * 2);
                    self.counters.backpressure_stalls[from.index()] += 1;
                    if let Some(inj) = &self.injector {
                        inj.borrow_mut().note_backpressure();
                    }
                    self.outstanding[to.index()] = 0;
                    self.cursor[to.index()] = 0;
                    self.emit(TraceEvent::MsgBackpressure { from });
                }
                let timeout_base = Cycles::new(ipi.latency().raw() * 2);
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    if attempt > 1 {
                        self.emit(TraceEvent::MsgRetransmit { from, ty: msg.ty.name(), attempt });
                    }
                    let addr = self.slot(to, wire);
                    let payload = vec![0u8; wire_len(wire)];
                    cycles += mem.write_bytes(from, addr, &payload);
                    let fault = match &self.injector {
                        Some(inj) => inj.borrow_mut().msg_fault(),
                        None => None,
                    };
                    match fault {
                        Some(FaultKind::MsgDrop | FaultKind::MsgCorrupt)
                            if attempt < MAX_SEND_ATTEMPTS =>
                        {
                            // Lost in the channel (a corrupt message is
                            // checksum-rejected by the receiver): the ack
                            // never comes, so wait out the timeout and
                            // retransmit.
                            cycles += Self::backoff(timeout_base, attempt);
                            self.counters.timeouts[from.index()] += 1;
                            self.counters.retransmits[from.index()] += 1;
                            injected += 1;
                            retried += 1;
                            recovered += 1;
                            if let Some(inj) = &self.injector {
                                let mut inj = inj.borrow_mut();
                                inj.note_retried(1);
                                inj.note_recovered(1);
                            }
                            continue;
                        }
                        Some(FaultKind::MsgDrop | FaultKind::MsgCorrupt) => {
                            // Retransmission cap reached: deliver the
                            // final attempt but record the protocol gave
                            // up retrying (unreachable under sane plans).
                            injected += 1;
                            fatal += 1;
                            if let Some(inj) = &self.injector {
                                inj.borrow_mut().note_fatal(1);
                            }
                        }
                        Some(FaultKind::MsgDelay) => {
                            // Delivered late: pure added latency.
                            let delay = match &self.injector {
                                Some(inj) => inj.borrow().plan().msg_delay_cycles,
                                None => 0,
                            };
                            cycles += Cycles::new(delay);
                            injected += 1;
                            recovered += 1;
                            if let Some(inj) = &self.injector {
                                inj.borrow_mut().note_recovered(1);
                            }
                        }
                        _ => {}
                    }
                    // Delivered: notify the receiver. The fabric itself
                    // retries injected IPI losses; fold its retry count
                    // into this domain's fault statistics.
                    match notify {
                        NotifyMode::Interrupt => {
                            let fabric_retries = ipi.retries();
                            cycles += ipi.send(from);
                            mem.stats_mut(from).ipi += 1;
                            let lost = ipi.retries() - fabric_retries;
                            injected += lost;
                            retried += lost;
                            recovered += lost;
                        }
                        NotifyMode::Polling => {}
                    }
                    break;
                }
                // Ack leg: a delivered message whose ack is lost looks
                // like a drop to the sender — it retransmits, and the
                // receiver discards the duplicate by sequence number.
                if self.injector.is_some() {
                    let mut ack_attempt = 1u32;
                    loop {
                        let dropped = match &self.injector {
                            Some(inj) => inj.borrow_mut().ack_dropped(),
                            None => false,
                        };
                        if !dropped || ack_attempt >= MAX_SEND_ATTEMPTS {
                            break;
                        }
                        ack_attempt += 1;
                        self.emit(TraceEvent::MsgRetransmit {
                            from,
                            ty: msg.ty.name(),
                            attempt: ack_attempt,
                        });
                        cycles += Self::backoff(timeout_base, ack_attempt);
                        let addr = self.slot(to, wire);
                        let payload = vec![0u8; wire_len(wire)];
                        cycles += mem.write_bytes(from, addr, &payload);
                        if let NotifyMode::Interrupt = notify {
                            cycles += ipi.send(from);
                            mem.stats_mut(from).ipi += 1;
                        }
                        self.counters.timeouts[from.index()] += 1;
                        self.counters.retransmits[from.index()] += 1;
                        self.counters.dup_delivered[to.index()] += 1;
                        injected += 1;
                        retried += 1;
                        recovered += 1;
                        if let Some(inj) = &self.injector {
                            let mut inj = inj.borrow_mut();
                            inj.note_retried(1);
                            inj.note_recovered(1);
                        }
                    }
                }
                self.outstanding[to.index()] += wire;
                cycles
            }
            // One way is half the measured 75 µs round trip; a protocol
            // request/response pair thus costs one full RTT. A dropped
            // segment costs a full-RTT timeout plus the retransmitted
            // half-RTT.
            Transport::Tcp => {
                let mut cycles = Cycles::ZERO;
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    if attempt > 1 {
                        self.emit(TraceEvent::MsgRetransmit { from, ty: msg.ty.name(), attempt });
                    }
                    cycles += self.tcp_rtt / 2;
                    let fault = match &self.injector {
                        Some(inj) => inj.borrow_mut().msg_fault(),
                        None => None,
                    };
                    match fault {
                        Some(FaultKind::MsgDrop | FaultKind::MsgCorrupt)
                            if attempt < MAX_SEND_ATTEMPTS =>
                        {
                            cycles += Self::backoff(self.tcp_rtt, attempt);
                            self.counters.timeouts[from.index()] += 1;
                            self.counters.retransmits[from.index()] += 1;
                            injected += 1;
                            retried += 1;
                            recovered += 1;
                            if let Some(inj) = &self.injector {
                                let mut inj = inj.borrow_mut();
                                inj.note_retried(1);
                                inj.note_recovered(1);
                            }
                            continue;
                        }
                        Some(FaultKind::MsgDrop | FaultKind::MsgCorrupt) => {
                            injected += 1;
                            fatal += 1;
                            if let Some(inj) = &self.injector {
                                inj.borrow_mut().note_fatal(1);
                            }
                        }
                        Some(FaultKind::MsgDelay) => {
                            let delay = match &self.injector {
                                Some(inj) => inj.borrow().plan().msg_delay_cycles,
                                None => 0,
                            };
                            cycles += Cycles::new(delay);
                            injected += 1;
                            recovered += 1;
                            if let Some(inj) = &self.injector {
                                inj.borrow_mut().note_recovered(1);
                            }
                        }
                        _ => {}
                    }
                    break;
                }
                cycles
            }
        };

        if injected + retried + recovered + fatal > 0 {
            let stats = mem.stats_mut(from);
            stats.faults_injected += injected;
            stats.faults_retried += retried;
            stats.faults_recovered += recovered;
            stats.faults_fatal += fatal;
        }
        self.emit(TraceEvent::MsgSend { from, ty: msg.ty.name(), bytes: total, cost: cycles });
        cycles
    }

    /// Receiver-side cost of consuming the oldest message addressed to
    /// `to` (reading it out of the ring). In polling mode the receiver
    /// additionally pays the head-word poll that discovered the message
    /// (§6.2 supports polling in place of interrupt dispatching).
    pub fn receive(&mut self, mem: &mut MemorySystem, to: DomainId, msg: Message) -> Cycles {
        let total = u64::from(MSG_HEADER_BYTES) + u64::from(msg.payload);
        let wire = total.min(self.ring_len);
        let cycles = match self.transport {
            Transport::Shm { notify } => {
                let mut cycles = Cycles::ZERO;
                if notify == NotifyMode::Polling {
                    let (_, c) = mem.read_u64(to, self.ring_base[to.index()]);
                    cycles += c;
                }
                // Consuming the message frees its ring space, releasing
                // any sender backpressure.
                self.outstanding[to.index()] = self.outstanding[to.index()].saturating_sub(wire);
                // Re-read the most recent slot of our ring.
                let addr = self.peek_slot(to, wire);
                let mut buf = vec![0u8; wire_len(wire)];
                cycles + mem.read_bytes(to, addr, &mut buf)
            }
            // Receive-side copy out of the NIC; folded into the RTT.
            Transport::Tcp => Cycles::ZERO,
        };
        self.emit(TraceEvent::MsgReceive { to, ty: msg.ty.name(), bytes: total, cost: cycles });
        cycles
    }

    /// Allocates ring space for a message to `to` and advances the
    /// cursor. The cursor only wraps once the send path has verified the
    /// ring has room (see the backpressure check in
    /// [`MessagingLayer::send`]), so wrapping never overwrites an unread
    /// message.
    fn slot(&mut self, to: DomainId, total: u64) -> PhysAddr {
        let ti = to.index();
        if self.cursor[ti] + total > self.ring_len {
            self.cursor[ti] = 0;
        }
        let addr = self.ring_base[ti].offset(self.cursor[ti]);
        self.cursor[ti] += total;
        addr
    }

    /// The slot just written for `to` (receiver reads it back).
    fn peek_slot(&self, to: DomainId, total: u64) -> PhysAddr {
        let ti = to.index();
        let start = self.cursor[ti].saturating_sub(total);
        self.ring_base[ti].offset(start)
    }

    /// Quarantines a crashed domain: drops every unconsumed message in
    /// its ring (the dead kernel will never drain them) and resets the
    /// producer cursor, so post-recovery sends to a restarted kernel
    /// start from a clean ring. Returns the number of in-flight bytes
    /// discarded.
    pub fn quarantine(&mut self, dead: DomainId) -> u64 {
        let di = dead.index();
        let dropped = self.outstanding[di];
        self.outstanding[di] = 0;
        self.cursor[di] = 0;
        // In-flight requests on every stream died with the rings; the
        // accounting survives for post-mortem, but credits come back so
        // a recovered peer can serve again.
        for s in self.streams.values_mut() {
            s.in_flight = 0;
        }
        dropped
    }

    /// Serializes the layer's mutable state (cursors, outstanding
    /// bytes, sequence numbers, counters) into a checkpoint section.
    /// Transport, ring placement and RTT are config-derived; only the
    /// ring length is written, as a geometry cross-check.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4d53_474c); // "MSGL"
        e.u64(self.ring_len);
        e.u64s(&self.cursor);
        e.u64s(&self.outstanding);
        e.u64s(&self.next_seq);
        e.u64s(&self.counters.sent);
        e.u64s(&self.counters.bytes);
        e.u64(self.counters.by_type.len() as u64);
        for (&ty, &n) in &self.counters.by_type {
            let code = MsgType::ALL.iter().position(|&t| t == ty).expect("ALL is exhaustive");
            e.u8(code as u8);
            e.u64(n);
        }
        e.u64s(&self.counters.retransmits);
        e.u64s(&self.counters.timeouts);
        e.u64s(&self.counters.dup_delivered);
        e.u64s(&self.counters.backpressure_stalls);
    }

    /// Restores state written by [`MessagingLayer::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors; `ConfigMismatch` on a different ring length.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4d53_474c)?;
        if d.u64()? != self.ring_len {
            return Err(CheckpointError::ConfigMismatch);
        }
        let pair = |v: Vec<u64>| -> Result<[u64; 2], CheckpointError> {
            v.try_into().map_err(|_| CheckpointError::Malformed("expected a per-domain pair"))
        };
        self.cursor = pair(d.u64s()?)?;
        self.outstanding = pair(d.u64s()?)?;
        self.next_seq = pair(d.u64s()?)?;
        self.counters.sent = pair(d.u64s()?)?;
        self.counters.bytes = pair(d.u64s()?)?;
        let n = d.len()?;
        let mut by_type = BTreeMap::new();
        for _ in 0..n {
            let code = d.u8()? as usize;
            let ty = *MsgType::ALL
                .get(code)
                .ok_or(CheckpointError::Malformed("unknown message type code"))?;
            by_type.insert(ty, d.u64()?);
        }
        self.counters.by_type = by_type;
        self.counters.retransmits = pair(d.u64s()?)?;
        self.counters.timeouts = pair(d.u64s()?)?;
        self.counters.dup_delivered = pair(d.u64s()?)?;
        self.counters.backpressure_stalls = pair(d.u64s()?)?;
        // Streams are run-scoped serving state, deliberately outside the
        // checkpoint format: a restored machine starts with no logical
        // connections, exactly like a rebooted kernel pair.
        self.streams.clear();
        self.next_stream = 0;
        Ok(())
    }
}

/// Host-side buffer length for an on-wire byte count (already clamped
/// to the ring length, which on any supported host fits `usize`).
fn wire_len(bytes: u64) -> usize {
    usize::try_from(bytes).expect("ring length exceeds the host address space")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::{HardwareModel, SimConfig};

    const POOL: u64 = 4 << 30;

    fn setup(model: HardwareModel, transport: Transport) -> (MemorySystem, IpiFabric, MessagingLayer) {
        let cfg = SimConfig::big_pair().with_hw_model(model);
        let ipi = IpiFabric::new(cfg.ipi_latency);
        let tcp = cfg.tcp_rtt;
        let mem = MemorySystem::new(cfg).unwrap();
        let ml = MessagingLayer::new(
            transport,
            [PhysAddr::new(POOL), PhysAddr::new(POOL + (64 << 20))],
            64 << 20,
            tcp,
        )
        .unwrap();
        (mem, ipi, ml)
    }

    #[test]
    fn shm_send_charges_ring_writes_and_ipi() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexRequest));
        // 64-byte header = 1 cache line into remote-shared memory (640)
        // plus the 2 µs IPI (4200 cycles at 2.1 GHz).
        assert_eq!(c.raw(), 640 + 4200);
        assert_eq!(ipi.delivered_to(DomainId::ARM), 1);
        assert_eq!(mem.stats(DomainId::X86).ipi, 1);
        assert_eq!(ml.counters().total(), 1);
    }

    #[test]
    fn polling_skips_ipi() {
        let (mut mem, mut ipi, mut ml) =
            setup(HardwareModel::Shared, Transport::Shm { notify: NotifyMode::Polling });
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexRequest));
        assert_eq!(c.raw(), 640);
        assert_eq!(ipi.delivered_to(DomainId::ARM), 0);
    }

    #[test]
    fn ring_placement_feels_hardware_model() {
        // §8.2: Separated-SHM has the ring local to x86, remote to Arm.
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Separated,
            Transport::Shm { notify: NotifyMode::Polling },
        );
        let from_x86 =
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::PageRequest));
        mem.flush_caches();
        let from_arm =
            ml.send(&mut mem, &mut ipi, DomainId::ARM, Message::control(MsgType::PageRequest));
        assert!(from_x86 < from_arm, "x86 writes locally, Arm pays CXL: {from_x86} vs {from_arm}");
    }

    #[test]
    fn tcp_charges_half_rtt_each_way() {
        let (mut mem, mut ipi, mut ml) = setup(HardwareModel::Shared, Transport::Tcp);
        let send = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
        let recv = ml.receive(&mut mem, DomainId::ARM, Message::page(MsgType::PageResponse));
        // 75 µs at 2.1 GHz = 157_500 cycles per round trip.
        assert_eq!(send.raw() + recv.raw(), 157_500 / 2);
    }

    #[test]
    fn receive_reads_back_what_was_sent() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Polling },
        );
        let msg = Message::page(MsgType::PageResponse);
        ml.send(&mut mem, &mut ipi, DomainId::X86, msg);
        let c = ml.receive(&mut mem, DomainId::ARM, msg);
        // (64 + 4096) bytes = 65 lines; all were just written by the
        // peer, so the reader pays snoop-data transitions.
        assert!(c.raw() > 0);
        assert!(mem.stats(DomainId::ARM).snoop_data_hits > 0);
    }

    #[test]
    fn counters_by_type_and_bytes() {
        let (mut mem, mut ipi, mut ml) = setup(HardwareModel::Shared, Transport::Tcp);
        for _ in 0..3 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::PageRequest));
        }
        ml.send(&mut mem, &mut ipi, DomainId::ARM, Message::page(MsgType::PageResponse));
        let c = ml.counters();
        assert_eq!(c.of_type(MsgType::PageRequest), 3);
        assert_eq!(c.of_type(MsgType::PageResponse), 1);
        assert_eq!(c.of_type(MsgType::FutexWake), 0);
        assert_eq!(c.sent_by(DomainId::X86), 3);
        assert_eq!(c.total(), 4);
        assert_eq!(c.total_bytes(), 3 * 64 + 64 + 4096);
        ml.reset_counters();
        assert_eq!(ml.counters().total(), 0);
    }

    #[test]
    fn ring_full_stalls_instead_of_silent_wrap() {
        let cfg = SimConfig::big_pair();
        let tcp = cfg.tcp_rtt;
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut ipi = IpiFabric::new(Cycles::new(10));
        // Tiny 8 KB ring: a second unconsumed page message overflows it.
        let mut ml = MessagingLayer::new(
            Transport::Shm { notify: NotifyMode::Polling },
            [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
            8192,
            tcp,
        )
        .unwrap();
        for _ in 0..5 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageResponse));
        }
        assert_eq!(ml.counters().total(), 5);
        // Every send after the first found the ring full and stalled for
        // the receiver to drain it — no silent overwrite.
        assert_eq!(ml.counters().backpressure_stalls(), 4);
        assert_eq!(ml.counters().backpressure_stalls_by(DomainId::X86), 4);
        assert!(ml.audit().is_empty(), "cursor must stay inside the ring");
    }

    #[test]
    fn receive_drains_ring_and_avoids_backpressure() {
        let cfg = SimConfig::big_pair();
        let tcp = cfg.tcp_rtt;
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut ipi = IpiFabric::new(Cycles::new(10));
        let mut ml = MessagingLayer::new(
            Transport::Shm { notify: NotifyMode::Polling },
            [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
            8192,
            tcp,
        )
        .unwrap();
        let msg = Message::page(MsgType::PageResponse);
        for _ in 0..5 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, msg);
            ml.receive(&mut mem, DomainId::ARM, msg);
        }
        assert_eq!(ml.counters().backpressure_stalls(), 0);
        assert!(ml.audit().is_empty());
    }

    #[test]
    fn constructor_rejects_degenerate_rings() {
        let cfg = SimConfig::big_pair();
        let mk = |len| {
            MessagingLayer::new(
                Transport::Shm { notify: NotifyMode::Polling },
                [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
                len,
                cfg.tcp_rtt,
            )
        };
        assert_eq!(mk(0).unwrap_err(), MsgError::ZeroRing);
        assert_eq!(mk(1024).unwrap_err(), MsgError::RingTooSmall { ring_len: 1024, min: 4160 });
        assert!(mk(4160).is_ok());
        assert!(!mk(0).unwrap_err().to_string().is_empty());
    }

    #[test]
    fn backoff_is_capped_and_saturates() {
        let base = Cycles::new(100);
        assert_eq!(MessagingLayer::backoff(base, 1), Cycles::new(100));
        assert_eq!(MessagingLayer::backoff(base, 2), Cycles::new(200));
        assert_eq!(MessagingLayer::backoff(base, 4), Cycles::new(800));
        // The exponent caps at 2^3 no matter how many attempts.
        assert_eq!(MessagingLayer::backoff(base, 50), Cycles::new(800));
        // Attempt 0 (not a real attempt number) must not underflow.
        assert_eq!(MessagingLayer::backoff(base, 0), Cycles::new(100));
        // A huge base saturates instead of wrapping the shift.
        let huge = Cycles::new(u64::MAX / 2);
        assert_eq!(MessagingLayer::backoff(huge, 16), Cycles::new(u64::MAX));
    }

    #[test]
    fn oversized_message_is_rejected_and_send_stays_bounded() {
        let cfg = SimConfig::big_pair();
        let tcp = cfg.tcp_rtt;
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut ipi = IpiFabric::new(Cycles::new(10));
        let mut ml = MessagingLayer::new(
            Transport::Shm { notify: NotifyMode::Polling },
            [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
            8192,
            tcp,
        )
        .unwrap();
        assert_eq!(ml.max_message_bytes(), 8192);
        assert!(ml.check_fits(Message::page(MsgType::PageResponse)).is_ok());
        // A payload at the u32 boundary: the old u32 length arithmetic
        // would wrap `64 + u32::MAX` to 63 bytes; the u64 path reports
        // the true size.
        let huge = Message { ty: MsgType::KvRequest, payload: u32::MAX };
        assert_eq!(
            ml.check_fits(huge),
            Err(MsgError::Oversized { bytes: 64 + u64::from(u32::MAX), max: 8192 })
        );
        assert!(ml.check_fits(huge).unwrap_err().to_string().contains("exceeds"));
        // An unvalidated oversized send degrades to a ring-sized write:
        // counters record the logical size, cursors stay in bounds.
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, huge);
        assert!(c.raw() > 0);
        assert_eq!(ml.counters().total(), 1);
        assert_eq!(ml.counters().total_bytes(), 64 + u64::from(u32::MAX));
        assert!(ml.audit().is_empty(), "oversized send must not corrupt the cursors");
        let r = ml.receive(&mut mem, DomainId::ARM, huge);
        assert!(r.raw() > 0);
        assert!(ml.audit().is_empty());
    }

    #[test]
    fn exact_fit_message_fills_ring_without_overflow() {
        let cfg = SimConfig::big_pair();
        let tcp = cfg.tcp_rtt;
        let mut mem = MemorySystem::new(cfg).unwrap();
        let mut ipi = IpiFabric::new(Cycles::new(10));
        let mut ml = MessagingLayer::new(
            Transport::Shm { notify: NotifyMode::Polling },
            [PhysAddr::new(POOL), PhysAddr::new(POOL + 8192)],
            8192,
            tcp,
        )
        .unwrap();
        // Exactly one ring's worth: header + (8192 - 64) payload.
        let exact = Message { ty: MsgType::KvRequest, payload: 8192 - 64 };
        assert!(ml.check_fits(exact).is_ok());
        ml.send(&mut mem, &mut ipi, DomainId::X86, exact);
        assert!(ml.audit().is_empty());
        // One byte more no longer fits.
        let over = Message { ty: MsgType::KvRequest, payload: 8192 - 63 };
        assert!(matches!(ml.check_fits(over), Err(MsgError::Oversized { bytes: 8193, max: 8192 })));
    }

    #[test]
    fn injected_drop_retransmits_and_charges_timeout() {
        use stramash_sim::{shared_injector, FaultPlan};
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let inj = shared_injector(FaultPlan::none().with_msg_drop(0.4), 0x5eed);
        ml.set_fault_injector(inj.clone());
        let baseline = 640 + 4200; // fault-free header send cost
        let mut total = Cycles::ZERO;
        let sends = 200u64;
        for _ in 0..sends {
            total +=
                ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexRequest));
        }
        let c = ml.counters();
        assert_eq!(c.total(), sends, "retransmits must not inflate the logical count");
        assert!(c.retransmits() > 0, "40% drop over 200 sends must retransmit");
        assert_eq!(c.retransmits(), c.timeouts());
        assert!(
            total.raw() > sends * baseline,
            "retries must cost real cycles: {total} vs {}",
            sends * baseline
        );
        let fc = inj.borrow().counters();
        assert_eq!(fc.retried, c.retransmits());
        assert_eq!(fc.recovered, fc.injected, "every drop must be recovered");
        assert_eq!(fc.fatal, 0);
        // Recoveries are visible in the per-domain stats block.
        let s = mem.stats(DomainId::X86);
        assert_eq!(s.faults_injected, fc.injected);
        assert_eq!(s.faults_recovered, fc.recovered);
        assert!(s.faults_retried > 0);
    }

    #[test]
    fn lost_ack_causes_duplicate_delivery_and_dedup() {
        use stramash_sim::{shared_injector, FaultPlan};
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Polling },
        );
        let inj = shared_injector(FaultPlan::none().with_ack_drop(0.5), 0xacc);
        ml.set_fault_injector(inj);
        for _ in 0..100 {
            ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::VmaRequest));
        }
        let c = ml.counters();
        assert!(c.dup_delivered() > 0, "lost acks must re-deliver");
        assert_eq!(c.dup_delivered_to(DomainId::ARM), c.dup_delivered());
        assert_eq!(c.retransmits(), c.dup_delivered(), "each dup is one retransmit");
        assert_eq!(c.total(), 100, "dedup keeps the logical count exact");
    }

    #[test]
    fn delay_fault_adds_latency_but_delivers() {
        use stramash_sim::{shared_injector, FaultPlan};
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let inj = shared_injector(FaultPlan::none().with_msg_delay(1.0, 9999), 1);
        ml.set_fault_injector(inj);
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::control(MsgType::FutexWake));
        assert_eq!(c.raw(), 640 + 4200 + 9999);
        assert_eq!(ml.counters().retransmits(), 0);
        assert_eq!(mem.stats(DomainId::X86).faults_recovered, 1);
    }

    #[test]
    fn tcp_drop_retransmits_with_rtt_timeout() {
        use stramash_sim::{shared_injector, FaultPlan};
        let (mut mem, mut ipi, mut ml) = setup(HardwareModel::Shared, Transport::Tcp);
        // Drop exactly the first transmission attempt.
        let inj = shared_injector(FaultPlan::none().with_msg_drop(1.0).with_window(0, 1), 2);
        ml.set_fault_injector(inj);
        let c = ml.send(&mut mem, &mut ipi, DomainId::X86, Message::page(MsgType::PageRequest));
        // half-RTT (lost) + one-RTT timeout + half-RTT retransmit.
        assert_eq!(c.raw(), 157_500 / 2 + 157_500 + 157_500 / 2);
        assert_eq!(ml.counters().retransmits(), 1);
    }

    #[test]
    fn streams_multiplex_and_cost_like_raw_sends() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let s = ml.open_stream(DomainId::X86, 4);
        // A request on a stream charges exactly what the raw send does.
        let req = Message { ty: MsgType::KvRequest, payload: 64 };
        let on_stream = ml.stream_request(&mut mem, &mut ipi, s, req).unwrap();
        let raw = ml.send(&mut mem, &mut ipi, DomainId::X86, req);
        assert_eq!(on_stream, raw, "mux must not perturb wire costs");
        let st = ml.stream_stats(s).unwrap();
        assert_eq!(st.in_flight, 1);
        assert_eq!(st.requests, 1);
        // The server picks it up, responds, and the initiator's consume
        // returns the credit.
        ml.stream_serve_receive(&mut mem, s, DomainId::ARM, req).unwrap();
        let resp = Message { ty: MsgType::KvResponse, payload: 128 };
        ml.stream_respond(&mut mem, &mut ipi, s, DomainId::ARM, resp).unwrap();
        ml.stream_consume(&mut mem, s, resp).unwrap();
        let st = ml.stream_stats(s).unwrap();
        assert_eq!(st.in_flight, 0);
        assert_eq!(st.responses, 1);
        assert!(st.bytes > 0);
        assert!(ml.audit().is_empty());
        assert_eq!(ml.close_stream(s).unwrap().requests, 1);
        assert_eq!(ml.streams_open(), 0);
        assert!(matches!(
            ml.stream_request(&mut mem, &mut ipi, s, req),
            Err(MsgError::UnknownStream { .. })
        ));
    }

    #[test]
    fn stream_roles_are_explicit_not_domain_inferred() {
        // A non-migrating design serves from the client's own domain;
        // a response sent from that domain must still count as a
        // response, not consume a fresh request credit.
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let s = ml.open_stream(DomainId::X86, 1);
        let req = Message::control(MsgType::KvRequest);
        ml.stream_request(&mut mem, &mut ipi, s, req).unwrap();
        // Same-domain responder.
        ml.stream_serve_receive(&mut mem, s, DomainId::X86, req).unwrap();
        let resp = Message::control(MsgType::KvResponse);
        ml.stream_respond(&mut mem, &mut ipi, s, DomainId::X86, resp).unwrap();
        ml.stream_consume(&mut mem, s, resp).unwrap();
        let st = ml.stream_stats(s).unwrap();
        assert_eq!((st.requests, st.responses, st.in_flight), (1, 1, 0));
        assert_eq!(st.window_stalls, 0);
        assert!(ml.audit().is_empty());
    }

    #[test]
    fn stream_window_exhaustion_counts_stalls() {
        let (mut mem, mut ipi, mut ml) = setup(
            HardwareModel::Shared,
            Transport::Shm { notify: NotifyMode::Interrupt },
        );
        let s = ml.open_stream(DomainId::ARM, 2);
        let req = Message::control(MsgType::KvRequest);
        ml.stream_request(&mut mem, &mut ipi, s, req).unwrap();
        ml.stream_request(&mut mem, &mut ipi, s, req).unwrap();
        assert!(matches!(
            ml.stream_request(&mut mem, &mut ipi, s, req),
            Err(MsgError::StreamWindowFull { window: 2, .. })
        ));
        let st = ml.stream_stats(s).unwrap();
        assert_eq!(st.window_stalls, 1);
        assert_eq!(st.in_flight, 2);
        // Window credits come back after a crash quarantine.
        ml.quarantine(DomainId::X86);
        assert_eq!(ml.stream_stats(s).unwrap().in_flight, 0);
    }
}
