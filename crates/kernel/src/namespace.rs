//! Kernel namespaces and the fused-namespace configuration.
//!
//! §6.6: "For applications that migrate inter-ISA, Stramash-Linux enables
//! the same mount, PID, net, UTS, user, and cgroup namespaces. These
//! provide the same environment when an application migrates. Also, the
//! same list of CPUs including topological information is available on
//! every kernel instance."

use std::collections::BTreeMap;
use std::fmt;
use stramash_sim::DomainId;

/// The namespace kinds the paper fuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NamespaceKind {
    /// Mount table.
    Mount,
    /// Process identifiers.
    Pid,
    /// Network stack.
    Net,
    /// Hostname / domain name.
    Uts,
    /// User/group mappings.
    User,
    /// Control groups.
    Cgroup,
}

impl NamespaceKind {
    /// All six fused kinds.
    pub const ALL: [NamespaceKind; 6] = [
        NamespaceKind::Mount,
        NamespaceKind::Pid,
        NamespaceKind::Net,
        NamespaceKind::Uts,
        NamespaceKind::User,
        NamespaceKind::Cgroup,
    ];
}

impl fmt::Display for NamespaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NamespaceKind::Mount => "mount",
            NamespaceKind::Pid => "pid",
            NamespaceKind::Net => "net",
            NamespaceKind::Uts => "uts",
            NamespaceKind::User => "user",
            NamespaceKind::Cgroup => "cgroup",
        };
        f.write_str(s)
    }
}

/// A namespace identity (equal ids = same environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NamespaceId(pub u64);

/// One CPU entry in the fused topology list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuInfo {
    /// Global CPU index.
    pub cpu: u32,
    /// The domain (ISA group) the CPU belongs to.
    pub domain: DomainId,
    /// Socket/package id within the domain.
    pub socket: u32,
}

/// The namespace view of one kernel instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceSet {
    ids: BTreeMap<NamespaceKind, NamespaceId>,
    cpus: Vec<CpuInfo>,
}

impl NamespaceSet {
    /// A private namespace set (fresh ids derived from `seed` — what a
    /// shared-nothing multiple-kernel boot produces).
    #[must_use]
    pub fn private(seed: u64) -> Self {
        let ids = NamespaceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, NamespaceId(seed * 100 + i as u64)))
            .collect();
        NamespaceSet { ids, cpus: Vec::new() }
    }

    /// The identity of one namespace kind.
    #[must_use]
    pub fn id(&self, kind: NamespaceKind) -> NamespaceId {
        self.ids[&kind]
    }

    /// Replaces every id with the peer's — the §6.6 fuse operation.
    pub fn fuse_with(&mut self, other: &NamespaceSet) {
        self.ids = other.ids.clone();
        self.cpus = other.cpus.clone();
    }

    /// Whether both sets present the same environment for every kind.
    #[must_use]
    pub fn is_fused_with(&self, other: &NamespaceSet) -> bool {
        NamespaceKind::ALL.iter().all(|&k| self.id(k) == other.id(k)) && self.cpus == other.cpus
    }

    /// Installs the fused CPU list ("the same list of CPUs including
    /// topological information", §6.6).
    pub fn set_cpus(&mut self, cpus: Vec<CpuInfo>) {
        self.cpus = cpus;
    }

    /// The visible CPU list.
    #[must_use]
    pub fn cpus(&self) -> &[CpuInfo] {
        &self.cpus
    }

    /// CPUs belonging to one domain.
    #[must_use]
    pub fn cpus_of(&self, domain: DomainId) -> usize {
        self.cpus.iter().filter(|c| c.domain == domain).count()
    }
}

/// Builds the fused CPU topology both kernels expose.
#[must_use]
pub fn fused_cpu_list(x86_cores: u32, arm_cores: u32) -> Vec<CpuInfo> {
    let mut cpus = Vec::with_capacity((x86_cores + arm_cores) as usize);
    for c in 0..x86_cores {
        cpus.push(CpuInfo { cpu: c, domain: DomainId::X86, socket: 0 });
    }
    for c in 0..arm_cores {
        cpus.push(CpuInfo { cpu: x86_cores + c, domain: DomainId::ARM, socket: 1 });
    }
    cpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_sets_differ() {
        let a = NamespaceSet::private(1);
        let b = NamespaceSet::private(2);
        assert!(!a.is_fused_with(&b));
        assert_ne!(a.id(NamespaceKind::Pid), b.id(NamespaceKind::Pid));
    }

    #[test]
    fn fuse_makes_environments_identical() {
        let a = NamespaceSet::private(1);
        let mut b = NamespaceSet::private(2);
        b.fuse_with(&a);
        assert!(b.is_fused_with(&a));
        for k in NamespaceKind::ALL {
            assert_eq!(a.id(k), b.id(k));
        }
    }

    #[test]
    fn fused_cpu_topology_visible_everywhere() {
        let cpus = fused_cpu_list(52, 64);
        let mut a = NamespaceSet::private(1);
        a.set_cpus(cpus.clone());
        let mut b = NamespaceSet::private(2);
        b.fuse_with(&a);
        assert_eq!(b.cpus().len(), 116);
        assert_eq!(b.cpus_of(DomainId::X86), 52);
        assert_eq!(b.cpus_of(DomainId::ARM), 64);
    }

    #[test]
    fn kind_display() {
        assert_eq!(NamespaceKind::Cgroup.to_string(), "cgroup");
        assert_eq!(NamespaceKind::ALL.len(), 6);
    }
}
