//! Kernel-level domain failure detection.
//!
//! The platform's failure model is fail-stop at domain granularity: a
//! kernel instance (and its cores) halts silently, but DRAM — including
//! the CXL-attached shared pool — survives. Detection piggybacks on the
//! messaging layer: while armed, each live kernel sends a
//! [`MsgType::Heartbeat`](crate::msg::MsgType::Heartbeat) beacon to its
//! peer every supervisor step. A crashed kernel stops beaconing; after
//! `threshold` consecutive silent steps the survivor declares it dead
//! and quarantines it — unconsumed ring messages are dropped, and
//! waiters queued behind the dead domain's futex holders are surfaced
//! so the OS can wake them with
//! [`OsError::OwnerDied`](crate::system::OsError::OwnerDied).
//!
//! The watchdog is entirely opt-in: a disarmed watchdog sends no
//! messages, charges no cycles and consumes no RNG, so runs without one
//! are byte-identical to builds that predate it.

use crate::futex::Waiter;
use stramash_sim::DomainId;

/// Consecutive missed heartbeats before a domain is declared dead.
pub const DEFAULT_THRESHOLD: u32 = 3;

/// What the watchdog found when it declared a domain dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// The domain declared dead.
    pub dead: DomainId,
    /// Heartbeats missed before the declaration.
    pub missed: u32,
    /// Unconsumed in-flight message bytes dropped from the dead
    /// domain's ring.
    pub dropped_msg_bytes: u64,
    /// Surviving waiters (per kernel) that were queued on futexes
    /// poisoned by the dead domain, as `(futex address, waiter)` —
    /// the OS wakes each with `OwnerDied`.
    pub orphaned_waiters: [Vec<(u64, Waiter)>; 2],
}

/// Per-platform watchdog state (owned by the base system).
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    /// Armed? Disarmed watchdogs are completely inert.
    enabled: bool,
    /// Missed-beat threshold for declaring a domain dead.
    threshold: u32,
    /// Consecutive steps without a heartbeat, per domain.
    missed: [u32; 2],
    /// Domains that have halted (fail-stop) but are not yet detected.
    crashed: [bool; 2],
    /// Domains declared dead by the detector.
    dead: [bool; 2],
    /// Heartbeats observed per domain (diagnostics).
    beats: [u64; 2],
}

impl Watchdog {
    /// A disarmed watchdog.
    #[must_use]
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// Arms the watchdog with a missed-beat threshold (0 is clamped
    /// to 1: a domain can never be declared dead for free).
    pub fn arm(&mut self, threshold: u32) {
        self.enabled = true;
        self.threshold = threshold.max(1);
    }

    /// Whether the watchdog is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.enabled
    }

    /// Marks a domain as halted (the injected fail-stop). Detection
    /// still takes `threshold` silent steps.
    pub fn mark_crashed(&mut self, domain: DomainId) {
        self.crashed[domain.index()] = true;
    }

    /// Whether the domain has halted (crashed or already declared dead).
    #[must_use]
    pub fn is_halted(&self, domain: DomainId) -> bool {
        self.crashed[domain.index()] || self.dead[domain.index()]
    }

    /// Whether the domain has been *declared* dead by the detector.
    #[must_use]
    pub fn is_dead(&self, domain: DomainId) -> bool {
        self.dead[domain.index()]
    }

    /// Heartbeats observed from `domain`.
    #[must_use]
    pub fn beats(&self, domain: DomainId) -> u64 {
        self.beats[domain.index()]
    }

    /// Consecutive missed beats for `domain`.
    #[must_use]
    pub fn missed(&self, domain: DomainId) -> u32 {
        self.missed[domain.index()]
    }

    /// Records one heartbeat round: `beat[d]` says whether domain `d`
    /// beaconed this step. Returns the domain newly crossing the
    /// missed-beat threshold, if any.
    pub fn observe(&mut self, beat: [bool; 2]) -> Option<(DomainId, u32)> {
        if !self.enabled {
            return None;
        }
        for d in DomainId::ALL {
            let i = d.index();
            if self.dead[i] {
                continue;
            }
            if beat[i] {
                self.beats[i] += 1;
                self.missed[i] = 0;
            } else {
                self.missed[i] += 1;
                if self.missed[i] >= self.threshold {
                    self.dead[i] = true;
                    return Some((d, self.missed[i]));
                }
            }
        }
        None
    }

    /// Clears crash/death flags after a successful recovery (restart
    /// from checkpoint); the armed state and threshold are kept.
    pub fn reset_after_recovery(&mut self) {
        self.missed = [0, 0];
        self.crashed = [false, false];
        self.dead = [false, false];
    }

    /// Serializes the watchdog into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x5744_4753); // "WDGS"
        e.bool(self.enabled);
        e.u32(self.threshold);
        for i in 0..2 {
            e.u32(self.missed[i]);
            e.bool(self.crashed[i]);
            e.bool(self.dead[i]);
            e.u64(self.beats[i]);
        }
    }

    /// Restores state written by [`Watchdog::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x5744_4753)?;
        self.enabled = d.bool()?;
        self.threshold = d.u32()?;
        for i in 0..2 {
            self.missed[i] = d.u32()?;
            self.crashed[i] = d.bool()?;
            self.dead[i] = d.bool()?;
            self.beats[i] = d.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_watchdog_is_inert() {
        let mut w = Watchdog::new();
        assert!(!w.is_armed());
        assert_eq!(w.observe([false, false]), None);
        assert!(!w.is_dead(DomainId::ARM));
    }

    #[test]
    fn detects_after_threshold_misses() {
        let mut w = Watchdog::new();
        w.arm(3);
        w.mark_crashed(DomainId::ARM);
        assert!(w.is_halted(DomainId::ARM));
        assert!(!w.is_dead(DomainId::ARM), "halt is silent until detected");
        assert_eq!(w.observe([true, false]), None);
        assert_eq!(w.observe([true, false]), None);
        assert_eq!(w.observe([true, false]), Some((DomainId::ARM, 3)));
        assert!(w.is_dead(DomainId::ARM));
        assert!(!w.is_dead(DomainId::X86));
        // A dead domain is not re-declared.
        assert_eq!(w.observe([true, false]), None);
        assert_eq!(w.beats(DomainId::X86), 4);
    }

    #[test]
    fn beat_resets_miss_counter() {
        let mut w = Watchdog::new();
        w.arm(2);
        assert_eq!(w.observe([true, false]), None);
        assert_eq!(w.missed(DomainId::ARM), 1);
        assert_eq!(w.observe([true, true]), None);
        assert_eq!(w.missed(DomainId::ARM), 0, "a beat clears the run of misses");
    }

    #[test]
    fn recovery_reset_keeps_arming() {
        let mut w = Watchdog::new();
        w.arm(1);
        w.mark_crashed(DomainId::X86);
        assert_eq!(w.observe([false, true]), Some((DomainId::X86, 1)));
        w.reset_after_recovery();
        assert!(w.is_armed());
        assert!(!w.is_halted(DomainId::X86));
        assert!(!w.is_dead(DomainId::X86));
    }

    #[test]
    fn state_roundtrip() {
        let mut w = Watchdog::new();
        w.arm(3);
        w.observe([true, false]);
        w.observe([true, false]);
        let mut e = stramash_sim::checkpoint::Encoder::new();
        w.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut back = Watchdog::new();
        back.load_state(&mut stramash_sim::checkpoint::Decoder::new(&bytes)).unwrap();
        assert_eq!(back.missed(DomainId::ARM), 2);
        assert_eq!(back.beats(DomainId::X86), 2);
        assert!(back.is_armed());
    }
}
