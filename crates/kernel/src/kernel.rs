//! Kernel instances.
//!
//! One [`KernelInstance`] per ISA domain, each with its own frame
//! allocator (its boot-time private memory, §6.1), futex table,
//! namespaces, and atomic/consistency configuration.

use crate::frame::FrameAllocator;
use crate::futex::FutexTable;
use crate::namespace::NamespaceSet;
use stramash_isa::atomic::AtomicModel;
use stramash_isa::consistency::ConsistencyConfig;
use stramash_isa::IsaKind;
use stramash_sim::DomainId;

/// Per-kernel fault/operation counters used by the experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Page faults handled locally by this kernel.
    pub local_faults: u64,
    /// Faults for which this kernel touched the *other* kernel's page
    /// table directly (Stramash remote path).
    pub remote_pt_inserts: u64,
    /// Faults resolved by the origin kernel on our behalf via messages
    /// (Popcorn always; Stramash only for missing upper tables, §9.2.3).
    pub origin_handled_faults: u64,
    /// Pages whose contents were replicated to this kernel (DSM).
    pub replicated_pages: u64,
    /// DSM invalidations received.
    pub dsm_invalidations: u64,
    /// Futex operations performed by threads on this kernel.
    pub futex_ops: u64,
    /// Thread migrations into this kernel.
    pub migrations_in: u64,
}

/// One kernel instance of the pair.
#[derive(Debug)]
pub struct KernelInstance {
    /// The domain this kernel runs on.
    pub domain: DomainId,
    /// The kernel's ISA.
    pub isa: IsaKind,
    /// Physical frame allocator over the kernel's owned regions.
    pub frames: FrameAllocator,
    /// This kernel's futex table ("Futex locking list", §6.5).
    pub futexes: FutexTable,
    /// Namespace view (fused after boot under Stramash, §6.6).
    pub namespaces: NamespaceSet,
    /// Atomics configuration (LSE on, per the paper).
    pub atomics: AtomicModel,
    /// Consistency configuration (TSO everywhere, §3).
    pub consistency: ConsistencyConfig,
    /// Experiment counters.
    pub counters: KernelCounters,
}

impl KernelInstance {
    /// Creates a kernel for `domain` with no memory yet (the boot layer
    /// assigns regions).
    #[must_use]
    pub fn new(domain: DomainId) -> Self {
        let isa = IsaKind::of_domain(domain);
        KernelInstance {
            domain,
            isa,
            frames: FrameAllocator::new(),
            futexes: FutexTable::new(),
            namespaces: NamespaceSet::private(domain.index() as u64 + 1),
            atomics: AtomicModel::paper_default(isa),
            consistency: ConsistencyConfig::paper_default(isa),
            counters: KernelCounters::default(),
        }
    }

    /// Resets the experiment counters (memory ownership is preserved).
    pub fn reset_counters(&mut self) {
        self.counters = KernelCounters::default();
    }

    /// Serializes the kernel's mutable state (frames, futexes,
    /// counters) into a checkpoint section. Namespaces, atomics and
    /// consistency are boot configuration and are rebuilt, not restored.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4b52_4e4c); // "KRNL"
        e.u8(self.domain.index() as u8);
        self.frames.save_state(e);
        self.futexes.save_state(e);
        let c = &self.counters;
        for v in [
            c.local_faults,
            c.remote_pt_inserts,
            c.origin_handled_faults,
            c.replicated_pages,
            c.dsm_invalidations,
            c.futex_ops,
            c.migrations_in,
        ] {
            e.u64(v);
        }
    }

    /// Restores state written by [`KernelInstance::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors; `KindMismatch` if the section belongs to the
    /// other domain's kernel.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4b52_4e4c)?;
        if d.u8()? != self.domain.index() as u8 {
            return Err(CheckpointError::KindMismatch);
        }
        self.frames.load_state(d)?;
        self.futexes.load_state(d)?;
        self.counters = KernelCounters {
            local_faults: d.u64()?,
            remote_pt_inserts: d.u64()?,
            origin_handled_faults: d.u64()?,
            replicated_pages: d.u64()?,
            dsm_invalidations: d.u64()?,
            futex_ops: d.u64()?,
            migrations_in: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_isa::atomic::cross_isa_atomics_sound;
    use stramash_isa::consistency::models_compatible;

    #[test]
    fn kernels_get_their_domains_isa() {
        let x = KernelInstance::new(DomainId::X86);
        let a = KernelInstance::new(DomainId::ARM);
        assert_eq!(x.isa, IsaKind::X86_64);
        assert_eq!(a.isa, IsaKind::Aarch64);
    }

    #[test]
    fn paper_pair_is_lock_and_consistency_sound() {
        let x = KernelInstance::new(DomainId::X86);
        let a = KernelInstance::new(DomainId::ARM);
        assert!(cross_isa_atomics_sound(&x.atomics, &a.atomics));
        assert!(models_compatible(&x.consistency, &a.consistency));
    }

    #[test]
    fn fresh_kernels_have_private_namespaces() {
        let x = KernelInstance::new(DomainId::X86);
        let a = KernelInstance::new(DomainId::ARM);
        assert!(!x.namespaces.is_fused_with(&a.namespaces));
    }

    #[test]
    fn counters_reset() {
        let mut k = KernelInstance::new(DomainId::X86);
        k.counters.local_faults = 5;
        k.reset_counters();
        assert_eq!(k.counters, KernelCounters::default());
    }
}
