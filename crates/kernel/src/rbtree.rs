//! A red-black tree, the structure the paper's kernels keep their VMA
//! lists in (§6.4: "the VMA lists are still maintained using the
//! RB-tree structure not a Maple-tree").
//!
//! Arena-backed (indices instead of pointers — no `unsafe`), with the
//! classic CLRS insert/delete fixups. [`crate::vma::VmaTree`] builds on
//! the ordered-map interface; `floor`/`ceil` provide the fault path's
//! "VMA containing this address" query.

use std::cmp::Ordering;
use std::fmt;

/// A structural invariant of the red-black tree did not hold during a
/// mutation.
///
/// Every site that previously `panic!`ed mid-rebalance now surfaces this
/// instead, so a corrupted VMA tree degrades a single syscall rather
/// than unwinding through the kernel (the PR 1 recovery convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbTreeError {
    /// The violated invariant, for diagnostics.
    pub site: &'static str,
}

impl fmt::Display for RbTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "red-black tree invariant violated: {}", self.site)
    }
}

impl std::error::Error for RbTreeError {}

#[inline]
fn corrupt(site: &'static str) -> RbTreeError {
    RbTreeError { site }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    color: Color,
    parent: Option<usize>,
    left: Option<usize>,
    right: Option<usize>,
}

/// An ordered map backed by a red-black tree.
///
/// # Examples
///
/// ```
/// use stramash_kernel::rbtree::RbTree;
///
/// let mut tree = RbTree::new();
/// tree.insert(30u64, "c");
/// tree.insert(10, "a");
/// tree.insert(20, "b");
/// assert_eq!(tree.get(&20), Some(&"b"));
/// // The VMA lookup pattern: the greatest key ≤ the probe.
/// assert_eq!(tree.floor(&25), Some((&20, &"b")));
/// assert_eq!(tree.floor(&5), None);
/// assert_eq!(tree.remove(&10), Some("a"));
/// assert_eq!(tree.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RbTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: Option<usize>,
    free: Vec<usize>,
    len: usize,
}

impl<K, V> Default for RbTree<K, V> {
    fn default() -> Self {
        RbTree { nodes: Vec::new(), root: None, free: Vec::new(), len: 0 }
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        RbTree { nodes: Vec::new(), root: None, free: Vec::new(), len: 0 }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn color(&self, n: Option<usize>) -> Color {
        // Nil nodes are black.
        n.map_or(Color::Black, |i| self.nodes[i].color)
    }

    fn find(&self, key: &K) -> Option<usize> {
        let mut cur = self.root;
        while let Some(i) = cur {
            match key.cmp(&self.nodes[i].key) {
                Ordering::Less => cur = self.nodes[i].left,
                Ordering::Greater => cur = self.nodes[i].right,
                Ordering::Equal => return Some(i),
            }
        }
        None
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key).map(|i| &self.nodes[i].value)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.nodes[i].value)
    }

    /// Whether the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// The entry with the greatest key `<= key` (the VMA fault-path
    /// query).
    #[must_use]
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = self.root;
        let mut best = None;
        while let Some(i) = cur {
            match self.nodes[i].key.cmp(key) {
                Ordering::Less | Ordering::Equal => {
                    best = Some(i);
                    cur = self.nodes[i].right;
                }
                Ordering::Greater => cur = self.nodes[i].left,
            }
        }
        best.map(|i| (&self.nodes[i].key, &self.nodes[i].value))
    }

    /// The entry with the smallest key `>= key`.
    #[must_use]
    pub fn ceil(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = self.root;
        let mut best = None;
        while let Some(i) = cur {
            match self.nodes[i].key.cmp(key) {
                Ordering::Greater | Ordering::Equal => {
                    best = Some(i);
                    cur = self.nodes[i].left;
                }
                Ordering::Less => cur = self.nodes[i].right,
            }
        }
        best.map(|i| (&self.nodes[i].key, &self.nodes[i].value))
    }

    /// In-order iteration.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while let Some(i) = cur {
            stack.push(i);
            cur = self.nodes[i].left;
        }
        Iter { tree: self, stack }
    }

    fn alloc_node(&mut self, node: Node<K, V>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn rotate_left(&mut self, x: usize) -> Result<(), RbTreeError> {
        let y = self.nodes[x].right.ok_or(corrupt("rotate_left needs a right child"))?;
        let y_left = self.nodes[y].left;
        self.nodes[x].right = y_left;
        if let Some(yl) = y_left {
            self.nodes[yl].parent = Some(x);
        }
        let x_parent = self.nodes[x].parent;
        self.nodes[y].parent = x_parent;
        match x_parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
            }
        }
        self.nodes[y].left = Some(x);
        self.nodes[x].parent = Some(y);
        Ok(())
    }

    fn rotate_right(&mut self, x: usize) -> Result<(), RbTreeError> {
        let y = self.nodes[x].left.ok_or(corrupt("rotate_right needs a left child"))?;
        let y_right = self.nodes[y].right;
        self.nodes[x].left = y_right;
        if let Some(yr) = y_right {
            self.nodes[yr].parent = Some(x);
        }
        let x_parent = self.nodes[x].parent;
        self.nodes[y].parent = x_parent;
        match x_parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
            }
        }
        self.nodes[y].right = Some(x);
        self.nodes[x].parent = Some(y);
        Ok(())
    }

    /// Inserts a key-value pair; returns the previous value for the key,
    /// if any.
    ///
    /// Convenience wrapper over [`RbTree::try_insert`] for callers that
    /// treat corruption as fatal (tests, benches).
    ///
    /// # Panics
    ///
    /// Panics if the tree's internal invariants are already violated.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.try_insert(key, value) {
            Ok(prev) => prev,
            Err(e) => panic!("{e}"),
        }
    }

    /// Inserts a key-value pair; returns the previous value for the key,
    /// if any.
    ///
    /// # Errors
    ///
    /// [`RbTreeError`] if a structural invariant does not hold during
    /// rebalancing — the tree was corrupted by an earlier fault (e.g. a
    /// stray write through the shared window) and must not be trusted.
    pub fn try_insert(&mut self, key: K, value: V) -> Result<Option<V>, RbTreeError> {
        // BST descent.
        let mut parent = None;
        let mut cur = self.root;
        while let Some(i) = cur {
            parent = Some(i);
            match key.cmp(&self.nodes[i].key) {
                Ordering::Less => cur = self.nodes[i].left,
                Ordering::Greater => cur = self.nodes[i].right,
                Ordering::Equal => {
                    return Ok(Some(std::mem::replace(&mut self.nodes[i].value, value)));
                }
            }
        }
        let n = self.alloc_node(Node {
            key,
            value,
            color: Color::Red,
            parent,
            left: None,
            right: None,
        });
        match parent {
            None => self.root = Some(n),
            Some(p) => {
                if self.nodes[n].key < self.nodes[p].key {
                    self.nodes[p].left = Some(n);
                } else {
                    self.nodes[p].right = Some(n);
                }
            }
        }
        self.len += 1;
        self.insert_fixup(n)?;
        Ok(None)
    }

    fn insert_fixup(&mut self, mut z: usize) -> Result<(), RbTreeError> {
        while let Some(p) = self.nodes[z].parent {
            if self.nodes[p].color == Color::Black {
                break;
            }
            let g = self.nodes[p].parent.ok_or(corrupt("red node has a parent"))?;
            if Some(p) == self.nodes[g].left {
                let uncle = self.nodes[g].right;
                if self.color(uncle) == Color::Red {
                    let u = uncle.ok_or(corrupt("red uncle exists"))?;
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if Some(z) == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z)?;
                    }
                    let p = self.nodes[z].parent.ok_or(corrupt("restructured parent"))?;
                    let g = self.nodes[p].parent.ok_or(corrupt("restructured grandparent"))?;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_right(g)?;
                }
            } else {
                let uncle = self.nodes[g].left;
                if self.color(uncle) == Color::Red {
                    let u = uncle.ok_or(corrupt("red uncle exists"))?;
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if Some(z) == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z)?;
                    }
                    let p = self.nodes[z].parent.ok_or(corrupt("restructured parent"))?;
                    let g = self.nodes[p].parent.ok_or(corrupt("restructured grandparent"))?;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_left(g)?;
                }
            }
        }
        let r = self.root.ok_or(corrupt("non-empty after insert"))?;
        self.nodes[r].color = Color::Black;
        Ok(())
    }

    fn minimum(&self, mut i: usize) -> usize {
        while let Some(l) = self.nodes[i].left {
            i = l;
        }
        i
    }

    /// Replaces the subtree rooted at `u` with the one rooted at `v`.
    fn transplant(&mut self, u: usize, v: Option<usize>) {
        let up = self.nodes[u].parent;
        match up {
            None => self.root = v,
            Some(p) => {
                if self.nodes[p].left == Some(u) {
                    self.nodes[p].left = v;
                } else {
                    self.nodes[p].right = v;
                }
            }
        }
        if let Some(v) = v {
            self.nodes[v].parent = up;
        }
    }

    /// Removes a key, returning its value.
    ///
    /// Convenience wrapper over [`RbTree::try_remove`] for callers that
    /// treat corruption as fatal (tests, benches).
    ///
    /// # Panics
    ///
    /// Panics if the tree's internal invariants are already violated.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.try_remove(key) {
            Ok(prev) => prev,
            Err(e) => panic!("{e}"),
        }
    }

    /// Removes a key, returning its value.
    ///
    /// # Errors
    ///
    /// [`RbTreeError`] if a structural invariant does not hold during
    /// rebalancing (see [`RbTree::try_insert`]).
    pub fn try_remove(&mut self, key: &K) -> Result<Option<V>, RbTreeError> {
        let Some(z) = self.find(key) else { return Ok(None) };
        self.len -= 1;

        // CLRS delete. `fix_at` is the child that replaced the spliced
        // node (possibly nil), tracked as (parent, child) so nil works.
        let mut removed_color = self.nodes[z].color;
        let (fix_child, fix_parent): (Option<usize>, Option<usize>);

        if self.nodes[z].left.is_none() {
            fix_child = self.nodes[z].right;
            fix_parent = self.nodes[z].parent;
            self.transplant(z, self.nodes[z].right);
        } else if self.nodes[z].right.is_none() {
            fix_child = self.nodes[z].left;
            fix_parent = self.nodes[z].parent;
            self.transplant(z, self.nodes[z].left);
        } else {
            // Two children: splice the successor y into z's place.
            let y = self.minimum(self.nodes[z].right.ok_or(corrupt("checked right child"))?);
            removed_color = self.nodes[y].color;
            fix_child = self.nodes[y].right;
            if self.nodes[y].parent == Some(z) {
                fix_parent = Some(y);
            } else {
                fix_parent = self.nodes[y].parent;
                self.transplant(y, self.nodes[y].right);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                if let Some(zr) = zr {
                    self.nodes[zr].parent = Some(y);
                }
            }
            self.transplant(z, Some(y));
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            if let Some(zl) = zl {
                self.nodes[zl].parent = Some(y);
            }
            self.nodes[y].color = self.nodes[z].color;
        }

        if removed_color == Color::Black {
            self.delete_fixup(fix_child, fix_parent)?;
        }

        // The node is now unreachable from the tree; reclaim its arena
        // slot and move the value out.
        self.free.push(z);
        let value = self.take_value(z)?;
        Ok(Some(value))
    }

    /// Moves the value out of a dead arena slot (already unreachable
    /// from the tree): the slot is swapped with the arena's last node,
    /// whose links are patched, and the dead node is popped.
    fn take_value(&mut self, i: usize) -> Result<V, RbTreeError> {
        if i + 1 == self.nodes.len() {
            self.free.retain(|&f| f != i);
            return Ok(self.nodes.pop().ok_or(corrupt("arena non-empty"))?.value);
        }
        // Swap with the last node and patch that node's links.
        let last = self.nodes.len() - 1;
        self.nodes.swap(i, last);
        // Fix references to `last`, which now lives at `i`.
        let (parent, left, right) = {
            let n = &self.nodes[i];
            (n.parent, n.left, n.right)
        };
        match parent {
            None => {
                if self.root == Some(last) {
                    self.root = Some(i);
                }
            }
            Some(p) => {
                if self.nodes[p].left == Some(last) {
                    self.nodes[p].left = Some(i);
                } else if self.nodes[p].right == Some(last) {
                    self.nodes[p].right = Some(i);
                }
            }
        }
        if let Some(l) = left {
            self.nodes[l].parent = Some(i);
        }
        if let Some(r) = right {
            self.nodes[r].parent = Some(i);
        }
        self.free.retain(|&f| f != i);
        Ok(self.nodes.pop().ok_or(corrupt("arena non-empty"))?.value)
    }

    fn delete_fixup(
        &mut self,
        mut x: Option<usize>,
        mut parent: Option<usize>,
    ) -> Result<(), RbTreeError> {
        while x != self.root && self.color(x) == Color::Black {
            let Some(p) = parent else { break };
            if x == self.nodes[p].left {
                let mut w =
                    self.nodes[p].right.ok_or(corrupt("sibling exists in valid RB tree"))?;
                if self.nodes[w].color == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[p].color = Color::Red;
                    self.rotate_left(p)?;
                    w = self.nodes[p].right.ok_or(corrupt("sibling after rotation"))?;
                }
                if self.color(self.nodes[w].left) == Color::Black
                    && self.color(self.nodes[w].right) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    x = Some(p);
                    parent = self.nodes[p].parent;
                } else {
                    if self.color(self.nodes[w].right) == Color::Black {
                        if let Some(wl) = self.nodes[w].left {
                            self.nodes[wl].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_right(w)?;
                        w = self.nodes[p].right.ok_or(corrupt("sibling after rotation"))?;
                    }
                    self.nodes[w].color = self.nodes[p].color;
                    self.nodes[p].color = Color::Black;
                    if let Some(wr) = self.nodes[w].right {
                        self.nodes[wr].color = Color::Black;
                    }
                    self.rotate_left(p)?;
                    x = self.root;
                    parent = None;
                }
            } else {
                let mut w =
                    self.nodes[p].left.ok_or(corrupt("sibling exists in valid RB tree"))?;
                if self.nodes[w].color == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[p].color = Color::Red;
                    self.rotate_right(p)?;
                    w = self.nodes[p].left.ok_or(corrupt("sibling after rotation"))?;
                }
                if self.color(self.nodes[w].right) == Color::Black
                    && self.color(self.nodes[w].left) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    x = Some(p);
                    parent = self.nodes[p].parent;
                } else {
                    if self.color(self.nodes[w].left) == Color::Black {
                        if let Some(wr) = self.nodes[w].right {
                            self.nodes[wr].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_left(w)?;
                        w = self.nodes[p].left.ok_or(corrupt("sibling after rotation"))?;
                    }
                    self.nodes[w].color = self.nodes[p].color;
                    self.nodes[p].color = Color::Black;
                    if let Some(wl) = self.nodes[w].left {
                        self.nodes[wl].color = Color::Black;
                    }
                    self.rotate_right(p)?;
                    x = self.root;
                    parent = None;
                }
            }
        }
        if let Some(x) = x {
            self.nodes[x].color = Color::Black;
        }
        Ok(())
    }

    /// Checks every red-black invariant (tests and debug assertions):
    /// root is black, no red node has a red child, every root-to-nil
    /// path has the same black height, and keys are in BST order.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_invariants(&self) {
        if let Some(r) = self.root {
            assert_eq!(self.nodes[r].color, Color::Black, "root must be black");
            assert_eq!(self.nodes[r].parent, None, "root has no parent");
            self.check_subtree(r);
        }
        assert_eq!(self.iter().count(), self.len, "len must match iteration");
    }

    /// Returns the black height of the subtree.
    fn check_subtree(&self, i: usize) -> usize {
        let n = &self.nodes[i];
        if n.color == Color::Red {
            assert_eq!(self.color(n.left), Color::Black, "red node with red left child");
            assert_eq!(self.color(n.right), Color::Black, "red node with red right child");
        }
        let lh = match n.left {
            Some(l) => {
                assert!(self.nodes[l].key < n.key, "BST order violated (left)");
                assert_eq!(self.nodes[l].parent, Some(i), "broken parent link (left)");
                self.check_subtree(l)
            }
            None => 1,
        };
        let rh = match n.right {
            Some(r) => {
                assert!(self.nodes[r].key > n.key, "BST order violated (right)");
                assert_eq!(self.nodes[r].parent, Some(i), "broken parent link (right)");
                self.check_subtree(r)
            }
            None => 1,
        };
        assert_eq!(lh, rh, "black heights differ");
        lh + usize::from(n.color == Color::Black)
    }
}

/// Checkpoint section tag: `"RBTR"`.
const RBTREE_TAG: u32 = 0x5242_5452;

impl<K: Ord, V> RbTree<K, V> {
    /// Serializes the tree into a checkpoint section.
    ///
    /// The *exact arena layout* is written — node slots in arena order
    /// (key, value, color, parent/left/right links), the root index,
    /// the free list and the entry count — not just the key/value pairs.
    /// [`RbTree::try_remove`] compacts the arena by swapping with the
    /// last slot, so future mutations depend on slot positions; a
    /// key-order rebuild would diverge from the original tree on the
    /// first post-restore removal.
    pub fn save_state(
        &self,
        e: &mut stramash_sim::checkpoint::Encoder,
        mut put_key: impl FnMut(&mut stramash_sim::checkpoint::Encoder, &K),
        mut put_value: impl FnMut(&mut stramash_sim::checkpoint::Encoder, &V),
    ) {
        e.tag(RBTREE_TAG);
        e.u64(self.nodes.len() as u64);
        for n in &self.nodes {
            put_key(e, &n.key);
            put_value(e, &n.value);
            e.bool(n.color == Color::Red);
            e.opt_u64(n.parent.map(|i| i as u64));
            e.opt_u64(n.left.map(|i| i as u64));
            e.opt_u64(n.right.map(|i| i as u64));
        }
        e.opt_u64(self.root.map(|i| i as u64));
        let free: Vec<u64> = self.free.iter().map(|&i| i as u64).collect();
        e.u64s(&free);
        e.u64(self.len as u64);
    }

    /// Reconstructs a tree from a checkpoint section written by
    /// [`RbTree::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors; `Malformed` if any link, root or free-list
    /// index is out of range or the entry count is inconsistent.
    pub fn load_state(
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
        mut get_key: impl FnMut(
            &mut stramash_sim::checkpoint::Decoder<'_>,
        ) -> Result<K, stramash_sim::checkpoint::CheckpointError>,
        mut get_value: impl FnMut(
            &mut stramash_sim::checkpoint::Decoder<'_>,
        ) -> Result<V, stramash_sim::checkpoint::CheckpointError>,
    ) -> Result<Self, stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(RBTREE_TAG)?;
        let count = d.len()?;
        let link = |v: Option<u64>| -> Result<Option<usize>, CheckpointError> {
            match v {
                None => Ok(None),
                Some(i) if (i as usize) < count => Ok(Some(i as usize)),
                Some(_) => Err(CheckpointError::Malformed("rbtree index out of range")),
            }
        };
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let key = get_key(d)?;
            let value = get_value(d)?;
            let color = if d.bool()? { Color::Red } else { Color::Black };
            let parent = link(d.opt_u64()?)?;
            let left = link(d.opt_u64()?)?;
            let right = link(d.opt_u64()?)?;
            nodes.push(Node { key, value, color, parent, left, right });
        }
        let root = link(d.opt_u64()?)?;
        let mut free = Vec::new();
        for i in d.u64s()? {
            if (i as usize) >= count {
                return Err(CheckpointError::Malformed("rbtree free index out of range"));
            }
            free.push(i as usize);
        }
        let len = d.u64()? as usize;
        if len + free.len() != count {
            return Err(CheckpointError::Malformed("rbtree length inconsistent"));
        }
        Ok(RbTree { nodes, root, free, len })
    }
}

/// In-order iterator over an [`RbTree`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    tree: &'a RbTree<K, V>,
    stack: Vec<usize>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.stack.pop()?;
        let mut cur = self.tree.nodes[i].right;
        while let Some(c) = cur {
            self.stack.push(c);
            cur = self.tree.nodes[c].left;
        }
        Some((&self.tree.nodes[i].key, &self.tree.nodes[i].value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::rng::SimRng;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RbTree::new();
        assert!(t.is_empty());
        for k in [5u64, 3, 8, 1, 4, 7, 9, 2, 6] {
            assert_eq!(t.insert(k, k * 10), None);
            t.assert_invariants();
        }
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(&4), Some(&40));
        assert_eq!(t.insert(4, 44), Some(40), "re-insert returns the old value");
        assert_eq!(t.len(), 9);
        for k in [1u64, 9, 5, 3, 7] {
            assert!(t.remove(&k).is_some());
            t.assert_invariants();
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.remove(&1), None);
    }

    #[test]
    fn in_order_iteration_is_sorted() {
        let mut t = RbTree::new();
        for k in [9u64, 2, 7, 4, 1, 8, 3, 6, 5] {
            t.insert(k, ());
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn floor_and_ceil() {
        let mut t = RbTree::new();
        for k in [10u64, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.floor(&25).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&20).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&9), None);
        assert_eq!(t.ceil(&25).map(|(k, _)| *k), Some(30));
        assert_eq!(t.ceil(&30).map(|(k, _)| *k), Some(30));
        assert_eq!(t.ceil(&31), None);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = RbTree::new();
        t.insert(1u64, 10);
        *t.get_mut(&1).unwrap() += 5;
        assert_eq!(t.get(&1), Some(&15));
        assert!(t.get_mut(&2).is_none());
    }

    #[test]
    fn randomized_against_btreemap_model() {
        // 20k random ops cross-checked against std's BTreeMap, with the
        // RB invariants verified periodically.
        let mut rng = SimRng::new(0xB7EE);
        let mut tree: RbTree<u64, u64> = RbTree::new();
        let mut model = std::collections::BTreeMap::new();
        for step in 0..20_000u32 {
            let key = rng.gen_range(512);
            match rng.gen_range(10) {
                0..=4 => {
                    let v = rng.next_u64();
                    assert_eq!(tree.insert(key, v), model.insert(key, v), "step {step}");
                }
                5..=7 => {
                    assert_eq!(tree.remove(&key), model.remove(&key), "step {step}");
                }
                8 => {
                    assert_eq!(tree.get(&key), model.get(&key), "step {step}");
                    let floor = tree.floor(&key).map(|(k, v)| (*k, *v));
                    let model_floor = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    assert_eq!(floor, model_floor, "floor mismatch at step {step}");
                }
                _ => {
                    let ceil = tree.ceil(&key).map(|(k, v)| (*k, *v));
                    let model_ceil = model.range(key..).next().map(|(k, v)| (*k, *v));
                    assert_eq!(ceil, model_ceil, "ceil mismatch at step {step}");
                }
            }
            assert_eq!(tree.len(), model.len());
            if step % 512 == 0 {
                tree.assert_invariants();
            }
        }
        tree.assert_invariants();
        let tree_items: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let model_items: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(tree_items, model_items);
    }

    #[test]
    fn corruption_is_reported_not_panicked() {
        let mut t = RbTree::new();
        for k in [2u64, 1, 3] {
            t.insert(k, ());
        }
        // Forge corruption as a stray shared-window write might: orphan
        // the red leaf holding key 3 (its parent link cleared while the
        // root still points at it).
        let i = t.find(&3).unwrap();
        t.nodes[i].color = Color::Red;
        t.nodes[i].parent = None;
        let err = t.try_insert(4, ()).unwrap_err();
        assert_eq!(err.site, "red node has a parent");
        assert!(err.to_string().contains("invariant"));
    }

    #[test]
    fn sequential_and_reverse_insertions_stay_balanced() {
        // Ascending and descending insertions are the classic BST
        // degeneration cases; the RB invariants bound the height.
        for ascending in [true, false] {
            let mut t = RbTree::new();
            for i in 0..1024u64 {
                let k = if ascending { i } else { 1023 - i };
                t.insert(k, ());
            }
            t.assert_invariants();
            assert_eq!(t.len(), 1024);
            // Drain every other key, then the rest.
            for i in (0..1024u64).step_by(2) {
                assert!(t.remove(&i).is_some());
            }
            t.assert_invariants();
            for i in (1..1024u64).step_by(2) {
                assert!(t.remove(&i).is_some());
            }
            assert!(t.is_empty());
            t.assert_invariants();
        }
    }
}
