//! Processes, software TLBs, and the per-process cross-kernel state.
//!
//! A migratable process (compiled with the Popcorn toolchain, §5) has
//! one VMA list owned by its *origin* kernel and a page table per
//! kernel instance — "both page tables refer to the same physical memory
//! pages for the same application" under Stramash, or to replicated
//! pages under Popcorn's DSM (§6.4).

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::pagetable::PageTable;
use crate::vma::{Vma, VmaKind, VmaProt, VmaTree};
use std::collections::HashMap;
use std::fmt;
use stramash_isa::PteFlags;
use stramash_mem::PhysAddr;
use stramash_sim::DomainId;

/// Process identifier (fused PID namespace, §6.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A software model of the hardware TLB: translations cached here cost
/// nothing extra; misses trigger a (timed) software walk. Flushed on
/// migration and on any unmap/protect, mirroring real TLB shootdowns.
#[derive(Debug, Clone, Default)]
pub struct SoftTlb {
    map: HashMap<u64, (PhysAddr, PteFlags)>,
    lookups: u64,
    misses: u64,
    /// Bumped on every invalidation/flush; translation caches layered
    /// above the TLB (the batched pipeline's [`AccessSession`]s) compare
    /// generations to detect that their entries may have gone stale.
    ///
    /// [`AccessSession`]: crate::session::AccessSession
    generation: u64,
}

impl SoftTlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new() -> Self {
        SoftTlb::default()
    }

    /// Looks up the translation of the page containing `va`.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<(PhysAddr, PteFlags)> {
        self.lookups += 1;
        let hit = self.map.get(&va.vpn()).copied();
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Looks up without touching the hit/miss counters (used by session
    /// refills, which have already gone through the counted path).
    #[must_use]
    pub fn peek(&self, va: VirtAddr) -> Option<(PhysAddr, PteFlags)> {
        self.map.get(&va.vpn()).copied()
    }

    /// Installs a translation (page-granular).
    pub fn insert(&mut self, va: VirtAddr, page_pa: PhysAddr, flags: PteFlags) {
        self.map.insert(va.vpn(), (page_pa.align_down(PAGE_SIZE), flags));
    }

    /// Drops one page's translation.
    pub fn invalidate(&mut self, va: VirtAddr) {
        self.generation += 1;
        self.map.remove(&va.vpn());
    }

    /// Drops everything (migration, exec).
    pub fn flush(&mut self) {
        self.generation += 1;
        self.map.clear();
    }

    /// The invalidation generation (see the `generation` field).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lifetime miss ratio (diagnostics).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Number of cached translations.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Serializes the TLB (entries in VPN order, counters, generation)
    /// into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x544c_4253); // "TLBS"
        let mut vpns: Vec<u64> = self.map.keys().copied().collect();
        vpns.sort_unstable();
        e.u64(vpns.len() as u64);
        for vpn in vpns {
            let (pa, fl) = self.map[&vpn];
            e.u64(vpn);
            e.u64(pa.raw());
            for b in [fl.present, fl.writable, fl.user, fl.accessed, fl.dirty, fl.no_exec] {
                e.bool(b);
            }
        }
        e.u64(self.lookups);
        e.u64(self.misses);
        e.u64(self.generation);
    }

    /// Restores a TLB written by [`SoftTlb::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x544c_4253)?;
        let n = d.len()?;
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let vpn = d.u64()?;
            let pa = PhysAddr::new(d.u64()?);
            let flags = PteFlags {
                present: d.bool()?,
                writable: d.bool()?,
                user: d.bool()?,
                accessed: d.bool()?,
                dirty: d.bool()?,
                no_exec: d.bool()?,
            };
            map.insert(vpn, (pa, flags));
        }
        self.map = map;
        self.lookups = d.u64()?;
        self.misses = d.u64()?;
        self.generation = d.u64()?;
        Ok(())
    }
}

/// Base of the mmap area used by the bump allocator.
pub const MMAP_BASE: u64 = 0x4000_0000;

/// A (single-threaded, migratable) process.
#[derive(Debug)]
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// The kernel the process started on ("origin", §6.4).
    pub origin: DomainId,
    /// The kernel currently executing it.
    pub current: DomainId,
    /// The authoritative VMA list (owned by the origin kernel; Stramash
    /// lets the remote kernel walk it directly, §6.4).
    pub vmas: VmaTree,
    /// Per-domain page tables (same VA space, per-ISA formats).
    pub page_tables: [Option<PageTable>; 2],
    /// Per-domain software TLBs.
    pub tlbs: [SoftTlb; 2],
    /// Physical address of the shared VMA-lock word.
    pub vma_lock: PhysAddr,
    /// Physical address of the Stramash-PTL cross-ISA page-table lock.
    pub page_table_lock: PhysAddr,
    /// Bump cursor for `mmap`.
    mmap_cursor: u64,
}

impl Process {
    /// Creates a process on `origin` with the given page table and lock
    /// words (allocated by the boot/OS layer in the origin's memory).
    #[must_use]
    pub fn new(
        pid: Pid,
        origin: DomainId,
        origin_pt: PageTable,
        vma_lock: PhysAddr,
        page_table_lock: PhysAddr,
    ) -> Self {
        let mut page_tables = [None, None];
        page_tables[origin.index()] = Some(origin_pt);
        Process {
            pid,
            origin,
            current: origin,
            vmas: VmaTree::new(),
            page_tables,
            tlbs: [SoftTlb::new(), SoftTlb::new()],
            vma_lock,
            page_table_lock,
            mmap_cursor: MMAP_BASE,
        }
    }

    /// The page table of `domain`, if one exists yet.
    #[must_use]
    pub fn page_table(&self, domain: DomainId) -> Option<&PageTable> {
        self.page_tables[domain.index()].as_ref()
    }

    /// The TLB of `domain`.
    pub fn tlb_mut(&mut self, domain: DomainId) -> &mut SoftTlb {
        &mut self.tlbs[domain.index()]
    }

    /// Read-only view of `domain`'s TLB.
    #[must_use]
    pub fn tlb(&self, domain: DomainId) -> &SoftTlb {
        &self.tlbs[domain.index()]
    }

    /// Reserves `len` bytes of anonymous VA space (page-rounded) and
    /// records the VMA. Pages populate lazily on fault.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::vma::VmaError`] (cannot happen with the bump
    /// cursor unless the cursor overflowed into an existing area).
    pub fn mmap(
        &mut self,
        len: u64,
        prot: VmaProt,
        kind: VmaKind,
    ) -> Result<VirtAddr, crate::vma::VmaError> {
        let start = VirtAddr::new(self.mmap_cursor);
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let end = start.offset(len);
        self.vmas.insert(Vma { start, end, prot, kind })?;
        // Leave a guard page between areas.
        self.mmap_cursor = end.raw() + PAGE_SIZE;
        Ok(start)
    }

    /// Flushes the current domain's TLB and switches domains (the
    /// scheduler half of migration; OS layers add protocol costs).
    pub fn switch_domain(&mut self, to: DomainId) {
        self.tlbs[self.current.index()].flush();
        self.current = to;
    }

    /// Serializes the process into a checkpoint section. Page-table
    /// *contents* live in simulated memory (serialized separately); only
    /// the `(isa, root)` handles are written here.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x5052_4f43); // "PROC"
        e.u32(self.pid.0);
        e.u8(self.origin.index() as u8);
        e.u8(self.current.index() as u8);
        self.vmas.save_state(e);
        for pt in &self.page_tables {
            match pt {
                Some(pt) => {
                    e.bool(true);
                    e.u8(match pt.isa() {
                        stramash_isa::IsaKind::X86_64 => 0,
                        stramash_isa::IsaKind::Aarch64 => 1,
                    });
                    e.u64(pt.root().raw());
                }
                None => e.bool(false),
            }
        }
        for tlb in &self.tlbs {
            tlb.save_state(e);
        }
        e.u64(self.vma_lock.raw());
        e.u64(self.page_table_lock.raw());
        e.u64(self.mmap_cursor);
    }

    /// Reconstructs a process from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<Self, stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        let domain = |code: u8| match code {
            0 => Ok(DomainId::X86),
            1 => Ok(DomainId::ARM),
            _ => Err(CheckpointError::Malformed("bad domain code")),
        };
        d.tag(0x5052_4f43)?;
        let pid = Pid(d.u32()?);
        let origin = domain(d.u8()?)?;
        let current = domain(d.u8()?)?;
        let vmas = VmaTree::load_state(d)?;
        let mut page_tables = [None, None];
        for slot in &mut page_tables {
            if d.bool()? {
                let isa = match d.u8()? {
                    0 => stramash_isa::IsaKind::X86_64,
                    1 => stramash_isa::IsaKind::Aarch64,
                    _ => return Err(CheckpointError::Malformed("bad ISA code")),
                };
                let root = PhysAddr::new(d.u64()?);
                *slot = Some(crate::pagetable::PageTable::from_existing(isa, root));
            }
        }
        let mut tlbs = [SoftTlb::new(), SoftTlb::new()];
        for tlb in &mut tlbs {
            tlb.load_state(d)?;
        }
        let vma_lock = PhysAddr::new(d.u64()?);
        let page_table_lock = PhysAddr::new(d.u64()?);
        let mmap_cursor = d.u64()?;
        Ok(Process {
            pid,
            origin,
            current,
            vmas,
            page_tables,
            tlbs,
            vma_lock,
            page_table_lock,
            mmap_cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameAllocator;
    use stramash_isa::IsaKind;
    use stramash_mem::MemorySystem;
    use stramash_sim::SimConfig;

    fn proc() -> Process {
        let mut mem = MemorySystem::new(SimConfig::big_pair()).unwrap();
        let mut frames = FrameAllocator::new();
        frames.add_region(PhysAddr::new(0x10_0000), 1 << 20).unwrap();
        let pt = PageTable::new(&mut mem, &mut frames, IsaKind::X86_64).unwrap();
        Process::new(Pid(1), DomainId::X86, pt, PhysAddr::new(0x1000), PhysAddr::new(0x1008))
    }

    #[test]
    fn new_process_has_origin_pt_only() {
        let p = proc();
        assert!(p.page_table(DomainId::X86).is_some());
        assert!(p.page_table(DomainId::ARM).is_none());
        assert_eq!(p.current, DomainId::X86);
        assert_eq!(p.origin, DomainId::X86);
    }

    #[test]
    fn mmap_bumps_with_guard_pages() {
        let mut p = proc();
        let a = p.mmap(10_000, VmaProt::rw(), VmaKind::Anon).unwrap();
        let b = p.mmap(4096, VmaProt::rw(), VmaKind::Anon).unwrap();
        assert_eq!(a.raw(), MMAP_BASE);
        // 10 000 B rounds to 3 pages + 1 guard page.
        assert_eq!(b.raw(), MMAP_BASE + 4 * PAGE_SIZE);
        assert_eq!(p.vmas.len(), 2);
        assert!(p.vmas.find(a.offset(9_999)).is_some());
        assert!(p.vmas.find(a.offset(3 * PAGE_SIZE)).is_none(), "guard page unmapped");
    }

    #[test]
    fn tlb_hit_miss_and_flush() {
        let mut tlb = SoftTlb::new();
        let va = VirtAddr::new(0x4000_0123);
        assert!(tlb.lookup(va).is_none());
        tlb.insert(va, PhysAddr::new(0x55_4000), PteFlags::user_data());
        let (pa, fl) = tlb.lookup(va).unwrap();
        assert_eq!(pa.raw(), 0x55_4000);
        assert!(fl.writable);
        // Same page, different offset: still a hit.
        assert!(tlb.lookup(VirtAddr::new(0x4000_0fff)).is_some());
        assert!(tlb.lookup(VirtAddr::new(0x4000_1000)).is_none());
        assert_eq!(tlb.entries(), 1);
        tlb.flush();
        assert!(tlb.lookup(va).is_none());
        assert!(tlb.miss_ratio() > 0.0);
    }

    #[test]
    fn tlb_invalidate_single_page() {
        let mut tlb = SoftTlb::new();
        tlb.insert(VirtAddr::new(0x1000), PhysAddr::new(0x9000), PteFlags::user_data());
        tlb.insert(VirtAddr::new(0x2000), PhysAddr::new(0xA000), PteFlags::user_data());
        tlb.invalidate(VirtAddr::new(0x1000));
        assert!(tlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(VirtAddr::new(0x2000)).is_some());
    }

    #[test]
    fn tlb_generation_tracks_invalidations() {
        let mut tlb = SoftTlb::new();
        assert_eq!(tlb.generation(), 0);
        tlb.insert(VirtAddr::new(0x1000), PhysAddr::new(0x9000), PteFlags::user_data());
        assert_eq!(tlb.generation(), 0, "inserts do not stale anything");
        tlb.invalidate(VirtAddr::new(0x1000));
        assert_eq!(tlb.generation(), 1);
        tlb.flush();
        assert_eq!(tlb.generation(), 2);
        // peek does not count as a lookup.
        let before = (tlb.miss_ratio() * 1000.0) as u64;
        assert!(tlb.peek(VirtAddr::new(0x1000)).is_none());
        assert_eq!((tlb.miss_ratio() * 1000.0) as u64, before);
    }

    #[test]
    fn switch_domain_flushes_tlb() {
        let mut p = proc();
        p.tlb_mut(DomainId::X86).insert(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x9000),
            PteFlags::user_data(),
        );
        p.switch_domain(DomainId::ARM);
        assert_eq!(p.current, DomainId::ARM);
        assert_eq!(p.tlbs[DomainId::X86.index()].entries(), 0);
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(7).to_string(), "pid:7");
    }
}
