//! Per-kernel physical frame allocation.
//!
//! Each kernel instance "fully utilizes its own private hardware
//! resources when available, and acquires any other shared resource only
//! when needed" (§5 *Minimal Resource Provisioning*). The allocator owns
//! a set of physical regions (its boot-time private memory plus any
//! blocks later granted by the global allocator) and hands out 4 KiB
//! frames. Regions can be drained and removed again, which is the
//! substrate for the hotplug-style offline path of §6.3. Each region is
//! managed by a [`crate::buddy::BuddyAllocator`], so contiguous
//! multi-page allocations (§5's data packing) come for free.

use crate::addr::PAGE_SIZE;
use crate::buddy::{order_for_pages, BuddyAllocator, BuddyError};
use std::fmt;
use stramash_mem::PhysAddr;

/// State of one owned physical region.
#[derive(Debug, Clone)]
struct Region {
    start: u64,
    len: u64,
    buddy: BuddyAllocator,
    /// Offlined regions refuse new allocations.
    online: bool,
}

impl Region {
    fn frames(&self) -> u64 {
        self.len / PAGE_SIZE
    }
}

/// Errors returned by the frame allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No free frame in any online region.
    OutOfMemory,
    /// The address does not belong to any owned region.
    NotOwned(PhysAddr),
    /// The address is inside a region but is not a live allocation.
    NotAllocated(PhysAddr),
    /// The region still has outstanding allocations.
    RegionBusy {
        /// Outstanding allocated frames.
        allocated: u64,
    },
    /// No region starts at the given address.
    NoSuchRegion(PhysAddr),
    /// Region bounds are not page-aligned.
    Unaligned,
    /// The new region overlaps an existing one.
    Overlap,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::OutOfMemory => f.write_str("out of physical frames"),
            FrameError::NotOwned(pa) => write!(f, "frame {pa} is not owned by this allocator"),
            FrameError::NotAllocated(pa) => write!(f, "frame {pa} is not a live allocation"),
            FrameError::RegionBusy { allocated } => {
                write!(f, "region still has {allocated} allocated frames")
            }
            FrameError::NoSuchRegion(pa) => write!(f, "no region starts at {pa}"),
            FrameError::Unaligned => f.write_str("region bounds must be page-aligned"),
            FrameError::Overlap => f.write_str("region overlaps an existing region"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A 4 KiB-frame allocator over a set of owned physical regions.
///
/// # Examples
///
/// ```
/// use stramash_kernel::FrameAllocator;
/// use stramash_mem::PhysAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut frames = FrameAllocator::new();
/// frames.add_region(PhysAddr::new(0x10_0000), 64 << 10)?;
/// let frame = frames.alloc()?;
/// assert!(frame.is_aligned(4096));
/// frames.free(frame)?;
/// assert_eq!(frames.allocated_frames(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameAllocator {
    regions: Vec<Region>,
}

impl FrameAllocator {
    /// Creates an allocator owning no memory.
    #[must_use]
    pub fn new() -> Self {
        FrameAllocator::default()
    }

    /// Adds an owned region.
    ///
    /// # Errors
    ///
    /// [`FrameError::Unaligned`] if bounds are not page-aligned;
    /// [`FrameError::Overlap`] if it overlaps an existing region.
    pub fn add_region(&mut self, start: PhysAddr, len: u64) -> Result<(), FrameError> {
        if !start.is_aligned(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(FrameError::Unaligned);
        }
        let s = start.raw();
        for r in &self.regions {
            if s < r.start + r.len && r.start < s + len {
                return Err(FrameError::Overlap);
            }
        }
        self.regions.push(Region {
            start: s,
            len,
            buddy: BuddyAllocator::new(start, len),
            online: true,
        });
        Ok(())
    }

    /// Allocates one page-aligned 4 KiB frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfMemory`] when every online region is full.
    pub fn alloc(&mut self) -> Result<PhysAddr, FrameError> {
        for r in &mut self.regions {
            if !r.online {
                continue;
            }
            if let Ok(pa) = r.buddy.alloc(0) {
                return Ok(pa);
            }
        }
        Err(FrameError::OutOfMemory)
    }

    /// Allocates `pages` physically **contiguous**, naturally aligned
    /// frames (rounded up to a buddy order) — what §5's data packing
    /// needs for its contiguous shared windows.
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfMemory`] when no region can satisfy the order.
    pub fn alloc_contiguous(&mut self, pages: u64) -> Result<PhysAddr, FrameError> {
        let order = order_for_pages(pages);
        for r in &mut self.regions {
            if !r.online {
                continue;
            }
            if let Ok(pa) = r.buddy.alloc(order) {
                return Ok(pa);
            }
        }
        Err(FrameError::OutOfMemory)
    }

    /// Returns a frame to its region.
    ///
    /// # Errors
    ///
    /// [`FrameError::NotOwned`] if the frame is outside every region.
    pub fn free(&mut self, frame: PhysAddr) -> Result<(), FrameError> {
        let pa = PhysAddr::new(frame.raw() & !(PAGE_SIZE - 1));
        for r in &mut self.regions {
            if pa.raw() >= r.start && pa.raw() < r.start + r.len {
                return match r.buddy.free(pa) {
                    Ok(()) => Ok(()),
                    Err(BuddyError::NotAllocated) => Err(FrameError::NotAllocated(pa)),
                    Err(_) => Err(FrameError::NotAllocated(pa)),
                };
            }
        }
        Err(FrameError::NotOwned(frame))
    }

    /// Marks the region starting at `start` offline: it accepts no new
    /// allocations (§6.3: "it first evacuates the memory block and then
    /// isolates the pages").
    ///
    /// # Errors
    ///
    /// [`FrameError::NoSuchRegion`] if no region starts there.
    pub fn set_online(&mut self, start: PhysAddr, online: bool) -> Result<(), FrameError> {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.start == start.raw())
            .ok_or(FrameError::NoSuchRegion(start))?;
        r.online = online;
        Ok(())
    }

    /// Removes a fully evacuated region, returning its length.
    ///
    /// # Errors
    ///
    /// [`FrameError::NoSuchRegion`] if absent; [`FrameError::RegionBusy`]
    /// if frames are still allocated from it.
    pub fn remove_region(&mut self, start: PhysAddr) -> Result<u64, FrameError> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.start == start.raw())
            .ok_or(FrameError::NoSuchRegion(start))?;
        let allocated = self.regions[idx].buddy.allocated_pages();
        if allocated > 0 {
            return Err(FrameError::RegionBusy { allocated });
        }
        Ok(self.regions.remove(idx).len)
    }

    /// Frames currently handed out.
    #[must_use]
    pub fn allocated_frames(&self) -> u64 {
        self.regions.iter().map(|r| r.buddy.allocated_pages()).sum()
    }

    /// Total frames across online regions.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.regions.iter().filter(|r| r.online).map(Region::frames).sum()
    }

    /// Memory pressure in `[0, 1]`: allocated / total. The §6.3 global
    /// allocator requests a new block when this passes 0.70.
    #[must_use]
    pub fn pressure(&self) -> f64 {
        let total = self.total_frames();
        if total == 0 {
            return 1.0;
        }
        self.allocated_frames() as f64 / total as f64
    }

    /// Outstanding allocations in the region starting at `start`.
    #[must_use]
    pub fn region_allocated(&self, start: PhysAddr) -> Option<u64> {
        self.regions.iter().find(|r| r.start == start.raw()).map(|r| r.buddy.allocated_pages())
    }

    /// Whether `pa` belongs to one of the owned regions.
    #[must_use]
    pub fn owns(&self, pa: PhysAddr) -> bool {
        self.regions.iter().any(|r| pa.raw() >= r.start && pa.raw() < r.start + r.len)
    }

    /// Serializes the full region list (bounds, online flag and buddy
    /// state) into a checkpoint section. The whole list is written —
    /// not just per-region deltas — because the §6.3 grow/evict paths
    /// add and remove regions at runtime.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4652_4d53); // "FRMS"
        e.u64(self.regions.len() as u64);
        for r in &self.regions {
            e.u64(r.start);
            e.u64(r.len);
            e.bool(r.online);
            r.buddy.save_state(e);
        }
    }

    /// Replaces this allocator's regions with the checkpointed set.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4652_4d53)?;
        let n = d.len()?;
        let mut regions = Vec::with_capacity(n);
        for _ in 0..n {
            let start = d.u64()?;
            let len = d.u64()?;
            let online = d.bool()?;
            if start % PAGE_SIZE != 0 || len == 0 || len % PAGE_SIZE != 0 {
                return Err(CheckpointError::Malformed("frame region bounds unaligned"));
            }
            let mut buddy = BuddyAllocator::new(PhysAddr::new(start), len);
            buddy.load_state(d)?;
            regions.push(Region { start, len, buddy, online });
        }
        self.regions = regions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_with(start: u64, len: u64) -> FrameAllocator {
        let mut a = FrameAllocator::new();
        a.add_region(PhysAddr::new(start), len).unwrap();
        a
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = alloc_with(0x10_0000, 4 * PAGE_SIZE);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert!(f1.is_aligned(PAGE_SIZE));
        assert_eq!(a.allocated_frames(), 2);
        a.free(f1).unwrap();
        assert_eq!(a.allocated_frames(), 1);
        // Freed frame is reused.
        assert_eq!(a.alloc().unwrap(), f1);
    }

    #[test]
    fn exhaustion() {
        let mut a = alloc_with(0, 2 * PAGE_SIZE);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(FrameError::OutOfMemory));
    }

    #[test]
    fn rejects_unaligned_region() {
        let mut a = FrameAllocator::new();
        assert_eq!(a.add_region(PhysAddr::new(10), PAGE_SIZE), Err(FrameError::Unaligned));
        assert_eq!(a.add_region(PhysAddr::new(0), 100), Err(FrameError::Unaligned));
        assert_eq!(a.add_region(PhysAddr::new(0), 0), Err(FrameError::Unaligned));
    }

    #[test]
    fn rejects_overlap() {
        let mut a = alloc_with(0x1000, 4 * PAGE_SIZE);
        assert_eq!(a.add_region(PhysAddr::new(0x2000), PAGE_SIZE), Err(FrameError::Overlap));
        assert!(a.add_region(PhysAddr::new(0x4000 + 0x1000), PAGE_SIZE).is_ok());
    }

    #[test]
    fn free_foreign_frame_fails() {
        let mut a = alloc_with(0, PAGE_SIZE);
        assert!(matches!(a.free(PhysAddr::new(0x9_0000)), Err(FrameError::NotOwned(_))));
    }

    #[test]
    fn pressure_tracks_allocation() {
        let mut a = alloc_with(0, 10 * PAGE_SIZE);
        assert_eq!(a.pressure(), 0.0);
        for _ in 0..7 {
            a.alloc().unwrap();
        }
        assert!((a.pressure() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn offline_region_refuses_allocation() {
        let mut a = alloc_with(0, 2 * PAGE_SIZE);
        a.add_region(PhysAddr::new(0x10_0000), 2 * PAGE_SIZE).unwrap();
        a.set_online(PhysAddr::new(0), false).unwrap();
        let f = a.alloc().unwrap();
        assert!(f.raw() >= 0x10_0000, "offline region must not serve frames");
        // Total frames excludes offline regions.
        assert_eq!(a.total_frames(), 2);
    }

    #[test]
    fn remove_requires_evacuation() {
        let mut a = alloc_with(0, 2 * PAGE_SIZE);
        let f = a.alloc().unwrap();
        assert!(matches!(
            a.remove_region(PhysAddr::new(0)),
            Err(FrameError::RegionBusy { allocated: 1 })
        ));
        a.free(f).unwrap();
        assert_eq!(a.remove_region(PhysAddr::new(0)), Ok(2 * PAGE_SIZE));
        assert_eq!(a.total_frames(), 0);
        assert!(matches!(a.remove_region(PhysAddr::new(0)), Err(FrameError::NoSuchRegion(_))));
    }

    #[test]
    fn owns_checks_bounds() {
        let a = alloc_with(0x1000, PAGE_SIZE);
        assert!(a.owns(PhysAddr::new(0x1fff)));
        assert!(!a.owns(PhysAddr::new(0x2000)));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FrameError::OutOfMemory,
            FrameError::NotOwned(PhysAddr::new(0)),
            FrameError::RegionBusy { allocated: 3 },
            FrameError::NoSuchRegion(PhysAddr::new(0)),
            FrameError::Unaligned,
            FrameError::Overlap,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
