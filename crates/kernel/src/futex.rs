//! Futex (fast userspace mutex) support.
//!
//! §6.5: Popcorn-Linux "relies on the origin kernel to create and control
//! all Futex instances", requiring a message round-trip per remote
//! operation. Stramash-Linux instead "allows the remote kernel to
//! directly access the Futex locking list" and only sends a cross-ISA
//! IPI when a waiter on the other kernel must be woken.
//!
//! This module is the shared substrate: the per-kernel futex table with
//! wait queues. How a *remote* operation reaches the table (message
//! protocol vs direct shared-memory access) is decided by the OS layers.

use crate::addr::VirtAddr;
use std::collections::{HashMap, VecDeque};
use stramash_sim::DomainId;

/// Identifier of a (simulated) thread blocked on a futex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u64);

/// A waiter entry: which thread, and which domain it sleeps on (wakeups
/// across domains need a cross-ISA IPI, §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The blocked thread.
    pub thread: ThreadId,
    /// The domain whose scheduler must be poked to wake it.
    pub domain: DomainId,
}

/// The futex table of one kernel instance ("the Futex locking list").
///
/// # Examples
///
/// ```
/// use stramash_kernel::addr::VirtAddr;
/// use stramash_kernel::futex::{FutexTable, ThreadId, Waiter};
/// use stramash_sim::DomainId;
///
/// let mut futexes = FutexTable::new();
/// let uaddr = VirtAddr::new(0x6000);
/// futexes.wait(uaddr, Waiter { thread: ThreadId(1), domain: DomainId::ARM });
/// // The §6.5 wake path: a cross-domain waiter needs a cross-ISA IPI.
/// let woken = futexes.wake_one(uaddr).unwrap();
/// assert_eq!(woken.domain, DomainId::ARM);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FutexTable {
    queues: HashMap<u64, VecDeque<Waiter>>,
    /// Total wait operations ever enqueued (for experiment reporting).
    waits: u64,
    /// Total successful wakes.
    wakes: u64,
}

impl FutexTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        FutexTable::default()
    }

    /// Enqueues `waiter` on the futex at user address `uaddr`.
    pub fn wait(&mut self, uaddr: VirtAddr, waiter: Waiter) {
        self.queues.entry(uaddr.raw()).or_default().push_back(waiter);
        self.waits += 1;
    }

    /// Dequeues the longest-waiting thread on `uaddr`, if any.
    pub fn wake_one(&mut self, uaddr: VirtAddr) -> Option<Waiter> {
        let q = self.queues.get_mut(&uaddr.raw())?;
        let w = q.pop_front();
        if q.is_empty() {
            self.queues.remove(&uaddr.raw());
        }
        if w.is_some() {
            self.wakes += 1;
        }
        w
    }

    /// Number of threads currently blocked on `uaddr`.
    #[must_use]
    pub fn waiters(&self, uaddr: VirtAddr) -> usize {
        self.queues.get(&uaddr.raw()).map_or(0, VecDeque::len)
    }

    /// Number of distinct futexes with blocked threads.
    #[must_use]
    pub fn active_futexes(&self) -> usize {
        self.queues.len()
    }

    /// Lifetime wait-operation count.
    #[must_use]
    pub fn total_waits(&self) -> u64 {
        self.waits
    }

    /// Lifetime successful-wake count.
    #[must_use]
    pub fn total_wakes(&self) -> u64 {
        self.wakes
    }

    /// Removes every waiter sleeping on the dead domain and returns the
    /// *surviving* waiters that were queued behind them, per futex — the
    /// watchdog wakes these with `OwnerDied` so a lock word owned by the
    /// crashed domain cannot block the survivor forever.
    ///
    /// Returned pairs are sorted by futex address for determinism.
    pub fn drain_domain(&mut self, dead: DomainId) -> Vec<(u64, Waiter)> {
        let mut orphaned = Vec::new();
        let mut empty = Vec::new();
        let mut addrs: Vec<u64> = self.queues.keys().copied().collect();
        addrs.sort_unstable();
        for uaddr in addrs {
            let q = self.queues.get_mut(&uaddr).expect("key just listed");
            let had_dead = q.iter().any(|w| w.domain == dead);
            q.retain(|w| w.domain != dead);
            if had_dead {
                // Survivors on a poisoned futex get woken with OwnerDied.
                orphaned.extend(q.drain(..).map(|w| (uaddr, w)));
            }
            if q.is_empty() {
                empty.push(uaddr);
            }
        }
        for uaddr in empty {
            self.queues.remove(&uaddr);
        }
        orphaned
    }

    /// Serializes the table (queues in futex-address order, counters)
    /// into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4654_5851); // "FTXQ"
        let mut addrs: Vec<u64> = self.queues.keys().copied().collect();
        addrs.sort_unstable();
        e.u64(addrs.len() as u64);
        for uaddr in addrs {
            e.u64(uaddr);
            let q = &self.queues[&uaddr];
            e.u64(q.len() as u64);
            for w in q {
                e.u64(w.thread.0);
                e.u8(w.domain.index() as u8);
            }
        }
        e.u64(self.waits);
        e.u64(self.wakes);
    }

    /// Restores a table written by [`FutexTable::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4654_5851)?;
        let n = d.len()?;
        let mut queues = HashMap::with_capacity(n);
        for _ in 0..n {
            let uaddr = d.u64()?;
            let m = d.len()?;
            let mut q = VecDeque::with_capacity(m);
            for _ in 0..m {
                let thread = ThreadId(d.u64()?);
                let domain = match d.u8()? {
                    0 => DomainId::X86,
                    1 => DomainId::ARM,
                    _ => return Err(CheckpointError::Malformed("bad futex waiter domain")),
                };
                q.push_back(Waiter { thread, domain });
            }
            queues.insert(uaddr, q);
        }
        self.queues = queues;
        self.waits = d.u64()?;
        self.wakes = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UADDR: VirtAddr = VirtAddr::new(0x6000);

    fn waiter(id: u64, domain: DomainId) -> Waiter {
        Waiter { thread: ThreadId(id), domain }
    }

    #[test]
    fn fifo_wake_order() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(UADDR, waiter(2, DomainId::ARM));
        assert_eq!(t.waiters(UADDR), 2);
        assert_eq!(t.wake_one(UADDR).unwrap().thread, ThreadId(1));
        assert_eq!(t.wake_one(UADDR).unwrap().thread, ThreadId(2));
        assert_eq!(t.wake_one(UADDR), None);
        assert_eq!(t.waiters(UADDR), 0);
    }

    #[test]
    fn independent_futexes() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(VirtAddr::new(0x7000), waiter(2, DomainId::ARM));
        assert_eq!(t.active_futexes(), 2);
        assert_eq!(t.wake_one(VirtAddr::new(0x7000)).unwrap().thread, ThreadId(2));
        assert_eq!(t.active_futexes(), 1);
    }

    #[test]
    fn counters() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(UADDR, waiter(2, DomainId::X86));
        t.wake_one(UADDR);
        assert_eq!(t.total_waits(), 2);
        assert_eq!(t.total_wakes(), 1);
    }

    #[test]
    fn waiter_domain_is_preserved_for_cross_isa_wake() {
        // §6.5: "if the thread is currently waiting in the origin kernel,
        // the remote kernel sends a cross-ISA IPI" — the wake path needs
        // the waiter's domain to decide this.
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(9, DomainId::ARM));
        assert_eq!(t.wake_one(UADDR).unwrap().domain, DomainId::ARM);
    }
}
