//! Futex (fast userspace mutex) support.
//!
//! §6.5: Popcorn-Linux "relies on the origin kernel to create and control
//! all Futex instances", requiring a message round-trip per remote
//! operation. Stramash-Linux instead "allows the remote kernel to
//! directly access the Futex locking list" and only sends a cross-ISA
//! IPI when a waiter on the other kernel must be woken.
//!
//! This module is the shared substrate: the per-kernel futex table with
//! wait queues. How a *remote* operation reaches the table (message
//! protocol vs direct shared-memory access) is decided by the OS layers.

use crate::addr::VirtAddr;
use std::collections::{HashMap, VecDeque};
use stramash_sim::DomainId;

/// Identifier of a (simulated) thread blocked on a futex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u64);

/// A waiter entry: which thread, and which domain it sleeps on (wakeups
/// across domains need a cross-ISA IPI, §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The blocked thread.
    pub thread: ThreadId,
    /// The domain whose scheduler must be poked to wake it.
    pub domain: DomainId,
}

/// The futex table of one kernel instance ("the Futex locking list").
///
/// # Examples
///
/// ```
/// use stramash_kernel::addr::VirtAddr;
/// use stramash_kernel::futex::{FutexTable, ThreadId, Waiter};
/// use stramash_sim::DomainId;
///
/// let mut futexes = FutexTable::new();
/// let uaddr = VirtAddr::new(0x6000);
/// futexes.wait(uaddr, Waiter { thread: ThreadId(1), domain: DomainId::ARM });
/// // The §6.5 wake path: a cross-domain waiter needs a cross-ISA IPI.
/// let woken = futexes.wake_one(uaddr).unwrap();
/// assert_eq!(woken.domain, DomainId::ARM);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FutexTable {
    queues: HashMap<u64, VecDeque<Waiter>>,
    /// Total wait operations ever enqueued (for experiment reporting).
    waits: u64,
    /// Total successful wakes.
    wakes: u64,
}

impl FutexTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        FutexTable::default()
    }

    /// Enqueues `waiter` on the futex at user address `uaddr`.
    pub fn wait(&mut self, uaddr: VirtAddr, waiter: Waiter) {
        self.queues.entry(uaddr.raw()).or_default().push_back(waiter);
        self.waits += 1;
    }

    /// Dequeues the longest-waiting thread on `uaddr`, if any.
    pub fn wake_one(&mut self, uaddr: VirtAddr) -> Option<Waiter> {
        let q = self.queues.get_mut(&uaddr.raw())?;
        let w = q.pop_front();
        if q.is_empty() {
            self.queues.remove(&uaddr.raw());
        }
        if w.is_some() {
            self.wakes += 1;
        }
        w
    }

    /// Number of threads currently blocked on `uaddr`.
    #[must_use]
    pub fn waiters(&self, uaddr: VirtAddr) -> usize {
        self.queues.get(&uaddr.raw()).map_or(0, VecDeque::len)
    }

    /// Number of distinct futexes with blocked threads.
    #[must_use]
    pub fn active_futexes(&self) -> usize {
        self.queues.len()
    }

    /// Lifetime wait-operation count.
    #[must_use]
    pub fn total_waits(&self) -> u64 {
        self.waits
    }

    /// Lifetime successful-wake count.
    #[must_use]
    pub fn total_wakes(&self) -> u64 {
        self.wakes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UADDR: VirtAddr = VirtAddr::new(0x6000);

    fn waiter(id: u64, domain: DomainId) -> Waiter {
        Waiter { thread: ThreadId(id), domain }
    }

    #[test]
    fn fifo_wake_order() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(UADDR, waiter(2, DomainId::ARM));
        assert_eq!(t.waiters(UADDR), 2);
        assert_eq!(t.wake_one(UADDR).unwrap().thread, ThreadId(1));
        assert_eq!(t.wake_one(UADDR).unwrap().thread, ThreadId(2));
        assert_eq!(t.wake_one(UADDR), None);
        assert_eq!(t.waiters(UADDR), 0);
    }

    #[test]
    fn independent_futexes() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(VirtAddr::new(0x7000), waiter(2, DomainId::ARM));
        assert_eq!(t.active_futexes(), 2);
        assert_eq!(t.wake_one(VirtAddr::new(0x7000)).unwrap().thread, ThreadId(2));
        assert_eq!(t.active_futexes(), 1);
    }

    #[test]
    fn counters() {
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(1, DomainId::X86));
        t.wait(UADDR, waiter(2, DomainId::X86));
        t.wake_one(UADDR);
        assert_eq!(t.total_waits(), 2);
        assert_eq!(t.total_wakes(), 1);
    }

    #[test]
    fn waiter_domain_is_preserved_for_cross_isa_wake() {
        // §6.5: "if the thread is currently waiting in the origin kernel,
        // the remote kernel sends a cross-ISA IPI" — the wake path needs
        // the waiter's domain to decide this.
        let mut t = FutexTable::new();
        t.wait(UADDR, waiter(9, DomainId::ARM));
        assert_eq!(t.wake_one(UADDR).unwrap().domain, DomainId::ARM);
    }
}
