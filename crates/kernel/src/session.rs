//! Translation sessions: the kernel half of the batched memory pipeline.
//!
//! Every scalar `ld`/`st` pays one process-table probe and one
//! [`SoftTlb`] lookup (`OsSystem::translate`). Inside a tight workload
//! loop that cost dwarfs the simulated cache model itself. An
//! [`AccessSession`] amortises it: the `(pid, domain)` resolution
//! happens once per batch, and page→frame translations are cached in a
//! small direct-mapped array that a loop refills at most once per page.
//!
//! Correctness leans on one invariant: **a session entry is always a
//! copy of a live [`SoftTlb`] entry of the same `(process, domain)`**.
//! Any event that could stale a TLB entry — migration (flush), `munmap`,
//! `mprotect`, a DSM ownership transfer, a Stramash PTE reconfiguration
//! — already goes through [`SoftTlb::invalidate`]/[`SoftTlb::flush`],
//! which bump the TLB's generation counter. The session stores the
//! generation it was filled under and drops *everything* the moment it
//! observes a newer one, so it can never return a frame the TLB no
//! longer vouches for. Timing is unchanged: a session hit corresponds
//! exactly to a (zero-cycle) TLB hit on the scalar path, and a session
//! miss falls back to the ordinary counted, timed `translate`.
//!
//! [`SoftTlb`]: crate::process::SoftTlb

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::process::{Pid, Process};
use stramash_mem::PhysAddr;
use stramash_sim::DomainId;

/// Number of slots in the direct-mapped translation cache. 256 slots
/// cover 1 MiB of loop working set per fill — larger than any NPB
/// kernel's per-loop footprint at the classes the harness runs.
const SLOTS: usize = 256;

/// Sentinel VPN marking an empty slot (no real VPN is `u64::MAX`).
const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    vpn: u64,
    page_pa: PhysAddr,
    writable: bool,
}

impl SessionEntry {
    const VACANT: SessionEntry =
        SessionEntry { vpn: EMPTY, page_pa: PhysAddr::new(0), writable: false };
}

/// A per-client translation cache over one process's software TLB.
///
/// Created once (it is plain state — no borrows) and revalidated at
/// the top of every batch via `OsSystem::session_begin`; individual
/// translations go through `OsSystem::session_translate`.
#[derive(Debug, Clone)]
pub struct AccessSession {
    pid: Pid,
    domain: DomainId,
    generation: u64,
    valid: bool,
    entries: Box<[SessionEntry; SLOTS]>,
}

impl AccessSession {
    /// Creates an (invalid) session for `pid`; the first
    /// `session_begin` adopts the process's current domain and TLB
    /// generation.
    #[must_use]
    pub fn new(pid: Pid) -> Self {
        AccessSession {
            pid,
            domain: DomainId::X86,
            generation: 0,
            valid: false,
            entries: Box::new([SessionEntry::VACANT; SLOTS]),
        }
    }

    /// The process this session translates for.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The domain adopted at the last revalidation.
    #[must_use]
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Whether the session currently holds any usable state.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The TLB generation adopted at the last revalidation. Plan caches
    /// compare this against the live TLB to detect shootdowns that
    /// happened since a plan (or session) was compiled.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drops every cached translation.
    pub fn clear(&mut self) {
        self.valid = false;
        self.entries.fill(SessionEntry::VACANT);
    }

    /// Syncs the session with `proc`'s current domain and TLB
    /// generation, dropping all cached translations if either moved.
    /// Returns the (possibly new) domain.
    pub fn revalidate(&mut self, proc: &Process) -> DomainId {
        let domain = proc.current;
        let generation = proc.tlb(domain).generation();
        if !self.valid || self.domain != domain || self.generation != generation {
            self.entries.fill(SessionEntry::VACANT);
            self.domain = domain;
            self.generation = generation;
            self.valid = true;
        }
        domain
    }

    /// Cached translation of the page containing `va`, if present and
    /// adequate for the access (`write` requires a writable mapping).
    #[must_use]
    pub fn lookup(&self, va: VirtAddr, write: bool) -> Option<PhysAddr> {
        debug_assert!(self.valid, "session used before session_begin");
        let vpn = va.vpn();
        let e = &self.entries[(vpn as usize) & (SLOTS - 1)];
        if e.vpn == vpn && (!write || e.writable) {
            Some(e.page_pa.offset(va.page_offset()))
        } else {
            None
        }
    }

    /// Installs a translation copied from the live TLB.
    pub fn insert(&mut self, va: VirtAddr, page_pa: PhysAddr, writable: bool) {
        let vpn = va.vpn();
        self.entries[(vpn as usize) & (SLOTS - 1)] = SessionEntry {
            vpn,
            page_pa: page_pa.align_down(PAGE_SIZE),
            writable,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_respects_writability_and_slots() {
        let mut s = AccessSession::new(Pid(1));
        s.valid = true; // unit-test shortcut; OS layers use revalidate
        let va = VirtAddr::new(0x4000_0123);
        assert!(s.lookup(va, false).is_none());
        s.insert(va, PhysAddr::new(0x55_4321), false);
        // Page-granular, offset re-applied, write filtered.
        assert_eq!(s.lookup(va, false).unwrap().raw(), 0x55_4000 + 0x123);
        assert!(s.lookup(va, true).is_none());
        s.insert(va, PhysAddr::new(0x55_4000), true);
        assert!(s.lookup(va, true).is_some());
        // A VPN aliasing the same slot evicts the previous entry.
        let alias = VirtAddr::new(va.raw() + (SLOTS as u64) * PAGE_SIZE);
        s.insert(alias, PhysAddr::new(0x99_0000), true);
        assert!(s.lookup(va, false).is_none());
        assert_eq!(s.lookup(alias, false).unwrap().raw(), 0x99_0123);
    }

    #[test]
    fn clear_drops_everything() {
        let mut s = AccessSession::new(Pid(2));
        s.valid = true;
        s.insert(VirtAddr::new(0x1000), PhysAddr::new(0x9000), true);
        s.clear();
        assert!(!s.is_valid());
    }
}
