//! **Stramash** — the fused-kernel operating system.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§5 "Fused-kernel Operating Systems Design", §6 "Stramash-Linux
//! Implementation"): a multiple-kernel OS for cache-coherent,
//! heterogeneous-ISA platforms built on the **shared-mostly** principle
//! — kernel instances communicate through (and share state in)
//! cache-coherent shared memory instead of message passing.
//!
//! Modules:
//!
//! * [`system`] — [`StramashSystem`], the OS itself: the Stramash page
//!   fault handler with direct remote PTE insertion under the cross-ISA
//!   Stramash-PTL, remote VMA walking, fused futexes, migration with
//!   PTE reconfiguration, and process-exit recycling (§6.4, §6.5).
//! * [`fused_vas`] — the fused kernel virtual address space (§6.4).
//! * [`galloc`] — the global memory allocator over the shared pool with
//!   hotplug-style offline/online (§6.3, Table 4).
//!
//! # Example
//!
//! ```
//! use stramash::StramashSystem;
//! use stramash_kernel::system::OsSystem;
//! use stramash_kernel::vma::VmaProt;
//! use stramash_sim::{DomainId, HardwareModel, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
//! let mut sys = StramashSystem::new(cfg)?;
//! let pid = sys.spawn(DomainId::X86)?;
//! let buf = sys.mmap(pid, 64 << 10, VmaProt::rw())?;
//! sys.store_u64(pid, buf, 1)?;           // origin builds its tables
//! sys.migrate(pid, DomainId::ARM)?;      // cross-ISA migration
//! sys.store_u64(pid, buf.offset(4096), 2)?; // remote fault: NO messages
//! assert_eq!(sys.counters().direct_remote_faults, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fused_vas;
pub mod galloc;
pub mod system;

pub use fused_vas::{FusedKernelVas, KernelVa, VasError};
pub use galloc::{GallocError, GlobalAllocator, MAX_BLOCK, MIN_BLOCK, PRESSURE_THRESHOLD};
pub use system::{StramashCounters, StramashSystem, DEFAULT_BLOCK_SIZE};
