//! The global memory allocator (§6.3).
//!
//! Stramash-Linux manages the shared physical pool with a fixed-size
//! block allocator (block size configurable from 32 MB to 4 GB, minimum
//! 32 MB "to reduce the overhead associated with frequent memory
//! assignments"). A kernel whose memory pressure passes 70 % requests a
//! block; if none is free the allocator evicts one from the other
//! kernel. Hot removal follows the modified hotplug path: "it first
//! evacuates the memory block and then isolates the pages" — the
//! per-page isolation work is what Table 4 measures.

use std::fmt;
use stramash_mem::{MemorySystem, PhysAddr};
use stramash_sim::{Cycles, DomainId};

/// Pressure threshold above which a kernel requests another block.
pub const PRESSURE_THRESHOLD: f64 = 0.70;

/// Smallest supported block (§6.3).
pub const MIN_BLOCK: u64 = 32 << 20;
/// Largest supported block (§6.3).
pub const MAX_BLOCK: u64 = 4 << 30;

/// Bytes of `struct page` metadata per 4 KiB page (one cache line, as
/// in Linux's 64-byte `struct page`).
const PAGE_DESC_BYTES: u64 = 64;

/// Instructions of kernel work per page isolated (offline path walks
/// LRU/buddy lists and checks references).
const OFFLINE_INSNS_PER_PAGE: u64 = 55;
/// Instructions per page restored on the online path.
const ONLINE_INSNS_PER_PAGE: u64 = 30;

/// Errors from the global allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GallocError {
    /// Block size outside 32 MB – 4 GB or not a power of two.
    BadBlockSize(u64),
    /// The pool is smaller than one block.
    PoolTooSmall,
    /// The block does not belong to this allocator.
    NoSuchBlock(PhysAddr),
    /// Every block is owned and the peer has none to evict.
    Exhausted,
}

impl fmt::Display for GallocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GallocError::BadBlockSize(s) => {
                write!(f, "block size {s} outside the 32 MB – 4 GB power-of-two range")
            }
            GallocError::PoolTooSmall => f.write_str("pool smaller than one block"),
            GallocError::NoSuchBlock(pa) => write!(f, "no pool block starts at {pa}"),
            GallocError::Exhausted => f.write_str("no block free and nothing to evict"),
        }
    }
}

impl std::error::Error for GallocError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    start: PhysAddr,
    owner: Option<DomainId>,
}

/// The fixed-size global block allocator over the shared pool.
///
/// # Examples
///
/// ```
/// use stramash::GlobalAllocator;
/// use stramash_mem::PhysAddr;
/// use stramash_sim::DomainId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut galloc = GlobalAllocator::new(
///     PhysAddr::new(4 << 30),
///     PhysAddr::new(8 << 30),
///     256 << 20, // the paper's §9.2.7 slice size
///     [PhysAddr::new(32 << 20), PhysAddr::new((3 << 29) + (32 << 20))],
/// )?;
/// let block = galloc.request(DomainId::ARM)?;
/// assert_eq!(galloc.owner(block)?, Some(DomainId::ARM));
/// galloc.release(block)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    block_size: u64,
    blocks: Vec<Block>,
    /// Per-domain base of the `struct page` descriptor array used to
    /// charge the isolation work.
    vmemmap_base: [PhysAddr; 2],
}

impl GlobalAllocator {
    /// Creates an allocator over `[pool_start, pool_end)`.
    ///
    /// # Errors
    ///
    /// [`GallocError::BadBlockSize`] or [`GallocError::PoolTooSmall`].
    pub fn new(
        pool_start: PhysAddr,
        pool_end: PhysAddr,
        block_size: u64,
        vmemmap_base: [PhysAddr; 2],
    ) -> Result<Self, GallocError> {
        if !(MIN_BLOCK..=MAX_BLOCK).contains(&block_size) || !block_size.is_power_of_two() {
            return Err(GallocError::BadBlockSize(block_size));
        }
        let len = pool_end.raw().saturating_sub(pool_start.raw());
        let count = len / block_size;
        if count == 0 {
            return Err(GallocError::PoolTooSmall);
        }
        let blocks = (0..count)
            .map(|i| Block { start: pool_start.offset(i * block_size), owner: None })
            .collect();
        Ok(GlobalAllocator { block_size, blocks, vmemmap_base })
    }

    /// The configured block size.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Serializes the mutable allocator state (per-block owners; block
    /// starts and geometry are derived from the boot configuration).
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4741_4c43); // "GALC"
        e.u64(self.block_size);
        e.u64(self.blocks.len() as u64);
        for b in &self.blocks {
            e.u8(match b.owner {
                None => 2,
                Some(d) => d.index() as u8,
            });
        }
    }

    /// Restores ownership written by [`GlobalAllocator::save_state`].
    ///
    /// # Errors
    ///
    /// `ConfigMismatch` when the block geometry disagrees; decoding
    /// errors otherwise.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4741_4c43)?;
        if d.u64()? != self.block_size || d.u64()? != self.blocks.len() as u64 {
            return Err(CheckpointError::ConfigMismatch);
        }
        for b in &mut self.blocks {
            b.owner = match d.u8()? {
                0 => Some(DomainId::X86),
                1 => Some(DomainId::ARM),
                2 => None,
                _ => return Err(CheckpointError::Malformed("bad block owner code")),
            };
        }
        Ok(())
    }

    /// Number of unowned blocks.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.owner.is_none()).count()
    }

    /// Number of blocks owned by `domain`.
    #[must_use]
    pub fn owned_by(&self, domain: DomainId) -> usize {
        self.blocks.iter().filter(|b| b.owner == Some(domain)).count()
    }

    /// The owner of the block starting at `start`.
    ///
    /// # Errors
    ///
    /// [`GallocError::NoSuchBlock`].
    pub fn owner(&self, start: PhysAddr) -> Result<Option<DomainId>, GallocError> {
        self.blocks
            .iter()
            .find(|b| b.start == start)
            .map(|b| b.owner)
            .ok_or(GallocError::NoSuchBlock(start))
    }

    /// Grants a free block to `requester` ("if a block is free, it is
    /// directly assigned", §6.3). Returns the block start.
    ///
    /// # Errors
    ///
    /// [`GallocError::Exhausted`] when no block is free (the caller may
    /// then run the eviction protocol).
    pub fn request(&mut self, requester: DomainId) -> Result<PhysAddr, GallocError> {
        let block =
            self.blocks.iter_mut().find(|b| b.owner.is_none()).ok_or(GallocError::Exhausted)?;
        block.owner = Some(requester);
        Ok(block.start)
    }

    /// Picks the peer block to evict when nothing is free: the
    /// most-recently granted block of the *other* kernel.
    ///
    /// # Errors
    ///
    /// [`GallocError::Exhausted`] when the peer owns nothing either.
    pub fn eviction_candidate(&self, requester: DomainId) -> Result<PhysAddr, GallocError> {
        self.blocks
            .iter()
            .rev()
            .find(|b| b.owner == Some(requester.other()))
            .map(|b| b.start)
            .ok_or(GallocError::Exhausted)
    }

    /// Returns a block to the free pool.
    ///
    /// # Errors
    ///
    /// [`GallocError::NoSuchBlock`].
    pub fn release(&mut self, start: PhysAddr) -> Result<(), GallocError> {
        let block = self
            .blocks
            .iter_mut()
            .find(|b| b.start == start)
            .ok_or(GallocError::NoSuchBlock(start))?;
        block.owner = None;
        Ok(())
    }

    /// Transfers ownership directly (eviction completion).
    ///
    /// # Errors
    ///
    /// [`GallocError::NoSuchBlock`].
    pub fn transfer(&mut self, start: PhysAddr, to: DomainId) -> Result<(), GallocError> {
        let block = self
            .blocks
            .iter_mut()
            .find(|b| b.start == start)
            .ok_or(GallocError::NoSuchBlock(start))?;
        block.owner = Some(to);
        Ok(())
    }

    /// The hotplug-style **offline** path run by `domain` on `pages`
    /// pages: walk each page descriptor, check references, isolate.
    /// Returns the cycles charged (the Table 4 "Offline" column).
    pub fn offline_cost(
        &self,
        mem: &mut MemorySystem,
        domain: DomainId,
        pages: u64,
    ) -> Cycles {
        let mut cycles = Cycles::ZERO;
        let base = self.vmemmap_base[domain.index()];
        for p in 0..pages {
            let desc = base.offset((p % (1 << 20)) * PAGE_DESC_BYTES);
            // Read the descriptor, then write the isolated flag.
            let (_, c1) = mem.read_u64(domain, desc);
            let c2 = mem.write_u64(domain, desc.offset(8), 1);
            cycles += c1 + c2 + Cycles::new(OFFLINE_INSNS_PER_PAGE);
        }
        cycles
    }

    /// The **online** path: clear isolation and return pages to the
    /// buddy lists (Table 4 "Online" column).
    pub fn online_cost(&self, mem: &mut MemorySystem, domain: DomainId, pages: u64) -> Cycles {
        let mut cycles = Cycles::ZERO;
        let base = self.vmemmap_base[domain.index()];
        for p in 0..pages {
            let desc = base.offset((p % (1 << 20)) * PAGE_DESC_BYTES);
            let c = mem.write_u64(domain, desc.offset(8), 0);
            cycles += c + Cycles::new(ONLINE_INSNS_PER_PAGE);
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::SimConfig;

    const POOL_START: PhysAddr = PhysAddr::new((4 << 30) + (128 << 20));
    const POOL_END: PhysAddr = PhysAddr::new(8 << 30);

    fn galloc(block: u64) -> GlobalAllocator {
        GlobalAllocator::new(
            POOL_START,
            POOL_END,
            block,
            [PhysAddr::new(32 << 20), PhysAddr::new((3 << 29) + (32 << 20))],
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_block_sizes() {
        for bad in [16 << 20, 8u64 << 30, 100 << 20] {
            assert!(matches!(
                GlobalAllocator::new(POOL_START, POOL_END, bad, [PhysAddr::new(0); 2]),
                Err(GallocError::BadBlockSize(_))
            ));
        }
        // Paper bounds are inclusive.
        assert!(GlobalAllocator::new(POOL_START, POOL_END, 32 << 20, [PhysAddr::new(0); 2]).is_ok());
    }

    #[test]
    fn request_until_exhausted_then_evict() {
        let mut g = galloc(1 << 30); // ~3.87 GB pool → 3 blocks
        assert_eq!(g.free_blocks(), 3);
        let b1 = g.request(DomainId::X86).unwrap();
        let _b2 = g.request(DomainId::X86).unwrap();
        let _b3 = g.request(DomainId::ARM).unwrap();
        assert_eq!(g.free_blocks(), 0);
        assert_eq!(g.owned_by(DomainId::X86), 2);
        assert!(matches!(g.request(DomainId::ARM), Err(GallocError::Exhausted)));
        // §6.3: evict from the other kernel.
        let victim = g.eviction_candidate(DomainId::ARM).unwrap();
        assert_eq!(g.owner(victim).unwrap(), Some(DomainId::X86));
        g.transfer(victim, DomainId::ARM).unwrap();
        assert_eq!(g.owned_by(DomainId::ARM), 2);
        // Release returns to the pool.
        g.release(b1).unwrap();
        assert_eq!(g.free_blocks(), 1);
    }

    #[test]
    fn eviction_without_peer_blocks_fails() {
        let mut g = galloc(1 << 30);
        g.request(DomainId::X86).unwrap();
        assert!(matches!(g.eviction_candidate(DomainId::X86), Err(GallocError::Exhausted)));
    }

    #[test]
    fn no_such_block_errors() {
        let mut g = galloc(1 << 30);
        assert!(matches!(g.owner(PhysAddr::new(0)), Err(GallocError::NoSuchBlock(_))));
        assert!(matches!(g.release(PhysAddr::new(0)), Err(GallocError::NoSuchBlock(_))));
        assert!(matches!(
            g.transfer(PhysAddr::new(0), DomainId::X86),
            Err(GallocError::NoSuchBlock(_))
        ));
    }

    #[test]
    fn offline_cost_scales_linearly_and_exceeds_online() {
        // The Table 4 shape: cost grows with page count; offline > online
        // for x86.
        let mut mem = MemorySystem::new(SimConfig::big_pair()).unwrap();
        let g = galloc(256 << 20);
        let off_small = g.offline_cost(&mut mem, DomainId::X86, 1 << 12);
        mem.flush_caches();
        let off_big = g.offline_cost(&mut mem, DomainId::X86, 1 << 14);
        mem.flush_caches();
        let on_big = g.online_cost(&mut mem, DomainId::X86, 1 << 14);
        assert!(off_big.raw() > 3 * off_small.raw(), "offline must scale with pages");
        assert!(off_big > on_big, "offline does more work than online");
    }

    #[test]
    fn table4_magnitudes_are_milliseconds() {
        // Table 4 reports 2^15-page operations in the 5–13 ms range.
        let mut mem = MemorySystem::new(SimConfig::big_pair()).unwrap();
        let g = galloc(256 << 20);
        let freq = 2_100_000_000;
        let off = g.offline_cost(&mut mem, DomainId::X86, 1 << 15).to_millis(freq);
        assert!((1.0..60.0).contains(&off), "offline(2^15) = {off} ms, expected ms-scale");
    }

    #[test]
    fn error_display() {
        for e in [
            GallocError::BadBlockSize(7),
            GallocError::PoolTooSmall,
            GallocError::NoSuchBlock(PhysAddr::new(0)),
            GallocError::Exhausted,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
