//! The fused kernel virtual address space (§6.4).
//!
//! "Stramash-Linux aligns kernel virtual addresses across different
//! kernel instances, enabling full addressability of another kernel's
//! memory. By adjusting the vmalloc ranges of x86 to align with the
//! direct map range of the Arm instance, the Arm's virtual address space
//! becomes fully addressable to the x86 kernel instance, and vice
//! versa."
//!
//! The model: each kernel direct-maps all physical memory at its own
//! base; the *other* kernel aliases that same window at the same virtual
//! addresses (carved out of its vmalloc range). A kernel virtual address
//! therefore means the same physical byte on both kernels — which is
//! what lets accessor functions chase pointers in the peer's data
//! structures without translation messages.

use std::fmt;
use stramash_mem::PhysAddr;
use stramash_sim::DomainId;

/// Base of the x86 kernel's direct map (Linux's `page_offset_base`).
pub const X86_DIRECT_BASE: u64 = 0xffff_8880_0000_0000;
/// Base of the Arm kernel's direct map (Linux arm64 linear map).
pub const ARM_DIRECT_BASE: u64 = 0xffff_0000_0000_0000;
/// Size of each direct-map window (covers the 8 GB platform easily).
pub const DIRECT_WINDOW: u64 = 1 << 40;

/// A kernel-space virtual address in the fused address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelVa(pub u64);

impl fmt::Display for KernelVa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KVA:{:#x}", self.0)
    }
}

/// Errors from fused-VAS construction or resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VasError {
    /// The two direct-map windows collide, so vmalloc aliasing cannot be
    /// aligned.
    WindowsOverlap,
    /// Randomized structure layout is enabled; direct remote access to
    /// kernel data structures is unsound (§6.4: "we need to disable the
    /// randomized layout to enable direct remote access").
    RandomizedLayout,
}

impl fmt::Display for VasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VasError::WindowsOverlap => f.write_str("direct-map windows overlap"),
            VasError::RandomizedLayout => {
                f.write_str("randomized structure layout prevents remote access")
            }
        }
    }
}

impl std::error::Error for VasError {}

/// The fused kernel virtual address space of the kernel pair.
///
/// # Examples
///
/// ```
/// use stramash::FusedKernelVas;
/// use stramash_mem::PhysAddr;
/// use stramash_sim::DomainId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vas = FusedKernelVas::new(false)?; // layout randomisation off (§6.4)
/// // The KVA through which ANY kernel addresses a byte of the Arm
/// // kernel's memory:
/// let kva = vas.kva(DomainId::ARM, PhysAddr::new(0x8000_0000));
/// let (owner, pa) = vas.resolve(kva).unwrap();
/// assert_eq!(owner, DomainId::ARM);
/// assert_eq!(pa.raw(), 0x8000_0000);
/// assert!(vas.is_remote_window(DomainId::X86, kva));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedKernelVas {
    bases: [u64; 2],
}

impl FusedKernelVas {
    /// Builds the paper's configuration: x86 and Arm Linux direct-map
    /// bases, layout randomization disabled.
    ///
    /// # Errors
    ///
    /// [`VasError::RandomizedLayout`] if `randomized_layout` is true,
    /// [`VasError::WindowsOverlap`] if the windows collide.
    pub fn new(randomized_layout: bool) -> Result<Self, VasError> {
        Self::with_bases(X86_DIRECT_BASE, ARM_DIRECT_BASE, randomized_layout)
    }

    /// Builds with explicit window bases (tests, other platforms).
    ///
    /// # Errors
    ///
    /// See [`FusedKernelVas::new`].
    pub fn with_bases(x86: u64, arm: u64, randomized_layout: bool) -> Result<Self, VasError> {
        if randomized_layout {
            return Err(VasError::RandomizedLayout);
        }
        let lo = x86.min(arm);
        let hi = x86.max(arm);
        if lo + DIRECT_WINDOW > hi {
            return Err(VasError::WindowsOverlap);
        }
        Ok(FusedKernelVas { bases: [x86, arm] })
    }

    /// The fused KVA through which *any* kernel addresses physical byte
    /// `pa` via `owner`'s direct-map window.
    ///
    /// # Panics
    ///
    /// Panics if `pa` exceeds the window.
    #[must_use]
    pub fn kva(&self, owner: DomainId, pa: PhysAddr) -> KernelVa {
        assert!(pa.raw() < DIRECT_WINDOW, "physical address beyond the direct window");
        KernelVa(self.bases[owner.index()] + pa.raw())
    }

    /// Resolves a fused KVA to `(window owner, physical address)`.
    #[must_use]
    pub fn resolve(&self, kva: KernelVa) -> Option<(DomainId, PhysAddr)> {
        for d in DomainId::ALL {
            let base = self.bases[d.index()];
            if kva.0 >= base && kva.0 < base + DIRECT_WINDOW {
                return Some((d, PhysAddr::new(kva.0 - base)));
            }
        }
        None
    }

    /// Whether `kva` lies in the *other* kernel's window from
    /// `domain`'s perspective (a "remote" kernel access).
    #[must_use]
    pub fn is_remote_window(&self, domain: DomainId, kva: KernelVa) -> bool {
        matches!(self.resolve(kva), Some((owner, _)) if owner != domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_builds() {
        let vas = FusedKernelVas::new(false).unwrap();
        let pa = PhysAddr::new(0x1234_5000);
        let via_x86 = vas.kva(DomainId::X86, pa);
        let via_arm = vas.kva(DomainId::ARM, pa);
        assert_ne!(via_x86, via_arm, "each owner has its own window");
        assert_eq!(vas.resolve(via_x86), Some((DomainId::X86, pa)));
        assert_eq!(vas.resolve(via_arm), Some((DomainId::ARM, pa)));
    }

    #[test]
    fn same_kva_means_same_byte_on_both_kernels() {
        // The fused property: a KVA resolves identically no matter which
        // kernel dereferences it.
        let vas = FusedKernelVas::new(false).unwrap();
        let kva = vas.kva(DomainId::ARM, PhysAddr::new(0x8000_0000));
        let (owner, pa) = vas.resolve(kva).unwrap();
        assert_eq!(owner, DomainId::ARM);
        assert_eq!(pa.raw(), 0x8000_0000);
        // From x86's perspective this KVA is a remote-window access.
        assert!(vas.is_remote_window(DomainId::X86, kva));
        assert!(!vas.is_remote_window(DomainId::ARM, kva));
    }

    #[test]
    fn randomized_layout_is_rejected() {
        assert_eq!(FusedKernelVas::new(true).unwrap_err(), VasError::RandomizedLayout);
    }

    #[test]
    fn overlapping_windows_rejected() {
        assert_eq!(
            FusedKernelVas::with_bases(0xffff_0000_0000_0000, 0xffff_0000_8000_0000, false)
                .unwrap_err(),
            VasError::WindowsOverlap
        );
    }

    #[test]
    fn unresolvable_kva() {
        let vas = FusedKernelVas::new(false).unwrap();
        assert_eq!(vas.resolve(KernelVa(0x1000)), None);
    }

    #[test]
    #[should_panic(expected = "beyond the direct window")]
    fn kva_bounds_checked() {
        let vas = FusedKernelVas::new(false).unwrap();
        let _ = vas.kva(DomainId::X86, PhysAddr::new(DIRECT_WINDOW));
    }

    #[test]
    fn error_display() {
        assert!(!VasError::WindowsOverlap.to_string().is_empty());
        assert!(!VasError::RandomizedLayout.to_string().is_empty());
        assert_eq!(KernelVa(0x40).to_string(), "KVA:0x40");
    }
}
