//! The fused-kernel operating system (§5, §6) — the paper's primary
//! contribution.
//!
//! [`StramashSystem`] runs the same kernel-pair substrate as the Popcorn
//! baseline, but replaces nearly every message protocol with direct
//! cache-coherent shared-memory access:
//!
//! * **Remote VMA walker** (§6.4): instead of a message exchange, the
//!   faulting kernel takes the origin's VMA lock with a cross-ISA CAS
//!   and walks the tree in shared memory.
//! * **Software remote page-table walker** (§6.4): the remote kernel
//!   reads the origin's table levels directly (paying remote-memory
//!   latency), using the origin ISA's masks via a
//!   [`stramash_isa::RemoteCpuDriver`].
//! * **Stramash page-fault handler** (§6.4): the remote kernel allocates
//!   anonymous pages from its *own* memory without notifying the origin,
//!   inserts them into both page tables under the cross-ISA
//!   **Stramash-PTL**, writing the origin-side entry in the remote
//!   node's ISA format; the entry is reconfigured to the origin format
//!   when the process migrates back. Only when the origin's upper table
//!   levels are missing does the origin handle the fault over messages
//!   (§9.2.3) — the residual replications of Table 3.
//! * **Fused futex** (§6.5): remote kernels operate on the futex word
//!   and the origin's futex list directly; waking a cross-kernel waiter
//!   costs a single cross-ISA IPI.
//! * **Global memory allocator** (§6.3): blocks of the shared pool are
//!   granted on memory pressure and evicted from the peer when the pool
//!   runs dry (hotplug-style offline/online, Table 4).

use crate::fused_vas::FusedKernelVas;
use crate::galloc::{GallocError, GlobalAllocator, PRESSURE_THRESHOLD};
use std::collections::HashMap;
use stramash_isa::{PteFlags, RawPte, RemoteCpuDriver};
use stramash_kernel::addr::{VirtAddr, PAGE_SIZE};
use stramash_kernel::futex::{ThreadId, Waiter};
use stramash_kernel::msg::{Message, MsgType};
use stramash_kernel::pagetable::{MapError, PageTable};
use stramash_kernel::process::Pid;
use stramash_kernel::system::{
    protocol_round_trip, BaseSystem, OsError, OsSystem, FAULT_TRAP_COST, MIGRATION_SCHED_COST,
};
use stramash_kernel::BootConfig;
use stramash_mem::PhysAddr;
use stramash_sim::trace::{FutexOp, TraceEvent, HIST_FUTEX_WAIT};
use stramash_sim::{Cycles, DomainId, SharedTracer, SimConfig};

/// Kernel handler work per origin-handled fault message.
const ORIGIN_FAULT_HANDLER_COST: Cycles = Cycles::new(400);

/// Cycles charged to retry a transiently failed frame allocation.
const ALLOC_RETRY_COST: Cycles = Cycles::new(200);

/// Maximum Stramash-PTL acquisition attempts before the path aborts
/// with [`OsError::LockTimeout`].
const MAX_PTL_ATTEMPTS: u32 = 8;

/// Base backoff charged after a contended Stramash-PTL attempt; doubles
/// per retry, capped at 8×.
const PTL_BACKOFF_BASE: Cycles = Cycles::new(200);

/// The migration payload/transformation model (same Popcorn toolchain).
fn migration_cost_model() -> stramash_isa::MigrationCostModel {
    stramash_isa::MigrationCostModel::popcorn_toolchain()
}

/// Default global-allocator block size used by the experiments (§9.2.7
/// uses 256 MB slices).
pub const DEFAULT_BLOCK_SIZE: u64 = 256 << 20;

/// Fused-OS specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StramashCounters {
    /// Remote faults resolved with zero messages (direct PTE insertion).
    pub direct_remote_faults: u64,
    /// Stramash-PTL acquisitions.
    pub ptl_acquisitions: u64,
    /// Remote VMA-tree walks over shared memory.
    pub remote_vma_walks: u64,
    /// Remote-format PTEs reconfigured at migrate-back (§6.4).
    pub pte_reconfigurations: u64,
    /// Futex wakes delivered with a single cross-ISA IPI.
    pub futex_wake_ipis: u64,
    /// Pool blocks granted by the global allocator.
    pub blocks_granted: u64,
    /// Pool blocks evicted from the peer kernel.
    pub blocks_evicted: u64,
}

/// The fused-kernel OS.
#[derive(Debug)]
pub struct StramashSystem {
    base: BaseSystem,
    galloc: GlobalAllocator,
    vas: FusedKernelVas,
    counters: StramashCounters,
    /// Origin-side PTEs currently encoded in the remote ISA's format
    /// (pid → virtual page numbers). Converted in bulk at migrate-back,
    /// or lazily if the origin kernel faults on one first (§6.4).
    remote_fmt_ptes: HashMap<u32, std::collections::BTreeSet<u64>>,
}

impl StramashSystem {
    /// Boots the fused-kernel OS with the paper's defaults (SHM
    /// messaging for the residual protocols, 256 MB pool blocks).
    ///
    /// # Errors
    ///
    /// Configuration errors.
    pub fn new(cfg: SimConfig) -> Result<Self, OsError> {
        Self::with_block_size(cfg, DEFAULT_BLOCK_SIZE)
    }

    /// Boots with an explicit global-allocator block size.
    ///
    /// # Errors
    ///
    /// Configuration errors, including an out-of-range block size.
    pub fn with_block_size(cfg: SimConfig, block_size: u64) -> Result<Self, OsError> {
        let base = BaseSystem::new(cfg, &BootConfig::paper_default())?;
        let vmemmap = [
            PhysAddr::new(32 << 20),
            PhysAddr::new((3u64 << 29) + (32 << 20)),
        ];
        let galloc = GlobalAllocator::new(base.pool_start, base.pool_end, block_size, vmemmap)
            .map_err(|e| match e {
                GallocError::BadBlockSize(_) | GallocError::PoolTooSmall => {
                    OsError::Config(stramash_sim::config::ConfigError::ZeroFrequency(format!(
                        "global allocator: {e}"
                    )))
                }
                _ => unreachable!("construction only fails on size/pool errors"),
            })?;
        let vas = FusedKernelVas::new(false)
            .map_err(|_| OsError::InvariantViolation("fused kernel VAS windows overlap"))?;
        Ok(StramashSystem {
            base,
            galloc,
            vas,
            counters: StramashCounters::default(),
            remote_fmt_ptes: HashMap::new(),
        })
    }

    /// Spawns a process on `origin`.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn spawn(&mut self, origin: DomainId) -> Result<Pid, OsError> {
        self.base.spawn(origin)
    }

    /// Fused-OS counters.
    #[must_use]
    pub fn counters(&self) -> &StramashCounters {
        &self.counters
    }

    /// Installs a shared tracer across the whole stack (memory system,
    /// messaging layer, IPI fabric, and the fused-OS events emitted by
    /// this system).
    pub fn install_tracer(&mut self, tracer: SharedTracer) {
        self.base.install_tracer(tracer);
    }

    /// The fused kernel virtual address space.
    #[must_use]
    pub fn fused_vas(&self) -> &FusedKernelVas {
        &self.vas
    }

    /// The global allocator (Table 4 benches drive it directly).
    #[must_use]
    pub fn global_allocator(&self) -> &GlobalAllocator {
        &self.galloc
    }

    /// Mutable global allocator access.
    pub fn global_allocator_mut(&mut self) -> &mut GlobalAllocator {
        &mut self.galloc
    }

    /// Replicated-page count (Table 3): only origin-handled faults
    /// replicate under Stramash.
    #[must_use]
    pub fn replicated_pages(&self) -> u64 {
        self.base.kernels.iter().map(|k| k.counters.replicated_pages).sum()
    }

    /// Serializes the whole system — base machine, global-allocator
    /// ownership, fused-OS counters and the pending remote-format PTE
    /// sets — into a checkpoint section. The fused VAS windows are boot
    /// configuration and are rebuilt, not stored.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x5354_524d); // "STRM"
        self.base.save_state(e);
        self.galloc.save_state(e);
        let c = &self.counters;
        for v in [
            c.direct_remote_faults,
            c.ptl_acquisitions,
            c.remote_vma_walks,
            c.pte_reconfigurations,
            c.futex_wake_ipis,
            c.blocks_granted,
            c.blocks_evicted,
        ] {
            e.u64(v);
        }
        let mut pids: Vec<u32> = self.remote_fmt_ptes.keys().copied().collect();
        pids.sort_unstable();
        e.u64(pids.len() as u64);
        for pid in pids {
            e.u32(pid);
            let vpns: Vec<u64> = self.remote_fmt_ptes[&pid].iter().copied().collect();
            e.u64s(&vpns);
        }
    }

    /// Restores state written by [`StramashSystem::save_state`] into
    /// this freshly booted system (same boot configuration required).
    ///
    /// # Errors
    ///
    /// Decoding errors; geometry mismatches surface as `ConfigMismatch`.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x5354_524d)?;
        self.base.load_state(d)?;
        self.galloc.load_state(d)?;
        self.counters = StramashCounters {
            direct_remote_faults: d.u64()?,
            ptl_acquisitions: d.u64()?,
            remote_vma_walks: d.u64()?,
            pte_reconfigurations: d.u64()?,
            futex_wake_ipis: d.u64()?,
            blocks_granted: d.u64()?,
            blocks_evicted: d.u64()?,
        };
        let n = d.len()?;
        let mut remote_fmt = HashMap::with_capacity(n);
        for _ in 0..n {
            let pid = d.u32()?;
            let vpns: std::collections::BTreeSet<u64> = d.u64s()?.into_iter().collect();
            remote_fmt.insert(pid, vpns);
        }
        self.remote_fmt_ptes = remote_fmt;
        Ok(())
    }

    /// Audits the fused-kernel invariants without timing side effects:
    /// ring-cursor sanity and MESI directory agreement (via
    /// [`BaseSystem::audit`]), plus for every VMA page the §6.4
    /// page-table ↔ VMA ↔ frame-ownership consistency — both kernels'
    /// page tables must agree on the backing frame, and that frame must
    /// be owned by one of the kernels. Pages whose origin-side PTE is
    /// still in the remote ISA's format (pending migrate-back
    /// reconfiguration) are checked on the remote side only. Returns
    /// one message per violation; an empty vector means the system is
    /// consistent after the latest fault-injection round.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut violations = self.base.audit();
        for proc in self.base.processes() {
            let remote_fmt = self.remote_fmt_ptes.get(&proc.pid.0);
            for vma in proc.vmas.iter() {
                for p in 0..vma.pages() {
                    let va = vma.start.offset(p * PAGE_SIZE);
                    let in_remote_fmt = remote_fmt.is_some_and(|s| s.contains(&va.vpn()));
                    let mut mapped = [None, None];
                    for d in DomainId::ALL {
                        // An origin-side entry in the remote format
                        // decodes with the wrong masks until migrate-back
                        // reconfigures it — skip that side.
                        if in_remote_fmt && d == proc.origin {
                            continue;
                        }
                        let Some(pt) = proc.page_table(d) else { continue };
                        if let Some((pa, _)) = pt.walk_untimed(&self.base.mem, va) {
                            mapped[d.index()] = Some(pa.align_down(PAGE_SIZE));
                        }
                    }
                    for d in DomainId::ALL {
                        let Some(frame) = mapped[d.index()] else { continue };
                        let owned = DomainId::ALL
                            .iter()
                            .any(|k| self.base.kernels[k.index()].frames.owns(frame));
                        if !owned {
                            violations.push(format!(
                                "{}: {va} maps frame {frame} owned by no kernel",
                                proc.pid
                            ));
                        }
                    }
                    if let [Some(a), Some(b)] = mapped {
                        if a != b {
                            violations.push(format!(
                                "{}: {va} maps {a} on x86 but {b} on arm",
                                proc.pid
                            ));
                        }
                    }
                }
            }
        }
        violations
    }

    /// Allocates a zeroed frame for `domain`, engaging the global
    /// allocator when pressure passes 70 % or memory runs out (§6.3).
    ///
    /// Under an installed fault injector this path degrades gracefully:
    /// a transient allocation fault is retried once at a small cycle
    /// cost; a one-shot forced pool exhaustion denies the pressure
    /// grant and falls back to the local free list, then to an eviction
    /// retry through [`StramashSystem::grow`], before any typed error
    /// surfaces.
    fn alloc_frame(&mut self, domain: DomainId) -> Result<PhysAddr, OsError> {
        let (forced_exhaust, transient_fail) = match self.base.fault_injector() {
            Some(inj) => {
                let mut inj = inj.borrow_mut();
                (inj.galloc_exhausted(), inj.alloc_fails())
            }
            None => (false, false),
        };
        if transient_fail {
            // The first buddy attempt is discarded and immediately
            // retried; only the retry overhead is observable.
            self.base.charge(domain, ALLOC_RETRY_COST);
            if let Some(inj) = self.base.fault_injector() {
                let mut inj = inj.borrow_mut();
                inj.note_retried(1);
                inj.note_recovered(1);
            }
            let s = self.base.mem.stats_mut(domain);
            s.faults_injected += 1;
            s.faults_retried += 1;
            s.faults_recovered += 1;
        }
        if forced_exhaust {
            self.base.mem.stats_mut(domain).faults_injected += 1;
        }
        if !forced_exhaust
            && self.base.kernels[domain.index()].frames.pressure() > PRESSURE_THRESHOLD
        {
            // Best effort: failure to grow is not fatal while frames
            // remain.
            let _ = self.grow(domain);
        }
        let frame = match self.base.kernels[domain.index()].frames.alloc() {
            Ok(f) => {
                if forced_exhaust {
                    // Grant denied, but the local free list still had a
                    // frame: graceful degradation, no grow needed.
                    if let Some(inj) = self.base.fault_injector() {
                        inj.borrow_mut().note_recovered(1);
                    }
                    self.base.mem.stats_mut(domain).faults_recovered += 1;
                }
                f
            }
            Err(_) => {
                // Eviction retry: grow (possibly evicting a peer block)
                // and allocate again before surfacing a typed error.
                if forced_exhaust {
                    if let Some(inj) = self.base.fault_injector() {
                        inj.borrow_mut().note_retried(1);
                    }
                    self.base.mem.stats_mut(domain).faults_retried += 1;
                }
                self.grow(domain)?;
                let f = self.base.kernels[domain.index()].frames.alloc()?;
                if forced_exhaust {
                    if let Some(inj) = self.base.fault_injector() {
                        inj.borrow_mut().note_recovered(1);
                    }
                    self.base.mem.stats_mut(domain).faults_recovered += 1;
                }
                f
            }
        };
        self.base.mem.store_mut().fill(frame, PAGE_SIZE, 0);
        Ok(frame)
    }

    /// Grants `domain` one more pool block, evicting from the peer if
    /// the pool is exhausted.
    fn grow(&mut self, domain: DomainId) -> Result<(), OsError> {
        let block_size = self.galloc.block_size();
        match self.galloc.request(domain) {
            Ok(start) => {
                let pages = block_size / PAGE_SIZE;
                let c = self.galloc.online_cost(&mut self.base.mem, domain, pages);
                self.base.charge(domain, c);
                self.base.kernels[domain.index()].frames.add_region(start, block_size)?;
                self.counters.blocks_granted += 1;
                Ok(())
            }
            Err(GallocError::Exhausted) => {
                // §6.3: "the allocator will try to evict a block from the
                // other kernels".
                let peer = domain.other();
                let victim = self
                    .galloc
                    .eviction_candidate(domain)
                    .map_err(|_| OsError::Frame(stramash_kernel::FrameError::OutOfMemory))?;
                // The peer must have evacuated it (no live allocations).
                let peer_frames = &mut self.base.kernels[peer.index()].frames;
                if peer_frames.region_allocated(victim).unwrap_or(1) != 0 {
                    return Err(OsError::Frame(stramash_kernel::FrameError::RegionBusy {
                        allocated: peer_frames.region_allocated(victim).unwrap_or(0),
                    }));
                }
                peer_frames.remove_region(victim)?;
                let pages = block_size / PAGE_SIZE;
                let c_off = self.galloc.offline_cost(&mut self.base.mem, peer, pages);
                self.base.charge(peer, c_off);
                self.galloc
                    .transfer(victim, domain)
                    .map_err(|_| OsError::InvariantViolation("eviction candidate vanished"))?;
                let c_on = self.galloc.online_cost(&mut self.base.mem, domain, pages);
                self.base.charge(domain, c_on);
                self.base.kernels[domain.index()].frames.add_region(victim, block_size)?;
                self.counters.blocks_evicted += 1;
                Ok(())
            }
            Err(_) => Err(OsError::InvariantViolation("unexpected global-allocator error on grant")),
        }
    }

    fn ensure_pt(&mut self, pid: Pid, domain: DomainId) -> Result<PageTable, OsError> {
        if let Some(pt) = self.base.process(pid)?.page_table(domain).copied() {
            return Ok(pt);
        }
        let kernel = &mut self.base.kernels[domain.index()];
        let pt = PageTable::new(&mut self.base.mem, &mut kernel.frames, kernel.isa)?;
        self.base.process_mut(pid)?.page_tables[domain.index()] = Some(pt);
        Ok(pt)
    }

    /// §6.4 remote VMA walk: take the origin's VMA lock with a cross-ISA
    /// CAS, descend the tree in shared memory, release. Charged to the
    /// walking domain.
    fn remote_vma_walk(&mut self, pid: Pid, walker: DomainId) -> Result<Cycles, OsError> {
        let (lock_pa, depth) = {
            let proc = self.base.process(pid)?;
            let depth = (proc.vmas.len().max(1) as f64).log2().ceil() as u64 + 1;
            (proc.vma_lock, depth)
        };
        let penalty = self.base.kernels[walker.index()].atomics.rmw_penalty();
        let (_, mut cycles) = self.base.mem.cas_u64(walker, lock_pa, 0, 1, penalty);
        // Tree descent: one shared-memory node read per level.
        for i in 0..depth {
            let (_, c) = self.base.mem.read_u64(walker, lock_pa.offset(128 + i * 64));
            cycles += c;
        }
        cycles += self.base.mem.write_u64(walker, lock_pa, 0);
        self.base.charge(walker, cycles);
        self.counters.remote_vma_walks += 1;
        Ok(cycles)
    }

    /// Acquire/release pair on the cross-ISA Stramash-PTL, with a
    /// bounded abort-and-retry path: a contended attempt (injected —
    /// the simulator is single-threaded, so real contention cannot
    /// arise) aborts the acquisition, backs off exponentially and
    /// retries; exhausting the budget surfaces [`OsError::LockTimeout`]
    /// instead of spinning forever.
    fn with_ptl(&mut self, pid: Pid, domain: DomainId) -> Result<(PhysAddr, Cycles), OsError> {
        let ptl = self.base.process(pid)?.page_table_lock;
        let penalty = self.base.kernels[domain.index()].atomics.rmw_penalty();
        let mut total = Cycles::ZERO;
        for attempt in 1..=MAX_PTL_ATTEMPTS {
            let contended = self
                .base
                .fault_injector()
                .is_some_and(|inj| inj.borrow_mut().lock_contended());
            let (res, c) = self.base.mem.cas_u64(domain, ptl, 0, 1, penalty);
            self.base.charge(domain, c);
            total += c;
            if res.is_ok() && !contended {
                if attempt > 1 {
                    if let Some(inj) = self.base.fault_injector() {
                        inj.borrow_mut().note_recovered(1);
                    }
                    self.base.mem.stats_mut(domain).faults_recovered += 1;
                }
                self.counters.ptl_acquisitions += 1;
                return Ok((ptl, total));
            }
            if contended && res.is_ok() {
                // The injected view says the peer holds the lock: undo
                // our acquisition before backing off (abort-and-retry).
                let c_undo = self.base.mem.write_u64(domain, ptl, 0);
                self.base.charge(domain, c_undo);
                total += c_undo;
            }
            if let Some(inj) = self.base.fault_injector() {
                inj.borrow_mut().note_retried(1);
            }
            let s = self.base.mem.stats_mut(domain);
            s.faults_injected += u64::from(contended);
            s.faults_retried += 1;
            let backoff = Cycles::new(PTL_BACKOFF_BASE.raw() << (attempt - 1).min(3));
            self.base.charge(domain, backoff);
            total += backoff;
        }
        Err(OsError::LockTimeout { pid })
    }

    fn release_ptl(&mut self, ptl: PhysAddr, domain: DomainId) -> Cycles {
        let c = self.base.mem.write_u64(domain, ptl, 0);
        self.base.charge(domain, c);
        c
    }

    /// Reads a `u64` through the **fused kernel virtual address space**
    /// (§6.4): `kva` may point into either kernel's direct-map window;
    /// the access resolves to the owner's physical memory and is charged
    /// to the reading kernel — remote-window reads pay remote latency.
    /// This is the accessor-function primitive that lets one kernel
    /// chase pointers in the other's data structures.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`] (with a null pid) when the KVA resolves to
    /// no window.
    pub fn kernel_read_u64(
        &mut self,
        reader: DomainId,
        kva: crate::fused_vas::KernelVa,
    ) -> Result<u64, OsError> {
        let Some((_, pa)) = self.vas.resolve(kva) else {
            return Err(OsError::Segfault {
                pid: stramash_kernel::process::Pid(0),
                va: VirtAddr::new(kva.0),
            });
        };
        let (value, cycles) = self.base.mem.read_u64(reader, pa);
        self.base.charge(reader, cycles);
        Ok(value)
    }

    /// Writes a `u64` through the fused kernel virtual address space.
    ///
    /// # Errors
    ///
    /// As [`StramashSystem::kernel_read_u64`].
    pub fn kernel_write_u64(
        &mut self,
        writer: DomainId,
        kva: crate::fused_vas::KernelVa,
        value: u64,
    ) -> Result<(), OsError> {
        let Some((_, pa)) = self.vas.resolve(kva) else {
            return Err(OsError::Segfault {
                pid: stramash_kernel::process::Pid(0),
                va: VirtAddr::new(kva.0),
            });
        };
        let cycles = self.base.mem.write_u64(writer, pa, value);
        self.base.charge(writer, cycles);
        Ok(())
    }

    /// Returns fully evacuated pool blocks to the global allocator —
    /// §5's *Minimal Resource Provisioning*: kernels "return resources
    /// to global allocators when no longer needed". A block is released
    /// when it has no live allocations and the kernel's pressure stays
    /// below the threshold without it. Returns the number released.
    ///
    /// # Errors
    ///
    /// Propagates frame-allocator inconsistencies.
    pub fn release_unused_blocks(&mut self, domain: DomainId) -> Result<usize, OsError> {
        let block_size = self.galloc.block_size();
        let mut released = 0;
        loop {
            // Find an owned, empty pool block.
            let candidate = {
                let frames = &self.base.kernels[domain.index()].frames;
                let mut found = None;
                for i in 0.. {
                    let start = self.base.pool_start.offset(i * block_size);
                    if start.raw() + block_size > self.base.pool_end.raw() {
                        break;
                    }
                    if self.galloc.owner(start) == Ok(Some(domain))
                        && frames.region_allocated(start) == Some(0)
                    {
                        found = Some(start);
                        break;
                    }
                }
                found
            };
            let Some(start) = candidate else { break };
            // Keep the block if losing it would push pressure back over
            // the threshold.
            let frames = &self.base.kernels[domain.index()].frames;
            let remaining = frames.total_frames() - block_size / PAGE_SIZE;
            if remaining == 0
                || frames.allocated_frames() as f64 / remaining as f64 > PRESSURE_THRESHOLD
            {
                break;
            }
            self.base.kernels[domain.index()].frames.remove_region(start)?;
            let pages = block_size / PAGE_SIZE;
            let c = self.galloc.offline_cost(&mut self.base.mem, domain, pages);
            self.base.charge(domain, c);
            self.galloc
                .release(start)
                .map_err(|_| OsError::InvariantViolation("released block is not a pool block"))?;
            released += 1;
        }
        Ok(released)
    }

    /// Rewrites one origin-side leaf entry from the remote ISA's format
    /// into the origin's own format (§6.4: "the origin kernel can simply
    /// reconfigure the PTE to its own format").
    fn reconfigure_pte(
        &mut self,
        pid: Pid,
        origin: DomainId,
        va: VirtAddr,
    ) -> Result<Cycles, OsError> {
        let origin_pt = self
            .base
            .process(pid)?
            .page_table(origin)
            .copied()
            .ok_or(OsError::InvariantViolation("origin kernel lost its page table"))?;
        let remote_isa = self.base.kernels[origin.other().index()].isa;
        let origin_isa = self.base.kernels[origin.index()].isa;
        let (slot, mut cycles) = origin_pt.leaf_slot(&mut self.base.mem, origin, va, true);
        if let Ok(slot) = slot {
            let (raw, c_read) = self.base.mem.read_u64(origin, slot);
            cycles += c_read;
            let converted = (RawPte { raw, isa: remote_isa }).convert_to(origin_isa);
            cycles += self.base.mem.write_u64(origin, slot, converted.raw);
            self.counters.pte_reconfigurations += 1;
        }
        if let Some(set) = self.remote_fmt_ptes.get_mut(&pid.0) {
            set.remove(&va.vpn());
        }
        self.base.process_mut(pid)?.tlb_mut(origin).invalidate(va);
        self.base.emit(TraceEvent::TlbInvalidate { domain: origin, va: va.raw() });
        self.base.charge(origin, cycles);
        Ok(cycles)
    }

    /// Maps `frame` at `va` into the faulting kernel's own page table,
    /// upgrading the protection in place if a mapping already exists.
    fn map_own(
        &mut self,
        pid: Pid,
        domain: DomainId,
        own_pt: PageTable,
        va: VirtAddr,
        frame: PhysAddr,
        flags: PteFlags,
    ) -> Result<Cycles, OsError> {
        let cycles = {
            let base = &mut self.base;
            let (mem, kernels) = (&mut base.mem, &mut base.kernels);
            match own_pt.map(mem, &mut kernels[domain.index()].frames, domain, va.page_base(), frame, flags, true)
            {
                Ok(c) => c,
                Err(MapError::AlreadyMapped(_)) => {
                    let (_, c) = own_pt.protect(mem, domain, va.page_base(), flags, true);
                    c
                }
                Err(e) => return Err(OsError::Map(e)),
            }
        };
        self.base.charge(domain, cycles);
        self.base.process_mut(pid)?.tlb_mut(domain).invalidate(va);
        Ok(cycles)
    }

    /// Terminates a process, applying the §6.4 recycling discipline:
    /// each kernel invalidates its own PTEs, but a page is released only
    /// by the kernel that allocated it. Returns the number of frames
    /// each kernel freed.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`].
    pub fn exit(&mut self, pid: Pid) -> Result<[u64; 2], OsError> {
        let vmas: Vec<(VirtAddr, u64)> = self
            .base
            .process(pid)?
            .vmas
            .iter()
            .map(|v| (v.start, v.pages()))
            .collect();
        let pts: [Option<PageTable>; 2] = [
            self.base.process(pid)?.page_table(DomainId::X86).copied(),
            self.base.process(pid)?.page_table(DomainId::ARM).copied(),
        ];
        let mut freed = [0u64; 2];
        for (start, pages) in vmas {
            for p in 0..pages {
                let va = start.offset(p * PAGE_SIZE);
                let mut released = false;
                for d in DomainId::ALL {
                    let Some(pt) = pts[d.index()] else { continue };
                    let (old, _) = pt.unmap(&mut self.base.mem, d, va, false);
                    let Some(frame) = old else { continue };
                    // Only the allocating kernel releases the page.
                    if !released {
                        for owner in DomainId::ALL {
                            if self.base.kernels[owner.index()].frames.owns(frame) {
                                self.base.kernels[owner.index()].frames.free(frame)?;
                                freed[owner.index()] += 1;
                                released = true;
                                break;
                            }
                        }
                    }
                }
            }
        }
        Ok(freed)
    }
}

impl OsSystem for StramashSystem {
    fn base(&self) -> &BaseSystem {
        &self.base
    }

    fn base_mut(&mut self) -> &mut BaseSystem {
        &mut self.base
    }

    fn name(&self) -> &'static str {
        "stramash"
    }

    fn handle_fault(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<Cycles, OsError> {
        let (domain, origin, prot) = {
            let proc = self.base.process(pid)?;
            let vma = proc.vmas.find(va).ok_or(OsError::Segfault { pid, va })?;
            (proc.current, proc.origin, vma.prot)
        };
        if write && !prot.write {
            return Err(OsError::PermissionDenied { pid, va });
        }
        self.base.charge(domain, FAULT_TRAP_COST);
        let mut total = FAULT_TRAP_COST;

        let mut flags = PteFlags::user_data();
        flags.writable = prot.write;

        if domain == origin {
            let pt = self
                .base
                .process(pid)?
                .page_table(domain)
                .copied()
                .ok_or(OsError::InvariantViolation("origin kernel lost its page table"))?;
            // A fault on a page whose PTE the remote kernel wrote in its
            // own format: reconfigure it lazily (§6.4) and retry.
            if self.remote_fmt_ptes.get(&pid.0).is_some_and(|set| set.contains(&va.vpn())) {
                total += self.reconfigure_pte(pid, origin, va.page_base())?;
                return Ok(total);
            }
            let (slot, c_probe) = pt.leaf_slot(&mut self.base.mem, domain, va, true);
            self.base.charge(domain, c_probe);
            total += c_probe;
            if let Ok(slot_pa) = slot {
                let (raw, c_read) = self.base.mem.read_u64(domain, slot_pa);
                self.base.charge(domain, c_read);
                total += c_read;
                let origin_isa = self.base.kernels[origin.index()].isa;
                if (RawPte { raw, isa: origin_isa }).is_present() {
                    // Present but not writable enough: upgrade in place.
                    let (_, c) = pt.protect(&mut self.base.mem, domain, va.page_base(), flags, true);
                    self.base.charge(domain, c);
                    total += c;
                    self.base.process_mut(pid)?.tlb_mut(domain).invalidate(va);
                    self.base.kernels[domain.index()].counters.local_faults += 1;
                    return Ok(total);
                }
            }
            // Plain anonymous fault — identical to a vanilla kernel.
            let frame = self.alloc_frame(domain)?;
            let c = {
                let base = &mut self.base;
                let (mem, kernels) = (&mut base.mem, &mut base.kernels);
                pt.map(mem, &mut kernels[domain.index()].frames, domain, va.page_base(), frame, flags, true)?
            };
            self.base.charge(domain, c);
            total += c;
            self.base.kernels[domain.index()].counters.local_faults += 1;
            return Ok(total);
        }

        // Remote fault: walk the origin's VMA list directly (§6.4).
        total += self.remote_vma_walk(pid, domain)?;
        let origin_pt = self
            .base
            .process(pid)?
            .page_table(origin)
            .copied()
            .ok_or(OsError::InvariantViolation("origin kernel lost its page table"))?;
        let own_pt = self.ensure_pt(pid, domain)?;

        // Software remote page-table walk: does the origin's chain reach
        // the PTE level? All reads are charged to the remote walker and
        // use the origin ISA's masks (via its remote CPU driver).
        let driver = RemoteCpuDriver::new(self.base.kernels[origin.index()].isa);
        let (slot, walk_c) = origin_pt.leaf_slot(&mut self.base.mem, domain, va, true);
        self.base.charge(domain, walk_c);
        total += walk_c;

        match slot {
            Ok(slot_pa) => {
                let (raw, c_read) = self.base.mem.read_u64(domain, slot_pa);
                self.base.charge(domain, c_read);
                total += c_read;
                let in_remote_fmt =
                    self.remote_fmt_ptes.get(&pid.0).is_some_and(|s| s.contains(&va.vpn()));
                let decode_isa = if in_remote_fmt {
                    self.base.kernels[domain.index()].isa
                } else {
                    driver.isa()
                };
                if let Some((pfn, _)) = (RawPte { raw, isa: decode_isa }).decode() {
                    // The origin already maps this page: map the SAME
                    // frame into our table — no copy, no messages. This
                    // is the fused no-replication property of §6.4.
                    let frame = PhysAddr::new(pfn << 12);
                    total += self.map_own(pid, domain, own_pt, va, frame, flags)?;
                    self.counters.direct_remote_faults += 1;
                } else {
                    // Empty leaf: THE fused allocation path. Allocate
                    // locally, insert into both tables under the
                    // Stramash-PTL — zero messages.
                    let (ptl, c_lock) = self.with_ptl(pid, domain)?;
                    total += c_lock;
                    let frame = self.alloc_frame(domain)?;
                    total += self.map_own(pid, domain, own_pt, va, frame, flags)?;
                    // Origin-side entry "with the remote node ISA
                    // format": encoded for *our* ISA, reconfigured when
                    // the process migrates back (§6.4).
                    let remote_isa = self.base.kernels[domain.index()].isa;
                    let raw_remote_fmt = stramash_isa::pte::encode_pte(
                        remote_isa.format(),
                        frame.raw() >> 12,
                        flags,
                    );
                    let c_write = self.base.mem.write_u64(domain, slot_pa, raw_remote_fmt.raw);
                    self.base.charge(domain, c_write);
                    total += c_write;
                    self.remote_fmt_ptes.entry(pid.0).or_default().insert(va.vpn());
                    total += self.release_ptl(ptl, domain);
                    self.base.kernels[domain.index()].counters.remote_pt_inserts += 1;
                    self.counters.direct_remote_faults += 1;
                }
            }
            Err(MapError::MissingTable { .. }) => {
                // §9.2.3: the origin handles the fault over messages and
                // the page is replicated.
                total += protocol_round_trip(
                    &mut self.base,
                    domain,
                    Message::control(MsgType::OriginFaultRequest),
                    Message::page(MsgType::OriginFaultResponse),
                    ORIGIN_FAULT_HANDLER_COST,
                );
                // The origin allocates the page and builds its own
                // chain; the response ships the page contents (counted
                // as a replication in Table 3). Both kernels then map
                // the SAME frame — cache coherence keeps it consistent,
                // unlike Popcorn's per-kernel copies.
                let origin_frame = self.alloc_frame(origin)?;
                let c_org = {
                    let base = &mut self.base;
                    let (mem, kernels) = (&mut base.mem, &mut base.kernels);
                    origin_pt.map(mem, &mut kernels[origin.index()].frames, origin, va.page_base(), origin_frame, flags, true)?
                };
                self.base.charge(origin, c_org);
                total += c_org;
                total += self.map_own(pid, domain, own_pt, va, origin_frame, flags)?;
                let k = &mut self.base.kernels[domain.index()].counters;
                k.origin_handled_faults += 1;
                k.replicated_pages += 1;
            }
            Err(e) => return Err(OsError::Map(e)),
        }
        Ok(total)
    }

    fn migrate(&mut self, pid: Pid, to: DomainId) -> Result<Cycles, OsError> {
        let (from, origin) = {
            let proc = self.base.process(pid)?;
            (proc.current, proc.origin)
        };
        if from == to {
            return Ok(Cycles::ZERO);
        }
        self.ensure_pt(pid, to)?;
        let cost_model = migration_cost_model();
        let mut total = protocol_round_trip(
            &mut self.base,
            from,
            Message { ty: MsgType::MigrationRequest, payload: cost_model.payload_bytes },
            Message::control(MsgType::MigrationResponse),
            ORIGIN_FAULT_HANDLER_COST,
        );
        // Register-state transformation at the destination (§5).
        self.base.retire(to, cost_model.transform_insns);
        self.base.charge(to, MIGRATION_SCHED_COST);
        total += MIGRATION_SCHED_COST + cost_model.transform_cycles();
        self.base.process_mut(pid)?.switch_domain(to);
        self.base.kernels[to.index()].counters.migrations_in += 1;
        self.base.record_migration(from, to);

        // Migrating back to the origin: reconfigure remote-format PTEs
        // to the origin's format (§6.4).
        if to == origin {
            let pending: Vec<u64> =
                self.remote_fmt_ptes.remove(&pid.0).map(|s| s.into_iter().collect()).unwrap_or_default();
            for vpn in pending {
                total += self.reconfigure_pte(pid, origin, VirtAddr::new(vpn << 12))?;
            }
        }
        Ok(total)
    }

    fn futex_lock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        // §6.5: the remote kernel operates on the futex word and the
        // origin's locking list directly — no messages.
        let origin = self.base.process(pid)?.origin;
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        // Translate on behalf of the executing thread's domain (a
        // process may have one thread per kernel during the futex
        // experiments).
        let saved = self.base.process(pid)?.current;
        self.base.process_mut(pid)?.current = domain;
        let res = self.translate(pid, uaddr, true);
        self.base.process_mut(pid)?.current = saved;
        let (pa, _) = res?;
        let penalty = self.base.kernels[domain.index()].atomics.rmw_penalty();
        let (acquired, mut total) = {
            let (r, c) = self.base.mem.cas_u64(domain, pa, 0, 1, penalty);
            (r.is_ok(), c)
        };
        self.base.charge(domain, total);
        if !acquired {
            // Enqueue ourselves on the origin's list via shared memory.
            let lock_frame = self.base.process(pid)?.vma_lock;
            let mut c = Cycles::ZERO;
            let (_, c1) = self.base.mem.read_u64(domain, lock_frame.offset(192));
            c += c1;
            c += self.base.mem.write_u64(domain, lock_frame.offset(256), uaddr.raw());
            self.base.charge(domain, c);
            total += c;
            self.base.kernels[origin.index()]
                .futexes
                .wait(uaddr, Waiter { thread: ThreadId(u64::from(pid.0)), domain });
            self.base.emit(TraceEvent::Futex { domain, op: FutexOp::Wait, va: uaddr.raw() });
            self.base.observe(HIST_FUTEX_WAIT, total);
        } else {
            self.base.emit(TraceEvent::Futex { domain, op: FutexOp::Acquire, va: uaddr.raw() });
        }
        Ok(total)
    }

    fn futex_unlock(
        &mut self,
        pid: Pid,
        domain: DomainId,
        uaddr: VirtAddr,
    ) -> Result<Cycles, OsError> {
        let origin = self.base.process(pid)?.origin;
        self.base.kernels[domain.index()].counters.futex_ops += 1;
        let saved = self.base.process(pid)?.current;
        self.base.process_mut(pid)?.current = domain;
        let res = self.translate(pid, uaddr, true);
        self.base.process_mut(pid)?.current = saved;
        let (pa, _) = res?;
        let mut total = self.base.mem.write_u64(domain, pa, 0);
        // Check the origin's list directly for waiters.
        let lock_frame = self.base.process(pid)?.vma_lock;
        let (_, c_list) = self.base.mem.read_u64(domain, lock_frame.offset(192));
        total += c_list;
        self.base.charge(domain, total);
        if let Some(w) = self.base.kernels[origin.index()].futexes.wake_one(uaddr) {
            self.base.emit(TraceEvent::Futex { domain: w.domain, op: FutexOp::Wake, va: uaddr.raw() });
            if w.domain != domain {
                // One cross-ISA IPI wakes the waiter (§6.5).
                let c = self.base.ipi.send(domain);
                self.base.mem.stats_mut(domain).ipi += 1;
                self.base.charge(domain, c);
                total += c;
                self.counters.futex_wake_ipis += 1;
            }
        }
        Ok(total)
    }

    fn munmap(&mut self, pid: Pid, start: VirtAddr) -> Result<[u64; 2], OsError> {
        let (domain, vma) = {
            let proc = self.base.process_mut(pid)?;
            let vma = proc.vmas.remove(start).ok_or(OsError::Segfault { pid, va: start })?;
            (proc.current, vma)
        };
        // §6.4's recycling discipline, message-free: each kernel
        // invalidates its own PTEs; the page is released only by the
        // kernel that allocated it. The peer's teardown happens through
        // shared memory (its PT is directly writable), charged to the
        // unmapping domain.
        let pts: [Option<PageTable>; 2] = [
            self.base.process(pid)?.page_table(DomainId::X86).copied(),
            self.base.process(pid)?.page_table(DomainId::ARM).copied(),
        ];
        let mut freed = [0u64; 2];
        for p in 0..vma.pages() {
            let va = start.offset(p * PAGE_SIZE);
            let mut released = false;
            for d in DomainId::ALL {
                let Some(pt) = pts[d.index()] else { continue };
                let (old, c) = pt.unmap(&mut self.base.mem, domain, va, true);
                self.base.charge(domain, c);
                self.base.process_mut(pid)?.tlb_mut(d).invalidate(va);
                self.base.emit(TraceEvent::TlbInvalidate { domain: d, va: va.raw() });
                let Some(frame) = old else { continue };
                if !released {
                    for owner in DomainId::ALL {
                        if self.base.kernels[owner.index()].frames.owns(frame) {
                            self.base.kernels[owner.index()].frames.free(frame)?;
                            freed[owner.index()] += 1;
                            released = true;
                            break;
                        }
                    }
                }
            }
            if let Some(set) = self.remote_fmt_ptes.get_mut(&pid.0) {
                set.remove(&va.vpn());
            }
        }
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_kernel::vma::VmaProt;
    use stramash_sim::HardwareModel;

    fn stramash() -> (StramashSystem, Pid) {
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = StramashSystem::new(cfg).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        (sys, pid)
    }

    #[test]
    fn remote_fault_sends_no_messages_when_chain_exists() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        // Origin touches the first page → builds the origin chain.
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        let msgs_before = sys.base().msg.counters().total();
        // Remote touches a sibling page in the same 2 MB region.
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap();
        assert_eq!(
            sys.base().msg.counters().total(),
            msgs_before,
            "fused remote fault must be message-free"
        );
        assert_eq!(sys.counters().direct_remote_faults, 1);
        assert_eq!(sys.base().kernels[1].counters.remote_pt_inserts, 1);
        assert_eq!(sys.replicated_pages(), 0);
    }

    #[test]
    fn missing_upper_table_goes_to_origin_and_replicates() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        // First-ever touch from remote: the origin chain is missing.
        sys.store_u64(pid, va, 7).unwrap();
        let c = sys.base().msg.counters();
        assert_eq!(c.of_type(MsgType::OriginFaultRequest), 1);
        assert_eq!(c.of_type(MsgType::OriginFaultResponse), 1);
        assert_eq!(sys.replicated_pages(), 1);
        assert_eq!(sys.counters().direct_remote_faults, 0);
    }

    #[test]
    fn no_replication_compared_to_popcorn_on_spread_access() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 256 << 10, VmaProt::rw()).unwrap();
        // Origin warms the whole area (builds all chains).
        for i in 0..64u64 {
            sys.store_u64(pid, va.offset(i * PAGE_SIZE), i).unwrap();
        }
        sys.migrate(pid, DomainId::ARM).unwrap();
        // The pages are already mapped at the origin; remote reads walk
        // the origin PT remotely... but its own PT is empty → faults
        // resolve via direct insertion reading the same frames.
        for i in 0..64u64 {
            assert_eq!(sys.load_u64(pid, va.offset(i * PAGE_SIZE)).unwrap(), i);
        }
        assert_eq!(sys.replicated_pages(), 0, "reads of origin data never replicate");
    }

    #[test]
    fn remote_reads_see_origin_data_in_place() {
        // §6.4: no page replication — updates are immediately visible.
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 123).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 123);
        // Remote writes are immediately visible after migrating back.
        sys.store_u64(pid, va, 456).unwrap();
        sys.migrate(pid, DomainId::X86).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 456);
    }

    #[test]
    fn migrate_back_reconfigures_remote_format_ptes() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap(); // origin chain
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap(); // direct insert
        assert_eq!(sys.counters().pte_reconfigurations, 0);
        sys.migrate(pid, DomainId::X86).unwrap();
        assert_eq!(sys.counters().pte_reconfigurations, 1);
        // After conversion the origin reads the remote-allocated page
        // through its own page table.
        assert_eq!(sys.load_u64(pid, va.offset(PAGE_SIZE)).unwrap(), 2);
    }

    #[test]
    fn fused_futex_is_message_free() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 0).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va, 0).unwrap(); // ensure remote mapping
        let msgs = sys.base().msg.counters().total();
        sys.futex_lock(pid, DomainId::ARM, va).unwrap();
        sys.futex_unlock(pid, DomainId::X86, va).unwrap();
        assert_eq!(sys.base().msg.counters().total(), msgs, "no futex messages");
    }

    #[test]
    fn futex_wake_uses_single_ipi() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 0).unwrap();
        // x86 takes the lock; Arm contends and queues; x86 unlocks → one
        // cross-ISA IPI.
        sys.futex_lock(pid, DomainId::X86, va).unwrap();
        sys.futex_lock(pid, DomainId::ARM, va).unwrap(); // contended → waits
        let ipis_before = sys.base().mem.stats(DomainId::X86).ipi;
        sys.futex_unlock(pid, DomainId::X86, va).unwrap();
        assert_eq!(sys.counters().futex_wake_ipis, 1);
        assert_eq!(sys.base().mem.stats(DomainId::X86).ipi, ipis_before + 1);
    }

    #[test]
    fn exit_applies_split_recycling_discipline() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap(); // origin page
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap(); // remote page
        let freed = sys.exit(pid).unwrap();
        // Each kernel released exactly the page it allocated (§6.4).
        assert_eq!(freed[DomainId::X86.index()], 1);
        assert_eq!(freed[DomainId::ARM.index()], 1);
    }

    #[test]
    fn pressure_growth_grants_pool_blocks() {
        // A tiny synthetic allocator state: drain the kernel's frames to
        // force galloc growth.
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = StramashSystem::with_block_size(cfg, 32 << 20).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        // Artificially shrink x86's memory: allocate almost everything.
        while sys.base().kernels[0].frames.pressure() < 0.71 {
            sys.base_mut().kernels[0].frames.alloc().unwrap();
        }
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        assert!(sys.counters().blocks_granted >= 1, "pressure must trigger a block grant");
    }

    #[test]
    fn fused_kva_reaches_the_peer_kernels_memory() {
        // §6.4: "the Arm's virtual address space becomes fully
        // addressable to the x86 kernel instance, and vice versa".
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = StramashSystem::new(cfg).unwrap();
        // A word in the Arm kernel's private memory (2 GB)…
        let pa = stramash_mem::PhysAddr::new(2 << 30);
        sys.base_mut().mem.store_mut().write_u64(pa, 0xA5A5);
        let vas = *sys.fused_vas();
        let kva = vas.kva(DomainId::ARM, pa);
        // …is readable by the x86 kernel through the fused KVA, at
        // remote cost.
        let t0 = sys.base().timebase.clock(DomainId::X86).cycles();
        assert_eq!(sys.kernel_read_u64(DomainId::X86, kva).unwrap(), 0xA5A5);
        let cost = sys.base().timebase.clock(DomainId::X86).cycles() - t0;
        assert!(cost.raw() >= 640, "remote-window read pays remote DRAM: {cost}");
        // And writable: the Arm kernel observes the update in place.
        sys.kernel_write_u64(DomainId::X86, kva, 0x5A5A).unwrap();
        assert_eq!(sys.kernel_read_u64(DomainId::ARM, kva).unwrap(), 0x5A5A);
        // Unmapped KVAs fail.
        assert!(sys
            .kernel_read_u64(DomainId::X86, crate::fused_vas::KernelVa(0x1000))
            .is_err());
    }

    #[test]
    fn unused_blocks_return_to_the_pool() {
        // §5: resources go back to the global allocator when no longer
        // needed. Grow under pressure, free everything, release.
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut sys = StramashSystem::with_block_size(cfg, 32 << 20).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        // Drain private memory over the threshold, forcing a pool grant.
        let mut hoard = Vec::new();
        while sys.base().kernels[0].frames.pressure() < 0.71 {
            hoard.push(sys.base_mut().kernels[0].frames.alloc().unwrap());
        }
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        assert!(sys.counters().blocks_granted >= 1);
        let owned_before = sys.global_allocator().owned_by(DomainId::X86);
        assert!(owned_before >= 1);
        // Drop the hoard: pressure collapses, the pool block (empty —
        // the user page came from private memory first) is returned.
        for f in hoard {
            sys.base_mut().kernels[0].frames.free(f).unwrap();
        }
        let released = sys.release_unused_blocks(DomainId::X86).unwrap();
        assert!(released >= 1, "an empty block must be released");
        assert_eq!(
            sys.global_allocator().owned_by(DomainId::X86),
            owned_before - released
        );
        // Idempotent once pressure is low and nothing is left to give.
        let again = sys.release_unused_blocks(DomainId::X86).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn audit_clean_after_migration_workload() {
        let (mut sys, pid) = stramash();
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap();
        assert!(sys.audit().is_empty(), "remote-format PTE pending is not a violation");
        sys.migrate(pid, DomainId::X86).unwrap();
        assert!(sys.audit().is_empty(), "reconfigured tables must agree");
    }

    #[test]
    fn injected_ptl_contention_backs_off_and_recovers() {
        let (mut sys, pid) = stramash();
        let plan = stramash_sim::FaultPlan::none().with_lock_contention(0.9).with_window(0, 3);
        sys.base_mut().install_fault_injector(stramash_sim::shared_injector(plan, 11));
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        // Direct insertion takes the PTL; the first attempts are
        // injected-contended, the retry path must still succeed.
        sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap();
        assert_eq!(sys.load_u64(pid, va.offset(PAGE_SIZE)).unwrap(), 2);
        let s = sys.base().mem.stats(DomainId::ARM);
        assert!(s.faults_retried > 0, "contention must show up as retries");
        assert!(s.faults_recovered > 0);
        assert!(sys.audit().is_empty());
    }

    #[test]
    fn permanent_ptl_contention_times_out_with_typed_error() {
        let (mut sys, pid) = stramash();
        let plan = stramash_sim::FaultPlan::none().with_lock_contention(1.0);
        sys.base_mut().install_fault_injector(stramash_sim::shared_injector(plan, 5));
        let va = sys.mmap(pid, 64 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        let err = sys.store_u64(pid, va.offset(PAGE_SIZE), 2).unwrap_err();
        assert!(matches!(err, OsError::LockTimeout { pid: p } if p == pid));
    }

    #[test]
    fn forced_galloc_exhaustion_degrades_to_local_free_list() {
        let (mut sys, pid) = stramash();
        let plan = stramash_sim::FaultPlan::none().with_galloc_exhaust_at(0);
        sys.base_mut().install_fault_injector(stramash_sim::shared_injector(plan, 21));
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 0xbeef).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 0xbeef);
        let s = sys.base().mem.stats(DomainId::X86);
        assert_eq!(s.faults_injected, 1, "the denied grant is recorded");
        assert_eq!(s.faults_recovered, 1, "the local free list recovered it");
        assert_eq!(sys.counters().blocks_granted, 0, "no pool block was granted");
        assert!(sys.audit().is_empty());
    }

    #[test]
    fn transient_alloc_fault_retries_at_a_cost() {
        let (mut sys, pid) = stramash();
        let plan = stramash_sim::FaultPlan::none().with_alloc_fail(1.0).with_window(0, 1);
        sys.base_mut().install_fault_injector(stramash_sim::shared_injector(plan, 8));
        let va = sys.mmap(pid, 4096, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 3).unwrap();
        assert_eq!(sys.load_u64(pid, va).unwrap(), 3);
        let s = sys.base().mem.stats(DomainId::X86);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.faults_retried, 1);
        assert_eq!(s.faults_recovered, 1);
    }

    #[test]
    fn stramash_remote_fault_cheaper_than_popcorn() {
        // The headline comparison in microcosm: after migration, filling
        // pages under Stramash (direct insertion) is cheaper than under
        // Popcorn (message + replication per page).
        let cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Shared);
        let mut pop = popcorn_cost(cfg.clone());
        let mut stra = {
            let mut sys = StramashSystem::new(cfg).unwrap();
            let pid = sys.spawn(DomainId::X86).unwrap();
            let va = sys.mmap(pid, 512 << 10, VmaProt::rw()).unwrap();
            sys.store_u64(pid, va, 1).unwrap();
            sys.migrate(pid, DomainId::ARM).unwrap();
            let t0 = sys.runtime();
            for i in 1..128u64 {
                sys.store_u64(pid, va.offset(i * PAGE_SIZE), i).unwrap();
            }
            (sys.runtime() - t0).raw()
        };
        // Normalise out the shared constant work.
        pop = pop.max(1);
        stra = stra.max(1);
        assert!(
            pop > stra,
            "popcorn remote-page cost ({pop}) should exceed stramash ({stra})"
        );
    }

    fn popcorn_cost(cfg: SimConfig) -> u64 {
        use popcorn_os::PopcornSystem;
        let mut sys = PopcornSystem::new_shm(cfg).unwrap();
        let pid = sys.spawn(DomainId::X86).unwrap();
        let va = sys.mmap(pid, 512 << 10, VmaProt::rw()).unwrap();
        sys.store_u64(pid, va, 1).unwrap();
        sys.migrate(pid, DomainId::ARM).unwrap();
        let t0 = sys.runtime();
        for i in 1..128u64 {
            sys.store_u64(pid, va.offset(i * PAGE_SIZE), i).unwrap();
        }
        (sys.runtime() - t0).raw()
    }
}
