//! ISA kinds and page-table format descriptors.
//!
//! Both kernels in the paper's prototype use 5-level, 4 KiB-granule page
//! tables (§6.4), but the *entry formats* differ: an x86-64 PTE and an
//! AArch64 stage-1 descriptor place their flags at different bits, and
//! AArch64 even inverts the sense of the write-permission bit (AP\[2\] set
//! means *read-only*). A kernel walking the other ISA's table must use
//! that ISA's masks — which is what [`PageTableFormat`] encodes.

use std::fmt;

/// The instruction-set architectures supported by the prototype (§6:
/// "the Popcorn project fully supports only the x86 and Arm ISAs, and
/// our Stramash prototype inherits the same limitation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaKind {
    /// 64-bit x86 (the domain that boots at physical 0x0).
    X86_64,
    /// 64-bit Arm (AArch64) with the Large System Extensions.
    Aarch64,
}

impl IsaKind {
    /// Both ISAs, in domain-index order (x86 = domain 0).
    pub const ALL: [IsaKind; 2] = [IsaKind::X86_64, IsaKind::Aarch64];

    /// The page-table format of this ISA.
    #[must_use]
    pub fn format(self) -> &'static PageTableFormat {
        match self {
            IsaKind::X86_64 => &X86_64_FORMAT,
            IsaKind::Aarch64 => &AARCH64_FORMAT,
        }
    }

    /// The ISA conventionally run by a domain index (x86 on 0, Arm on 1),
    /// matching the Figure 4 boot layout.
    #[must_use]
    pub fn of_domain(domain: stramash_sim::DomainId) -> IsaKind {
        match domain {
            stramash_sim::DomainId::X86 => IsaKind::X86_64,
            _ => IsaKind::Aarch64,
        }
    }
}

impl fmt::Display for IsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaKind::X86_64 => f.write_str("x86-64"),
            IsaKind::Aarch64 => f.write_str("aarch64"),
        }
    }
}

/// Architecture-specific layout of a page-table entry and of the
/// virtual-address index fields.
///
/// All fields are public so that remote CPU drivers (and tests) can
/// inspect the exact masks; the struct is only constructed by this
/// module, one static instance per ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageTableFormat {
    /// Which ISA this format belongs to.
    pub isa: IsaKind,
    /// Number of translation levels (5 for both prototype ISAs, §6.4).
    pub levels: u8,
    /// Index bits per level (9 for a 4 KiB granule with 512 entries).
    pub index_bits: u8,
    /// log2 of the page size (12).
    pub page_shift: u8,
    /// Bit position of the valid/present flag.
    pub present_bit: u8,
    /// Bit position of the write-permission flag.
    pub write_bit: u8,
    /// Whether the write bit is *inverted* (set = read-only). True for
    /// AArch64's AP\[2\], false for x86's R/W.
    pub write_inverted: bool,
    /// Bit position of the user/EL0-accessible flag.
    pub user_bit: u8,
    /// Bit position of the accessed flag (x86 A, AArch64 AF).
    pub accessed_bit: u8,
    /// Bit position of the dirty flag (x86 D; AArch64 uses a software
    /// dirty bit at 55, as Linux does).
    pub dirty_bit: u8,
    /// Bit position of the no-execute flag (x86 NX = 63, AArch64 UXN = 54).
    pub nx_bit: u8,
    /// Lowest bit of the physical frame number field.
    pub pfn_low: u8,
    /// Highest bit (exclusive) of the physical frame number field.
    pub pfn_high: u8,
}

/// x86-64 long-mode 5-level paging.
pub static X86_64_FORMAT: PageTableFormat = PageTableFormat {
    isa: IsaKind::X86_64,
    levels: 5,
    index_bits: 9,
    page_shift: 12,
    present_bit: 0,
    write_bit: 1,
    write_inverted: false,
    user_bit: 2,
    accessed_bit: 5,
    dirty_bit: 6,
    nx_bit: 63,
    pfn_low: 12,
    pfn_high: 52,
};

/// AArch64 stage-1 translation, 4 KiB granule, with Linux's software
/// dirty bit.
pub static AARCH64_FORMAT: PageTableFormat = PageTableFormat {
    isa: IsaKind::Aarch64,
    levels: 5,
    index_bits: 9,
    page_shift: 12,
    present_bit: 0,
    write_bit: 7, // AP[2]: set means read-only
    write_inverted: true,
    user_bit: 6, // AP[1]: EL0 accessible
    accessed_bit: 10, // AF
    dirty_bit: 55, // software dirty (Linux arm64 PTE_DIRTY)
    nx_bit: 54, // UXN
    pfn_low: 12,
    pfn_high: 48,
};

impl PageTableFormat {
    /// Entries per table (512 for 9 index bits).
    #[must_use]
    pub fn entries_per_table(&self) -> u64 {
        1 << self.index_bits
    }

    /// Bytes per table (one 4 KiB frame).
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.entries_per_table() * 8
    }

    /// Total virtual-address bits translated (57 for 5-level).
    #[must_use]
    pub fn va_bits(&self) -> u32 {
        self.page_shift as u32 + self.levels as u32 * self.index_bits as u32
    }

    /// The table index used at translation `level` (0 = root, walking
    /// down to `levels - 1` = leaf).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    #[must_use]
    pub fn va_index(&self, va: u64, level: u8) -> u64 {
        assert!(level < self.levels, "level {level} out of range");
        let low = self.page_shift as u32
            + (self.levels - 1 - level) as u32 * self.index_bits as u32;
        (va >> low) & (self.entries_per_table() - 1)
    }

    /// The page offset of a virtual address.
    #[must_use]
    pub fn page_offset(&self, va: u64) -> u64 {
        va & ((1 << self.page_shift) - 1)
    }

    /// The virtual page number of a virtual address.
    #[must_use]
    pub fn vpn(&self, va: u64) -> u64 {
        (va & ((1u64 << self.va_bits()) - 1)) >> self.page_shift
    }

    /// Mask selecting the PFN field of an entry.
    #[must_use]
    pub fn pfn_mask(&self) -> u64 {
        let high = if self.pfn_high >= 64 { u64::MAX } else { (1u64 << self.pfn_high) - 1 };
        high & !((1u64 << self.pfn_low) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::DomainId;

    #[test]
    fn isa_of_domain_matches_boot_layout() {
        assert_eq!(IsaKind::of_domain(DomainId::X86), IsaKind::X86_64);
        assert_eq!(IsaKind::of_domain(DomainId::ARM), IsaKind::Aarch64);
    }

    #[test]
    fn display_names() {
        assert_eq!(IsaKind::X86_64.to_string(), "x86-64");
        assert_eq!(IsaKind::Aarch64.to_string(), "aarch64");
    }

    #[test]
    fn both_formats_are_five_level_4k() {
        // §6.4: "both x86 and Arm in Stramash-Linux are using 5-level
        // page tables" with 4 KiB pages.
        for isa in IsaKind::ALL {
            let f = isa.format();
            assert_eq!(f.levels, 5);
            assert_eq!(f.page_shift, 12);
            assert_eq!(f.entries_per_table(), 512);
            assert_eq!(f.table_bytes(), 4096);
            assert_eq!(f.va_bits(), 57);
        }
    }

    #[test]
    fn formats_differ_in_flag_layout() {
        // The whole point of accessor functions: the layouts disagree.
        let x = IsaKind::X86_64.format();
        let a = IsaKind::Aarch64.format();
        assert_ne!(x.write_bit, a.write_bit);
        assert_ne!(x.write_inverted, a.write_inverted);
        assert_ne!(x.dirty_bit, a.dirty_bit);
        assert_ne!(x.nx_bit, a.nx_bit);
    }

    #[test]
    fn va_index_extracts_nine_bit_fields() {
        let f = IsaKind::X86_64.format();
        // Construct a VA with distinct indices 1,2,3,4,5 and offset 6.
        let va = (1u64 << 48) | (2 << 39) | (3 << 30) | (4 << 21) | (5 << 12) | 6;
        assert_eq!(f.va_index(va, 0), 1);
        assert_eq!(f.va_index(va, 1), 2);
        assert_eq!(f.va_index(va, 2), 3);
        assert_eq!(f.va_index(va, 3), 4);
        assert_eq!(f.va_index(va, 4), 5);
        assert_eq!(f.page_offset(va), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn va_index_rejects_bad_level() {
        let _ = IsaKind::X86_64.format().va_index(0, 5);
    }

    #[test]
    fn vpn_strips_offset() {
        let f = IsaKind::Aarch64.format();
        assert_eq!(f.vpn(0x5000), 5);
        assert_eq!(f.vpn(0x5fff), 5);
        assert_eq!(f.vpn(0x6000), 6);
    }

    #[test]
    fn pfn_masks() {
        let x = IsaKind::X86_64.format();
        assert_eq!(x.pfn_mask(), 0x000f_ffff_ffff_f000);
        let a = IsaKind::Aarch64.format();
        assert_eq!(a.pfn_mask(), 0x0000_ffff_ffff_f000);
    }
}
