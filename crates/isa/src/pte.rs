//! Portable page-table-entry flags and the per-ISA codec.
//!
//! The Stramash page-fault handler inserts a freshly allocated page into
//! *both* kernels' page tables — its own in its own format, and the
//! origin kernel's "with the remote node ISA format" (§6.4). When the
//! process migrates back, "the origin kernel can simply reconfigure the
//! PTE to its own format". [`PteFlags`] is the ISA-neutral meaning; the
//! codec functions translate it to and from each ISA's raw bits.

use crate::format::{IsaKind, PageTableFormat};

/// ISA-neutral leaf-entry permissions and state bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PteFlags {
    /// Mapping is valid.
    pub present: bool,
    /// Writable (already in the *logical* sense; the AArch64 codec
    /// inverts it into AP\[2\]).
    pub writable: bool,
    /// Accessible from user mode / EL0.
    pub user: bool,
    /// Hardware/software accessed flag.
    pub accessed: bool,
    /// Dirty flag.
    pub dirty: bool,
    /// Not executable.
    pub no_exec: bool,
}

impl PteFlags {
    /// The flag set used for freshly faulted-in anonymous user pages.
    #[must_use]
    pub fn user_data() -> Self {
        PteFlags {
            present: true,
            writable: true,
            user: true,
            accessed: true,
            dirty: false,
            no_exec: true,
        }
    }

    /// Kernel read-write data mapping.
    #[must_use]
    pub fn kernel_data() -> Self {
        PteFlags {
            present: true,
            writable: true,
            user: false,
            accessed: true,
            dirty: false,
            no_exec: true,
        }
    }

    /// A read-only variant (COW / replicated DSM pages are mapped
    /// read-only so that writes fault, §6.4).
    #[must_use]
    pub fn read_only(mut self) -> Self {
        self.writable = false;
        self
    }
}

/// A raw page-table entry tagged with the format that encoded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawPte {
    /// The raw 64-bit entry.
    pub raw: u64,
    /// The ISA whose format the bits follow.
    pub isa: IsaKind,
}

impl RawPte {
    /// An empty (non-present) entry.
    #[must_use]
    pub fn empty(isa: IsaKind) -> Self {
        RawPte { raw: 0, isa }
    }

    /// Whether the present/valid bit is set.
    #[must_use]
    pub fn is_present(self) -> bool {
        let f = self.isa.format();
        self.raw & (1 << f.present_bit) != 0
    }

    /// Decodes into `(pfn, flags)`; `None` if not present.
    #[must_use]
    pub fn decode(self) -> Option<(u64, PteFlags)> {
        decode_pte(self.isa.format(), self.raw)
    }

    /// Re-encodes this entry in another ISA's format — the §6.4
    /// cross-format PTE conversion. Non-present entries convert to empty
    /// entries.
    #[must_use]
    pub fn convert_to(self, isa: IsaKind) -> RawPte {
        match self.decode() {
            Some((pfn, flags)) => encode_pte(isa.format(), pfn, flags),
            None => RawPte::empty(isa),
        }
    }
}

/// Encodes a leaf entry in `format`.
///
/// # Panics
///
/// Panics if `pfn` does not fit the format's PFN field.
#[must_use]
pub fn encode_pte(format: &PageTableFormat, pfn: u64, flags: PteFlags) -> RawPte {
    let pfn_field = pfn << format.pfn_low;
    assert_eq!(pfn_field & !format.pfn_mask(), 0, "pfn {pfn:#x} out of range for {:?}", format.isa);
    let mut raw = pfn_field;
    let mut set = |bit: u8, on: bool| {
        if on {
            raw |= 1u64 << bit;
        }
    };
    set(format.present_bit, flags.present);
    let write_bit_on = flags.writable != format.write_inverted;
    set(format.write_bit, write_bit_on);
    set(format.user_bit, flags.user);
    set(format.accessed_bit, flags.accessed);
    set(format.dirty_bit, flags.dirty);
    set(format.nx_bit, flags.no_exec);
    RawPte { raw, isa: format.isa }
}

/// Decodes a raw entry under `format`; `None` when not present.
#[must_use]
pub fn decode_pte(format: &PageTableFormat, raw: u64) -> Option<(u64, PteFlags)> {
    if raw & (1 << format.present_bit) == 0 {
        return None;
    }
    let bit = |b: u8| raw & (1u64 << b) != 0;
    let flags = PteFlags {
        present: true,
        writable: bit(format.write_bit) != format.write_inverted,
        user: bit(format.user_bit),
        accessed: bit(format.accessed_bit),
        dirty: bit(format.dirty_bit),
        no_exec: bit(format.nx_bit),
    };
    let pfn = (raw & format.pfn_mask()) >> format.pfn_low;
    Some((pfn, flags))
}

/// Encodes a non-leaf (table) entry pointing at the next-level table.
///
/// Both ISAs mark intermediate entries present; AArch64 additionally
/// sets the "table" type bit (bit 1).
#[must_use]
pub fn encode_table_entry(format: &PageTableFormat, next_table_pa: u64) -> u64 {
    let mut raw = next_table_pa & format.pfn_mask();
    raw |= 1 << format.present_bit;
    if format.isa == IsaKind::Aarch64 {
        raw |= 1 << 1; // table descriptor
    } else {
        raw |= 1 << format.write_bit | 1 << format.user_bit; // permissive upper level
    }
    raw
}

/// Decodes a non-leaf entry into the next table's physical address;
/// `None` when not present.
#[must_use]
pub fn decode_table_entry(format: &PageTableFormat, raw: u64) -> Option<u64> {
    if raw & (1 << format.present_bit) == 0 {
        return None;
    }
    Some(raw & format.pfn_mask())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(isa: IsaKind, flags: PteFlags) {
        let f = isa.format();
        let pte = encode_pte(f, 0x1234, flags);
        let (pfn, decoded) = pte.decode().expect("present entry decodes");
        assert_eq!(pfn, 0x1234);
        assert_eq!(decoded, PteFlags { present: true, ..flags });
    }

    #[test]
    fn roundtrip_user_data_both_isas() {
        for isa in IsaKind::ALL {
            roundtrip(isa, PteFlags::user_data());
            roundtrip(isa, PteFlags::kernel_data());
            roundtrip(isa, PteFlags::user_data().read_only());
        }
    }

    #[test]
    fn raw_bits_differ_between_isas() {
        let flags = PteFlags::user_data();
        let x = encode_pte(IsaKind::X86_64.format(), 7, flags);
        let a = encode_pte(IsaKind::Aarch64.format(), 7, flags);
        assert_ne!(x.raw, a.raw, "same meaning must produce different raw bits");
    }

    #[test]
    fn aarch64_write_bit_is_inverted() {
        let f = IsaKind::Aarch64.format();
        let rw = encode_pte(f, 1, PteFlags::user_data());
        let ro = encode_pte(f, 1, PteFlags::user_data().read_only());
        // AP[2] (bit 7) set means read-only.
        assert_eq!(rw.raw & (1 << 7), 0);
        assert_ne!(ro.raw & (1 << 7), 0);
    }

    #[test]
    fn x86_write_bit_is_direct() {
        let f = IsaKind::X86_64.format();
        let rw = encode_pte(f, 1, PteFlags::user_data());
        assert_ne!(rw.raw & (1 << 1), 0);
    }

    #[test]
    fn non_present_decodes_none() {
        for isa in IsaKind::ALL {
            assert!(RawPte::empty(isa).decode().is_none());
            assert!(!RawPte::empty(isa).is_present());
        }
    }

    #[test]
    fn cross_isa_conversion_preserves_meaning() {
        // §6.4: the origin kernel reconfigures a remote-format PTE to its
        // own format; pfn and logical flags must survive.
        let flags =
            PteFlags { present: true, writable: true, user: true, accessed: true, dirty: true, no_exec: false };
        let arm = encode_pte(IsaKind::Aarch64.format(), 0xabcd, flags);
        let x86 = arm.convert_to(IsaKind::X86_64);
        assert_eq!(x86.isa, IsaKind::X86_64);
        let (pfn, decoded) = x86.decode().unwrap();
        assert_eq!(pfn, 0xabcd);
        assert_eq!(decoded, flags);
        // And back again.
        let back = x86.convert_to(IsaKind::Aarch64);
        assert_eq!(back.raw, arm.raw);
    }

    #[test]
    fn convert_empty_stays_empty() {
        let e = RawPte::empty(IsaKind::X86_64).convert_to(IsaKind::Aarch64);
        assert_eq!(e.raw, 0);
        assert_eq!(e.isa, IsaKind::Aarch64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_oversized_pfn() {
        // AArch64 PFN field ends at bit 48 → pfn must fit 36 bits.
        let _ = encode_pte(IsaKind::Aarch64.format(), 1 << 37, PteFlags::user_data());
    }

    #[test]
    fn table_entry_roundtrip() {
        for isa in IsaKind::ALL {
            let f = isa.format();
            let raw = encode_table_entry(f, 0x7_7000);
            assert_eq!(decode_table_entry(f, raw), Some(0x7_7000));
            assert_eq!(decode_table_entry(f, 0), None);
        }
    }

    #[test]
    fn aarch64_table_entry_sets_type_bit() {
        let raw = encode_table_entry(IsaKind::Aarch64.format(), 0x5000);
        assert_ne!(raw & 0b10, 0);
    }
}
