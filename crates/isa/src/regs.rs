//! Register files and cross-ISA state transformation (§5 "Applications'
//! Compiler and Linker").
//!
//! Applications are "compiled in a way that makes them amenable to
//! migration, such that they can continue executing on another ISA-CPU
//! carrying over the existing application state minus the CPU-state
//! that is converted". The Popcorn compiler aligns stack layouts and
//! restricts migration to equivalence points (function boundaries), so
//! only the *register* state needs conversion. This module provides the
//! two register files, the ISA-neutral state at an equivalence point,
//! and the bidirectional transformation with its cost.

use crate::format::IsaKind;
use stramash_sim::Cycles;

/// Instructions the runtime executes to transform the register state at
/// a migration point (unmarshal + ABI re-mapping; UNIFICO-class
/// transformations are in the hundreds of instructions).
pub const TRANSFORM_INSNS: u64 = 320;

/// The x86-64 integer register file (System V ABI ordering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct X86RegFile {
    /// rax, rbx, rcx, rdx, rsi, rdi, rbp, rsp, r8–r15.
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
}

/// x86-64 GPR indices used by the transformation.
pub mod x86_reg {
    /// Return value.
    pub const RAX: usize = 0;
    /// First argument (SysV).
    pub const RDI: usize = 5;
    /// Second argument.
    pub const RSI: usize = 4;
    /// Third argument.
    pub const RDX: usize = 3;
    /// Frame pointer.
    pub const RBP: usize = 6;
    /// Stack pointer.
    pub const RSP: usize = 7;
}

/// The AArch64 integer register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArmRegFile {
    /// x0–x30.
    pub x: [u64; 31],
    /// Stack pointer.
    pub sp: u64,
    /// Program counter.
    pub pc: u64,
    /// Processor state (NZCV etc.).
    pub pstate: u64,
}

/// AArch64 register indices used by the transformation (AAPCS64).
pub mod arm_reg {
    /// Return value / first argument.
    pub const X0: usize = 0;
    /// Second argument.
    pub const X1: usize = 1;
    /// Third argument.
    pub const X2: usize = 2;
    /// Frame pointer.
    pub const X29: usize = 29;
    /// Link register.
    pub const X30: usize = 30;
}

/// A register file of either ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegFile {
    /// x86-64 registers.
    X86(X86RegFile),
    /// AArch64 registers.
    Arm(ArmRegFile),
}

impl RegFile {
    /// The ISA the registers belong to.
    #[must_use]
    pub fn isa(&self) -> IsaKind {
        match self {
            RegFile::X86(_) => IsaKind::X86_64,
            RegFile::Arm(_) => IsaKind::Aarch64,
        }
    }
}

/// The ISA-neutral machine state at a Popcorn equivalence point: the
/// quantities both ABIs agree on at a function boundary. Everything
/// else (callee-saved registers) has already been spilled to the
/// common-layout stack by the migration-aware compiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineState {
    /// Program counter, as an address in the (ISA-independent) common
    /// virtual address space.
    pub pc: u64,
    /// Stack pointer (the stacks share one layout).
    pub sp: u64,
    /// Frame pointer.
    pub fp: u64,
    /// Return value / first three argument slots.
    pub args: [u64; 3],
    /// Condition flags, in a neutral NZCV encoding.
    pub flags: u64,
}

/// Extracts the neutral state from a register file (the "marshal" half
/// of the transformation).
#[must_use]
pub fn capture(regs: &RegFile) -> MachineState {
    match regs {
        RegFile::X86(r) => MachineState {
            pc: r.rip,
            sp: r.gpr[x86_reg::RSP],
            fp: r.gpr[x86_reg::RBP],
            args: [r.gpr[x86_reg::RDI], r.gpr[x86_reg::RSI], r.gpr[x86_reg::RDX]],
            flags: r.rflags & 0xff,
        },
        RegFile::Arm(r) => MachineState {
            pc: r.pc,
            sp: r.sp,
            fp: r.x[arm_reg::X29],
            args: [r.x[arm_reg::X0], r.x[arm_reg::X1], r.x[arm_reg::X2]],
            flags: r.pstate & 0xff,
        },
    }
}

/// Materialises the neutral state into a destination-ISA register file
/// (the "unmarshal" half).
#[must_use]
pub fn materialize(state: &MachineState, isa: IsaKind) -> RegFile {
    match isa {
        IsaKind::X86_64 => {
            let mut r = X86RegFile { rip: state.pc, rflags: state.flags, ..Default::default() };
            r.gpr[x86_reg::RSP] = state.sp;
            r.gpr[x86_reg::RBP] = state.fp;
            r.gpr[x86_reg::RDI] = state.args[0];
            r.gpr[x86_reg::RSI] = state.args[1];
            r.gpr[x86_reg::RDX] = state.args[2];
            RegFile::X86(r)
        }
        IsaKind::Aarch64 => {
            let mut r =
                ArmRegFile { pc: state.pc, sp: state.sp, pstate: state.flags, ..Default::default() };
            r.x[arm_reg::X29] = state.fp;
            r.x[arm_reg::X0] = state.args[0];
            r.x[arm_reg::X1] = state.args[1];
            r.x[arm_reg::X2] = state.args[2];
            RegFile::Arm(r)
        }
    }
}

/// Transforms a register file to the other ISA, returning the new file
/// and the runtime cost of the conversion (charged at the migration
/// destination).
#[must_use]
pub fn transform(regs: &RegFile, to: IsaKind) -> (RegFile, u64) {
    if regs.isa() == to {
        return (*regs, 0);
    }
    (materialize(&capture(regs), to), TRANSFORM_INSNS)
}

/// Serialized size of the migration payload: the neutral state plus the
/// common-layout callee-saved spill area the compiler reserves.
#[must_use]
pub fn migration_payload_bytes() -> u32 {
    let neutral = std::mem::size_of::<MachineState>() as u32;
    let spill_area = 1024; // callee-saved + FP state in the common layout
    let fp_regs = 32 * 16; // 32 vector registers, 128-bit lanes
    neutral + spill_area + fp_regs
}

/// A migration-cost descriptor used by the OS layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCostModel {
    /// Message payload bytes for the shipped state.
    pub payload_bytes: u32,
    /// Instructions of state transformation at the destination.
    pub transform_insns: u64,
}

impl MigrationCostModel {
    /// The Popcorn-toolchain model used by both OS designs.
    #[must_use]
    pub fn popcorn_toolchain() -> Self {
        MigrationCostModel {
            payload_bytes: migration_payload_bytes(),
            transform_insns: TRANSFORM_INSNS,
        }
    }

    /// Transformation time in cycles at fixed IPC 1.
    #[must_use]
    pub fn transform_cycles(&self) -> Cycles {
        Cycles::new(self.transform_insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_x86() -> RegFile {
        let mut r = X86RegFile { rip: 0x40_1000, rflags: 0b100_0101, ..Default::default() };
        r.gpr[x86_reg::RSP] = 0x7fff_0000;
        r.gpr[x86_reg::RBP] = 0x7fff_0040;
        r.gpr[x86_reg::RDI] = 11;
        r.gpr[x86_reg::RSI] = 22;
        r.gpr[x86_reg::RDX] = 33;
        RegFile::X86(r)
    }

    #[test]
    fn capture_extracts_abi_state() {
        let s = capture(&sample_x86());
        assert_eq!(s.pc, 0x40_1000);
        assert_eq!(s.sp, 0x7fff_0000);
        assert_eq!(s.fp, 0x7fff_0040);
        assert_eq!(s.args, [11, 22, 33]);
        assert_eq!(s.flags, 0b100_0101);
    }

    #[test]
    fn transform_x86_to_arm_maps_abi_registers() {
        let (arm, cost) = transform(&sample_x86(), IsaKind::Aarch64);
        assert_eq!(cost, TRANSFORM_INSNS);
        let RegFile::Arm(r) = arm else { panic!("expected Arm registers") };
        assert_eq!(r.pc, 0x40_1000);
        assert_eq!(r.sp, 0x7fff_0000);
        assert_eq!(r.x[arm_reg::X29], 0x7fff_0040);
        assert_eq!(r.x[arm_reg::X0], 11);
        assert_eq!(r.x[arm_reg::X1], 22);
        assert_eq!(r.x[arm_reg::X2], 33);
    }

    #[test]
    fn round_trip_preserves_neutral_state() {
        let original = sample_x86();
        let (arm, _) = transform(&original, IsaKind::Aarch64);
        let (back, _) = transform(&arm, IsaKind::X86_64);
        assert_eq!(capture(&back), capture(&original));
        assert_eq!(back.isa(), IsaKind::X86_64);
    }

    #[test]
    fn same_isa_transform_is_free() {
        let original = sample_x86();
        let (same, cost) = transform(&original, IsaKind::X86_64);
        assert_eq!(cost, 0);
        assert_eq!(same, original);
    }

    #[test]
    fn payload_size_is_kilobyte_scale() {
        let m = MigrationCostModel::popcorn_toolchain();
        assert!((1024..8192).contains(&m.payload_bytes), "got {}", m.payload_bytes);
        assert_eq!(m.transform_cycles().raw(), TRANSFORM_INSNS);
    }
}
