//! Memory-consistency assumptions of the hardware model (§3).
//!
//! "Regarding memory consistency, we assume all processors abide by the
//! strongest memory consistency model of all ISAs (Arm already supports
//! running in TSO mode)." The §7.1 simulator realises this by running
//! both QEMU instances on an x86 (TSO) host. This module encodes that
//! assumption and the ArMOR-style mismatch check the paper cites for
//! platforms that do *not* unify their models.

use crate::format::IsaKind;
use std::fmt;

/// Memory-consistency models, ordered weakest → strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoryOrder {
    /// Weakly ordered (architectural AArch64).
    Weak,
    /// Total store order (x86; AArch64 in TSO mode).
    Tso,
    /// Sequential consistency (not used by either prototype ISA, listed
    /// for completeness of the ordering).
    Sc,
}

impl MemoryOrder {
    /// The strongest of two models — the platform-wide model under the
    /// §3 assumption.
    #[must_use]
    pub fn strongest(self, other: MemoryOrder) -> MemoryOrder {
        self.max(other)
    }
}

impl fmt::Display for MemoryOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryOrder::Weak => f.write_str("weak"),
            MemoryOrder::Tso => f.write_str("TSO"),
            MemoryOrder::Sc => f.write_str("SC"),
        }
    }
}

/// Per-domain consistency configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConsistencyConfig {
    /// The ISA.
    pub isa: IsaKind,
    /// Whether AArch64 runs in its optional TSO mode.
    pub arm_tso_mode: bool,
}

impl ConsistencyConfig {
    /// The paper's configuration (Arm in TSO mode).
    #[must_use]
    pub fn paper_default(isa: IsaKind) -> Self {
        ConsistencyConfig { isa, arm_tso_mode: true }
    }

    /// The effective memory order of this domain.
    #[must_use]
    pub fn effective_order(&self) -> MemoryOrder {
        match self.isa {
            IsaKind::X86_64 => MemoryOrder::Tso,
            IsaKind::Aarch64 => {
                if self.arm_tso_mode {
                    MemoryOrder::Tso
                } else {
                    MemoryOrder::Weak
                }
            }
        }
    }
}

/// Whether two domains may share memory without extra fencing: their
/// effective orders must match (otherwise an ArMOR-style shim [Lustig
/// et al., ISCA'15] must insert fences — flagged, not modelled).
#[must_use]
pub fn models_compatible(a: &ConsistencyConfig, b: &ConsistencyConfig) -> bool {
    a.effective_order() == b.effective_order()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_weak_lt_tso_lt_sc() {
        assert!(MemoryOrder::Weak < MemoryOrder::Tso);
        assert!(MemoryOrder::Tso < MemoryOrder::Sc);
        assert_eq!(MemoryOrder::Weak.strongest(MemoryOrder::Tso), MemoryOrder::Tso);
    }

    #[test]
    fn paper_platform_is_uniformly_tso() {
        let x = ConsistencyConfig::paper_default(IsaKind::X86_64);
        let a = ConsistencyConfig::paper_default(IsaKind::Aarch64);
        assert_eq!(x.effective_order(), MemoryOrder::Tso);
        assert_eq!(a.effective_order(), MemoryOrder::Tso);
        assert!(models_compatible(&x, &a));
    }

    #[test]
    fn weak_arm_flags_mismatch() {
        let x = ConsistencyConfig::paper_default(IsaKind::X86_64);
        let a = ConsistencyConfig { isa: IsaKind::Aarch64, arm_tso_mode: false };
        assert_eq!(a.effective_order(), MemoryOrder::Weak);
        assert!(!models_compatible(&x, &a));
    }

    #[test]
    fn display() {
        assert_eq!(MemoryOrder::Tso.to_string(), "TSO");
        assert_eq!(MemoryOrder::Weak.to_string(), "weak");
    }
}
