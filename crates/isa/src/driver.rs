//! Remote CPU drivers — the paper's accessor-function bundles.
//!
//! §5: when a kernel must read or write another kernel's
//! architecture-dependent data (the page table being the canonical
//! example), it cannot use a common format; instead "each kernel
//! instance keeps its own data format, but the others use *accessor
//! functions* to read/write the original data … A collection of accessor
//! functions targeting a specific ISA makes up a **remote CPU driver**."
//!
//! [`RemoteCpuDriver`] is exactly that collection for page tables: given
//! the remote ISA, it computes entry addresses with the remote level
//! masks and encodes/decodes entries in the remote format. The timed
//! memory traffic itself is issued by the caller (the kernel crates), so
//! the driver stays a pure, side-effect-free codec.

use crate::format::{IsaKind, PageTableFormat};
use crate::pte::{decode_pte, decode_table_entry, encode_pte, encode_table_entry, PteFlags, RawPte};

/// Accessor functions for one remote ISA's page-table structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCpuDriver {
    format: &'static PageTableFormat,
}

impl RemoteCpuDriver {
    /// Creates the driver for structures owned by a kernel of `isa`.
    #[must_use]
    pub fn new(isa: IsaKind) -> Self {
        RemoteCpuDriver { format: isa.format() }
    }

    /// The ISA this driver understands.
    #[must_use]
    pub fn isa(&self) -> IsaKind {
        self.format.isa
    }

    /// The underlying format descriptor.
    #[must_use]
    pub fn format(&self) -> &'static PageTableFormat {
        self.format
    }

    /// Number of memory reads a full software walk performs (one per
    /// level — the §6.4 remote walker cost that replaces a message
    /// round-trip).
    #[must_use]
    pub fn walk_steps(&self) -> u8 {
        self.format.levels
    }

    /// The physical address of the entry indexing `va` at `level` in a
    /// table rooted at `table_base_pa`, using the remote ISA's masks.
    #[must_use]
    pub fn entry_addr(&self, table_base_pa: u64, va: u64, level: u8) -> u64 {
        table_base_pa + self.format.va_index(va, level) * 8
    }

    /// Decodes a leaf entry read from remote memory.
    #[must_use]
    pub fn decode_leaf(&self, raw: u64) -> Option<(u64, PteFlags)> {
        decode_pte(self.format, raw)
    }

    /// Decodes a non-leaf entry into the next table's physical address.
    #[must_use]
    pub fn decode_table(&self, raw: u64) -> Option<u64> {
        decode_table_entry(self.format, raw)
    }

    /// Encodes a leaf entry in the remote format ("with the remote node
    /// ISA format", §6.4).
    #[must_use]
    pub fn encode_leaf(&self, pfn: u64, flags: PteFlags) -> RawPte {
        encode_pte(self.format, pfn, flags)
    }

    /// Encodes a non-leaf entry in the remote format.
    #[must_use]
    pub fn encode_table(&self, next_table_pa: u64) -> u64 {
        encode_table_entry(self.format, next_table_pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_addresses_follow_remote_masks() {
        let x86 = RemoteCpuDriver::new(IsaKind::X86_64);
        let va = (3u64 << 48) | (1 << 39);
        assert_eq!(x86.entry_addr(0x10_0000, va, 0), 0x10_0000 + 3 * 8);
        assert_eq!(x86.entry_addr(0x20_0000, va, 1), 0x20_0000 + 8);
        assert_eq!(x86.entry_addr(0x20_0000, va, 2), 0x20_0000);
    }

    #[test]
    fn walk_steps_matches_levels() {
        assert_eq!(RemoteCpuDriver::new(IsaKind::Aarch64).walk_steps(), 5);
    }

    #[test]
    fn leaf_codec_roundtrip_through_driver() {
        let drv = RemoteCpuDriver::new(IsaKind::Aarch64);
        let pte = drv.encode_leaf(0x99, PteFlags::user_data());
        let (pfn, flags) = drv.decode_leaf(pte.raw).unwrap();
        assert_eq!(pfn, 0x99);
        assert!(flags.writable && flags.user);
    }

    #[test]
    fn table_codec_roundtrip_through_driver() {
        let drv = RemoteCpuDriver::new(IsaKind::X86_64);
        let raw = drv.encode_table(0xF000);
        assert_eq!(drv.decode_table(raw), Some(0xF000));
        assert_eq!(drv.decode_table(0), None);
    }

    #[test]
    fn drivers_for_different_isas_disagree_on_bits() {
        // The reason drivers exist: identical logical entries have
        // different raw encodings per ISA.
        let x = RemoteCpuDriver::new(IsaKind::X86_64).encode_leaf(5, PteFlags::user_data());
        let a = RemoteCpuDriver::new(IsaKind::Aarch64).encode_leaf(5, PteFlags::user_data());
        assert_ne!(x.raw, a.raw);
        assert_eq!(x.decode().unwrap().0, a.decode().unwrap().0);
    }
}
