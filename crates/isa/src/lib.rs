//! ISA modelling for the Stramash reproduction.
//!
//! The fused-kernel design's hardest problem is that kernel data is not
//! always ISA-portable: page tables, descriptor flags and atomic
//! primitives differ between x86-64 and AArch64. This crate captures
//! exactly the ISA properties the paper's mechanisms depend on:
//!
//! * [`mod@format`] — per-ISA page-table **format descriptors**: level
//!   counts, index extraction, and the genuinely different flag layouts
//!   of x86 PTEs and AArch64 descriptors (§6.4 "Software Remote Page
//!   Table Walker": "Each level page mask is re-defined if it is
//!   different between x86 and Arm").
//! * [`pte`] — a portable flag set and the per-ISA encode/decode codec,
//!   including the §6.4 cross-format conversion ("the origin kernel can
//!   simply reconfigure the PTE to its own format").
//! * [`atomic`] — the cross-ISA atomicity model of §6.5/§7.1: AArch64
//!   LSE CAS vs LL/SC, and the soundness condition for cross-ISA locks.
//! * [`driver`] — [`driver::RemoteCpuDriver`], the paper's "collection
//!   of accessor functions targeting a specific ISA" (§5) that lets one
//!   kernel interpret another ISA's structures in shared memory.
//! * [`consistency`] — the §3 memory-consistency assumption (everyone
//!   runs the strongest model; Arm in TSO mode).
//! * [`regs`] — per-ISA register files and the Popcorn-toolchain state
//!   transformation executed at migration equivalence points (§5).

#![warn(missing_docs)]

pub mod atomic;
pub mod consistency;
pub mod driver;
pub mod format;
pub mod pte;
pub mod regs;

pub use atomic::{AtomicKind, AtomicModel};
pub use consistency::MemoryOrder;
pub use driver::RemoteCpuDriver;
pub use format::{IsaKind, PageTableFormat};
pub use pte::{PteFlags, RawPte};
pub use regs::{ArmRegFile, MachineState, MigrationCostModel, RegFile, X86RegFile};
