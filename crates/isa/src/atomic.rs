//! Cross-ISA atomicity modelling (§6.5 "Atomicity", §7.1).
//!
//! Cross-ISA locks in shared memory are only sound when both sides use
//! compatible read-modify-write primitives. The paper's prototype:
//!
//! * enables the AArch64 **Large System Extensions** (LSE), replacing
//!   LL/SC (`LDXR`/`STXR`) with single-instruction `CAS`,
//! * ensures all kernel spinlock-related instructions use CAS,
//! * configures the QEMU TCG so that the x86 host's translation of Arm
//!   atomics preserves their integrity (the Cortex-A76 guest supports
//!   LSE, so LL/SC→CAS translation hazards are avoided).

use stramash_sim::Cycles;

use crate::format::IsaKind;

/// The atomic read-modify-write primitive an ISA (configuration) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicKind {
    /// Single-instruction compare-and-swap (x86 `lock cmpxchg`,
    /// AArch64 LSE `CAS`).
    Cas,
    /// Load-linked / store-conditional pairs (pre-LSE AArch64).
    LlSc,
}

/// Per-domain atomic configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomicModel {
    /// The ISA.
    pub isa: IsaKind,
    /// Whether LSE is available and enabled (AArch64 only; always true
    /// for x86, which has had CAS since the 486).
    pub lse: bool,
}

impl AtomicModel {
    /// The paper's configuration: LSE enabled everywhere (§6.5:
    /// "Stramash-Linux's AArch64 kernel includes support for LSE").
    #[must_use]
    pub fn paper_default(isa: IsaKind) -> Self {
        AtomicModel { isa, lse: true }
    }

    /// A legacy AArch64 configuration without LSE, used by the ablation
    /// benches to show why the paper insists on CAS.
    #[must_use]
    pub fn without_lse(isa: IsaKind) -> Self {
        AtomicModel { isa, lse: false }
    }

    /// Which primitive this configuration executes.
    #[must_use]
    pub fn kind(&self) -> AtomicKind {
        match self.isa {
            IsaKind::X86_64 => AtomicKind::Cas,
            IsaKind::Aarch64 => {
                if self.lse {
                    AtomicKind::Cas
                } else {
                    AtomicKind::LlSc
                }
            }
        }
    }

    /// Serialisation penalty of one atomic RMW beyond the plain cache
    /// access, in cycles. LL/SC executed under binary translation pays
    /// extra for the emulated exclusive monitor (§7.1 discusses the
    /// host translating guest LL/SC into CAS).
    #[must_use]
    pub fn rmw_penalty(&self) -> Cycles {
        match self.kind() {
            AtomicKind::Cas => Cycles::new(20),
            AtomicKind::LlSc => Cycles::new(36),
        }
    }
}

/// Whether two domains can safely share in-memory locks: both must use
/// single-instruction CAS (§6.5: mixing LL/SC with a foreign CAS on the
/// same word is not architecturally guaranteed to be atomic).
#[must_use]
pub fn cross_isa_atomics_sound(a: &AtomicModel, b: &AtomicModel) -> bool {
    a.kind() == AtomicKind::Cas && b.kind() == AtomicKind::Cas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_always_cas() {
        for lse in [true, false] {
            let m = AtomicModel { isa: IsaKind::X86_64, lse };
            assert_eq!(m.kind(), AtomicKind::Cas);
        }
    }

    #[test]
    fn aarch64_needs_lse_for_cas() {
        assert_eq!(AtomicModel::paper_default(IsaKind::Aarch64).kind(), AtomicKind::Cas);
        assert_eq!(AtomicModel::without_lse(IsaKind::Aarch64).kind(), AtomicKind::LlSc);
    }

    #[test]
    fn paper_configuration_is_sound() {
        let x = AtomicModel::paper_default(IsaKind::X86_64);
        let a = AtomicModel::paper_default(IsaKind::Aarch64);
        assert!(cross_isa_atomics_sound(&x, &a));
    }

    #[test]
    fn legacy_arm_breaks_cross_isa_locking() {
        let x = AtomicModel::paper_default(IsaKind::X86_64);
        let a = AtomicModel::without_lse(IsaKind::Aarch64);
        assert!(!cross_isa_atomics_sound(&x, &a));
    }

    #[test]
    fn llsc_pays_more_than_cas() {
        let cas = AtomicModel::paper_default(IsaKind::Aarch64).rmw_penalty();
        let llsc = AtomicModel::without_lse(IsaKind::Aarch64).rmw_penalty();
        assert!(llsc > cas);
    }
}
