//! Deterministic fault injection for the fused-kernel stack.
//!
//! The paper defers fault tolerance to future work (§10); this module is
//! the reproduction's chaos harness. A [`FaultPlan`] describes *which*
//! faults may fire and with what probability; a [`FaultInjector`] turns
//! the plan into a replayable schedule by giving every injection site its
//! own [`SimRng`](crate::rng::SimRng) stream split from one root seed.
//! Because each site draws only from its own stream, the decision made at
//! (site, op-index) depends solely on the seed and the plan — two runs
//! with the same seed replay the identical fault sequence even if the
//! surrounding workload interleaves sites differently.
//!
//! When no injector is installed the hot paths consume **zero** RNG and
//! charge the exact same cycle costs as before this module existed, so
//! fault-free experiments stay bit-identical to the paper-fidelity model.

use crate::rng::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// The kind of fault a site injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A message (or its payload write) was lost in the channel.
    MsgDrop,
    /// A message arrived with a bad checksum and was discarded.
    MsgCorrupt,
    /// A message was delivered late by the plan's delay.
    MsgDelay,
    /// The ack for a delivered message was lost (forces a retransmit
    /// that the receiver must dedup by sequence number).
    AckDrop,
    /// An inter-processor interrupt was lost in the fabric.
    IpiLoss,
    /// A single-bit memory flip (ECC-correctable).
    BitFlipSingle,
    /// A double-bit memory flip (ECC-detectable but uncorrectable).
    BitFlipDouble,
    /// A transient frame-allocation failure.
    AllocFail,
    /// The global allocator refused a block grant (forced exhaustion).
    GallocExhausted,
    /// A cross-ISA page-table-lock acquisition found the lock held.
    LockContention,
    /// A message ring filled up and the sender had to stall.
    RingBackpressure,
    /// A whole domain fail-stopped (kernel crash): its cores halt and it
    /// goes silent on the heartbeat channel. Memory contents survive —
    /// the platform's DRAM is cache-coherent and shared, so a kernel
    /// crash does not lose the pool (see DESIGN.md §10).
    DomainCrash,
}

/// The subsystem at which a fault was injected. Each site owns an
/// independent RNG stream and op counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `MessagingLayer::send` (drop / corrupt / delay / ack-drop).
    Msg,
    /// `IpiFabric::send`.
    Ipi,
    /// Physical memory (bit flips).
    Mem,
    /// Frame / global allocation paths.
    Alloc,
    /// Cross-ISA page-table lock.
    Lock,
}

impl FaultSite {
    /// All sites, in stream order.
    pub const ALL: [FaultSite; 5] =
        [FaultSite::Msg, FaultSite::Ipi, FaultSite::Mem, FaultSite::Alloc, FaultSite::Lock];

    fn index(self) -> usize {
        match self {
            FaultSite::Msg => 0,
            FaultSite::Ipi => 1,
            FaultSite::Mem => 2,
            FaultSite::Alloc => 3,
            FaultSite::Lock => 4,
        }
    }
}

/// One injected fault, recorded in the injector's replay log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Where it was injected.
    pub site: FaultSite,
    /// The site-local operation index at which it fired (0-based).
    pub op: u64,
}

/// Declarative description of the faults a run should experience.
///
/// All probabilities are in `[0, 1]` and are evaluated per operation at
/// their site. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a message send is dropped in the channel.
    pub msg_drop: f64,
    /// Probability a message arrives corrupted (checksum-detected;
    /// behaves like a drop but is counted separately).
    pub msg_corrupt: f64,
    /// Probability a message is delayed by [`FaultPlan::msg_delay_cycles`].
    pub msg_delay: f64,
    /// Extra delivery latency charged by a `MsgDelay` fault.
    pub msg_delay_cycles: u64,
    /// Probability the ack of a delivered message is lost (forces a
    /// retransmit the receiver dedups by sequence number).
    pub ack_drop: f64,
    /// Probability an IPI is lost in the fabric.
    pub ipi_loss: f64,
    /// Probability a frame allocation transiently fails.
    pub alloc_fail: f64,
    /// Probability a PTL acquisition finds the lock held by the peer.
    pub lock_contention: f64,
    /// Of injected bit flips, the fraction that are double-bit
    /// (uncorrectable) rather than single-bit (ECC-correctable).
    pub double_bit: f64,
    /// Inclusive-exclusive site-local op window `[start, end)` outside of
    /// which nothing is injected. `None` means always armed.
    pub window: Option<(u64, u64)>,
    /// One-shot: force the global allocator to refuse the Nth grant
    /// request (0-based) observed at the [`FaultSite::Alloc`] site.
    pub galloc_exhaust_at: Option<u64>,
    /// One-shot: fail-stop a whole domain at the given watchdog tick.
    /// `(domain index, tick)` — deterministic, no RNG involved, so the
    /// crash instant is identical on every replay of the plan.
    pub crash: Option<(u8, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            msg_drop: 0.0,
            msg_corrupt: 0.0,
            msg_delay: 0.0,
            msg_delay_cycles: 0,
            ack_drop: 0.0,
            ipi_loss: 0.0,
            alloc_fail: 0.0,
            lock_contention: 0.0,
            double_bit: 0.0,
            window: None,
            galloc_exhaust_at: None,
            crash: None,
        }
    }

    /// Sets the message-drop probability.
    #[must_use]
    pub fn with_msg_drop(mut self, p: f64) -> Self {
        self.msg_drop = p;
        self
    }

    /// Sets the message-corruption probability.
    #[must_use]
    pub fn with_msg_corrupt(mut self, p: f64) -> Self {
        self.msg_corrupt = p;
        self
    }

    /// Sets the message-delay probability and the delay itself.
    #[must_use]
    pub fn with_msg_delay(mut self, p: f64, cycles: u64) -> Self {
        self.msg_delay = p;
        self.msg_delay_cycles = cycles;
        self
    }

    /// Sets the ack-drop probability.
    #[must_use]
    pub fn with_ack_drop(mut self, p: f64) -> Self {
        self.ack_drop = p;
        self
    }

    /// Sets the IPI-loss probability.
    #[must_use]
    pub fn with_ipi_loss(mut self, p: f64) -> Self {
        self.ipi_loss = p;
        self
    }

    /// Sets the transient allocation-failure probability.
    #[must_use]
    pub fn with_alloc_fail(mut self, p: f64) -> Self {
        self.alloc_fail = p;
        self
    }

    /// Sets the PTL-contention probability.
    #[must_use]
    pub fn with_lock_contention(mut self, p: f64) -> Self {
        self.lock_contention = p;
        self
    }

    /// Restricts injection to the site-local op window `[start, end)`.
    #[must_use]
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Forces the global allocator to refuse the `n`-th grant (one-shot).
    #[must_use]
    pub fn with_galloc_exhaust_at(mut self, n: u64) -> Self {
        self.galloc_exhaust_at = Some(n);
        self
    }

    /// Fail-stops domain `domain` (0 = x86, 1 = Arm) at watchdog tick
    /// `tick` (one-shot, deterministic).
    #[must_use]
    pub fn with_domain_crash(mut self, domain: u8, tick: u64) -> Self {
        self.crash = Some((domain, tick));
        self
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.msg_drop == 0.0
            && self.msg_corrupt == 0.0
            && self.msg_delay == 0.0
            && self.ack_drop == 0.0
            && self.ipi_loss == 0.0
            && self.alloc_fail == 0.0
            && self.lock_contention == 0.0
            && self.galloc_exhaust_at.is_none()
            && self.crash.is_none()
    }

    /// Serializes the plan into a checkpoint artifact section.
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x46_504c4e); // "FPLN"
        for p in [
            self.msg_drop,
            self.msg_corrupt,
            self.msg_delay,
            self.ack_drop,
            self.ipi_loss,
            self.alloc_fail,
            self.lock_contention,
            self.double_bit,
        ] {
            e.f64(p);
        }
        e.u64(self.msg_delay_cycles);
        match self.window {
            Some((s, end)) => {
                e.bool(true);
                e.u64(s);
                e.u64(end);
            }
            None => e.bool(false),
        }
        e.opt_u64(self.galloc_exhaust_at);
        match self.crash {
            Some((d, t)) => {
                e.bool(true);
                e.u8(d);
                e.u64(t);
            }
            None => e.bool(false),
        }
    }

    /// Deserializes a plan from a checkpoint artifact section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        d.tag(0x46_504c4e)?;
        let mut plan = FaultPlan::none();
        plan.msg_drop = d.f64()?;
        plan.msg_corrupt = d.f64()?;
        plan.msg_delay = d.f64()?;
        plan.ack_drop = d.f64()?;
        plan.ipi_loss = d.f64()?;
        plan.alloc_fail = d.f64()?;
        plan.lock_contention = d.f64()?;
        plan.double_bit = d.f64()?;
        plan.msg_delay_cycles = d.u64()?;
        plan.window = if d.bool()? { Some((d.u64()?, d.u64()?)) } else { None };
        plan.galloc_exhaust_at = d.opt_u64()?;
        plan.crash = if d.bool()? { Some((d.u8()?, d.u64()?)) } else { None };
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Aggregate fault/recovery counters (the injector-side mirror of the
/// per-domain [`DomainStats`](crate::stats::DomainStats) fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults the injector fired.
    pub injected: u64,
    /// Recovery attempts (retransmits, re-acquisitions, re-allocations).
    pub retried: u64,
    /// Faults the stack fully recovered from.
    pub recovered: u64,
    /// Faults that were not recoverable (e.g. double-bit flips).
    pub fatal: u64,
}

/// The per-run fault scheduler: one RNG stream and op counter per
/// [`FaultSite`], a replay log, and aggregate counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    streams: [SimRng; 5],
    ops: [u64; 5],
    /// Grant requests observed by [`FaultInjector::galloc_exhausted`] —
    /// deliberately separate from the Alloc stream so the one-shot index
    /// counts grant requests, not every Alloc-site roll.
    galloc_ops: u64,
    counters: FaultCounters,
    log: Vec<FaultEvent>,
    /// One-shot latch: the plan's crash already fired.
    crash_fired: bool,
    /// Recovery disarmed the crash: it will not re-fire during replay
    /// of the post-checkpoint backlog. Harness-side state — never
    /// serialized, never affects simulated cycles.
    crash_disarmed: bool,
}

impl FaultInjector {
    /// Builds an injector for `plan`, splitting one stream per site off
    /// the root `seed`.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut root = SimRng::new(seed);
        let streams =
            [root.split(), root.split(), root.split(), root.split(), root.split()];
        FaultInjector {
            plan,
            seed,
            streams,
            ops: [0; 5],
            galloc_ops: 0,
            counters: FaultCounters::default(),
            log: Vec::new(),
            crash_fired: false,
            crash_disarmed: false,
        }
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The root seed the streams were split from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The replay log of every fault fired so far, in firing order per
    /// site (the cross-site order depends on workload interleaving, but
    /// each `(site, op)` decision is seed-determined).
    #[must_use]
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Number of operations observed at `site`.
    #[must_use]
    pub fn ops_at(&self, site: FaultSite) -> u64 {
        self.ops[site.index()]
    }

    /// Whether the window (if any) covers the *current* op at `site`.
    fn armed(&self, site: FaultSite) -> bool {
        match self.plan.window {
            Some((start, end)) => {
                let op = self.ops[site.index()];
                op >= start && op < end
            }
            None => true,
        }
    }

    /// Advances `site`'s op counter and returns `(previous op, roll)`.
    /// The roll is always consumed so the stream position depends only on
    /// the op index, never on the plan's probabilities.
    fn roll(&mut self, site: FaultSite) -> (u64, f64) {
        let i = site.index();
        let op = self.ops[i];
        self.ops[i] += 1;
        (op, self.streams[i].gen_f64())
    }

    fn fire(&mut self, kind: FaultKind, site: FaultSite, op: u64) {
        self.counters.injected += 1;
        self.log.push(FaultEvent { kind, site, op });
    }

    /// Rolls the message-send site. Returns the fault to apply to this
    /// transmission attempt, if any. Drop, corrupt and delay are
    /// evaluated cumulatively from one roll so a single RNG draw decides
    /// the attempt's fate.
    pub fn msg_fault(&mut self) -> Option<FaultKind> {
        let armed = self.armed(FaultSite::Msg);
        let (op, r) = self.roll(FaultSite::Msg);
        if !armed {
            return None;
        }
        let p = self.plan;
        let kind = if r < p.msg_drop {
            FaultKind::MsgDrop
        } else if r < p.msg_drop + p.msg_corrupt {
            FaultKind::MsgCorrupt
        } else if r < p.msg_drop + p.msg_corrupt + p.msg_delay {
            FaultKind::MsgDelay
        } else {
            return None;
        };
        self.fire(kind, FaultSite::Msg, op);
        Some(kind)
    }

    /// Rolls the ack leg of a delivered message. Returns whether the ack
    /// was lost (forcing a retransmit).
    pub fn ack_dropped(&mut self) -> bool {
        let armed = self.armed(FaultSite::Msg);
        let (op, r) = self.roll(FaultSite::Msg);
        if armed && r < self.plan.ack_drop {
            self.fire(FaultKind::AckDrop, FaultSite::Msg, op);
            true
        } else {
            false
        }
    }

    /// Rolls the IPI site. Returns whether this delivery attempt is lost.
    pub fn ipi_lost(&mut self) -> bool {
        let armed = self.armed(FaultSite::Ipi);
        let (op, r) = self.roll(FaultSite::Ipi);
        if armed && r < self.plan.ipi_loss {
            self.fire(FaultKind::IpiLoss, FaultSite::Ipi, op);
            true
        } else {
            false
        }
    }

    /// Rolls the allocation site. Returns whether this frame allocation
    /// transiently fails.
    pub fn alloc_fails(&mut self) -> bool {
        let armed = self.armed(FaultSite::Alloc);
        let (op, r) = self.roll(FaultSite::Alloc);
        if armed && r < self.plan.alloc_fail {
            self.fire(FaultKind::AllocFail, FaultSite::Alloc, op);
            true
        } else {
            false
        }
    }

    /// One-shot check: does the plan force the global allocator to refuse
    /// *this* grant request? Counts grant requests on a dedicated counter
    /// (no RNG draw), so the one-shot index is independent of how many
    /// transient-failure rolls the Alloc site has taken.
    pub fn galloc_exhausted(&mut self) -> bool {
        let Some(n) = self.plan.galloc_exhaust_at else { return false };
        let op = self.galloc_ops;
        self.galloc_ops += 1;
        if op == n {
            self.fire(FaultKind::GallocExhausted, FaultSite::Alloc, op);
            true
        } else {
            false
        }
    }

    /// Rolls the PTL site. Returns whether this acquisition attempt finds
    /// the lock held by the peer kernel.
    pub fn lock_contended(&mut self) -> bool {
        let armed = self.armed(FaultSite::Lock);
        let (op, r) = self.roll(FaultSite::Lock);
        if armed && r < self.plan.lock_contention {
            self.fire(FaultKind::LockContention, FaultSite::Lock, op);
            true
        } else {
            false
        }
    }

    /// Draws a bit-flip description from the Mem site: the bit index
    /// within a 64-bit word and whether the flip is double-bit.
    /// Callers apply the flip to the backing store and journal it.
    pub fn bit_flip(&mut self) -> (u32, bool) {
        let i = FaultSite::Mem.index();
        let op = self.ops[i];
        self.ops[i] += 1;
        let bit = (self.streams[i].next_u64() % 64) as u32;
        let double = self.streams[i].gen_f64() < self.plan.double_bit;
        let kind = if double { FaultKind::BitFlipDouble } else { FaultKind::BitFlipSingle };
        self.fire(kind, FaultSite::Mem, op);
        (bit, double)
    }

    /// Records `n` recovery attempts (retransmits, retries).
    pub fn note_retried(&mut self, n: u64) {
        self.counters.retried += n;
    }

    /// Records `n` completed recoveries.
    pub fn note_recovered(&mut self, n: u64) {
        self.counters.recovered += n;
    }

    /// Records `n` unrecoverable faults.
    pub fn note_fatal(&mut self, n: u64) {
        self.counters.fatal += n;
    }

    /// Records a ring-backpressure event (injected + recovered in one:
    /// the stall *is* the recovery).
    pub fn note_backpressure(&mut self) {
        let op = self.ops[FaultSite::Msg.index()];
        self.fire(FaultKind::RingBackpressure, FaultSite::Msg, op);
        self.counters.recovered += 1;
    }

    /// One-shot check driven by the watchdog: does the plan fail-stop a
    /// domain at (or before) watchdog tick `tick`? Fires at most once
    /// per run and never after [`FaultInjector::disarm_crash`]. No RNG
    /// is consumed — the crash instant is plan-determined. The event is
    /// logged under [`FaultSite::Ipi`] (the domain-level interconnect)
    /// with the tick as its op index.
    pub fn crash_due(&mut self, tick: u64) -> Option<u8> {
        let (domain, at) = self.plan.crash?;
        if self.crash_fired || self.crash_disarmed || tick < at {
            return None;
        }
        self.crash_fired = true;
        self.fire(FaultKind::DomainCrash, FaultSite::Ipi, at);
        Some(domain)
    }

    /// Disarms the plan's one-shot crash so it cannot re-fire while the
    /// recovered machine replays its post-checkpoint backlog. Host-side
    /// harness state: restoring a checkpoint rewinds `crash_fired`, but
    /// never this flag.
    pub fn disarm_crash(&mut self) {
        self.crash_disarmed = true;
    }

    /// Whether the plan's crash has already fired.
    #[must_use]
    pub fn crash_fired(&self) -> bool {
        self.crash_fired
    }

    /// Serializes the injector — plan, seed, per-site stream positions,
    /// op counters, aggregate counters and the replay log — so a restored
    /// run continues the exact fault schedule. The disarm flag is
    /// deliberately *not* serialized (see [`FaultInjector::disarm_crash`]).
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x46_494e4a); // "FINJ"
        self.plan.save_state(e);
        e.u64(self.seed);
        for s in &self.streams {
            e.u64(s.state());
        }
        for &op in &self.ops {
            e.u64(op);
        }
        e.u64(self.galloc_ops);
        for c in [
            self.counters.injected,
            self.counters.retried,
            self.counters.recovered,
            self.counters.fatal,
        ] {
            e.u64(c);
        }
        e.bool(self.crash_fired);
        e.u64(self.log.len() as u64);
        for ev in &self.log {
            e.u8(fault_kind_code(ev.kind));
            e.u8(ev.site.index() as u8);
            e.u64(ev.op);
        }
    }

    /// Deserializes an injector saved by [`FaultInjector::save_state`].
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        d.tag(0x46_494e4a)?;
        let plan = FaultPlan::load_state(d)?;
        let seed = d.u64()?;
        let mut inj = FaultInjector::new(plan, seed);
        for s in &mut inj.streams {
            *s = SimRng::new(d.u64()?);
        }
        for op in &mut inj.ops {
            *op = d.u64()?;
        }
        inj.galloc_ops = d.u64()?;
        inj.counters.injected = d.u64()?;
        inj.counters.retried = d.u64()?;
        inj.counters.recovered = d.u64()?;
        inj.counters.fatal = d.u64()?;
        inj.crash_fired = d.bool()?;
        let n = d.len()?;
        inj.log.clear();
        for _ in 0..n {
            let kind = fault_kind_from_code(d.u8()?)
                .ok_or(CheckpointError::Malformed("fault kind code"))?;
            let site = *FaultSite::ALL
                .get(d.u8()? as usize)
                .ok_or(CheckpointError::Malformed("fault site code"))?;
            inj.log.push(FaultEvent { kind, site, op: d.u64()? });
        }
        Ok(inj)
    }

    /// Restores serialized state into this injector in place,
    /// preserving the host-side crash-disarm flag (which is never
    /// serialized — see [`FaultInjector::disarm_crash`]).
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn restore_state(
        &mut self,
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let disarmed = self.crash_disarmed;
        *self = FaultInjector::load_state(d)?;
        self.crash_disarmed = disarmed;
        Ok(())
    }
}

fn fault_kind_code(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::MsgDrop => 0,
        FaultKind::MsgCorrupt => 1,
        FaultKind::MsgDelay => 2,
        FaultKind::AckDrop => 3,
        FaultKind::IpiLoss => 4,
        FaultKind::BitFlipSingle => 5,
        FaultKind::BitFlipDouble => 6,
        FaultKind::AllocFail => 7,
        FaultKind::GallocExhausted => 8,
        FaultKind::LockContention => 9,
        FaultKind::RingBackpressure => 10,
        FaultKind::DomainCrash => 11,
    }
}

fn fault_kind_from_code(code: u8) -> Option<FaultKind> {
    Some(match code {
        0 => FaultKind::MsgDrop,
        1 => FaultKind::MsgCorrupt,
        2 => FaultKind::MsgDelay,
        3 => FaultKind::AckDrop,
        4 => FaultKind::IpiLoss,
        5 => FaultKind::BitFlipSingle,
        6 => FaultKind::BitFlipDouble,
        7 => FaultKind::AllocFail,
        8 => FaultKind::GallocExhausted,
        9 => FaultKind::LockContention,
        10 => FaultKind::RingBackpressure,
        11 => FaultKind::DomainCrash,
        _ => return None,
    })
}

/// The shared handle installed into the messaging layer, IPI fabric and
/// OS kernels. The simulator is single-threaded, so `Rc<RefCell<…>>`
/// suffices; borrows are short (one decision per call).
pub type SharedFaultInjector = Rc<RefCell<FaultInjector>>;

/// Builds a [`SharedFaultInjector`] ready to install.
#[must_use]
pub fn shared_injector(plan: FaultPlan, seed: u64) -> SharedFaultInjector {
    Rc::new(RefCell::new(FaultInjector::new(plan, seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        for _ in 0..1000 {
            assert_eq!(inj.msg_fault(), None);
            assert!(!inj.ipi_lost());
            assert!(!inj.alloc_fails());
            assert!(!inj.lock_contended());
            assert!(!inj.galloc_exhausted());
        }
        assert_eq!(inj.counters().injected, 0);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let plan = FaultPlan::none()
            .with_msg_drop(0.1)
            .with_msg_corrupt(0.05)
            .with_msg_delay(0.05, 500)
            .with_ipi_loss(0.2)
            .with_lock_contention(0.3);
        let mut a = FaultInjector::new(plan, 0xfeed);
        let mut b = FaultInjector::new(plan, 0xfeed);
        for i in 0..2000 {
            // Interleave sites differently on purpose: per-site streams
            // make the (site, op) decisions identical regardless.
            assert_eq!(a.msg_fault(), b.msg_fault(), "msg op {i}");
            if i % 3 == 0 {
                assert_eq!(a.ipi_lost(), b.ipi_lost());
            }
            if i % 7 == 0 {
                assert_eq!(a.lock_contended(), b.lock_contended());
            }
        }
        // Catch b's sites up to a's op counts before comparing logs.
        while b.ops_at(FaultSite::Ipi) < a.ops_at(FaultSite::Ipi) {
            b.ipi_lost();
        }
        assert_eq!(a.log(), b.log());
        assert!(a.counters().injected > 0, "plan should have fired");
    }

    #[test]
    fn different_seeds_diverge() {
        let plan = FaultPlan::none().with_msg_drop(0.5);
        let mut a = FaultInjector::new(plan, 1);
        let mut b = FaultInjector::new(plan, 2);
        let diverged = (0..256).any(|_| a.msg_fault() != b.msg_fault());
        assert!(diverged);
    }

    #[test]
    fn window_gates_injection() {
        let plan = FaultPlan::none().with_msg_drop(1.0).with_window(10, 20);
        let mut inj = FaultInjector::new(plan, 3);
        for op in 0..30u64 {
            let fired = inj.msg_fault().is_some();
            assert_eq!(fired, (10..20).contains(&op), "op {op}");
        }
        assert_eq!(inj.counters().injected, 10);
        assert!(inj.log().iter().all(|e| (10..20).contains(&e.op)));
    }

    #[test]
    fn galloc_exhaustion_is_one_shot() {
        let plan = FaultPlan::none().with_galloc_exhaust_at(2);
        let mut inj = FaultInjector::new(plan, 9);
        let fires: Vec<bool> = (0..5).map(|_| inj.galloc_exhausted()).collect();
        assert_eq!(fires, [false, false, true, false, false]);
        assert_eq!(inj.counters().injected, 1);
        assert_eq!(inj.log()[0].kind, FaultKind::GallocExhausted);
    }

    #[test]
    fn cumulative_msg_probabilities_split_kinds() {
        let plan =
            FaultPlan::none().with_msg_drop(0.2).with_msg_corrupt(0.2).with_msg_delay(0.2, 100);
        let mut inj = FaultInjector::new(plan, 0xabcd);
        let mut drops = 0u32;
        let mut corrupts = 0u32;
        let mut delays = 0u32;
        for _ in 0..3000 {
            match inj.msg_fault() {
                Some(FaultKind::MsgDrop) => drops += 1,
                Some(FaultKind::MsgCorrupt) => corrupts += 1,
                Some(FaultKind::MsgDelay) => delays += 1,
                _ => {}
            }
        }
        for (name, n) in [("drops", drops), ("corrupts", corrupts), ("delays", delays)] {
            assert!((400..=800).contains(&n), "{name} = {n}, expected ≈600");
        }
    }

    #[test]
    fn crash_is_one_shot_and_disarmable() {
        let plan = FaultPlan::none().with_domain_crash(1, 5);
        let mut inj = FaultInjector::new(plan, 11);
        assert_eq!(inj.crash_due(4), None);
        assert!(!inj.crash_fired());
        assert_eq!(inj.crash_due(5), Some(1));
        assert!(inj.crash_fired());
        assert_eq!(inj.crash_due(6), None, "crash must be one-shot");
        assert_eq!(inj.log()[0].kind, FaultKind::DomainCrash);

        let mut inj = FaultInjector::new(plan, 11);
        inj.disarm_crash();
        assert_eq!(inj.crash_due(5), None, "disarmed crash must never fire");
        assert!(!plan.is_noop());
    }

    #[test]
    fn injector_state_round_trips_through_checkpoint() {
        let plan = FaultPlan::none()
            .with_msg_drop(0.3)
            .with_ipi_loss(0.2)
            .with_window(0, 1 << 20)
            .with_galloc_exhaust_at(7)
            .with_domain_crash(0, 99);
        let mut a = FaultInjector::new(plan, 0x5eed);
        for _ in 0..500 {
            a.msg_fault();
            a.ipi_lost();
            a.galloc_exhausted();
        }
        a.note_retried(3);
        a.note_recovered(2);

        let mut e = crate::checkpoint::Encoder::new();
        a.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = crate::checkpoint::Decoder::new(&bytes);
        let mut b = FaultInjector::load_state(&mut d).unwrap();
        assert_eq!(d.remaining(), 0);

        assert_eq!(a.log(), b.log());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.plan(), b.plan());
        // The restored streams continue bit-identically.
        for i in 0..200 {
            assert_eq!(a.msg_fault(), b.msg_fault(), "post-restore msg op {i}");
            assert_eq!(a.ipi_lost(), b.ipi_lost(), "post-restore ipi op {i}");
        }
    }

    #[test]
    fn bit_flip_draws_bit_and_severity() {
        let mut plan = FaultPlan::none();
        plan.double_bit = 1.0;
        let mut inj = FaultInjector::new(plan, 4);
        let (bit, double) = inj.bit_flip();
        assert!(bit < 64);
        assert!(double);
        assert_eq!(inj.log()[0].kind, FaultKind::BitFlipDouble);
        plan.double_bit = 0.0;
        let mut inj = FaultInjector::new(plan, 4);
        let (_, double) = inj.bit_flip();
        assert!(!double);
    }
}
