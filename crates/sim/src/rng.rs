//! Deterministic pseudo-random number generation for the simulator.
//!
//! All stochastic components of the reproduction (workload data, IPI
//! jitter, access-pattern perturbation) draw from [`SimRng`], a SplitMix64
//! generator. The simulator itself never consults ambient entropy, so a
//! given seed always reproduces the same experiment bit-for-bit.

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// ```
/// use stramash_sim::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The raw generator state (for checkpointing). Restoring via
    /// [`SimRng::new`] with this value resumes the exact stream.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derives an independent child generator; useful to give each
    /// subsystem its own stream without coupling their consumption.
    #[must_use]
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately normal sample (Irwin–Hall of 12 uniforms), mean 0,
    /// standard deviation 1. Used for measurement-style jitter such as
    /// the per-core-pair IPI latencies of Figures 5/6.
    pub fn gen_normal(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.gen_f64()).sum();
        sum - 6.0
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..64 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_normal_has_sane_moments() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should not be identity");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SimRng::new(42);
        let mut child = parent.split();
        // Child and parent produce different sequences.
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
