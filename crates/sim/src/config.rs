//! Machine and platform configuration.
//!
//! Encodes the paper's configuration tables as typed presets:
//!
//! * **Table 1** — the two reference machine pairs used for validation
//!   (small\_Arm/small\_x86 and big\_Arm/big\_x86),
//! * **Table 2** — the per-core memory-operation latencies used by the
//!   Stramash-QEMU cache plugin,
//! * **Figure 3** — the three hardware memory models (*Separated*,
//!   *Shared*, *Fully Shared*),
//! * **§7.3** — the CXL snoop overheads (Snoop-Invalidate, Snoop-Data,
//!   Back-Invalidate) and the artifact's local/remote memory overhead
//!   constants (360/660, ratio 0.455).

use crate::time::Cycles;
use std::fmt;

/// Memory-operation latencies in cycles, one row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyTable {
    /// L1 hit latency.
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// L3 hit latency.
    pub l3: u32,
    /// Local main-memory latency.
    pub mem: u32,
    /// Remote memory latency over the coherent interconnect (CXL).
    pub remote_mem: u32,
}

impl LatencyTable {
    /// Table 2, Cortex-A72 row (the small\_Arm smartNIC cores). The A72's
    /// L3 latency is unspecified in the paper ("\*"); we use the
    /// ThunderX2's 30 cycles as the nearest Arm data point.
    pub const CORTEX_A72: LatencyTable =
        LatencyTable { l1: 4, l2: 9, l3: 30, mem: 300, remote_mem: 780 };

    /// Table 2, ThunderX2 row (big\_Arm).
    pub const THUNDER_X2: LatencyTable =
        LatencyTable { l1: 4, l2: 9, l3: 30, mem: 300, remote_mem: 620 };

    /// Table 2, Xeon E5-2620 row (small\_x86).
    pub const E5_2620: LatencyTable =
        LatencyTable { l1: 4, l2: 12, l3: 38, mem: 300, remote_mem: 640 };

    /// Table 2, Xeon Gold row (big\_x86).
    pub const XEON_GOLD: LatencyTable =
        LatencyTable { l1: 4, l2: 14, l3: 50, mem: 300, remote_mem: 640 };

    /// Latency of an access that misses every cache and hits local memory.
    #[must_use]
    pub fn local_miss(&self) -> Cycles {
        Cycles::new(self.mem as u64)
    }

    /// Latency of an access that misses every cache and hits remote memory.
    #[must_use]
    pub fn remote_miss(&self) -> Cycles {
        Cycles::new(self.remote_mem as u64)
    }

    /// The artifact's remote-vs-local differential ratio:
    /// `(remote - local) / remote`. For the AE constants (660 remote,
    /// 360 local) this is ≈ 0.455 and is used to derive Fully-Shared
    /// runtimes from Shared/Separated runs (Artifact Appendix A.5).
    #[must_use]
    pub fn remote_differential_ratio(&self) -> f64 {
        (self.remote_mem as f64 - self.mem as f64) / self.remote_mem as f64
    }
}

/// Geometry of one cache level.
///
/// ```
/// use stramash_sim::CacheGeometry;
/// let l3 = CacheGeometry::new(4 << 20, 16, 64);
/// assert_eq!(l3.sets(), 4096);
/// assert_eq!(l3.lines(), 65536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not powers of two or do not divide
    /// evenly into whole sets — the same constraint the QEMU cache plugin
    /// imposes.
    #[must_use]
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        let geo = CacheGeometry { size_bytes, ways, line_bytes };
        assert!(geo.is_valid(), "invalid cache geometry: {geo:?}");
        geo
    }

    /// Whether the geometry is internally consistent: power-of-two line
    /// size, at least one way, whole sets, and a power-of-two set count
    /// (the cache indexes sets with a mask, never a modulo). The total
    /// capacity itself need not be a power of two — e.g. a 48 KB 12-way
    /// L1 has 64 sets and is perfectly valid.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.line_bytes.is_power_of_two()
            && self.ways > 0
            && self.size_bytes.is_multiple_of(self.line_bytes as u64 * self.ways as u64)
            && self.sets().is_power_of_two()
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Total number of lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    /// log2 of the line size, for tag extraction.
    #[must_use]
    pub fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

/// The three-level cache configuration of one domain (§7.3: the extended
/// QEMU cache plugin models split L1 I/D plus unified L2 and L3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache.
    pub l1d: CacheGeometry,
    /// Unified L2.
    pub l2: CacheGeometry,
    /// Unified last-level cache.
    pub l3: CacheGeometry,
}

impl CacheConfig {
    /// The default configuration used by the paper's main experiments:
    /// 32 KB L1I/L1D, 1 MB L2 and a 4 MB L3 per QEMU instance (§9.2.2
    /// states "each QEMU instance has 4 MB of L3 cache").
    #[must_use]
    pub fn paper_default() -> Self {
        CacheConfig {
            l1i: CacheGeometry::new(32 << 10, 8, 64),
            l1d: CacheGeometry::new(32 << 10, 8, 64),
            l2: CacheGeometry::new(1 << 20, 16, 64),
            l3: CacheGeometry::new(4 << 20, 16, 64),
        }
    }

    /// The enlarged-LLC configuration of §9.2.2 (32 MB L3, "similar to
    /// recently released multi-core processors").
    #[must_use]
    pub fn large_llc() -> Self {
        CacheConfig { l3: CacheGeometry::new(32 << 20, 16, 64), ..Self::paper_default() }
    }

    /// Returns a copy with the L3 capacity replaced.
    #[must_use]
    pub fn with_l3_size(mut self, size_bytes: u64) -> Self {
        self.l3 = CacheGeometry::new(size_bytes, self.l3.ways, self.l3.line_bytes);
        self
    }

    /// All levels share one line size; returns it.
    ///
    /// # Panics
    ///
    /// Panics if levels disagree on the line size.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        let lb = self.l1d.line_bytes;
        assert!(
            self.l1i.line_bytes == lb && self.l2.line_bytes == lb && self.l3.line_bytes == lb,
            "cache levels must share one line size"
        );
        lb
    }
}

/// Per-domain machine description (one half of a Table 1 pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainConfig {
    /// Human-readable machine name (e.g. "big_x86 (Xeon Gold 6230R)").
    pub name: String,
    /// Core clock frequency in Hz.
    pub freq_hz: u64,
    /// Memory latency row (Table 2).
    pub latency: LatencyTable,
    /// Cache hierarchy geometry.
    pub cache: CacheConfig,
}

impl DomainConfig {
    /// big\_x86: dual Xeon Gold 6230R at 2.1 GHz (Table 1).
    #[must_use]
    pub fn big_x86() -> Self {
        DomainConfig {
            name: "big_x86 (Xeon Gold 6230R)".to_string(),
            freq_hz: 2_100_000_000,
            latency: LatencyTable::XEON_GOLD,
            cache: CacheConfig::paper_default(),
        }
    }

    /// big\_Arm: dual Cavium ThunderX2 CN9980 at 2.0 GHz (Table 1).
    #[must_use]
    pub fn big_arm() -> Self {
        DomainConfig {
            name: "big_Arm (ThunderX2 CN9980)".to_string(),
            freq_hz: 2_000_000_000,
            latency: LatencyTable::THUNDER_X2,
            cache: CacheConfig::paper_default(),
        }
    }

    /// small\_x86: Xeon E5-2620 v4 at 2.1 GHz (Table 1).
    #[must_use]
    pub fn small_x86() -> Self {
        DomainConfig {
            name: "small_x86 (Xeon E5-2620 v4)".to_string(),
            freq_hz: 2_100_000_000,
            latency: LatencyTable::E5_2620,
            cache: CacheConfig::paper_default(),
        }
    }

    /// small\_Arm: Broadcom Armv8 A72 smartNIC at 3.0 GHz (Table 1).
    #[must_use]
    pub fn small_arm() -> Self {
        DomainConfig {
            name: "small_Arm (Broadcom A72 smartNIC)".to_string(),
            freq_hz: 3_000_000_000,
            latency: LatencyTable::CORTEX_A72,
            cache: CacheConfig::paper_default(),
        }
    }
}

/// The three memory hardware configurations of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareModel {
    /// Each CPU group has its own memory; coherence managed at the LLC,
    /// like NUMA. Remote accesses pay the CXL/interconnect latency.
    Separated,
    /// Each group has private memory plus a cache-coherent shared memory
    /// pool remote to both (like CXL 3.0).
    Shared,
    /// One single shared memory local to all processors (like OpenPiton).
    FullyShared,
}

impl HardwareModel {
    /// All three models, in the order the paper's figures list them.
    pub const ALL: [HardwareModel; 3] =
        [HardwareModel::Separated, HardwareModel::Shared, HardwareModel::FullyShared];
}

impl fmt::Display for HardwareModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareModel::Separated => f.write_str("Separated"),
            HardwareModel::Shared => f.write_str("Shared"),
            HardwareModel::FullyShared => f.write_str("Fully Shared"),
        }
    }
}

/// The coherent interconnect joining the CPU groups. §8.1: "The
/// Separated model could be configured as NUMA or CXL; currently, we use
/// the CXL snooping overhead … but it can be set with the cost of Intel
/// QPI or AMD Infinity Fabric".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interconnect {
    /// CXL 3.0-style coherence (the paper's default).
    Cxl,
    /// Intel QuickPath-style NUMA interconnect.
    Qpi,
    /// AMD Infinity-Fabric-style interconnect.
    InfinityFabric,
}

impl Interconnect {
    /// Snoop costs for this interconnect.
    #[must_use]
    pub fn snoop_costs(self) -> CxlCosts {
        match self {
            Interconnect::Cxl => CxlCosts::paper_default(),
            // On-package NUMA links snoop faster than CXL.
            Interconnect::Qpi => {
                CxlCosts { snoop_invalidate: 50, snoop_data: 45, back_invalidate: 40, onchip_snoop: 25 }
            }
            Interconnect::InfinityFabric => {
                CxlCosts { snoop_invalidate: 60, snoop_data: 55, back_invalidate: 45, onchip_snoop: 25 }
            }
        }
    }

    /// Remote-memory latency in cycles for this interconnect (CXL keeps
    /// each machine's Table 2 value; NUMA links are faster).
    #[must_use]
    pub fn remote_mem_latency(self, table_remote: u32) -> u32 {
        match self {
            Interconnect::Cxl => table_remote,
            Interconnect::Qpi => 450,
            Interconnect::InfinityFabric => 490,
        }
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interconnect::Cxl => f.write_str("CXL"),
            Interconnect::Qpi => f.write_str("QPI"),
            Interconnect::InfinityFabric => f.write_str("Infinity Fabric"),
        }
    }
}

/// CXL coherence message overheads in cycles (§7.3 "CXL Access Overhead
/// Feedback").
///
/// The plugin models the delays of SNOOP messages and responses that keep
/// replicas coherent between the heterogeneous processors' caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CxlCosts {
    /// "Snoop Invalidate": a writer forces every other processor to drop
    /// the line.
    pub snoop_invalidate: u32,
    /// "Snoop Data": a reader demotes a remote Exclusive/Modified copy to
    /// Shared and sources the data.
    pub snoop_data: u32,
    /// "Back-Invalidate Snoop": an inclusive-LLC eviction forces upper
    /// levels (and remote sharers) to drop the line.
    pub back_invalidate: u32,
    /// On-chip snoop between the domains' private L1/L2 when they share
    /// one LLC (the *Fully Shared* model's single shared cache, §8.1) —
    /// far cheaper than a CXL snoop.
    pub onchip_snoop: u32,
}

impl CxlCosts {
    /// Default snoop costs, on the order of a fraction of the
    /// local-vs-remote memory differential reported for CXL [Sharma,
    /// IEEE Micro 2023], which the paper cites for its latencies.
    #[must_use]
    pub fn paper_default() -> Self {
        CxlCosts { snoop_invalidate: 90, snoop_data: 80, back_invalidate: 60, onchip_snoop: 25 }
    }
}

/// Full platform configuration for one simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-domain machine descriptions, indexed by [`crate::DomainId`].
    pub domains: [DomainConfig; crate::NUM_DOMAINS],
    /// The Figure 3 hardware memory model to simulate.
    pub hw_model: HardwareModel,
    /// Cross-ISA IPI latency (defaults to the measured 2 µs of §9.1.1).
    pub ipi_latency: Cycles,
    /// TCP message round-trip latency for the Popcorn-TCP baseline
    /// (defaults to the 75 µs of §8.2).
    pub tcp_rtt: Cycles,
    /// CXL snoop overheads.
    pub cxl: CxlCosts,
}

impl SimConfig {
    /// The big machine pair (Xeon Gold + ThunderX2) — the configuration
    /// of the paper's main evaluation (§8).
    #[must_use]
    pub fn big_pair() -> Self {
        let x86 = DomainConfig::big_x86();
        let ipi = Cycles::from_micros(2.0, x86.freq_hz);
        let tcp = Cycles::from_micros(75.0, x86.freq_hz);
        SimConfig {
            domains: [x86, DomainConfig::big_arm()],
            hw_model: HardwareModel::Shared,
            ipi_latency: ipi,
            tcp_rtt: tcp,
            cxl: CxlCosts::paper_default(),
        }
    }

    /// The small machine pair (E5-2620 + A72 smartNIC) used for icount
    /// validation (§9.1.2).
    #[must_use]
    pub fn small_pair() -> Self {
        let x86 = DomainConfig::small_x86();
        let ipi = Cycles::from_micros(2.0, x86.freq_hz);
        let tcp = Cycles::from_micros(75.0, x86.freq_hz);
        SimConfig {
            domains: [x86, DomainConfig::small_arm()],
            hw_model: HardwareModel::Shared,
            ipi_latency: ipi,
            tcp_rtt: tcp,
            cxl: CxlCosts::paper_default(),
        }
    }

    /// Returns a copy with a different hardware model.
    #[must_use]
    pub fn with_hw_model(mut self, model: HardwareModel) -> Self {
        self.hw_model = model;
        self
    }

    /// Reconfigures the coherent interconnect (§8.1's NUMA-vs-CXL
    /// option): swaps the snoop costs and remote-memory latencies.
    #[must_use]
    pub fn with_interconnect(mut self, ic: Interconnect) -> Self {
        self.cxl = ic.snoop_costs();
        for d in &mut self.domains {
            d.latency.remote_mem = ic.remote_mem_latency(d.latency.remote_mem);
        }
        self
    }

    /// Returns a copy with both domains' L3 capacity replaced (used by
    /// the §9.2.2 cache-size sensitivity study).
    #[must_use]
    pub fn with_l3_size(mut self, size_bytes: u64) -> Self {
        for d in &mut self.domains {
            d.cache = d.cache.with_l3_size(size_bytes);
        }
        self
    }

    /// The configuration of `domain`.
    #[must_use]
    pub fn domain(&self, domain: crate::DomainId) -> &DomainConfig {
        &self.domains[domain.index()]
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found: invalid
    /// cache geometry, mismatched line sizes, or a zero frequency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for d in &self.domains {
            if d.freq_hz == 0 {
                return Err(ConfigError::ZeroFrequency(d.name.clone()));
            }
            for (lvl, geo) in [
                ("L1I", d.cache.l1i),
                ("L1D", d.cache.l1d),
                ("L2", d.cache.l2),
                ("L3", d.cache.l3),
            ] {
                // A geometry that is sound except for its set count gets
                // the specific error: the caches index sets with a
                // power-of-two mask, so a non-power-of-two count would
                // otherwise silently demand a modulo slow path.
                if geo.line_bytes.is_power_of_two()
                    && geo.ways > 0
                    && geo.size_bytes.is_multiple_of(geo.line_bytes as u64 * geo.ways as u64)
                    && !geo.sets().is_power_of_two()
                {
                    return Err(ConfigError::NonPowerOfTwoSets {
                        machine: d.name.clone(),
                        level: lvl,
                        sets: geo.sets(),
                    });
                }
                if !geo.is_valid() {
                    return Err(ConfigError::InvalidCache { machine: d.name.clone(), level: lvl });
                }
            }
            let lb = d.cache.l1d.line_bytes;
            if d.cache.l1i.line_bytes != lb
                || d.cache.l2.line_bytes != lb
                || d.cache.l3.line_bytes != lb
            {
                return Err(ConfigError::MismatchedLineSize(d.name.clone()));
            }
        }
        if self.domains[0].cache.line_bytes() != self.domains[1].cache.line_bytes() {
            return Err(ConfigError::MismatchedLineSize("cross-domain".to_string()));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::big_pair()
    }
}

/// Error returned by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A domain's clock frequency is zero.
    ZeroFrequency(String),
    /// A cache level has an inconsistent geometry.
    InvalidCache {
        /// The machine whose cache is invalid.
        machine: String,
        /// Which level is invalid.
        level: &'static str,
    },
    /// Cache levels or domains disagree on the line size.
    MismatchedLineSize(String),
    /// A cache level has a non-power-of-two number of sets, which the
    /// mask-indexed set lookup cannot support.
    NonPowerOfTwoSets {
        /// The machine whose cache is invalid.
        machine: String,
        /// Which level is invalid.
        level: &'static str,
        /// The offending set count.
        sets: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroFrequency(m) => write!(f, "machine {m} has zero clock frequency"),
            ConfigError::InvalidCache { machine, level } => {
                write!(f, "machine {machine} has an invalid {level} geometry")
            }
            ConfigError::MismatchedLineSize(m) => {
                write!(f, "cache line sizes disagree for {m}")
            }
            ConfigError::NonPowerOfTwoSets { machine, level, sets } => {
                write!(
                    f,
                    "machine {machine} {level} has {sets} sets; set counts must be a power of two"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainId;

    #[test]
    fn table2_rows_match_paper() {
        assert_eq!(LatencyTable::XEON_GOLD.l2, 14);
        assert_eq!(LatencyTable::XEON_GOLD.l3, 50);
        assert_eq!(LatencyTable::THUNDER_X2.remote_mem, 620);
        assert_eq!(LatencyTable::E5_2620.l2, 12);
        assert_eq!(LatencyTable::CORTEX_A72.remote_mem, 780);
        for t in [
            LatencyTable::XEON_GOLD,
            LatencyTable::THUNDER_X2,
            LatencyTable::E5_2620,
            LatencyTable::CORTEX_A72,
        ] {
            assert_eq!(t.l1, 4);
            assert_eq!(t.mem, 300);
        }
    }

    #[test]
    fn artifact_remote_ratio() {
        // The artifact's plugin constants: local 360, remote 660 → 0.455.
        let t = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 360, remote_mem: 660 };
        assert!((t.remote_differential_ratio() - 0.4545).abs() < 1e-3);
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(32 << 10, 8, 64);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.line_shift(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn cache_geometry_rejects_non_power_of_two() {
        let _ = CacheGeometry::new(3000, 8, 64);
    }

    #[test]
    fn paper_default_caches() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.l3.size_bytes, 4 << 20);
        assert_eq!(CacheConfig::large_llc().l3.size_bytes, 32 << 20);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn with_l3_size_changes_only_l3() {
        let c = CacheConfig::paper_default().with_l3_size(8 << 20);
        assert_eq!(c.l3.size_bytes, 8 << 20);
        assert_eq!(c.l2.size_bytes, 1 << 20);
    }

    #[test]
    fn presets_validate() {
        assert!(SimConfig::big_pair().validate().is_ok());
        assert!(SimConfig::small_pair().validate().is_ok());
    }

    #[test]
    fn big_pair_latencies_and_ipi() {
        let cfg = SimConfig::big_pair();
        assert_eq!(cfg.domain(DomainId::X86).latency, LatencyTable::XEON_GOLD);
        assert_eq!(cfg.domain(DomainId::ARM).latency, LatencyTable::THUNDER_X2);
        assert_eq!(cfg.ipi_latency.raw(), 4200); // 2 µs at 2.1 GHz
        assert_eq!(cfg.tcp_rtt.raw(), 157_500); // 75 µs at 2.1 GHz
    }

    #[test]
    fn validate_rejects_zero_frequency() {
        let mut cfg = SimConfig::big_pair();
        cfg.domains[0].freq_hz = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroFrequency(_))));
    }

    #[test]
    fn validate_rejects_mismatched_line_size() {
        let mut cfg = SimConfig::big_pair();
        cfg.domains[1].cache.l2 = CacheGeometry::new(1 << 20, 16, 128);
        assert!(matches!(cfg.validate(), Err(ConfigError::MismatchedLineSize(_))));
    }

    #[test]
    fn interconnect_presets() {
        // §8.1: the Separated model's coherence cost is configurable.
        let cxl = SimConfig::big_pair();
        let qpi = SimConfig::big_pair().with_interconnect(Interconnect::Qpi);
        assert!(qpi.cxl.snoop_invalidate < cxl.cxl.snoop_invalidate);
        assert!(
            qpi.domain(DomainId::X86).latency.remote_mem
                < cxl.domain(DomainId::X86).latency.remote_mem
        );
        let fabric = SimConfig::big_pair().with_interconnect(Interconnect::InfinityFabric);
        assert!(fabric.validate().is_ok());
        assert_eq!(Interconnect::Cxl.to_string(), "CXL");
        assert_eq!(Interconnect::Qpi.to_string(), "QPI");
        assert_eq!(Interconnect::InfinityFabric.to_string(), "Infinity Fabric");
        // CXL keeps Table 2's remote latencies untouched.
        assert_eq!(
            SimConfig::big_pair().with_interconnect(Interconnect::Cxl),
            SimConfig::big_pair()
        );
    }

    #[test]
    fn hardware_model_display() {
        assert_eq!(HardwareModel::Separated.to_string(), "Separated");
        assert_eq!(HardwareModel::FullyShared.to_string(), "Fully Shared");
        assert_eq!(HardwareModel::ALL.len(), 3);
    }

    #[test]
    fn config_error_display_nonempty() {
        let e = ConfigError::InvalidCache { machine: "m".into(), level: "L2" };
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn validate_rejects_non_power_of_two_sets_with_typed_error() {
        let mut cfg = SimConfig::big_pair();
        // 192 KB, 2-way, 64 B lines → 1536 sets: every field is sound
        // except the set count, so the specific error must fire.
        cfg.domains[0].cache.l2 = CacheGeometry { size_bytes: 192 << 10, ways: 2, line_bytes: 64 };
        match cfg.validate() {
            Err(ConfigError::NonPowerOfTwoSets { level, sets, .. }) => {
                assert_eq!(level, "L2");
                assert_eq!(sets, 1536);
            }
            other => panic!("expected NonPowerOfTwoSets, got {other:?}"),
        }
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("1536"), "error must name the offending count: {msg}");
    }

    #[test]
    fn non_power_of_two_capacity_with_power_of_two_sets_is_valid() {
        // A 48 KB 12-way L1 (64 sets) — real Golden Cove geometry.
        let g = CacheGeometry::new(48 << 10, 12, 64);
        assert_eq!(g.sets(), 64);
        let mut cfg = SimConfig::big_pair();
        cfg.domains[0].cache.l1d = g;
        assert!(cfg.validate().is_ok());
    }
}
