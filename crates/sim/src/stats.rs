//! Per-domain simulation statistics.
//!
//! [`DomainStats`] mirrors the counter block that the Stramash artifact's
//! cache plugin prints at the end of a run (Artifact Appendix A.5
//! "Example output"): per-level cache hit counts and rates, IPI count,
//! local/remote/remote-shared memory hits, instruction and memory-access
//! counts, and the derived runtime.

use crate::config::LatencyTable;
use crate::time::Cycles;
use std::fmt;

/// Errors from statistics derivations on degenerate inputs.
///
/// These were previously *silently clamped* (`saturating_sub` to zero),
/// which produced a plausible-looking but meaningless Fully-Shared
/// estimate; the typed error makes the bad input visible instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The latency table claims remote DRAM is not slower than local
    /// DRAM, so the remote-vs-local differential is undefined.
    InvertedLatencyTable {
        /// Local DRAM latency.
        mem: u32,
        /// Remote DRAM latency (≤ `mem`, which is the defect).
        remote_mem: u32,
    },
    /// The subtracted term exceeds the measured runtime — the counters
    /// and the runtime cannot belong to the same run.
    EstimateUnderflow {
        /// The measured runtime.
        runtime: u64,
        /// The remote-hit adjustment that exceeds it.
        adjustment: u64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvertedLatencyTable { mem, remote_mem } => write!(
                f,
                "latency table is inverted: remote_mem {remote_mem} is not above mem {mem}"
            ),
            StatsError::EstimateUnderflow { runtime, adjustment } => write!(
                f,
                "fully-shared adjustment {adjustment} exceeds runtime {runtime}"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

/// The artifact's Fully-Shared runtime derivation (Appendix A.5):
///
/// ```text
/// Fully Shared Runtime = Final Runtime − Remote Memory Hits × (remote − local)
/// ```
///
/// With the AE plugin constants (remote 660, local 360) the subtracted
/// term is `remote_hits × 0.455 × remote`; expressed against a
/// [`LatencyTable`] it is simply the remote-vs-local differential per
/// remote DRAM hit.
///
/// # Errors
///
/// [`StatsError::InvertedLatencyTable`] when `remote_mem ≤ mem` with
/// remote hits present (the differential would be negative), and
/// [`StatsError::EstimateUnderflow`] when the adjustment exceeds the
/// runtime — both cases previously clamped silently to `Cycles::ZERO`.
pub fn fully_shared_estimate(
    runtime: Cycles,
    remote_hits: u64,
    table: &LatencyTable,
) -> Result<Cycles, StatsError> {
    if remote_hits == 0 {
        return Ok(runtime);
    }
    if table.remote_mem <= table.mem {
        return Err(StatsError::InvertedLatencyTable {
            mem: table.mem,
            remote_mem: table.remote_mem,
        });
    }
    let differential = u64::from(table.remote_mem - table.mem);
    let adjustment = remote_hits.checked_mul(differential).ok_or(
        StatsError::EstimateUnderflow { runtime: runtime.raw(), adjustment: u64::MAX },
    )?;
    let estimate = runtime.raw().checked_sub(adjustment).ok_or(
        StatsError::EstimateUnderflow { runtime: runtime.raw(), adjustment },
    )?;
    Ok(Cycles::new(estimate))
}

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that reached this level.
    pub accesses: u64,
    /// Accesses that hit at this level.
    pub hits: u64,
}

impl LevelStats {
    /// Hit rate in `[0, 1]`; zero when the level was never accessed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Records one access, a hit when `hit` is true.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        self.hits += u64::from(hit);
    }
}

/// All counters for one ISA domain, in the artifact's output format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// L1 data cache.
    pub l1d: LevelStats,
    /// Unified L2.
    pub l2: LevelStats,
    /// Unified L3 / LLC.
    pub l3: LevelStats,
    /// Inter-processor interrupts sent by this domain.
    pub ipi: u64,
    /// Cache misses satisfied by this domain's local memory.
    pub local_mem_hits: u64,
    /// Cache misses satisfied by the *other* domain's memory (remote).
    pub remote_mem_hits: u64,
    /// Cache misses satisfied by the shared memory pool (remote shared).
    pub remote_shared_mem_hits: u64,
    /// Cache misses satisfied by a snoop from the other domain's cache.
    pub snoop_data_hits: u64,
    /// Snoop invalidations this domain *caused* in the other domain.
    pub snoop_invalidations: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Memory accesses issued.
    pub mem_accesses: u64,
    /// Software-TLB lookups that hit a cached translation.
    pub tlb_hits: u64,
    /// Software-TLB lookups that missed and took a page-table walk.
    pub tlb_misses: u64,
    /// Faults injected while this domain was the acting side.
    pub faults_injected: u64,
    /// Recovery attempts (retransmits, lock re-acquisitions, allocation
    /// retries) this domain performed.
    pub faults_retried: u64,
    /// Injected faults this domain fully recovered from.
    pub faults_recovered: u64,
    /// Injected faults that were unrecoverable (e.g. double-bit flips).
    pub faults_fatal: u64,
    /// Accumulated runtime (icount + memory feedback).
    pub runtime: Cycles,
}

impl DomainStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        DomainStats::default()
    }

    /// Combined L1 hit rate over instruction and data accesses.
    #[must_use]
    pub fn l1_combined_hit_rate(&self) -> f64 {
        let acc = self.l1i.accesses + self.l1d.accesses;
        if acc == 0 {
            0.0
        } else {
            (self.l1i.hits + self.l1d.hits) as f64 / acc as f64
        }
    }

    /// Total misses that left the cache hierarchy.
    #[must_use]
    pub fn memory_hits(&self) -> u64 {
        self.local_mem_hits + self.remote_mem_hits + self.remote_shared_mem_hits
    }

    /// Software-TLB hit rate in `[0, 1]`; zero before any lookup.
    #[must_use]
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }

    /// Adds another domain's counters into this one (for aggregation).
    pub fn merge(&mut self, other: &DomainStats) {
        self.l1i.accesses += other.l1i.accesses;
        self.l1i.hits += other.l1i.hits;
        self.l1d.accesses += other.l1d.accesses;
        self.l1d.hits += other.l1d.hits;
        self.l2.accesses += other.l2.accesses;
        self.l2.hits += other.l2.hits;
        self.l3.accesses += other.l3.accesses;
        self.l3.hits += other.l3.hits;
        self.ipi += other.ipi;
        self.local_mem_hits += other.local_mem_hits;
        self.remote_mem_hits += other.remote_mem_hits;
        self.remote_shared_mem_hits += other.remote_shared_mem_hits;
        self.snoop_data_hits += other.snoop_data_hits;
        self.snoop_invalidations += other.snoop_invalidations;
        self.instructions += other.instructions;
        self.mem_accesses += other.mem_accesses;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.faults_injected += other.faults_injected;
        self.faults_retried += other.faults_retried;
        self.faults_recovered += other.faults_recovered;
        self.faults_fatal += other.faults_fatal;
        self.runtime += other.runtime;
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = DomainStats::default();
    }

    /// Serializes every counter into a checkpoint section.
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x4453_5441); // "DSTA"
        for level in [&self.l1i, &self.l1d, &self.l2, &self.l3] {
            e.u64(level.accesses);
            e.u64(level.hits);
        }
        for v in [
            self.ipi,
            self.local_mem_hits,
            self.remote_mem_hits,
            self.remote_shared_mem_hits,
            self.snoop_data_hits,
            self.snoop_invalidations,
            self.instructions,
            self.mem_accesses,
            self.tlb_hits,
            self.tlb_misses,
            self.faults_injected,
            self.faults_retried,
            self.faults_recovered,
            self.faults_fatal,
            self.runtime.raw(),
        ] {
            e.u64(v);
        }
    }

    /// Restores every counter from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        d.tag(0x4453_5441)?;
        for level in [&mut self.l1i, &mut self.l1d, &mut self.l2, &mut self.l3] {
            level.accesses = d.u64()?;
            level.hits = d.u64()?;
        }
        self.ipi = d.u64()?;
        self.local_mem_hits = d.u64()?;
        self.remote_mem_hits = d.u64()?;
        self.remote_shared_mem_hits = d.u64()?;
        self.snoop_data_hits = d.u64()?;
        self.snoop_invalidations = d.u64()?;
        self.instructions = d.u64()?;
        self.mem_accesses = d.u64()?;
        self.tlb_hits = d.u64()?;
        self.tlb_misses = d.u64()?;
        self.faults_injected = d.u64()?;
        self.faults_retried = d.u64()?;
        self.faults_recovered = d.u64()?;
        self.faults_fatal = d.u64()?;
        self.runtime = Cycles::new(d.u64()?);
        Ok(())
    }

    /// Renders the artifact-style report block.
    #[must_use]
    pub fn report(&self, label: &str) -> String {
        let mut s = String::new();
        use fmt::Write as _;
        let _ = writeln!(s, "{label}:");
        let _ = writeln!(s, "L1 Cache Hit Rate: {:.2}%", self.l1_combined_hit_rate() * 100.0);
        let _ = writeln!(s, "L2 Cache Hit Rate: {:.2}%", self.l2.hit_rate() * 100.0);
        let _ = writeln!(s, "L3 Cache Hit Rate: {:.2}%", self.l3.hit_rate() * 100.0);
        let _ = writeln!(s, "L1 Cache Hits: {}", self.l1i.hits + self.l1d.hits);
        let _ = writeln!(s, "L2 Cache Hits: {}", self.l2.hits);
        let _ = writeln!(s, "L3 Cache Hits: {}", self.l3.hits);
        let _ = writeln!(s, "L1 Cache Accesses: {}", self.l1i.accesses + self.l1d.accesses);
        let _ = writeln!(s, "L2 Cache Accesses: {}", self.l2.accesses);
        let _ = writeln!(s, "L3 Cache Accesses: {}", self.l3.accesses);
        let _ = writeln!(s, "IPI: {}", self.ipi);
        let _ = writeln!(s, "Local Memory Hits: {}", self.local_mem_hits);
        let _ = writeln!(s, "Remote Memory Hits: {}", self.remote_mem_hits);
        let _ = writeln!(s, "Remote Shared Memory Hits: {}", self.remote_shared_mem_hits);
        let _ = writeln!(s, "Number of Instructions: {}", self.instructions);
        let _ = writeln!(s, "Number of mem_access: {}", self.mem_accesses);
        let _ = writeln!(s, "TLB Hits: {}", self.tlb_hits);
        let _ = writeln!(s, "TLB Misses: {}", self.tlb_misses);
        let _ = writeln!(s, "TLB Hit Rate: {:.2}%", self.tlb_hit_rate() * 100.0);
        let _ = writeln!(s, "Faults Injected: {}", self.faults_injected);
        let _ = writeln!(s, "Faults Retried: {}", self.faults_retried);
        let _ = writeln!(s, "Faults Recovered: {}", self.faults_recovered);
        let _ = writeln!(s, "Faults Fatal: {}", self.faults_fatal);
        let _ = writeln!(s, "Runtime: {}", self.runtime.raw());
        s
    }
}

impl fmt::Display for DomainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report("domain"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ae_fully_shared_derivation() {
        // 1000 remote hits on the Xeon Gold row: each saves 640−300
        // cycles under the Fully-Shared model.
        let est = fully_shared_estimate(
            Cycles::new(1_000_000),
            1000,
            &LatencyTable::XEON_GOLD,
        )
        .unwrap();
        assert_eq!(est.raw(), 1_000_000 - 1000 * 340);
        // No remote hits: the runtime passes through untouched, even
        // with a degenerate table (nothing is subtracted).
        let flat = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 360, remote_mem: 360 };
        assert_eq!(
            fully_shared_estimate(Cycles::new(42), 0, &flat).unwrap(),
            Cycles::new(42)
        );
        // The AE constants give the paper's 0.455 ratio.
        let ae = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 360, remote_mem: 660 };
        assert!((ae.remote_differential_ratio() - 0.455).abs() < 0.01);
    }

    #[test]
    fn fully_shared_rejects_degenerate_inputs() {
        // Underflow: 1000 remote hits cannot fit in a 10-cycle runtime.
        // This used to clamp silently to Cycles::ZERO.
        assert_eq!(
            fully_shared_estimate(Cycles::new(10), 1000, &LatencyTable::XEON_GOLD),
            Err(StatsError::EstimateUnderflow { runtime: 10, adjustment: 1000 * 340 })
        );
        // Inverted table: remote DRAM "faster" than local DRAM. This
        // used to clamp the differential to 0 and return the runtime.
        let inverted = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 660, remote_mem: 360 };
        let err =
            fully_shared_estimate(Cycles::new(1_000_000), 5, &inverted).unwrap_err();
        assert_eq!(err, StatsError::InvertedLatencyTable { mem: 660, remote_mem: 360 });
        // Equal latencies are just as undefined as inverted ones.
        let flat = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 360, remote_mem: 360 };
        assert!(fully_shared_estimate(Cycles::new(1_000_000), 5, &flat).is_err());
        // Multiplication overflow is reported, not wrapped.
        let wide = LatencyTable { l1: 4, l2: 14, l3: 50, mem: 0, remote_mem: u32::MAX };
        assert!(matches!(
            fully_shared_estimate(Cycles::new(u64::MAX), u64::MAX, &wide),
            Err(StatsError::EstimateUnderflow { .. })
        ));
        // Errors render for diagnostics.
        assert!(!err.to_string().is_empty());
        assert!(!StatsError::EstimateUnderflow { runtime: 1, adjustment: 2 }
            .to_string()
            .is_empty());
    }

    #[test]
    fn level_hit_rate() {
        let mut l = LevelStats::default();
        assert_eq!(l.hit_rate(), 0.0);
        l.record(true);
        l.record(true);
        l.record(false);
        assert!((l.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.accesses, 3);
        assert_eq!(l.hits, 2);
    }

    #[test]
    fn combined_l1_rate_weighs_both_caches() {
        let mut s = DomainStats::new();
        s.l1i = LevelStats { accesses: 100, hits: 100 };
        s.l1d = LevelStats { accesses: 100, hits: 0 };
        assert!((s.l1_combined_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_hits_sums_all_classes() {
        let s = DomainStats {
            local_mem_hits: 3,
            remote_mem_hits: 5,
            remote_shared_mem_hits: 7,
            ..DomainStats::default()
        };
        assert_eq!(s.memory_hits(), 15);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = DomainStats { ipi: 1, instructions: 10, ..DomainStats::default() };
        let b = DomainStats {
            ipi: 2,
            instructions: 5,
            runtime: Cycles::new(100),
            ..DomainStats::default()
        };
        a.merge(&b);
        assert_eq!(a.ipi, 3);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.runtime.raw(), 100);
    }

    #[test]
    fn report_contains_artifact_fields() {
        let s = DomainStats { remote_mem_hits: 42, ..DomainStats::default() };
        let r = s.report("x86");
        assert!(r.contains("Remote Memory Hits: 42"));
        assert!(r.contains("TLB Hits: 0"));
        assert!(r.contains("TLB Hit Rate:"));
        assert!(r.contains("L3 Cache Hit Rate:"));
        assert!(r.contains("Faults Injected: 0"));
        assert!(r.contains("Faults Recovered: 0"));
        assert!(r.contains("Runtime:"));
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = DomainStats { ipi: 9, ..DomainStats::default() };
        s.reset();
        assert_eq!(s, DomainStats::default());
    }
}
