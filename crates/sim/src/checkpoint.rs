//! Versioned binary checkpoint encoding.
//!
//! ROADMAP item 5 names checkpoint/restore as the enabler for affordable
//! large-scale sweeps, and gem5's reproducibility methodology treats it
//! as the baseline for standardized experiments. This module is the
//! wire format those snapshots use: a hand-rolled, dependency-free
//! [`Encoder`]/[`Decoder`] pair with a magic header, a format version,
//! per-section tags and a trailing CRC-32, so a restored artifact either
//! reproduces the saved machine bit-for-bit or fails loudly with a typed
//! [`CheckpointError`].
//!
//! # Design rules
//!
//! * **Only mutable state is serialized.** Restore builds a fresh system
//!   from the same [`SimConfig`](crate::SimConfig) and then overwrites
//!   the mutable fields; config-derived structure (cache geometry,
//!   memory layout, latencies, ring placement) is never written, which
//!   keeps artifacts small and makes config drift detectable via the
//!   header's config digest.
//! * **Deterministic byte streams.** Unordered containers are written in
//!   sorted key order, so checkpointing the same machine state twice
//!   yields byte-identical artifacts.
//! * **Tagged sections.** Every `save_state` writes a section tag first;
//!   a mismatched tag on load points at the exact layer that drifted.

use std::fmt;

/// Artifact magic: `STRM`.
pub const MAGIC: u32 = 0x5354_524d;

/// Current artifact format version.
pub const VERSION: u32 = 1;

/// Errors raised while decoding a checkpoint artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ended before the expected data.
    Truncated,
    /// The artifact does not start with [`MAGIC`].
    BadMagic,
    /// The artifact was written by an unsupported format version.
    BadVersion(u32),
    /// A section tag did not match the expected layer.
    BadTag {
        /// The tag the loading layer expected.
        expected: u32,
        /// The tag actually found in the stream.
        found: u32,
    },
    /// The trailing CRC-32 did not match the payload.
    BadCrc,
    /// The artifact was taken from a different `SystemKind`.
    KindMismatch,
    /// The artifact was taken under a different `SimConfig`.
    ConfigMismatch,
    /// A field value was structurally impossible.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => f.write_str("checkpoint truncated"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint artifact (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadTag { expected, found } => {
                write!(f, "section tag mismatch: expected {expected:#x}, found {found:#x}")
            }
            CheckpointError::BadCrc => f.write_str("checkpoint CRC mismatch (corrupt artifact)"),
            CheckpointError::KindMismatch => {
                f.write_str("checkpoint was taken from a different system kind")
            }
            CheckpointError::ConfigMismatch => {
                f.write_str("checkpoint was taken under a different configuration")
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// CRC-32 (IEEE 802.3 polynomial, bitwise — the artifact is written once
/// per checkpoint, so table-free simplicity beats speed here).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian binary writer for checkpoint artifacts.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a section tag (identical on the wire to a `u32`, but a
    /// distinct method keeps call sites self-documenting).
    pub fn tag(&mut self, tag: u32) {
        self.u32(tag);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a CRC-32 of everything written so far and returns the
    /// finished artifact bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.u32(crc);
        self.buf
    }

    /// Returns the raw bytes without a trailing CRC (for nesting one
    /// encoded blob inside another artifact).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian binary reader over a checkpoint artifact.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps raw bytes (no CRC verification; see
    /// [`Decoder::new_verified`]).
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Verifies the trailing CRC-32 and wraps the payload before it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] or [`CheckpointError::BadCrc`].
    pub fn new_verified(buf: &'a [u8]) -> Result<Self, CheckpointError> {
        if buf.len() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(payload) != stored {
            return Err(CheckpointError::BadCrc);
        }
        Ok(Decoder { buf: payload, pos: 0 })
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads and checks a section tag.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadTag`] when the stream holds a different tag.
    pub fn tag(&mut self, expected: u32) -> Result<(), CheckpointError> {
        let found = self.u32()?;
        if found != expected {
            return Err(CheckpointError::BadTag { expected, found });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// Truncation, or [`CheckpointError::Malformed`] on a non-0/1 byte.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool byte")),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length as `usize`, guarding against absurd prefixes.
    ///
    /// # Errors
    ///
    /// Truncation (a length that cannot possibly fit the remaining
    /// buffer is reported as truncation).
    #[allow(clippy::len_without_is_empty)] // not a container: reads a length prefix
    pub fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        // Every element is at least one byte; anything larger than the
        // remaining buffer is a lie.
        if n > self.remaining() as u64 {
            return Err(CheckpointError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Truncation or malformed UTF-8.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CheckpointError::Malformed("utf-8 string"))
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`].
    pub fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.u64()?;
        if n > (self.remaining() / 8) as u64 {
            return Err(CheckpointError::Truncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads an `Option<u64>`.
    ///
    /// # Errors
    ///
    /// Truncation or a malformed presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }
}

/// FNV-1a over a debug rendering — the config digest stored in artifact
/// headers. Not cryptographic; it only needs to notice config drift.
#[must_use]
pub fn digest_str(s: &str) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        acc = (acc ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_scalar() {
        let mut e = Encoder::new();
        e.tag(0xcafe);
        e.u8(7);
        e.bool(true);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.f64(-1234.5678);
        e.bytes(b"hello");
        e.str("wörld");
        e.u64s(&[1, 2, 3]);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        let bytes = e.finish();

        let mut d = Decoder::new_verified(&bytes).unwrap();
        d.tag(0xcafe).unwrap();
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -1234.5678);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.str().unwrap(), "wörld");
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn crc_detects_corruption() {
        let mut e = Encoder::new();
        e.u64(42);
        let mut bytes = e.finish();
        bytes[3] ^= 0x40;
        assert_eq!(Decoder::new_verified(&bytes).unwrap_err(), CheckpointError::BadCrc);
    }

    #[test]
    fn truncation_and_tag_errors_are_typed() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.u64().unwrap_err(), CheckpointError::Truncated);

        let mut e = Encoder::new();
        e.tag(0x1111);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(
            d.tag(0x2222).unwrap_err(),
            CheckpointError::BadTag { expected: 0x2222, found: 0x1111 }
        );
    }

    #[test]
    fn absurd_length_prefix_is_truncation_not_oom() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // length prefix promising 2^64 elements
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.bytes().unwrap_err(), CheckpointError::Truncated);
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u64s().unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest_str("abc"), digest_str("abc"));
        assert_ne!(digest_str("abc"), digest_str("abd"));
    }
}
