//! Deterministic event tracing and the metrics registry.
//!
//! The paper's whole evaluation (Figures 5–14, Tables 2–4) is an
//! exercise in *observing* the fused stack; end-of-run [`DomainStats`]
//! totals cannot show *when* or *why* cycles were spent. This module is
//! the observability layer: a bounded, preallocated ring of typed
//! [`TraceEvent`]s emitted by every layer of the stack (cache, MESI,
//! TLB, messaging, IPI, faults, futexes, migration, DSM) plus a
//! [`MetricsRegistry`] of named counters and log-scaled latency
//! histograms.
//!
//! # Determinism contract
//!
//! Tracing is *passive*: recording an event never charges a cycle,
//! never consumes RNG, and never changes simulated behaviour — the
//! golden-stats fingerprints are byte-identical with tracing on or off.
//! Events carry simulated [`Cycles`] costs (never host time), so:
//!
//! * two runs of the same seed produce **identical full event
//!   streams**;
//! * the host-side cache fast paths produce **identical full event
//!   streams** to the reference slow paths;
//! * the batched client pipeline produces **identical per-class event
//!   streams** ([`EventClass`]) to scalar ops for every class except
//!   [`EventClass::Accounting`] — batching legitimately coalesces
//!   `charge`/`retire` bookkeeping calls (same totals, coarser grain),
//!   which is host-side granularity, not simulated behaviour.
//!
//! The ring is fixed-capacity and allocation-free in steady state: once
//! full it overwrites the oldest events and counts them in
//! [`Tracer::dropped`].

use crate::stats::DomainStats;
use crate::time::{Cycles, DomainId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Cache level that satisfied an access (mirrors the memory system's
/// hit level without depending on the `mem` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Satisfied by the L1 (instruction or data).
    L1,
    /// Satisfied by the unified L2.
    L2,
    /// Satisfied by the LLC.
    L3,
    /// Went to DRAM.
    Memory,
}

/// Which memory pool satisfied a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceMemClass {
    /// The accessing domain's local memory.
    Local,
    /// The other domain's memory.
    Remote,
    /// The shared pool.
    RemoteShared,
}

/// MESI coherence states, as recorded in transition events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceMesi {
    /// Modified (dirty, exclusive).
    Modified,
    /// Exclusive (clean, sole owner).
    Exclusive,
    /// Shared.
    Shared,
    /// Invalid.
    Invalid,
}

/// Futex operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FutexOp {
    /// The lock was acquired uncontended.
    Acquire,
    /// The caller found the lock held and queued as a waiter.
    Wait,
    /// An unlock woke a waiter.
    Wake,
}

/// Coarse classification of events, used by the determinism contract
/// (see the module docs) and by the textual report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Cache accesses, evictions, snoops and MESI transitions.
    Cache,
    /// Software-TLB lookups and invalidations.
    Tlb,
    /// Ring-buffer / TCP message traffic.
    Msg,
    /// Cross-ISA interrupts.
    Ipi,
    /// Page faults.
    Fault,
    /// Futex synchronisation.
    Sync,
    /// Thread migrations.
    Migration,
    /// DSM page replication / invalidation / transfer (Popcorn).
    Dsm,
    /// Clock bookkeeping (`charge` / `retire` funnels). Excluded from
    /// the batched-vs-scalar stream comparison: batching coalesces
    /// these calls (identical totals, coarser granularity).
    Accounting,
    /// Crash detection and recovery: watchdog verdicts, checkpoint
    /// captures, restore/replay progress.
    Recovery,
}

impl EventClass {
    /// Every class, in report order.
    pub const ALL: [EventClass; 10] = [
        EventClass::Cache,
        EventClass::Tlb,
        EventClass::Msg,
        EventClass::Ipi,
        EventClass::Fault,
        EventClass::Sync,
        EventClass::Migration,
        EventClass::Dsm,
        EventClass::Accounting,
        EventClass::Recovery,
    ];
}

/// One typed trace event. `Copy` and free of heap data so recording is
/// a store into the preallocated ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// One cache-hierarchy access (the parent event; any snoop /
    /// eviction / MESI sub-events it caused precede it in the stream).
    CacheAccess {
        /// Accessing domain.
        domain: DomainId,
        /// Line-aligned physical address.
        addr: u64,
        /// Write access.
        write: bool,
        /// Instruction fetch (else data).
        ifetch: bool,
        /// Level that satisfied the access.
        level: TraceLevel,
        /// DRAM pool classification (DRAM accesses only).
        class: Option<TraceMemClass>,
        /// The access involved a cross-domain snoop.
        snooped: bool,
        /// Simulated cost of the access.
        cost: Cycles,
    },
    /// A line was evicted from an LLC.
    CacheEvict {
        /// Domain whose hierarchy evicted.
        domain: DomainId,
        /// Line-aligned physical address.
        addr: u64,
        /// The line was dirty (written back).
        dirty: bool,
    },
    /// A cross-domain snoop hit the peer hierarchy.
    Snoop {
        /// Domain that issued the snooping access.
        domain: DomainId,
        /// Line-aligned physical address.
        addr: u64,
        /// Invalidating snoop (else data-sharing).
        invalidate: bool,
    },
    /// A MESI state change on a cached line (only recorded when the
    /// state actually changes).
    MesiTransition {
        /// Domain whose cache holds the line.
        domain: DomainId,
        /// Line-aligned physical address.
        addr: u64,
        /// Previous state.
        from: TraceMesi,
        /// New state.
        to: TraceMesi,
    },
    /// A software-TLB lookup.
    TlbLookup {
        /// Looking-up domain.
        domain: DomainId,
        /// The translation was cached.
        hit: bool,
    },
    /// A TLB / translation-session invalidation (munmap, mprotect,
    /// PTE reconfiguration).
    TlbInvalidate {
        /// Domain whose TLB was shot down.
        domain: DomainId,
        /// Virtual address invalidated.
        va: u64,
    },
    /// A logical message was sent (retransmissions are separate
    /// [`TraceEvent::MsgRetransmit`] events).
    MsgSend {
        /// Sending domain.
        from: DomainId,
        /// Message kind name.
        ty: &'static str,
        /// Header + payload bytes.
        bytes: u64,
        /// Sender-side cost, including any retries.
        cost: Cycles,
    },
    /// The receiver consumed a message from its ring.
    MsgReceive {
        /// Receiving domain.
        to: DomainId,
        /// Message kind name.
        ty: &'static str,
        /// Header + payload bytes.
        bytes: u64,
        /// Receiver-side cost.
        cost: Cycles,
    },
    /// A send attempt timed out and was retransmitted.
    MsgRetransmit {
        /// Sending domain.
        from: DomainId,
        /// Message kind name.
        ty: &'static str,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A send found the peer ring full and stalled for it to drain.
    MsgBackpressure {
        /// Sending domain.
        from: DomainId,
    },
    /// A cross-ISA IPI was delivered.
    Ipi {
        /// Sending domain (the receiver is the other one).
        from: DomainId,
        /// Fabric cost charged to the sender, including injected-loss
        /// retries.
        cost: Cycles,
    },
    /// A page fault was taken and serviced.
    PageFault {
        /// Faulting domain.
        domain: DomainId,
        /// Faulting virtual address.
        va: u64,
        /// Write fault.
        write: bool,
        /// Simulated service cost (trap through resolution).
        cost: Cycles,
    },
    /// A thread migrated between domains.
    Migration {
        /// Source domain.
        from: DomainId,
        /// Destination domain.
        to: DomainId,
    },
    /// A futex operation.
    Futex {
        /// Acting domain.
        domain: DomainId,
        /// What happened.
        op: FutexOp,
        /// Futex word virtual address.
        va: u64,
    },
    /// DSM replicated a page to a domain (Popcorn).
    DsmReplicate {
        /// Domain that now holds a copy.
        to: DomainId,
        /// Page virtual address.
        page_va: u64,
    },
    /// DSM invalidated a replicated page (Popcorn).
    DsmInvalidate {
        /// Domain whose copy was shot down.
        to: DomainId,
        /// Page virtual address.
        page_va: u64,
    },
    /// A DSM page shipment over the messaging layer.
    DsmTransfer {
        /// Sending domain.
        from: DomainId,
        /// Receiving domain.
        to: DomainId,
        /// Payload bytes shipped.
        bytes: u64,
        /// Simulated round-trip cost.
        cost: Cycles,
    },
    /// Memory-feedback cycles charged to a domain clock (the
    /// `BaseSystem::charge` funnel).
    Charge {
        /// Charged domain.
        domain: DomainId,
        /// Cycles added to the clock.
        cost: Cycles,
    },
    /// Instructions retired on a domain clock (IPC 1: `insns` cycles).
    Retire {
        /// Retiring domain.
        domain: DomainId,
        /// Instructions retired.
        insns: u64,
    },
    /// The watchdog declared a domain dead after a run of missed
    /// heartbeats.
    Watchdog {
        /// The domain declared dead.
        domain: DomainId,
        /// Consecutive heartbeats missed at the declaration.
        missed: u32,
    },
    /// A recovery stage completed for a crashed domain ("quarantine",
    /// "restore", "replay", "degrade").
    Recovery {
        /// The crashed domain being recovered from.
        domain: DomainId,
        /// Which recovery stage finished.
        stage: &'static str,
    },
    /// A checkpoint of the full machine state was captured.
    Checkpoint {
        /// Domain whose supervisor initiated the capture.
        domain: DomainId,
        /// Serialized artifact size in bytes.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The event's coarse class (see [`EventClass`]).
    #[must_use]
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::CacheAccess { .. }
            | TraceEvent::CacheEvict { .. }
            | TraceEvent::Snoop { .. }
            | TraceEvent::MesiTransition { .. } => EventClass::Cache,
            TraceEvent::TlbLookup { .. } | TraceEvent::TlbInvalidate { .. } => EventClass::Tlb,
            TraceEvent::MsgSend { .. }
            | TraceEvent::MsgReceive { .. }
            | TraceEvent::MsgRetransmit { .. }
            | TraceEvent::MsgBackpressure { .. } => EventClass::Msg,
            TraceEvent::Ipi { .. } => EventClass::Ipi,
            TraceEvent::PageFault { .. } => EventClass::Fault,
            TraceEvent::Futex { .. } => EventClass::Sync,
            TraceEvent::Migration { .. } => EventClass::Migration,
            TraceEvent::DsmReplicate { .. }
            | TraceEvent::DsmInvalidate { .. }
            | TraceEvent::DsmTransfer { .. } => EventClass::Dsm,
            TraceEvent::Charge { .. } | TraceEvent::Retire { .. } => EventClass::Accounting,
            TraceEvent::Watchdog { .. }
            | TraceEvent::Recovery { .. }
            | TraceEvent::Checkpoint { .. } => EventClass::Recovery,
        }
    }

    /// Short static name (used by the Chrome exporter and reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CacheAccess { .. } => "cache_access",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::Snoop { .. } => "snoop",
            TraceEvent::MesiTransition { .. } => "mesi",
            TraceEvent::TlbLookup { .. } => "tlb_lookup",
            TraceEvent::TlbInvalidate { .. } => "tlb_invalidate",
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgReceive { .. } => "msg_receive",
            TraceEvent::MsgRetransmit { .. } => "msg_retransmit",
            TraceEvent::MsgBackpressure { .. } => "msg_backpressure",
            TraceEvent::Ipi { .. } => "ipi",
            TraceEvent::PageFault { .. } => "page_fault",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::Futex { .. } => "futex",
            TraceEvent::DsmReplicate { .. } => "dsm_replicate",
            TraceEvent::DsmInvalidate { .. } => "dsm_invalidate",
            TraceEvent::DsmTransfer { .. } => "dsm_transfer",
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::Watchdog { .. } => "watchdog_death",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::Checkpoint { .. } => "checkpoint",
        }
    }

    /// The domain the event is attributed to.
    #[must_use]
    pub fn domain(&self) -> DomainId {
        match *self {
            TraceEvent::CacheAccess { domain, .. }
            | TraceEvent::CacheEvict { domain, .. }
            | TraceEvent::Snoop { domain, .. }
            | TraceEvent::MesiTransition { domain, .. }
            | TraceEvent::TlbLookup { domain, .. }
            | TraceEvent::TlbInvalidate { domain, .. }
            | TraceEvent::PageFault { domain, .. }
            | TraceEvent::Futex { domain, .. }
            | TraceEvent::Charge { domain, .. }
            | TraceEvent::Retire { domain, .. }
            | TraceEvent::Watchdog { domain, .. }
            | TraceEvent::Recovery { domain, .. }
            | TraceEvent::Checkpoint { domain, .. } => domain,
            TraceEvent::MsgSend { from, .. }
            | TraceEvent::MsgRetransmit { from, .. }
            | TraceEvent::MsgBackpressure { from, .. }
            | TraceEvent::Ipi { from, .. }
            | TraceEvent::Migration { from, .. }
            | TraceEvent::DsmTransfer { from, .. } => from,
            TraceEvent::MsgReceive { to, .. }
            | TraceEvent::DsmReplicate { to, .. }
            | TraceEvent::DsmInvalidate { to, .. } => to,
        }
    }
}

/// A log₂-bucketed latency histogram over simulated cycles.
///
/// Bucket `i` counts observations `v` with `floor(log2(v)) == i`
/// (zero-cycle observations land in bucket 0), which gives the wide
/// dynamic range of the stack's latencies (4-cycle L1 hits to 157 500-
/// cycle TCP round trips) in 64 fixed buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    saturated: bool,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0, saturated: false }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn observe(&mut self, cycles: Cycles) {
        let v = cycles.raw();
        let bucket = if v == 0 { 0 } else { 63 - v.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        // The running sum can overflow u64 on very long runs; an
        // overflowed sum makes `mean()` silently bogus, so the overflow
        // is latched in `saturated` and surfaced by `render()` instead
        // of being swallowed.
        match self.sum.checked_add(v) {
            Some(s) => self.sum = s,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (zero when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether the running `sum` overflowed u64. When set, `mean()` is a
    /// lower bound (computed from the pinned `u64::MAX` sum), not the
    /// true mean; percentiles and bucket counts remain exact.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^(i+1))` cycles.
    #[must_use]
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Estimates the `p`-th percentile (`0 < p < 100`) from the log₂
    /// buckets.
    ///
    /// The rank is `ceil(p/100 · count)` (nearest-rank definition), and
    /// the estimate returned for a rank landing in bucket `i` is the
    /// bucket's *inclusive upper bound* `2^(i+1) − 1`, clamped into
    /// `[min, max]` so single-bucket histograms and the extreme ranks
    /// report exact observed values. Because bucket `i` covers the span
    /// `[2^i, 2^(i+1))`, the estimate can overstate the true percentile
    /// by at most one bucket — a factor of <2× — and never understates
    /// it below the bucket holding the true value. `p <= 0` returns
    /// `min`, `p >= 100` returns `max`, and an empty histogram returns 0.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min();
        }
        if p >= 100.0 {
            return self.max;
        }
        // Nearest-rank: the smallest rank r (1-based) with
        // r/count ≥ p/100. ceil() on the product is exact enough here —
        // count is a u64 but practical histograms stay far below 2^53
        // observations, and a ±1 rank slip only matters at bucket
        // boundaries already covered by the documented one-bucket error.
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// One-line rendering: `count / min / p50 / p99 / max` plus the
    /// occupied log₂ buckets. The tail percentiles replace the old
    /// mean-only line, which was misleading for the heavily skewed
    /// distributions this stack produces (a handful of 157 500-cycle TCP
    /// round trips buried under millions of 4-cycle L1 hits). The mean
    /// is still shown, flagged `mean>=` when the sum saturated.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut s = format!(
            "n={} min={} p50={} p99={} max={} {}{:.0}{}",
            self.count,
            self.min(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max,
            if self.saturated { "mean>=" } else { "mean=" },
            self.mean(),
            if self.saturated { " (sum saturated)" } else { "" },
        );
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let _ = write!(s, "  [2^{i}:{c}]");
            }
        }
        s
    }
}

/// A registry of named counters and latency histograms.
///
/// Names are `&'static str` so the registry stays allocation-free per
/// observation after the first touch of each name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, LatencyHistogram>,
}

/// Histogram name: full cross-kernel request/response round trip.
pub const HIST_MSG_ROUND_TRIP: &str = "msg_round_trip_cycles";
/// Histogram name: page-fault service latency (trap to resolution).
pub const HIST_FAULT_SERVICE: &str = "fault_service_cycles";
/// Histogram name: DSM page-shipment latency (Popcorn).
pub const HIST_DSM_TRANSFER: &str = "dsm_transfer_cycles";
/// Histogram name: contended-futex wait-path latency.
pub const HIST_FUTEX_WAIT: &str = "futex_wait_cycles";
/// Histogram name: KV-serving end-to-end request latency (arrival to
/// response, including queueing behind the worker).
pub const HIST_KVSERVE_REQUEST: &str = "kvserve_request_cycles";
/// Histogram name: KV-serving queueing delay (arrival to dispatch).
pub const HIST_KVSERVE_QUEUE: &str = "kvserve_queue_cycles";
/// Counter name: domains declared dead by the watchdog.
pub const CTR_WATCHDOG_DEATHS: &str = "watchdog_deaths";
/// Counter name: restart-from-checkpoint recoveries performed.
pub const CTR_RECOVERY_RESTARTS: &str = "recovery_restarts";
/// Counter name: checkpoints captured.
pub const CTR_CHECKPOINTS: &str = "checkpoints_taken";

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments the named counter.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a latency observation in the named histogram.
    pub fn observe(&mut self, name: &'static str, cycles: Cycles) {
        self.histograms.entry(name).or_default().observe(cycles);
    }

    /// Reads a histogram, if any observation was recorded under `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Folds a domain's end-of-run [`DomainStats`] block into named
    /// counters, prefixed with `label` (e.g. `x86.tlb_hits`). This is
    /// what ties the totals-only world to the registry: after a run the
    /// registry holds both the event-derived metrics and the
    /// authoritative counters side by side.
    pub fn fold_domain_stats(&mut self, label: &str, stats: &DomainStats) {
        // Static names for the two domains' standard prefixes keep the
        // common path allocation-free.
        let entries: [(&str, u64); 12] = [
            ("l1_hits", stats.l1i.hits + stats.l1d.hits),
            ("l1_accesses", stats.l1i.accesses + stats.l1d.accesses),
            ("l2_hits", stats.l2.hits),
            ("l2_accesses", stats.l2.accesses),
            ("l3_hits", stats.l3.hits),
            ("l3_accesses", stats.l3.accesses),
            ("ipi", stats.ipi),
            ("instructions", stats.instructions),
            ("mem_accesses", stats.mem_accesses),
            ("tlb_hits", stats.tlb_hits),
            ("tlb_misses", stats.tlb_misses),
            ("runtime_cycles", stats.runtime.raw()),
        ];
        for (name, v) in entries {
            let key: &'static str = Self::static_key(label, name);
            self.add(key, v);
        }
    }

    /// Interns `label.name` for the two standard domain labels; other
    /// labels leak one small string per unique key (registries are
    /// per-run diagnostics, not long-lived daemons).
    fn static_key(label: &str, name: &str) -> &'static str {
        Box::leak(format!("{label}.{name}").into_boxed_str())
    }

    /// Renders every counter and histogram, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(s, "counter {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(s, "histogram {name}: {}", h.render());
        }
        s
    }
}

/// The bounded event ring plus its metrics registry.
///
/// Preallocated at construction; recording never allocates. When the
/// ring wraps, the oldest events are overwritten and counted in
/// [`Tracer::dropped`].
#[derive(Debug)]
pub struct Tracer {
    ring: Vec<TraceEvent>,
    head: usize,
    capacity: usize,
    dropped: u64,
    recorded: u64,
    metrics: MetricsRegistry,
}

/// Shared handle to a [`Tracer`], cloned into every layer of the stack
/// (mirrors `SharedFaultInjector`).
pub type SharedTracer = Rc<RefCell<Tracer>>;

/// Creates a [`SharedTracer`] with the given ring capacity.
#[must_use]
pub fn shared_tracer(capacity: usize) -> SharedTracer {
    Rc::new(RefCell::new(Tracer::with_capacity(capacity)))
}

impl Tracer {
    /// Creates a tracer whose ring holds `capacity` events (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            ring: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
            recorded: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Records one event. O(1), allocation-free once the ring is full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Oldest events overwritten by ring wrap-around.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The held events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.ring.len() < self.capacity {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
            out
        }
    }

    /// Clears the ring and drop counter (metrics are preserved).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.recorded = 0;
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }
}

/// Rebuilds per-domain [`DomainStats`] blocks from an event stream
/// alone — the proof that the trace carries everything the end-of-run
/// report prints. Requires a stream with no wrap-around drops.
///
/// Snoop side counters (`snoop_data_hits` / `snoop_invalidations`) are
/// attributed from [`TraceEvent::Snoop`] events to the *issuing*
/// domain's stats block only when the memory system does the same, so
/// they are intentionally left at zero here; the `report()` block does
/// not print them. Fault-injection counters reconstruct to zero —
/// injectors and tracers are separate harnesses.
#[must_use]
pub fn reconstruct_domain_stats(events: &[TraceEvent]) -> [DomainStats; 2] {
    let mut out = [DomainStats::new(), DomainStats::new()];
    for ev in events {
        match *ev {
            TraceEvent::CacheAccess { domain, ifetch, level, class, .. } => {
                let s = &mut out[domain.index()];
                if ifetch {
                    s.l1i.record(level == TraceLevel::L1);
                } else {
                    s.l1d.record(level == TraceLevel::L1);
                    s.mem_accesses += 1;
                }
                if level != TraceLevel::L1 {
                    s.l2.record(level == TraceLevel::L2);
                }
                if matches!(level, TraceLevel::L3 | TraceLevel::Memory) {
                    s.l3.record(level == TraceLevel::L3);
                }
                match class {
                    Some(TraceMemClass::Local) => s.local_mem_hits += 1,
                    Some(TraceMemClass::Remote) => s.remote_mem_hits += 1,
                    Some(TraceMemClass::RemoteShared) => s.remote_shared_mem_hits += 1,
                    None => {}
                }
            }
            TraceEvent::TlbLookup { domain, hit } => {
                let s = &mut out[domain.index()];
                if hit {
                    s.tlb_hits += 1;
                } else {
                    s.tlb_misses += 1;
                }
            }
            TraceEvent::Ipi { from, .. } => out[from.index()].ipi += 1,
            TraceEvent::Retire { domain, insns } => {
                let s = &mut out[domain.index()];
                s.instructions += insns;
                // IPC 1: every retired instruction is one cycle.
                s.runtime += Cycles::new(insns);
            }
            TraceEvent::Charge { domain, cost } => out[domain.index()].runtime += cost,
            _ => {}
        }
    }
    out
}

/// Per-phase, per-domain cycle totals in the style of the paper's
/// Figure 9/11 breakdowns. Phases are delimited by
/// [`TraceEvent::Migration`] events (phase 0 runs up to the first
/// migration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Instruction cycles (retired instructions at IPC 1).
    pub inst_cycles: [u64; 2],
    /// Memory/messaging feedback cycles charged.
    pub mem_cycles: [u64; 2],
    /// Cache accesses issued (instruction + data).
    pub cache_accesses: [u64; 2],
    /// Messages sent.
    pub msgs: [u64; 2],
    /// IPIs sent.
    pub ipis: [u64; 2],
    /// Page faults taken.
    pub faults: [u64; 2],
    /// Recovery-class events (watchdog deaths, recovery stages,
    /// checkpoints) attributed to the domain.
    pub recoveries: [u64; 2],
}

/// Splits an event stream into per-phase totals at migration events.
#[must_use]
pub fn phase_breakdown(events: &[TraceEvent]) -> Vec<PhaseTotals> {
    let mut phases = Vec::new();
    let mut cur = PhaseTotals::default();
    for ev in events {
        if let TraceEvent::Migration { .. } = ev {
            phases.push(std::mem::take(&mut cur));
            continue;
        }
        match *ev {
            TraceEvent::Retire { domain, insns } => cur.inst_cycles[domain.index()] += insns,
            TraceEvent::Charge { domain, cost } => cur.mem_cycles[domain.index()] += cost.raw(),
            TraceEvent::CacheAccess { domain, .. } => cur.cache_accesses[domain.index()] += 1,
            TraceEvent::MsgSend { from, .. } => cur.msgs[from.index()] += 1,
            TraceEvent::Ipi { from, .. } => cur.ipis[from.index()] += 1,
            TraceEvent::PageFault { domain, .. } => cur.faults[domain.index()] += 1,
            TraceEvent::Watchdog { domain, .. }
            | TraceEvent::Recovery { domain, .. }
            | TraceEvent::Checkpoint { domain, .. } => cur.recoveries[domain.index()] += 1,
            _ => {}
        }
    }
    phases.push(cur);
    phases
}

/// Renders the Figure 9/11-style per-phase textual report.
#[must_use]
pub fn render_phase_report(events: &[TraceEvent]) -> String {
    use fmt::Write as _;
    let phases = phase_breakdown(events);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<7} {:<5} {:>14} {:>14} {:>12} {:>8} {:>6} {:>7} {:>6}",
        "phase", "dom", "inst_cycles", "mem_cycles", "cache_acc", "msgs", "ipis", "faults", "recov"
    );
    for (i, p) in phases.iter().enumerate() {
        for d in DomainId::ALL {
            let j = d.index();
            let _ = writeln!(
                s,
                "{:<7} {:<5} {:>14} {:>14} {:>12} {:>8} {:>6} {:>7} {:>6}",
                i,
                d.to_string(),
                p.inst_cycles[j],
                p.mem_cycles[j],
                p.cache_accesses[j],
                p.msgs[j],
                p.ipis[j],
                p.faults[j],
                p.recoveries[j]
            );
        }
    }
    let _ = writeln!(s, "phases: {} (split at thread migrations)", phases.len());
    s
}

/// Exports the stream as Chrome `trace_event` JSON (load in
/// `chrome://tracing` or Perfetto).
///
/// Timestamps are reconstructed per domain by prefix-summing the
/// authoritative clock events ([`TraceEvent::Charge`] /
/// [`TraceEvent::Retire`]), which render as duration slices; every
/// other event renders as an instant at its domain's current simulated
/// time. The `ts`/`dur` unit is the simulated cycle (the viewer labels
/// it µs; divide by the clock rate for wall time).
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use fmt::Write as _;
    let mut now = [0u64; 2];
    let mut s = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for ev in events {
        let d = ev.domain().index();
        let (ph, dur) = match *ev {
            TraceEvent::Charge { cost, .. } => ("X", Some(cost.raw())),
            TraceEvent::Retire { insns, .. } => ("X", Some(insns)),
            _ => ("i", None),
        };
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"cat\":\"{:?}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            ev.name(),
            ev.class(),
            ph,
            d,
            d,
            now[d]
        );
        if let Some(dur) = dur {
            let _ = write!(s, ",\"dur\":{dur}");
            now[d] += dur;
        } else {
            s.push_str(",\"s\":\"t\"");
        }
        s.push('}');
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_access(domain: DomainId, level: TraceLevel) -> TraceEvent {
        TraceEvent::CacheAccess {
            domain,
            addr: 0x1000,
            write: false,
            ifetch: false,
            level,
            class: if level == TraceLevel::Memory { Some(TraceMemClass::Local) } else { None },
            snooped: false,
            cost: Cycles::new(4),
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5 {
            t.record(TraceEvent::Retire { domain: DomainId::X86, insns: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let evs = t.events();
        // Oldest two (0, 1) were overwritten; 2, 3, 4 remain in order.
        assert_eq!(
            evs,
            vec![
                TraceEvent::Retire { domain: DomainId::X86, insns: 2 },
                TraceEvent::Retire { domain: DomainId::X86, insns: 3 },
                TraceEvent::Retire { domain: DomainId::X86, insns: 4 },
            ]
        );
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_is_alloc_free_in_steady_state() {
        let mut t = Tracer::with_capacity(8);
        for _ in 0..8 {
            t.record(ev_access(DomainId::X86, TraceLevel::L1));
        }
        let ptr = t.ring.as_ptr();
        for _ in 0..100 {
            t.record(ev_access(DomainId::ARM, TraceLevel::L2));
        }
        // The backing storage never reallocated.
        assert_eq!(ptr, t.ring.as_ptr());
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn event_classes_cover_taxonomy() {
        assert_eq!(ev_access(DomainId::X86, TraceLevel::L1).class(), EventClass::Cache);
        assert_eq!(
            TraceEvent::TlbLookup { domain: DomainId::ARM, hit: true }.class(),
            EventClass::Tlb
        );
        assert_eq!(
            TraceEvent::Ipi { from: DomainId::X86, cost: Cycles::new(4200) }.class(),
            EventClass::Ipi
        );
        assert_eq!(
            TraceEvent::Charge { domain: DomainId::X86, cost: Cycles::ZERO }.class(),
            EventClass::Accounting
        );
        assert_eq!(
            TraceEvent::Migration { from: DomainId::X86, to: DomainId::ARM }.class(),
            EventClass::Migration
        );
        assert_eq!(
            TraceEvent::MsgReceive { to: DomainId::ARM, ty: "KvRequest", bytes: 64, cost: Cycles::ZERO }
                .domain(),
            DomainId::ARM
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LatencyHistogram::new();
        h.observe(Cycles::new(0));
        h.observe(Cycles::new(1));
        h.observe(Cycles::new(4));
        h.observe(Cycles::new(7));
        h.observe(Cycles::new(157_500));
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 157_500);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[2], 2); // 4 and 7
        assert_eq!(h.buckets()[17], 1); // 2^17 = 131072 ≤ 157500 < 2^18
        assert!(h.render().contains("n=5"));
        assert!((h.mean() - (157_512.0 / 5.0)).abs() < 1e-9);
    }

    #[test]
    fn percentile_exact_at_bucket_boundaries() {
        // 100 observations of exactly 2^10 = 1024: every percentile must
        // report a value inside bucket 10's span [1024, 2047], and the
        // min/max clamp makes it exactly 1024 (single-valued histogram).
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.observe(Cycles::new(1024));
        }
        for p in [0.1, 1.0, 50.0, 99.0, 99.9] {
            assert_eq!(h.percentile(p), 1024, "p{p}");
        }

        // Exact two-point distribution: 99 at 10 cycles, 1 at 1000
        // cycles. Nearest-rank p99 is the 99th of 100 → still the low
        // value's bucket (bucket 3, upper bound 15); p99.5 crosses into
        // the outlier's bucket (bucket 9, upper bound 1023, clamped to
        // the observed max 1000).
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(Cycles::new(10));
        }
        h.observe(Cycles::new(1000));
        assert_eq!(h.percentile(50.0), 15); // bucket 3 = [8,16) upper bound
        assert_eq!(h.percentile(99.0), 15);
        assert_eq!(h.percentile(99.5), 1000); // bucket 9 upper 1023, clamped to max
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.percentile(0.0), 10);
        // The ±1-bucket contract: the p50 estimate (15) is within a
        // factor of 2 above the true median (10) and not below it.
        assert!(h.percentile(50.0) >= 10 && h.percentile(50.0) < 20);

        // Uniform one-per-bucket spread pinned at lower bounds: ranks
        // map 1:1 onto buckets, so the estimator must return each
        // bucket's upper bound as ranks advance monotonically.
        let mut h = LatencyHistogram::new();
        for i in 0..8u32 {
            h.observe(Cycles::new(1u64 << i)); // 1,2,4,...,128 → buckets 0..=7
        }
        assert_eq!(h.percentile(12.5), 1); // rank 1 → bucket 0 upper=1
        assert_eq!(h.percentile(25.0), 3); // rank 2 → bucket 1 upper=3
        assert_eq!(h.percentile(50.0), 15); // rank 4 → bucket 3 upper=15
        assert_eq!(h.percentile(99.0), 128); // rank 8 → bucket 7 upper 255 clamped to max

        // Empty histogram.
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn percentile_estimate_monotone_in_p() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..200u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            h.observe(Cycles::new(x >> 40));
        }
        let mut last = 0u64;
        for p in 1..=99 {
            let v = h.percentile(f64::from(p));
            assert!(v >= last, "percentile not monotone at p{p}: {v} < {last}");
            last = v;
        }
        assert!(h.percentile(99.0) <= h.max());
        assert!(h.percentile(1.0) >= h.min());
    }

    #[test]
    fn sum_saturation_is_latched_and_rendered() {
        let mut h = LatencyHistogram::new();
        h.observe(Cycles::new(u64::MAX / 2));
        assert!(!h.is_saturated());
        assert!(!h.render().contains("saturated"));
        h.observe(Cycles::new(u64::MAX / 2));
        h.observe(Cycles::new(u64::MAX / 2));
        assert!(h.is_saturated());
        assert_eq!(h.sum(), u64::MAX);
        // Count/min/max/percentiles stay exact; only the mean degrades
        // to a lower bound, and render says so.
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX / 2);
        assert_eq!(h.percentile(50.0), u64::MAX / 2);
        let r = h.render();
        assert!(r.contains("mean>="), "render must flag the saturated mean: {r}");
        assert!(r.contains("(sum saturated)"), "render must flag saturation: {r}");
        // Non-saturated histograms render p50/p99 and a plain mean.
        let mut h = LatencyHistogram::new();
        h.observe(Cycles::new(100));
        let r = h.render();
        assert!(r.contains("p50=") && r.contains("p99=") && r.contains("mean="), "{r}");
    }

    #[test]
    fn registry_counters_and_fold() {
        let mut m = MetricsRegistry::new();
        m.inc("x");
        m.add("x", 2);
        assert_eq!(m.counter("x"), 3);
        assert_eq!(m.counter("missing"), 0);
        m.observe(HIST_MSG_ROUND_TRIP, Cycles::new(9480));
        assert_eq!(m.histogram(HIST_MSG_ROUND_TRIP).unwrap().count(), 1);
        let stats = DomainStats { tlb_hits: 7, instructions: 11, ..DomainStats::default() };
        m.fold_domain_stats("x86", &stats);
        assert_eq!(m.counter("x86.tlb_hits"), 7);
        assert_eq!(m.counter("x86.instructions"), 11);
        assert!(m.render().contains("counter x = 3"));
        assert!(m.render().contains("histogram msg_round_trip_cycles:"));
    }

    #[test]
    fn reconstruction_matches_hand_stats() {
        let events = vec![
            ev_access(DomainId::X86, TraceLevel::L1),
            ev_access(DomainId::X86, TraceLevel::L2),
            ev_access(DomainId::X86, TraceLevel::Memory),
            TraceEvent::CacheAccess {
                domain: DomainId::X86,
                addr: 0,
                write: false,
                ifetch: true,
                level: TraceLevel::L1,
                class: None,
                snooped: false,
                cost: Cycles::new(4),
            },
            TraceEvent::TlbLookup { domain: DomainId::X86, hit: true },
            TraceEvent::TlbLookup { domain: DomainId::X86, hit: false },
            TraceEvent::Ipi { from: DomainId::X86, cost: Cycles::new(4200) },
            TraceEvent::Retire { domain: DomainId::X86, insns: 100 },
            TraceEvent::Charge { domain: DomainId::X86, cost: Cycles::new(360) },
        ];
        let [x86, arm] = reconstruct_domain_stats(&events);
        assert_eq!(x86.l1d.accesses, 3);
        assert_eq!(x86.l1d.hits, 1);
        assert_eq!(x86.l1i.accesses, 1);
        assert_eq!(x86.l1i.hits, 1);
        assert_eq!(x86.l2.accesses, 2);
        assert_eq!(x86.l2.hits, 1);
        assert_eq!(x86.l3.accesses, 1);
        assert_eq!(x86.l3.hits, 0);
        assert_eq!(x86.mem_accesses, 3);
        assert_eq!(x86.local_mem_hits, 1);
        assert_eq!(x86.tlb_hits, 1);
        assert_eq!(x86.tlb_misses, 1);
        assert_eq!(x86.ipi, 1);
        assert_eq!(x86.instructions, 100);
        assert_eq!(x86.runtime.raw(), 460);
        assert_eq!(arm, DomainStats::default());
    }

    #[test]
    fn phase_breakdown_splits_at_migrations() {
        let events = vec![
            TraceEvent::Retire { domain: DomainId::X86, insns: 10 },
            TraceEvent::Migration { from: DomainId::X86, to: DomainId::ARM },
            TraceEvent::Retire { domain: DomainId::ARM, insns: 20 },
            TraceEvent::Charge { domain: DomainId::ARM, cost: Cycles::new(5) },
        ];
        let phases = phase_breakdown(&events);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].inst_cycles, [10, 0]);
        assert_eq!(phases[1].inst_cycles, [0, 20]);
        assert_eq!(phases[1].mem_cycles, [0, 5]);
        let report = render_phase_report(&events);
        assert!(report.contains("phases: 2"));
        assert!(report.contains("inst_cycles"));
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let events = vec![
            TraceEvent::Retire { domain: DomainId::X86, insns: 10 },
            ev_access(DomainId::X86, TraceLevel::L1),
            TraceEvent::Charge { domain: DomainId::X86, cost: Cycles::new(360) },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
        // The access instant lands after the 10-cycle retire slice.
        assert!(json.contains("\"name\":\"cache_access\",\"cat\":\"Cache\",\"ph\":\"i\""));
        assert!(json.contains("\"ts\":10"));
        // The charge slice starts at ts 10 with dur 360.
        assert!(json.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":10,\"dur\":360"));
        assert_eq!(json.matches("\"name\"").count(), 3);
    }

    #[test]
    fn shared_tracer_round_trips() {
        let t = shared_tracer(16);
        t.borrow_mut().record(TraceEvent::MsgBackpressure { from: DomainId::ARM });
        assert_eq!(t.borrow().len(), 1);
        assert_eq!(t.borrow().events()[0].class(), EventClass::Msg);
        t.borrow_mut().metrics_mut().observe(HIST_FUTEX_WAIT, Cycles::new(30));
        assert_eq!(t.borrow().metrics().histogram(HIST_FUTEX_WAIT).unwrap().count(), 1);
    }
}
