//! The perf + icount measurement tool (§7.3 "Instruction Counting").
//!
//! "Measuring programs' execution time in a heterogeneous-ISA platform
//! is not as straightforward as in homogeneous-ISA platforms because the
//! application can migrate between CPUs of diverse ISA at runtime. We
//! have integrated our icount approach with Linux Perf to get an
//! accurate measurement of the time that the application has actually
//! executed." A [`PerfSession`] snapshots both domains' clocks at
//! migration (or arbitrary) markers and reports per-phase instruction
//! and cycle deltas attributed to the domain that executed each phase.

use crate::time::{Cycles, DomainId, Timebase};
use std::fmt::Write as _;

/// One snapshot of both domain clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfSample {
    /// Marker label ("start", "migrate x86→arm", …).
    pub label: String,
    /// Per-domain retired instructions at the marker.
    pub icount: [u64; 2],
    /// Per-domain total cycles at the marker.
    pub cycles: [u64; 2],
}

/// A per-phase delta between consecutive markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfPhase {
    /// The marker that *opened* the phase.
    pub label: String,
    /// Per-domain instructions retired during the phase.
    pub insns: [u64; 2],
    /// Per-domain cycles spent during the phase.
    pub cycles: [u64; 2],
}

impl PerfPhase {
    /// The domain that did (almost all of) the phase's work.
    #[must_use]
    pub fn dominant_domain(&self) -> DomainId {
        if self.cycles[0] >= self.cycles[1] {
            DomainId::X86
        } else {
            DomainId::ARM
        }
    }

    /// Total cycles across both domains.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        Cycles::new(self.cycles.iter().sum())
    }

    /// Effective instructions-per-cycle of the phase (both domains).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let c: u64 = self.cycles.iter().sum();
        if c == 0 {
            0.0
        } else {
            self.insns.iter().sum::<u64>() as f64 / c as f64
        }
    }
}

/// A measurement session over a run with migrations.
#[derive(Debug, Clone, Default)]
pub struct PerfSession {
    samples: Vec<PerfSample>,
}

impl PerfSession {
    /// An empty session.
    #[must_use]
    pub fn new() -> Self {
        PerfSession::default()
    }

    /// Records a marker from the current timebase.
    pub fn sample(&mut self, label: impl Into<String>, timebase: &Timebase) {
        let get = |d: DomainId| {
            let c = timebase.clock(d);
            (c.icount(), c.cycles().raw())
        };
        let (i0, c0) = get(DomainId::X86);
        let (i1, c1) = get(DomainId::ARM);
        self.samples.push(PerfSample { label: label.into(), icount: [i0, i1], cycles: [c0, c1] });
    }

    /// Raw samples.
    #[must_use]
    pub fn samples(&self) -> &[PerfSample] {
        &self.samples
    }

    /// Serializes the recorded samples into a checkpoint section.
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x50_455246); // "PERF"
        e.u64(self.samples.len() as u64);
        for s in &self.samples {
            e.str(&s.label);
            for &v in s.icount.iter().chain(s.cycles.iter()) {
                e.u64(v);
            }
        }
    }

    /// Restores the recorded samples from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        d.tag(0x50_455246)?;
        let n = d.len()?;
        self.samples.clear();
        for _ in 0..n {
            let label = d.str()?;
            let icount = [d.u64()?, d.u64()?];
            let cycles = [d.u64()?, d.u64()?];
            self.samples.push(PerfSample { label, icount, cycles });
        }
        Ok(())
    }

    /// Per-phase deltas between consecutive markers.
    #[must_use]
    pub fn phases(&self) -> Vec<PerfPhase> {
        self.samples
            .windows(2)
            .map(|w| PerfPhase {
                label: w[0].label.clone(),
                insns: [w[1].icount[0] - w[0].icount[0], w[1].icount[1] - w[0].icount[1]],
                cycles: [w[1].cycles[0] - w[0].cycles[0], w[1].cycles[1] - w[0].cycles[1]],
            })
            .collect()
    }

    /// Total instructions attributed to each domain across all phases —
    /// the §9.1.2 "pre- and post-migration" accounting.
    #[must_use]
    pub fn per_domain_insns(&self) -> [u64; 2] {
        match (self.samples.first(), self.samples.last()) {
            (Some(first), Some(last)) => {
                [last.icount[0] - first.icount[0], last.icount[1] - first.icount[1]]
            }
            _ => [0, 0],
        }
    }

    /// Renders a perf-style per-phase report.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>14} {:>14} {:>8} {:>6}", "phase", "insns", "cycles", "on", "IPC");
        for p in self.phases() {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14} {:>8} {:>6.2}",
                p.label,
                p.insns.iter().sum::<u64>(),
                p.total_cycles().raw(),
                p.dominant_domain().to_string(),
                p.ipc()
            );
        }
        out
    }

    /// Clears the session.
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Exports the phases as a Chrome trace-event JSON array
    /// (`chrome://tracing` / Perfetto): one complete event per phase on
    /// the track of the domain that executed it, timestamps in
    /// simulated microseconds at `freq_hz`.
    #[must_use]
    pub fn to_chrome_trace(&self, freq_hz: u64) -> String {
        let us = |cycles: u64| cycles as f64 * 1e6 / freq_hz as f64;
        let mut events = Vec::new();
        let mut cursor = [0u64; 2];
        for p in self.phases() {
            let d = p.dominant_domain();
            let di = d.index();
            let dur = p.cycles[di];
            events.push(format!(
                r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{:.3},"dur":{:.3},"args":{{"insns":{},"cycles":{}}}}}"#,
                p.label.replace('"', "'"),
                di + 1,
                us(cursor[di]),
                us(dur),
                p.insns.iter().sum::<u64>(),
                p.total_cycles().raw(),
            ));
            cursor[di] += dur;
        }
        format!("[{}]", events.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_attribute_work_to_the_executing_domain() {
        let mut tb = Timebase::new();
        let mut perf = PerfSession::new();
        perf.sample("start", &tb);
        tb.clock_mut(DomainId::X86).retire(1000);
        tb.clock_mut(DomainId::X86).add_memory(Cycles::new(500));
        perf.sample("migrate x86->arm", &tb);
        tb.clock_mut(DomainId::ARM).retire(2000);
        perf.sample("migrate arm->x86", &tb);
        tb.clock_mut(DomainId::X86).retire(100);
        perf.sample("end", &tb);

        let phases = perf.phases();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].insns, [1000, 0]);
        assert_eq!(phases[0].dominant_domain(), DomainId::X86);
        assert_eq!(phases[0].total_cycles().raw(), 1500);
        assert_eq!(phases[1].insns, [0, 2000]);
        assert_eq!(phases[1].dominant_domain(), DomainId::ARM);
        assert_eq!(phases[2].insns, [100, 0]);
        assert_eq!(perf.per_domain_insns(), [1100, 2000]);
    }

    #[test]
    fn ipc_accounts_memory_stalls() {
        let mut tb = Timebase::new();
        let mut perf = PerfSession::new();
        perf.sample("start", &tb);
        tb.clock_mut(DomainId::X86).retire(100);
        tb.clock_mut(DomainId::X86).add_memory(Cycles::new(300));
        perf.sample("end", &tb);
        let p = &perf.phases()[0];
        assert!((p.ipc() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_and_reset() {
        let mut tb = Timebase::new();
        let mut perf = PerfSession::new();
        perf.sample("start", &tb);
        tb.clock_mut(DomainId::ARM).retire(5);
        perf.sample("end", &tb);
        let r = perf.report();
        assert!(r.contains("start"));
        assert!(r.contains("arm"));
        perf.reset();
        assert!(perf.samples().is_empty());
        assert_eq!(perf.per_domain_insns(), [0, 0]);
    }

    #[test]
    fn chrome_trace_export() {
        let mut tb = Timebase::new();
        let mut perf = PerfSession::new();
        perf.sample("start", &tb);
        tb.clock_mut(DomainId::X86).retire(2_100); // 1 µs at 2.1 GHz
        perf.sample("migrate x86->arm", &tb);
        tb.clock_mut(DomainId::ARM).retire(4_200);
        perf.sample("end", &tb);
        let json = perf.to_chrome_trace(2_100_000_000);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""name":"start""#));
        assert!(json.contains(r#""tid":1"#), "x86 track present");
        assert!(json.contains(r#""tid":2"#), "arm track present");
        assert!(json.contains(r#""dur":1.000"#), "1 µs phase duration");
        // Empty sessions export an empty array.
        assert_eq!(PerfSession::new().to_chrome_trace(1_000_000_000), "[]");
    }

    #[test]
    fn empty_session_is_harmless() {
        let perf = PerfSession::new();
        assert!(perf.phases().is_empty());
        assert_eq!(perf.per_domain_insns(), [0, 0]);
        assert!(!perf.report().is_empty());
    }
}
