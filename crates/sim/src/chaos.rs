//! Chaos schedules and shrinking reproducers.
//!
//! LiveStack (PAPERS.md) argues cluster-scale simulation is only
//! credible when node failure and recovery are first-class simulated
//! events; this module makes them *first-class test inputs*. A
//! [`ChaosSchedule`] is a seeded list of [`ChaosEvent`]s that composes
//! into a [`FaultPlan`] (PR 1 faults plus whole-domain crashes); the
//! harness escalates schedule intensity, runs the invariant auditors
//! after every recovery, and — when a schedule provokes a failure —
//! [`shrink`] binary-searches it down (ddmin) to a minimal reproducer
//! that replays from its seed alone.
//!
//! The oracle is a plain closure, so the shrinker is workload-agnostic:
//! the CLI drives it with a full supervised KV run, unit tests with
//! synthetic predicates.

use crate::fault::FaultPlan;
use crate::rng::SimRng;
use std::fmt;

/// One composable fault ingredient of a chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// Message-drop probability.
    MsgDrop(f64),
    /// Message-corruption probability.
    MsgCorrupt(f64),
    /// Message delay: probability and extra cycles.
    MsgDelay(f64, u64),
    /// Ack-loss probability.
    AckDrop(f64),
    /// IPI-loss probability.
    IpiLoss(f64),
    /// Transient frame-allocation-failure probability.
    AllocFail(f64),
    /// Cross-ISA lock-contention probability.
    LockContention(f64),
    /// One-shot global-allocator exhaustion at the Nth grant.
    GallocExhaustAt(u64),
    /// Fail-stop a domain at a watchdog tick.
    Crash {
        /// Domain index (0 = x86, 1 = Arm).
        domain: u8,
        /// Watchdog tick at which the domain halts.
        at_tick: u64,
    },
}

impl ChaosEvent {
    /// Folds this event into a [`FaultPlan`]. Probabilities for the same
    /// site accumulate (capped at 1.0); one-shots take the latest value.
    #[must_use]
    pub fn apply(&self, mut plan: FaultPlan) -> FaultPlan {
        fn cap(p: f64) -> f64 {
            p.min(1.0)
        }
        match *self {
            ChaosEvent::MsgDrop(p) => plan.msg_drop = cap(plan.msg_drop + p),
            ChaosEvent::MsgCorrupt(p) => plan.msg_corrupt = cap(plan.msg_corrupt + p),
            ChaosEvent::MsgDelay(p, cycles) => {
                plan.msg_delay = cap(plan.msg_delay + p);
                plan.msg_delay_cycles = plan.msg_delay_cycles.max(cycles);
            }
            ChaosEvent::AckDrop(p) => plan.ack_drop = cap(plan.ack_drop + p),
            ChaosEvent::IpiLoss(p) => plan.ipi_loss = cap(plan.ipi_loss + p),
            ChaosEvent::AllocFail(p) => plan.alloc_fail = cap(plan.alloc_fail + p),
            ChaosEvent::LockContention(p) => {
                plan.lock_contention = cap(plan.lock_contention + p);
            }
            ChaosEvent::GallocExhaustAt(n) => plan.galloc_exhaust_at = Some(n),
            ChaosEvent::Crash { domain, at_tick } => plan.crash = Some((domain, at_tick)),
        }
        plan
    }
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosEvent::MsgDrop(p) => write!(f, "msg-drop p={p:.3}"),
            ChaosEvent::MsgCorrupt(p) => write!(f, "msg-corrupt p={p:.3}"),
            ChaosEvent::MsgDelay(p, c) => write!(f, "msg-delay p={p:.3} +{c}cyc"),
            ChaosEvent::AckDrop(p) => write!(f, "ack-drop p={p:.3}"),
            ChaosEvent::IpiLoss(p) => write!(f, "ipi-loss p={p:.3}"),
            ChaosEvent::AllocFail(p) => write!(f, "alloc-fail p={p:.3}"),
            ChaosEvent::LockContention(p) => write!(f, "lock-contention p={p:.3}"),
            ChaosEvent::GallocExhaustAt(n) => write!(f, "galloc-exhaust at grant {n}"),
            ChaosEvent::Crash { domain, at_tick } => {
                let name = if domain == 0 { "x86" } else { "arm" };
                write!(f, "domain-crash {name} at tick {at_tick}")
            }
        }
    }
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The root seed: both the schedule's own composition and the fault
    /// injector it parameterises derive from it.
    pub seed: u64,
    /// The composed events.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generates the escalating schedule for `stage` (0-based): stage 0
    /// is a light message-layer shake, later stages add IPI loss,
    /// allocation failures, lock contention, allocator exhaustion and —
    /// from stage 3 — whole-domain crashes. The composition is fully
    /// determined by `(seed, stage)`.
    #[must_use]
    pub fn generate(seed: u64, stage: u32) -> Self {
        let mut rng = SimRng::new(seed ^ (u64::from(stage) << 32) ^ 0xc4a0_5c4a);
        let scale = f64::from(stage + 1);
        let mut events = vec![
            ChaosEvent::MsgDrop(0.01 * scale * (1.0 + rng.gen_f64())),
            ChaosEvent::MsgCorrupt(0.005 * scale * (1.0 + rng.gen_f64())),
        ];
        if stage >= 1 {
            events.push(ChaosEvent::AckDrop(0.01 * scale));
            events.push(ChaosEvent::IpiLoss(0.002 * scale * (1.0 + rng.gen_f64())));
            events.push(ChaosEvent::MsgDelay(0.01 * scale, 1_000 + rng.gen_range(4_000)));
        }
        if stage >= 2 {
            events.push(ChaosEvent::AllocFail(0.01 * scale));
            events.push(ChaosEvent::LockContention(0.02 * scale));
            events.push(ChaosEvent::GallocExhaustAt(rng.gen_range(4)));
        }
        if stage >= 3 {
            // Land inside the harness's scenario window (one watchdog
            // tick per supervised step, scenarios run tens of steps).
            events.push(ChaosEvent::Crash {
                domain: (rng.next_u64() & 1) as u8,
                at_tick: 10 + rng.gen_range(25),
            });
        }
        ChaosSchedule { seed, events }
    }

    /// Composes the events into a [`FaultPlan`].
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.events.iter().fold(FaultPlan::none(), |p, ev| ev.apply(p))
    }

    /// The schedule's crash event, if it has one.
    #[must_use]
    pub fn crash(&self) -> Option<(u8, u64)> {
        self.plan().crash
    }

    /// Renders the replayable reproducer: seed plus one event per line.
    #[must_use]
    pub fn describe(&self) -> String {
        use fmt::Write as _;
        let mut s = format!("seed {:#x}, {} event(s):\n", self.seed, self.events.len());
        for ev in &self.events {
            let _ = writeln!(s, "  - {ev}");
        }
        s
    }
}

/// Shrinks a failing event list to a locally-minimal reproducer with
/// ddmin (delta debugging): repeatedly try dropping complement chunks at
/// doubling granularity, keeping any subset on which `oracle` still
/// returns `true` (= still fails). The result is 1-minimal: removing any
/// single remaining event makes the failure vanish.
///
/// The oracle must be deterministic — in this harness every run is
/// seeded, so it is.
pub fn shrink<F>(events: &[ChaosEvent], mut oracle: F) -> Vec<ChaosEvent>
where
    F: FnMut(&[ChaosEvent]) -> bool,
{
    let mut current: Vec<ChaosEvent> = events.to_vec();
    if current.is_empty() || !oracle(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // The complement: everything except [start, end).
            let candidate: Vec<ChaosEvent> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .copied()
                .collect();
            if !candidate.is_empty() && oracle(&candidate) {
                current = candidate;
                granularity = granularity.max(2).min(current.len().max(2));
                reduced = true;
                // Restart the sweep on the reduced list.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_escalate() {
        let a = ChaosSchedule::generate(42, 2);
        let b = ChaosSchedule::generate(42, 2);
        assert_eq!(a, b, "same (seed, stage) must compose the same schedule");
        assert_ne!(a, ChaosSchedule::generate(43, 2));

        let light = ChaosSchedule::generate(42, 0);
        let heavy = ChaosSchedule::generate(42, 3);
        assert!(light.events.len() < heavy.events.len());
        assert!(light.crash().is_none(), "crashes only appear from stage 3");
        assert!(heavy.crash().is_some());
        assert!(heavy.describe().contains("domain-crash"));
    }

    #[test]
    fn plan_composition_accumulates_and_caps() {
        let plan = ChaosSchedule {
            seed: 0,
            events: vec![
                ChaosEvent::MsgDrop(0.7),
                ChaosEvent::MsgDrop(0.7),
                ChaosEvent::GallocExhaustAt(3),
                ChaosEvent::Crash { domain: 1, at_tick: 9 },
            ],
        }
        .plan();
        assert_eq!(plan.msg_drop, 1.0, "probabilities cap at 1");
        assert_eq!(plan.galloc_exhaust_at, Some(3));
        assert_eq!(plan.crash, Some((1, 9)));
        assert!(!plan.is_noop());
    }

    #[test]
    fn shrink_finds_single_culprit() {
        let sched = ChaosSchedule::generate(7, 3);
        assert!(sched.events.len() > 5);
        // The "regression" needs exactly the crash event.
        let minimal = shrink(&sched.events, |evs| {
            evs.iter().any(|e| matches!(e, ChaosEvent::Crash { .. }))
        });
        assert_eq!(minimal.len(), 1);
        assert!(matches!(minimal[0], ChaosEvent::Crash { .. }));
    }

    #[test]
    fn shrink_finds_interacting_pair() {
        let events = vec![
            ChaosEvent::MsgDrop(0.1),
            ChaosEvent::IpiLoss(0.1),
            ChaosEvent::AllocFail(0.1),
            ChaosEvent::GallocExhaustAt(0),
            ChaosEvent::LockContention(0.1),
            ChaosEvent::Crash { domain: 0, at_tick: 30 },
            ChaosEvent::AckDrop(0.1),
        ];
        // Fails only when the crash AND the exhaustion are both present.
        let minimal = shrink(&events, |evs| {
            evs.iter().any(|e| matches!(e, ChaosEvent::Crash { .. }))
                && evs.iter().any(|e| matches!(e, ChaosEvent::GallocExhaustAt(_)))
        });
        assert_eq!(minimal.len(), 2, "ddmin must isolate the interacting pair: {minimal:?}");
    }

    #[test]
    fn shrink_of_passing_schedule_is_identity() {
        let events = vec![ChaosEvent::MsgDrop(0.1), ChaosEvent::AckDrop(0.1)];
        let out = shrink(&events, |_| false);
        assert_eq!(out, events);
    }

    #[test]
    fn shrink_result_is_one_minimal() {
        let events: Vec<ChaosEvent> =
            (0..16).map(|i| ChaosEvent::MsgDelay(0.01, i)).collect();
        // Fails when events with delays 3, 8 and 13 are all present.
        let need = |evs: &[ChaosEvent]| {
            [3u64, 8, 13].iter().all(|&k| {
                evs.iter().any(|e| matches!(e, ChaosEvent::MsgDelay(_, d) if *d == k))
            })
        };
        let minimal = shrink(&events, need);
        assert_eq!(minimal.len(), 3);
        for i in 0..minimal.len() {
            let mut without: Vec<ChaosEvent> = minimal.clone();
            without.remove(i);
            assert!(!need(&without), "dropping any survivor must pass");
        }
    }
}
