//! Epoch-parallel execution policy (§7.3 scaling, ROADMAP item 3).
//!
//! The two ISA domains of a fused machine only observe each other
//! through a handful of channels: message-ring deliveries, IPIs,
//! snoop-visible cache lines and DSM page transfers. Between such
//! events each domain's timing is a pure function of its own private
//! cache state, which means the simulator may *defer* the timing
//! replay of both domains and run it on two host threads — as long as
//! it can prove, conservatively, that no cross-domain event falls
//! inside the window. This module holds the small shared vocabulary
//! for that proof:
//!
//! * [`EpochHorizon`] — the answer a kernel layer gives when asked
//!   "may an epoch open right now?". `Blocked` carries a static reason
//!   string used for diagnostics; any pending cross-domain state
//!   (undelivered message bytes, replicated DSM pages, an armed
//!   watchdog mid-exchange) blocks the horizon and forces the serial
//!   interleaving.
//! * [`EpochPolicy`] — host-side tuning: whether epoch-parallel replay
//!   is enabled at all and how many deferred entries a *lane* (one
//!   domain's slice of an epoch) must hold before a thread barrier
//!   pays for itself. Neither knob can change simulated cycles — the
//!   replay is bit-identical either way — they only trade host time.
//! * [`EpochReport`] — what one flushed epoch did, for benches and
//!   tests that assert parallelism actually happened.
//!
//! The heavy machinery (deferred entry log, snoop windows, the lane
//! executor) lives in `stramash-mem`; the kernel layer consults the
//! horizon and brackets workload phases with epochs.

/// Environment variable forcing epoch-parallel mode on (`1`/`true`) or
/// off (`0`/`false`) regardless of what the embedding requested.
pub const EPOCH_ENV: &str = "STRAMASH_EPOCH_PARALLEL";

/// Environment variable overriding [`EpochPolicy::min_lane_entries`].
pub const EPOCH_MIN_LANE_ENV: &str = "STRAMASH_EPOCH_MIN_LANE";

/// Environment variable overriding [`EpochPolicy::wide`]
/// (`auto` / `force` / `never`).
pub const EPOCH_WIDE_ENV: &str = "STRAMASH_EPOCH_WIDE";

/// How a boundary flush decides whether to run the two lanes on two
/// host threads. Purely host-side: the replay is bit-identical either
/// way, so this only trades host wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WideReplay {
    /// Go wide only when the host has ≥ 2 cores — on a single core the
    /// spawn + barrier per epoch is pure overhead.
    #[default]
    Auto,
    /// Always go wide when the lanes qualify. Determinism tests use
    /// this to exercise the two-thread executor on any host.
    Force,
    /// Never spawn threads; every boundary replay is serial.
    Never,
}

impl WideReplay {
    /// Whether a qualifying flush may spawn threads on this host. The
    /// host core count is sampled once per process.
    #[must_use]
    pub fn allows(self) -> bool {
        static MULTI_CORE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        match self {
            WideReplay::Auto => *MULTI_CORE.get_or_init(|| {
                std::thread::available_parallelism().map_or(1, usize::from) >= 2
            }),
            WideReplay::Force => true,
            WideReplay::Never => false,
        }
    }
}

/// Answer to "may a lockstep epoch open (or keep running) right now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochHorizon {
    /// No cross-domain event is pending; domains may defer freely.
    Clear,
    /// A cross-domain coupling is live; the named channel blocks the
    /// epoch and the run must interleave serially until it drains.
    Blocked(&'static str),
}

impl EpochHorizon {
    /// True when no channel blocks the epoch.
    #[must_use]
    pub fn is_clear(self) -> bool {
        matches!(self, EpochHorizon::Clear)
    }

    /// Combines two horizons: blocked wins (first reason kept).
    #[must_use]
    pub fn and(self, other: EpochHorizon) -> EpochHorizon {
        match self {
            EpochHorizon::Clear => other,
            blocked => blocked,
        }
    }
}

/// Host-side epoch tuning. Never affects simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPolicy {
    /// Master switch for deferred-epoch execution.
    pub enabled: bool,
    /// Minimum deferred entries per lane before the flush uses two
    /// host threads; below this the barrier costs more than it saves
    /// and the flush replays serially (still deferred, still exact).
    pub min_lane_entries: usize,
    /// Host-thread decision for qualifying flushes (see [`WideReplay`]).
    pub wide: WideReplay,
}

impl EpochPolicy {
    /// Default lane threshold: two page-sized batches of element ops.
    pub const DEFAULT_MIN_LANE: usize = 1024;

    /// Policy from the process environment: disabled unless
    /// [`EPOCH_ENV`] opts in; lane threshold from
    /// [`EPOCH_MIN_LANE_ENV`] when parseable.
    #[must_use]
    pub fn from_env() -> Self {
        let enabled = match std::env::var(EPOCH_ENV) {
            Ok(v) => matches!(v.trim(), "1" | "true" | "on" | "yes"),
            Err(_) => false,
        };
        let min_lane_entries = std::env::var(EPOCH_MIN_LANE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(Self::DEFAULT_MIN_LANE);
        let wide = match std::env::var(EPOCH_WIDE_ENV).as_deref().map(str::trim) {
            Ok("force") => WideReplay::Force,
            Ok("never") => WideReplay::Never,
            _ => WideReplay::Auto,
        };
        EpochPolicy { enabled, min_lane_entries, wide }
    }
}

impl Default for EpochPolicy {
    fn default() -> Self {
        EpochPolicy {
            enabled: false,
            min_lane_entries: Self::DEFAULT_MIN_LANE,
            wide: WideReplay::Auto,
        }
    }
}

/// Outcome of one flushed epoch, for benches and determinism tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Total deferred entries replayed.
    pub entries: usize,
    /// Entries per domain lane (x86, arm).
    pub lanes: [usize; 2],
    /// Whether the flush ran the two lanes on separate host threads.
    pub parallel: bool,
}

impl EpochReport {
    /// Merges a flush report into a running tally.
    pub fn absorb(&mut self, other: EpochReport) {
        self.entries += other.entries;
        self.lanes[0] += other.lanes[0];
        self.lanes[1] += other.lanes[1];
        self.parallel |= other.parallel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_combines_blocked_first() {
        let clear = EpochHorizon::Clear;
        let blocked = EpochHorizon::Blocked("msg");
        assert!(clear.is_clear());
        assert_eq!(clear.and(blocked), blocked);
        assert_eq!(blocked.and(EpochHorizon::Blocked("dsm")), blocked);
        assert_eq!(clear.and(clear), clear);
    }

    #[test]
    fn policy_default_is_serial() {
        let p = EpochPolicy::default();
        assert!(!p.enabled);
        assert_eq!(p.min_lane_entries, EpochPolicy::DEFAULT_MIN_LANE);
    }

    #[test]
    fn report_absorbs() {
        let mut tally = EpochReport::default();
        tally.absorb(EpochReport { entries: 10, lanes: [6, 4], parallel: false });
        tally.absorb(EpochReport { entries: 8, lanes: [4, 4], parallel: true });
        assert_eq!(tally.entries, 18);
        assert_eq!(tally.lanes, [10, 8]);
        assert!(tally.parallel);
    }
}
