//! Cross-ISA inter-processor interrupt (IPI) modelling.
//!
//! §7.2 of the paper prototypes cross-ISA IPIs in Stramash-QEMU by routing
//! a native IPI (AArch64 SGI / x86 APIC) through a peripheral device to
//! the other ISA. Because no real hardware exists, the paper measures
//! cross-NUMA IPI latency on the Table 1 machines as a placeholder and
//! finds an average of ≈ 2 µs on the large pairs (§9.1.1, Figures 5/6).
//!
//! This module provides both sides of that methodology:
//!
//! * [`IpiFabric`] — the *simulated platform's* IPI delivery, a
//!   configurable fixed cost (2 µs by default) plus a delivery counter,
//! * [`IpiCharacterization`] — the *measurement experiment*: a per-core-
//!   pair latency model reproducing the structure seen in Figures 5 and 6
//!   (cheap within a socket/cluster, more expensive across sockets, with
//!   measurement jitter), used by the `fig5_6_ipi` bench.

use crate::fault::SharedFaultInjector;
use crate::rng::SimRng;
use crate::time::{Cycles, DomainId};
use crate::trace::{SharedTracer, TraceEvent};

/// Retransmission cap for lost IPIs: with any sane loss probability the
/// chance of this many consecutive losses is negligible, but the cap
/// keeps pathological plans (loss = 1.0) from looping forever.
const MAX_IPI_ATTEMPTS: u32 = 64;

/// Delivery modes supported by the messaging layer (§6.2 supports both
/// interrupt dispatching and polling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NotifyMode {
    /// Send a cross-ISA IPI; the receiver takes an interrupt.
    Interrupt,
    /// The receiver polls the ring buffer; no IPI cost, but the poll spin
    /// burns receiver cycles.
    Polling,
}

/// The simulated platform's IPI delivery fabric.
#[derive(Debug, Clone)]
pub struct IpiFabric {
    latency: Cycles,
    delivered: [u64; crate::NUM_DOMAINS],
    injector: Option<SharedFaultInjector>,
    retries: u64,
    tracer: Option<SharedTracer>,
}

impl IpiFabric {
    /// Creates a fabric with the given one-way delivery latency.
    #[must_use]
    pub fn new(latency: Cycles) -> Self {
        IpiFabric {
            latency,
            delivered: [0; crate::NUM_DOMAINS],
            injector: None,
            retries: 0,
            tracer: None,
        }
    }

    /// One-way delivery latency.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Installs a fault injector; subsequent sends may lose deliveries
    /// and retransmit. With no injector the fabric consumes zero RNG.
    pub fn set_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.injector = Some(injector);
    }

    /// Installs a tracer; every delivered IPI is recorded as a passive
    /// [`TraceEvent::Ipi`] (no cost, no RNG).
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Cumulative retransmissions caused by injected IPI loss.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends an IPI from `from` to the other domain, returning its cost.
    /// The cost is charged to the *sender* (the receiver's handler cost
    /// is modelled by the kernel code it runs on receipt).
    ///
    /// If an injected fault loses the delivery, the sender's interrupt
    /// controller re-raises it (the doorbell register stays set until
    /// acknowledged), paying the fabric latency again per attempt; the
    /// delivery counter only advances once the IPI actually lands.
    pub fn send(&mut self, from: DomainId) -> Cycles {
        let mut cost = self.latency;
        if let Some(inj) = &self.injector {
            let mut attempts = 1u32;
            while inj.borrow_mut().ipi_lost() && attempts < MAX_IPI_ATTEMPTS {
                attempts += 1;
                cost += self.latency;
            }
            if attempts > 1 {
                let extra = u64::from(attempts - 1);
                self.retries += extra;
                let mut inj = inj.borrow_mut();
                inj.note_retried(extra);
                inj.note_recovered(extra);
            }
        }
        self.delivered[from.other().index()] += 1;
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(TraceEvent::Ipi { from, cost });
        }
        cost
    }

    /// IPIs delivered *to* `domain` so far.
    #[must_use]
    pub fn delivered_to(&self, domain: DomainId) -> u64 {
        self.delivered[domain.index()]
    }

    /// Resets delivery counters (latency is preserved).
    pub fn reset(&mut self) {
        self.delivered = [0; crate::NUM_DOMAINS];
        self.retries = 0;
    }

    /// Serializes the fabric's mutable counters (latency is config).
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x49_504946); // "IPIF"
        for &d in &self.delivered {
            e.u64(d);
        }
        e.u64(self.retries);
    }

    /// Restores the fabric's counters.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        d.tag(0x49_504946)?;
        for v in &mut self.delivered {
            *v = d.u64()?;
        }
        self.retries = d.u64()?;
        Ok(())
    }
}

/// One measured core pair in the characterisation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSample {
    /// Sending core index.
    pub src: usize,
    /// Receiving core index.
    pub dst: usize,
    /// Mean measured latency in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation across repetitions, nanoseconds.
    pub stddev_ns: f64,
}

/// Parameters of the per-core-pair latency model.
///
/// Figures 5/6 show three regimes on the dual-socket Table 1 machines:
/// same-core-cluster pairs are fastest, same-socket pairs intermediate,
/// and cross-socket pairs slowest, with the overall average ≈ 2 µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpiTopology {
    /// Total cores measured.
    pub cores: usize,
    /// Cores per socket (cross-socket pairs pay `cross_socket_ns` extra).
    pub cores_per_socket: usize,
    /// Cores per cluster sharing an L2/mid-level cache.
    pub cores_per_cluster: usize,
    /// Base latency for a same-cluster IPI, nanoseconds.
    pub base_ns: f64,
    /// Additional latency when crossing clusters within a socket.
    pub cross_cluster_ns: f64,
    /// Additional latency when crossing sockets.
    pub cross_socket_ns: f64,
    /// Measurement noise (1 σ), nanoseconds.
    pub jitter_ns: f64,
}

impl IpiTopology {
    /// The big\_x86 machine: dual Xeon Gold 6230R, 26 cores per socket.
    /// Calibrated so the all-pairs average is ≈ 2 µs (§9.1.1).
    #[must_use]
    pub fn big_x86() -> Self {
        IpiTopology {
            cores: 52,
            cores_per_socket: 26,
            cores_per_cluster: 4,
            base_ns: 1250.0,
            cross_cluster_ns: 350.0,
            cross_socket_ns: 900.0,
            jitter_ns: 120.0,
        }
    }

    /// The big\_Arm machine: dual ThunderX2 CN9980, 32 cores per socket.
    #[must_use]
    pub fn big_arm() -> Self {
        IpiTopology {
            cores: 64,
            cores_per_socket: 32,
            cores_per_cluster: 4,
            base_ns: 1400.0,
            cross_cluster_ns: 300.0,
            cross_socket_ns: 800.0,
            jitter_ns: 150.0,
        }
    }

    fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    fn cluster_of(&self, core: usize) -> usize {
        core / self.cores_per_cluster
    }

    /// Deterministic model latency for one (src, dst) pair before jitter.
    #[must_use]
    pub fn pair_mean_ns(&self, src: usize, dst: usize) -> f64 {
        let mut ns = self.base_ns;
        if self.socket_of(src) != self.socket_of(dst) {
            ns += self.cross_socket_ns;
        } else if self.cluster_of(src) != self.cluster_of(dst) {
            ns += self.cross_cluster_ns;
        }
        ns
    }
}

/// The all-pairs IPI measurement experiment of §9.1.1.
#[derive(Debug, Clone)]
pub struct IpiCharacterization {
    topology: IpiTopology,
    samples: Vec<PairSample>,
}

impl IpiCharacterization {
    /// Runs the experiment: measures every ordered core pair `reps`
    /// times with deterministic jitter drawn from `rng`.
    #[must_use]
    pub fn run(topology: IpiTopology, reps: usize, rng: &mut SimRng) -> Self {
        assert!(reps > 0, "at least one repetition required");
        let mut samples = Vec::with_capacity(topology.cores * (topology.cores - 1));
        for src in 0..topology.cores {
            for dst in 0..topology.cores {
                if src == dst {
                    continue;
                }
                let mean_model = topology.pair_mean_ns(src, dst);
                let mut acc = 0.0;
                let mut acc2 = 0.0;
                for _ in 0..reps {
                    let x = (mean_model + rng.gen_normal() * topology.jitter_ns).max(0.0);
                    acc += x;
                    acc2 += x * x;
                }
                let mean = acc / reps as f64;
                let var = (acc2 / reps as f64 - mean * mean).max(0.0);
                samples.push(PairSample { src, dst, mean_ns: mean, stddev_ns: var.sqrt() });
            }
        }
        IpiCharacterization { topology, samples }
    }

    /// The topology that was measured.
    #[must_use]
    pub fn topology(&self) -> &IpiTopology {
        &self.topology
    }

    /// All pair samples.
    #[must_use]
    pub fn samples(&self) -> &[PairSample] {
        &self.samples
    }

    /// Grand mean across all pairs, nanoseconds.
    #[must_use]
    pub fn average_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.mean_ns).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean latency restricted to same-socket (`false`) or cross-socket
    /// (`true`) pairs.
    #[must_use]
    pub fn average_ns_by_socket(&self, cross: bool) -> f64 {
        let sel: Vec<&PairSample> = self
            .samples
            .iter()
            .filter(|s| {
                (self.topology.socket_of(s.src) != self.topology.socket_of(s.dst)) == cross
            })
            .collect();
        if sel.is_empty() {
            return 0.0;
        }
        sel.iter().map(|s| s.mean_ns).sum::<f64>() / sel.len() as f64
    }

    /// The grand mean converted to cycles at `freq_hz` — this is the value
    /// the paper plugs into the simulator as the cross-ISA IPI cost.
    #[must_use]
    pub fn average_cycles(&self, freq_hz: u64) -> Cycles {
        Cycles::from_micros(self.average_ns() / 1000.0, freq_hz)
    }

    /// A coarse latency histogram: `(bucket_upper_ns, count)` pairs with
    /// the given bucket width.
    #[must_use]
    pub fn histogram(&self, bucket_ns: f64, buckets: usize) -> Vec<(f64, usize)> {
        let mut hist = vec![0usize; buckets];
        for s in &self.samples {
            let idx = ((s.mean_ns / bucket_ns) as usize).min(buckets - 1);
            hist[idx] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, c)| ((i as f64 + 1.0) * bucket_ns, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_counts_and_charges() {
        let mut fabric = IpiFabric::new(Cycles::new(4200));
        let c = fabric.send(DomainId::X86);
        assert_eq!(c.raw(), 4200);
        assert_eq!(fabric.delivered_to(DomainId::ARM), 1);
        assert_eq!(fabric.delivered_to(DomainId::X86), 0);
        fabric.reset();
        assert_eq!(fabric.delivered_to(DomainId::ARM), 0);
        assert_eq!(fabric.latency().raw(), 4200);
    }

    #[test]
    fn injected_loss_retries_until_delivered() {
        use crate::fault::{shared_injector, FaultPlan};
        let mut fabric = IpiFabric::new(Cycles::new(4200));
        let inj = shared_injector(FaultPlan::none().with_ipi_loss(0.5), 0xbeef);
        fabric.set_fault_injector(inj.clone());
        let mut total = Cycles::ZERO;
        for _ in 0..200 {
            total += fabric.send(DomainId::X86);
        }
        // Every IPI lands exactly once despite losses…
        assert_eq!(fabric.delivered_to(DomainId::ARM), 200);
        // …retransmissions happened and were charged real latency.
        assert!(fabric.retries() > 0, "50% loss must force retries");
        assert_eq!(total.raw(), (200 + fabric.retries()) * 4200);
        let c = inj.borrow().counters();
        assert_eq!(c.injected, fabric.retries());
        assert_eq!(c.recovered, fabric.retries());
    }

    #[test]
    fn fabric_without_injector_is_cost_identical() {
        let mut fabric = IpiFabric::new(Cycles::new(4200));
        for _ in 0..10 {
            assert_eq!(fabric.send(DomainId::ARM).raw(), 4200);
        }
        assert_eq!(fabric.retries(), 0);
    }

    #[test]
    fn topology_regimes_are_ordered() {
        let t = IpiTopology::big_x86();
        let same_cluster = t.pair_mean_ns(0, 1);
        let cross_cluster = t.pair_mean_ns(0, 5);
        let cross_socket = t.pair_mean_ns(0, 30);
        assert!(same_cluster < cross_cluster);
        assert!(cross_cluster < cross_socket);
    }

    #[test]
    fn characterization_average_is_about_two_micros() {
        // §9.1.1: "The average IPI latency is about 2 µs in large machine
        // pairs". Check both big machines land within 25% of 2000 ns.
        let mut rng = SimRng::new(2024);
        for topo in [IpiTopology::big_x86(), IpiTopology::big_arm()] {
            let run = IpiCharacterization::run(topo, 8, &mut rng);
            let avg = run.average_ns();
            assert!(
                (1500.0..2500.0).contains(&avg),
                "average IPI latency {avg} ns out of the 2 µs ballpark"
            );
        }
    }

    #[test]
    fn cross_socket_pairs_are_slower_on_average() {
        let mut rng = SimRng::new(7);
        let run = IpiCharacterization::run(IpiTopology::big_arm(), 4, &mut rng);
        assert!(run.average_ns_by_socket(true) > run.average_ns_by_socket(false));
    }

    #[test]
    fn average_cycles_conversion() {
        let mut rng = SimRng::new(1);
        let run = IpiCharacterization::run(IpiTopology::big_x86(), 4, &mut rng);
        let cycles = run.average_cycles(2_100_000_000);
        // ~2 µs at 2.1 GHz ≈ 4200 cycles; accept the model's spread.
        assert!((3000..5500).contains(&cycles.raw()), "got {cycles}");
    }

    #[test]
    fn histogram_covers_all_samples() {
        let mut rng = SimRng::new(3);
        let run = IpiCharacterization::run(IpiTopology::big_x86(), 2, &mut rng);
        let hist = run.histogram(250.0, 20);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, run.samples().len());
    }

    #[test]
    fn sample_count_is_all_ordered_pairs() {
        let mut rng = SimRng::new(4);
        let topo = IpiTopology { cores: 8, ..IpiTopology::big_x86() };
        let run = IpiCharacterization::run(topo, 2, &mut rng);
        assert_eq!(run.samples().len(), 8 * 7);
    }
}
