//! Simulation substrate for the Stramash reproduction.
//!
//! This crate provides the pieces that the paper's *Stramash-QEMU* fused
//! simulator builds on top of QEMU (§7 of the paper):
//!
//! * a [`time`] module with the **instruction-count timebase** (§7.3
//!   "Stramash Timebase"): time progresses with the number of retired
//!   instructions at a fixed non-memory IPC, plus memory-access feedback
//!   supplied by the cache model,
//! * a [`config`] module describing the simulated machines (Table 1) and
//!   their memory latencies (Table 2), the hardware models of Figure 3,
//!   and the CXL snoop costs of §7.3,
//! * a [`stats`] module with per-domain counters mirroring the output of
//!   the paper's artifact (cache hits per level, IPI counts, local/remote
//!   memory hits, instruction counts, runtime),
//! * an [`ipi`] module modelling cross-ISA inter-processor interrupts
//!   (§7.2) and the IPI-latency characterisation of Figures 5 and 6,
//! * a deterministic [`rng`] so every experiment is reproducible,
//! * a [`fault`] module scheduling deterministic, replayable fault
//!   injection (message loss, IPI loss, bit flips, allocation failures)
//!   for the robustness harness,
//! * a [`trace`] module with the deterministic observability layer: a
//!   bounded typed-event ring and a metrics registry wired through
//!   every layer of the stack without costing a simulated cycle.
//!
//! # Example
//!
//! ```
//! use stramash_sim::config::SimConfig;
//! use stramash_sim::time::{Clock, Cycles};
//!
//! let cfg = SimConfig::big_pair();
//! let mut clock = Clock::new();
//! clock.retire(1_000);                 // 1000 instructions at IPC 1
//! clock.add_memory(Cycles::new(300));  // one main-memory access
//! assert_eq!(clock.cycles(), Cycles::new(1_300));
//! assert!(cfg.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod config;
pub mod epoch;
pub mod fault;
pub mod ipi;
pub mod perf;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use chaos::{shrink, ChaosEvent, ChaosSchedule};
pub use checkpoint::{CheckpointError, Decoder, Encoder};
pub use epoch::{EpochHorizon, EpochPolicy, EpochReport, WideReplay};
pub use config::{
    CacheConfig, CacheGeometry, CxlCosts, DomainConfig, HardwareModel, Interconnect, LatencyTable,
    SimConfig,
};
pub use fault::{
    shared_injector, FaultCounters, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSite,
    SharedFaultInjector,
};
pub use perf::{PerfPhase, PerfSample, PerfSession};
pub use stats::{fully_shared_estimate, DomainStats, StatsError};
pub use time::{Clock, Cycles, DomainId, Timebase};
pub use trace::{
    shared_tracer, EventClass, MetricsRegistry, SharedTracer, TraceEvent, Tracer,
};

/// Number of simulated ISA domains. The paper's prototype fuses exactly two
/// kernel instances (x86-64 and AArch64); scalability beyond a pair is
/// explicitly out of scope (§1 "Limitations and Future Work").
pub const NUM_DOMAINS: usize = 2;
