//! Simulated time: cycles, domain identifiers, and the instruction-count
//! timebase of §7.3.
//!
//! Stramash-QEMU configures QEMU to use an instruction-count based timing
//! model ("icount"): time progresses with the number of executed
//! instructions at a fixed non-memory IPC, while every memory instruction
//! is forwarded to the cache plugin which *feeds back* additional memory
//! access cycles. The artifact's runtime formula is
//!
//! ```text
//! runtime = instructions × CPI_fixed + Σ memory-feedback cycles
//! ```
//!
//! and the final cross-ISA runtime of a migrating application is the sum
//! of both domains' runtimes (Artifact Appendix A.5).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Identifier of an ISA domain (a homogeneous group of cores running one
/// kernel instance).
///
/// The reproduction, like the paper's prototype, simulates exactly two
/// domains: [`DomainId::X86`] and [`DomainId::ARM`].
///
/// ```
/// use stramash_sim::DomainId;
/// assert_eq!(DomainId::X86.other(), DomainId::ARM);
/// assert_eq!(DomainId::ARM.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(u8);

impl DomainId {
    /// The x86-64 domain (domain 0; boots at physical address 0, Fig. 4).
    pub const X86: DomainId = DomainId(0);
    /// The AArch64 domain (domain 1; boots at 0xA000_0000, Fig. 4).
    pub const ARM: DomainId = DomainId(1);

    /// Both domains, in index order.
    pub const ALL: [DomainId; 2] = [DomainId::X86, DomainId::ARM];

    /// Creates a domain id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2`; the simulator models exactly two domains.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < crate::NUM_DOMAINS, "domain index out of range: {index}");
        DomainId(index as u8)
    }

    /// The array index of this domain (0 for x86, 1 for Arm).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The *other* domain of the pair — the "remote" kernel from this
    /// domain's perspective.
    #[must_use]
    pub const fn other(self) -> DomainId {
        DomainId(1 - self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DomainId::X86 => f.write_str("x86"),
            _ => f.write_str("arm"),
        }
    }
}

/// A duration measured in simulated CPU cycles.
///
/// `Cycles` is the universal currency of the timing model: cache hit
/// latencies, memory latencies, CXL snoop overheads, IPI costs and message
/// round-trips are all expressed in cycles (Table 2 of the paper).
///
/// ```
/// use stramash_sim::Cycles;
/// let l3 = Cycles::new(50);
/// let mem = Cycles::new(300);
/// assert_eq!((l3 + mem).raw(), 350);
/// assert!(mem > l3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// The raw cycle count.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts a wall-clock duration in microseconds to cycles at the
    /// given core frequency, rounding to the nearest cycle.
    ///
    /// The paper uses this conversion for the measured 2 µs IPI latency
    /// (§9.1.1) and the 75 µs TCP message round-trip (§8.2).
    ///
    /// ```
    /// use stramash_sim::Cycles;
    /// // 2 µs at 2.1 GHz = 4200 cycles.
    /// assert_eq!(Cycles::from_micros(2.0, 2_100_000_000).raw(), 4200);
    /// ```
    #[must_use]
    pub fn from_micros(micros: f64, freq_hz: u64) -> Self {
        let cycles = micros * 1e-6 * freq_hz as f64;
        Cycles(cycles.round() as u64)
    }

    /// Converts this cycle count to nanoseconds at the given frequency.
    #[must_use]
    pub fn to_nanos(self, freq_hz: u64) -> f64 {
        self.0 as f64 * 1e9 / freq_hz as f64
    }

    /// Converts this cycle count to milliseconds at the given frequency.
    #[must_use]
    pub fn to_millis(self, freq_hz: u64) -> f64 {
        self.0 as f64 * 1e3 / freq_hz as f64
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

/// Per-domain clock implementing the icount timebase of §7.3.
///
/// A clock accumulates two components:
///
/// * `icount` — retired instructions, each costing one cycle (the fixed
///   non-memory IPC of 1 used by PriME-style manycore simulators that the
///   paper cites for its timing model), and
/// * `mem_cycles` — the memory-system feedback added by the cache plugin
///   for each memory instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    icount: u64,
    mem_cycles: Cycles,
}

impl Clock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Clock::default()
    }

    /// Retires `n` non-memory instructions.
    pub fn retire(&mut self, n: u64) {
        self.icount += n;
    }

    /// Adds memory-system feedback cycles (cache/memory/snoop latency).
    pub fn add_memory(&mut self, cycles: Cycles) {
        self.mem_cycles += cycles;
    }

    /// Total retired instruction count.
    #[must_use]
    pub const fn icount(self) -> u64 {
        self.icount
    }

    /// Accumulated memory feedback.
    #[must_use]
    pub const fn memory_cycles(self) -> Cycles {
        self.mem_cycles
    }

    /// Current simulated time: `icount × 1 + memory feedback`.
    #[must_use]
    pub fn cycles(self) -> Cycles {
        Cycles(self.icount) + self.mem_cycles
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        *self = Clock::default();
    }
}

/// The fused timebase: one [`Clock`] per domain, kept in step.
///
/// Stramash-QEMU "actively maintains the same icount speed on both QEMU
/// instances" (§8.1); the timebase exposes the same invariant by letting
/// callers query the skew between domains and compute the paper's final
/// runtime (the *sum* of both domains' runtimes for a migrating
/// single-threaded application, Artifact Appendix A.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timebase {
    clocks: [Clock; crate::NUM_DOMAINS],
}

impl Timebase {
    /// Creates a timebase with both domain clocks at zero.
    #[must_use]
    pub fn new() -> Self {
        Timebase::default()
    }

    /// The clock of `domain`.
    #[must_use]
    pub fn clock(&self, domain: DomainId) -> &Clock {
        &self.clocks[domain.index()]
    }

    /// Mutable access to the clock of `domain`.
    pub fn clock_mut(&mut self, domain: DomainId) -> &mut Clock {
        &mut self.clocks[domain.index()]
    }

    /// The paper's final-runtime formula: x86 runtime + Arm runtime.
    ///
    /// A single-threaded application that migrates between ISAs executes
    /// on exactly one domain at a time, so the total elapsed time is the
    /// sum of the time each domain spent executing it.
    #[must_use]
    pub fn total_runtime(&self) -> Cycles {
        self.clocks.iter().map(|c| c.cycles()).sum()
    }

    /// Absolute skew between the two domains' clocks.
    #[must_use]
    pub fn skew(&self) -> Cycles {
        let a = self.clocks[0].cycles();
        let b = self.clocks[1].cycles();
        if a > b {
            a - b
        } else {
            b - a
        }
    }

    /// Total instructions retired across both domains.
    #[must_use]
    pub fn total_icount(&self) -> u64 {
        self.clocks.iter().map(|c| c.icount()).sum()
    }

    /// Resets both clocks.
    pub fn reset(&mut self) {
        for c in &mut self.clocks {
            c.reset();
        }
    }

    /// Serializes both domain clocks into a checkpoint section.
    pub fn save_state(&self, e: &mut crate::checkpoint::Encoder) {
        e.tag(0x54_494d45); // "TIME"
        for c in &self.clocks {
            e.u64(c.icount);
            e.u64(c.mem_cycles.raw());
        }
    }

    /// Restores both domain clocks from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        d.tag(0x54_494d45)?;
        for c in &mut self.clocks {
            c.icount = d.u64()?;
            c.mem_cycles = Cycles::new(d.u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_other_is_involution() {
        assert_eq!(DomainId::X86.other(), DomainId::ARM);
        assert_eq!(DomainId::ARM.other(), DomainId::X86);
        for d in DomainId::ALL {
            assert_eq!(d.other().other(), d);
        }
    }

    #[test]
    #[should_panic(expected = "domain index out of range")]
    fn domain_new_rejects_out_of_range() {
        let _ = DomainId::new(2);
    }

    #[test]
    fn domain_display_names() {
        assert_eq!(DomainId::X86.to_string(), "x86");
        assert_eq!(DomainId::ARM.to_string(), "arm");
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(32);
        assert_eq!((a + b).raw(), 42);
        assert_eq!((b - a).raw(), 22);
        assert_eq!((a * 3).raw(), 30);
        assert_eq!((b / 2).raw(), 16);
        let mut c = a;
        c += b;
        assert_eq!(c.raw(), 42);
        c -= a;
        assert_eq!(c.raw(), 32);
    }

    #[test]
    fn cycles_sum_over_iterator() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.raw(), 10);
    }

    #[test]
    fn cycles_micros_conversion_matches_paper_ipi() {
        // §9.1.1: the average IPI latency is ~2 µs; at the Xeon Gold's
        // 2.1 GHz this is 4200 cycles.
        let ipi = Cycles::from_micros(2.0, 2_100_000_000);
        assert_eq!(ipi.raw(), 4200);
        // Round trip back to nanoseconds.
        let ns = ipi.to_nanos(2_100_000_000);
        assert!((ns - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn cycles_saturating_sub() {
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(9)), Cycles::ZERO);
        assert_eq!(Cycles::new(9).saturating_sub(Cycles::new(5)).raw(), 4);
    }

    #[test]
    fn clock_accumulates_icount_and_memory() {
        let mut clock = Clock::new();
        clock.retire(100);
        clock.add_memory(Cycles::new(300));
        clock.retire(50);
        assert_eq!(clock.icount(), 150);
        assert_eq!(clock.memory_cycles().raw(), 300);
        assert_eq!(clock.cycles().raw(), 450);
        clock.reset();
        assert_eq!(clock.cycles(), Cycles::ZERO);
    }

    #[test]
    fn timebase_total_runtime_is_sum_of_domains() {
        let mut tb = Timebase::new();
        tb.clock_mut(DomainId::X86).retire(1000);
        tb.clock_mut(DomainId::ARM).retire(400);
        tb.clock_mut(DomainId::ARM).add_memory(Cycles::new(100));
        assert_eq!(tb.total_runtime().raw(), 1500);
        assert_eq!(tb.skew().raw(), 500);
        assert_eq!(tb.total_icount(), 1400);
    }

    #[test]
    fn timebase_reset() {
        let mut tb = Timebase::new();
        tb.clock_mut(DomainId::X86).retire(7);
        tb.reset();
        assert_eq!(tb.total_runtime(), Cycles::ZERO);
    }
}
