//! Classification of physical addresses under the three Figure 3
//! hardware models.
//!
//! §8.1 defines how each model maps the Figure 4 layout:
//!
//! * **Separated** — every region behaves as plain NUMA: local to its
//!   host domain, remote to the other (coherence via the LLC/CXL).
//! * **Shared** — the 4–8 GB pool is *remote shared* for both domains
//!   (a CXL 3.0 memory pool); private regions keep NUMA behaviour.
//! * **Fully Shared** — a single shared memory: every access is local.

use crate::phys::{PhysAddr, PhysLayout, RegionKind};
use stramash_sim::{Cycles, DomainId, HardwareModel, LatencyTable};

/// How an access from a given domain classifies, which decides both the
/// DRAM latency charged and the statistics bucket incremented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemClass {
    /// The domain's own memory controller.
    Local,
    /// The other domain's memory, reached over the coherent interconnect.
    Remote,
    /// The shared memory pool (remote for everyone in the Shared model).
    RemoteShared,
}

/// Resolves accesses against a layout and hardware model.
#[derive(Debug, Clone)]
pub struct AddressMap {
    layout: PhysLayout,
    model: HardwareModel,
}

impl AddressMap {
    /// Creates an address map.
    #[must_use]
    pub fn new(layout: PhysLayout, model: HardwareModel) -> Self {
        AddressMap { layout, model }
    }

    /// The underlying layout.
    #[must_use]
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// The hardware model in force.
    #[must_use]
    pub fn model(&self) -> HardwareModel {
        self.model
    }

    /// Classifies an access to `addr` issued by `from`.
    ///
    /// Addresses in the 3–4 GB hole (MMIO/firmware) classify as `Local`:
    /// device access cost is modelled by the device layer, not DRAM.
    #[must_use]
    pub fn classify(&self, from: DomainId, addr: PhysAddr) -> MemClass {
        if self.model == HardwareModel::FullyShared {
            return MemClass::Local;
        }
        let Some(region) = self.layout.region_of(addr) else {
            return MemClass::Local;
        };
        match region.kind {
            RegionKind::DomainLocal(owner) => {
                if owner == from {
                    MemClass::Local
                } else {
                    MemClass::Remote
                }
            }
            RegionKind::Pool { host } => match self.model {
                // Separated: the pool halves are plain NUMA memory of
                // their host (§8.1 gives each instance its half as
                // ordinary local memory: x86 4–6 GB, Arm 6–8 GB).
                HardwareModel::Separated => {
                    if host == from {
                        MemClass::Local
                    } else {
                        MemClass::Remote
                    }
                }
                // Shared: the whole pool is remote-shared for both.
                HardwareModel::Shared => MemClass::RemoteShared,
                HardwareModel::FullyShared => MemClass::Local,
            },
        }
    }

    /// DRAM latency for a miss that classifies as `class` under the
    /// accessing domain's latency table.
    #[must_use]
    pub fn dram_latency(&self, table: &LatencyTable, class: MemClass) -> Cycles {
        match class {
            MemClass::Local => Cycles::new(table.mem as u64),
            MemClass::Remote | MemClass::RemoteShared => Cycles::new(table.remote_mem as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::GB;

    fn map(model: HardwareModel) -> AddressMap {
        AddressMap::new(PhysLayout::paper_default(), model)
    }

    #[test]
    fn separated_private_regions_are_numa() {
        let m = map(HardwareModel::Separated);
        let x86_lo = PhysAddr::new(0x1000);
        let arm_lo = PhysAddr::new(2 * GB);
        assert_eq!(m.classify(DomainId::X86, x86_lo), MemClass::Local);
        assert_eq!(m.classify(DomainId::ARM, x86_lo), MemClass::Remote);
        assert_eq!(m.classify(DomainId::ARM, arm_lo), MemClass::Local);
        assert_eq!(m.classify(DomainId::X86, arm_lo), MemClass::Remote);
    }

    #[test]
    fn separated_pool_halves_belong_to_hosts() {
        // §8.1 Separated: x86 local = 0–1.5G and 4–6G; Arm = 1.5–3G, 6–8G.
        let m = map(HardwareModel::Separated);
        let x86_pool = PhysAddr::new(5 * GB);
        let arm_pool = PhysAddr::new(7 * GB);
        assert_eq!(m.classify(DomainId::X86, x86_pool), MemClass::Local);
        assert_eq!(m.classify(DomainId::ARM, x86_pool), MemClass::Remote);
        assert_eq!(m.classify(DomainId::ARM, arm_pool), MemClass::Local);
        assert_eq!(m.classify(DomainId::X86, arm_pool), MemClass::Remote);
    }

    #[test]
    fn shared_pool_is_remote_shared_for_both() {
        // §8.1 Shared: 4–8 GB is remote for both instances.
        let m = map(HardwareModel::Shared);
        for d in DomainId::ALL {
            assert_eq!(m.classify(d, PhysAddr::new(5 * GB)), MemClass::RemoteShared);
            assert_eq!(m.classify(d, PhysAddr::new(7 * GB)), MemClass::RemoteShared);
        }
        // Private regions keep NUMA behaviour.
        assert_eq!(m.classify(DomainId::ARM, PhysAddr::new(0x1000)), MemClass::Remote);
    }

    #[test]
    fn fully_shared_everything_is_local() {
        let m = map(HardwareModel::FullyShared);
        for d in DomainId::ALL {
            for addr in [0u64, 2 * GB, 5 * GB, 7 * GB] {
                assert_eq!(m.classify(d, PhysAddr::new(addr)), MemClass::Local);
            }
        }
    }

    #[test]
    fn hole_classifies_local() {
        let m = map(HardwareModel::Separated);
        assert_eq!(m.classify(DomainId::X86, PhysAddr::new(3 * GB + 1)), MemClass::Local);
    }

    #[test]
    fn dram_latency_uses_table() {
        let m = map(HardwareModel::Shared);
        let t = LatencyTable::XEON_GOLD;
        assert_eq!(m.dram_latency(&t, MemClass::Local).raw(), 300);
        assert_eq!(m.dram_latency(&t, MemClass::Remote).raw(), 640);
        assert_eq!(m.dram_latency(&t, MemClass::RemoteShared).raw(), 640);
    }

    #[test]
    fn accessors() {
        let m = map(HardwareModel::Shared);
        assert_eq!(m.model(), HardwareModel::Shared);
        assert!(m.layout().is_disjoint());
    }
}
