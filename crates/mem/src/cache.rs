//! Set-associative caches and the per-domain three-level hierarchy.
//!
//! This reimplements the extended QEMU cache plugin of §7.3: split L1
//! instruction/data caches, a unified L2 and a unified, *inclusive* L3,
//! all with LRU replacement. MESI coherence state is tracked at the L3
//! (the coherence point between domains, as in the plugin's CXL model);
//! the upper levels track presence only and are back-invalidated when the
//! inclusive L3 evicts a line.

use stramash_sim::config::CacheGeometry;

/// MESI coherence states (§7.3 models MESI transitions with CXL snoops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Dirty, exclusive copy.
    Modified,
    /// Clean, exclusive copy.
    Exclusive,
    /// Clean copy that may exist in other caches.
    Shared,
}

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line address (`addr / line_bytes`); `u64::MAX` means empty.
    line: u64,
    /// LRU timestamp (bigger = more recent).
    stamp: u64,
    /// Coherence state (only meaningful at the L3).
    state: Mesi,
}

const EMPTY: u64 = u64::MAX;

/// A single set-associative, LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    geo: CacheGeometry,
    sets: Vec<Way>,
    set_count: u64,
    tick: u64,
}

/// Result of inserting a line into a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address.
    pub line: u64,
    /// Its state at eviction (a `Modified` eviction implies a writeback).
    pub state: Mesi,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geo: CacheGeometry) -> Self {
        let set_count = geo.sets();
        let ways = geo.ways as usize;
        Cache {
            geo,
            sets: vec![Way { line: EMPTY, stamp: 0, state: Mesi::Shared }; set_count as usize * ways],
            set_count,
            tick: 0,
        }
    }

    /// The geometry of this level.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geo
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.set_count) as usize;
        let ways = self.geo.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Probes for a line; on hit, refreshes LRU and returns its state.
    pub fn probe(&mut self, line: u64) -> Option<Mesi> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let way = self.sets[range].iter_mut().find(|w| w.line == line)?;
        way.stamp = tick;
        Some(way.state)
    }

    /// Whether the line is present, without disturbing LRU.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_range(line)].iter().any(|w| w.line == line)
    }

    /// Reads a line's state without disturbing LRU.
    #[must_use]
    pub fn state_of(&self, line: u64) -> Option<Mesi> {
        self.sets[self.set_range(line)].iter().find(|w| w.line == line).map(|w| w.state)
    }

    /// Sets the state of a resident line; returns `false` if absent.
    pub fn set_state(&mut self, line: u64, state: Mesi) -> bool {
        let range = self.set_range(line);
        if let Some(w) = self.sets[range].iter_mut().find(|w| w.line == line) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Inserts a line (replacing LRU if the set is full), returning any
    /// eviction. If the line is already resident its state is updated.
    pub fn insert(&mut self, line: u64, state: Mesi) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let ways = &mut self.sets[range];
        if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
            w.state = state;
            w.stamp = tick;
            return None;
        }
        if let Some(w) = ways.iter_mut().find(|w| w.line == EMPTY) {
            *w = Way { line, stamp: tick, state };
            return None;
        }
        let victim = ways.iter_mut().min_by_key(|w| w.stamp).expect("ways > 0");
        let evicted = Eviction { line: victim.line, state: victim.state };
        *victim = Way { line, stamp: tick, state };
        Some(evicted)
    }

    /// Removes a line; returns its state if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        let range = self.set_range(line);
        let way = self.sets[range].iter_mut().find(|w| w.line == line)?;
        let state = way.state;
        way.line = EMPTY;
        way.stamp = 0;
        Some(state)
    }

    /// Drops every line (e.g. between experiment phases).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            w.line = EMPTY;
            w.stamp = 0;
        }
        self.tick = 0;
    }

    /// Number of resident lines (for tests and occupancy metrics).
    #[must_use]
    pub fn resident(&self) -> usize {
        self.sets.iter().filter(|w| w.line != EMPTY).count()
    }

    /// Iterates every resident line with its state, without disturbing
    /// LRU. Used by the coherence auditor.
    pub fn lines(&self) -> impl Iterator<Item = (u64, Mesi)> + '_ {
        self.sets.iter().filter(|w| w.line != EMPTY).map(|w| (w.line, w.state))
    }
}

/// The per-domain hierarchy: split L1, unified L2, inclusive L3.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// L1 instruction cache (presence only).
    pub l1i: Cache,
    /// L1 data cache (presence only).
    pub l1d: Cache,
    /// Unified L2 (presence only).
    pub l2: Cache,
    /// Unified, inclusive L3 — the coherence point holding MESI state.
    pub l3: Cache,
}

impl CacheHierarchy {
    /// Builds a hierarchy from a domain's cache configuration.
    #[must_use]
    pub fn new(cfg: &stramash_sim::CacheConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
        }
    }

    /// Whether any level holds the line (the L3 suffices: inclusive).
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.l3.contains(line)
    }

    /// The coherence state of a resident line.
    #[must_use]
    pub fn state_of(&self, line: u64) -> Option<Mesi> {
        self.l3.state_of(line)
    }

    /// Invalidates a line in every level; returns the L3 state it had.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        self.l1i.invalidate(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line)
    }

    /// Whether a line is present in a level above the L3 (used to price
    /// back-invalidations on inclusive evictions).
    #[must_use]
    pub fn in_upper_levels(&self, line: u64) -> bool {
        self.l1i.contains(line) || self.l1d.contains(line) || self.l2.contains(line)
    }

    /// Drops the line from the upper levels only (back-invalidation).
    pub fn back_invalidate_upper(&mut self, line: u64) {
        self.l1i.invalidate(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
    }

    /// Flushes every level.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::CacheConfig;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheGeometry::new(256, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(10), None);
        assert_eq!(c.insert(10, Mesi::Exclusive), None);
        assert_eq!(c.probe(10), Some(Mesi::Exclusive));
        assert!(c.contains(10));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (2 sets → even lines share set 0).
        c.insert(0, Mesi::Shared);
        c.insert(2, Mesi::Shared);
        c.probe(0); // refresh 0, so 2 is LRU
        let ev = c.insert(4, Mesi::Shared).expect("set full, must evict");
        assert_eq!(ev.line, 2);
        assert!(c.contains(0));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(8, Mesi::Shared);
        assert_eq!(c.insert(8, Mesi::Modified), None);
        assert_eq!(c.state_of(8), Some(Mesi::Modified));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn eviction_reports_modified_state() {
        let mut c = tiny();
        c.insert(0, Mesi::Modified);
        c.insert(2, Mesi::Shared);
        c.probe(2);
        // Refresh 2; 0 is LRU and dirty.
        let ev = c.insert(4, Mesi::Shared).unwrap();
        assert_eq!(ev, Eviction { line: 0, state: Mesi::Modified });
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(6, Mesi::Exclusive);
        assert_eq!(c.invalidate(6), Some(Mesi::Exclusive));
        assert_eq!(c.invalidate(6), None);
        assert!(!c.contains(6));
    }

    #[test]
    fn set_state_on_missing_line_is_false() {
        let mut c = tiny();
        assert!(!c.set_state(1, Mesi::Shared));
        c.insert(1, Mesi::Exclusive);
        assert!(c.set_state(1, Mesi::Shared));
        assert_eq!(c.state_of(1), Some(Mesi::Shared));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.insert(0, Mesi::Shared);
        c.insert(1, Mesi::Shared);
        c.flush();
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0,2 → set 0; lines 1,3 → set 1.
        c.insert(0, Mesi::Shared);
        c.insert(2, Mesi::Shared);
        c.insert(1, Mesi::Shared);
        c.insert(3, Mesi::Shared);
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn hierarchy_inclusive_queries() {
        let mut h = CacheHierarchy::new(&CacheConfig::paper_default());
        h.l3.insert(100, Mesi::Exclusive);
        h.l2.insert(100, Mesi::Exclusive);
        h.l1d.insert(100, Mesi::Exclusive);
        assert!(h.contains(100));
        assert!(h.in_upper_levels(100));
        h.back_invalidate_upper(100);
        assert!(!h.in_upper_levels(100));
        assert!(h.contains(100), "back-invalidation keeps the L3 copy");
        assert_eq!(h.invalidate(100), Some(Mesi::Exclusive));
        assert!(!h.contains(100));
    }

    #[test]
    fn hierarchy_flush() {
        let mut h = CacheHierarchy::new(&CacheConfig::paper_default());
        h.l3.insert(5, Mesi::Shared);
        h.flush();
        assert!(!h.contains(5));
    }
}
