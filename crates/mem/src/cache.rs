//! Set-associative caches and the per-domain three-level hierarchy.
//!
//! This reimplements the extended QEMU cache plugin of §7.3: split L1
//! instruction/data caches, a unified L2 and a unified, *inclusive* L3,
//! all with LRU replacement. MESI coherence state is tracked at the L3
//! (the coherence point between domains, as in the plugin's CXL model);
//! the upper levels track presence only and are back-invalidated when the
//! inclusive L3 evicts a line.

use stramash_sim::config::CacheGeometry;

/// MESI coherence states (§7.3 models MESI transitions with CXL snoops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Dirty, exclusive copy.
    Modified,
    /// Clean, exclusive copy.
    Exclusive,
    /// Clean copy that may exist in other caches.
    Shared,
}

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line address (`addr / line_bytes`); `u64::MAX` means empty.
    line: u64,
    /// LRU timestamp (bigger = more recent).
    stamp: u64,
    /// Coherence state (only meaningful at the L3).
    state: Mesi,
}

const EMPTY: u64 = u64::MAX;

/// Checkpoint wire code for a MESI state.
fn mesi_code(m: Mesi) -> u8 {
    match m {
        Mesi::Modified => 0,
        Mesi::Exclusive => 1,
        Mesi::Shared => 2,
    }
}

/// Inverse of [`mesi_code`].
fn mesi_from_code(b: u8) -> Result<Mesi, stramash_sim::checkpoint::CheckpointError> {
    match b {
        0 => Ok(Mesi::Modified),
        1 => Ok(Mesi::Exclusive),
        2 => Ok(Mesi::Shared),
        _ => Err(stramash_sim::checkpoint::CheckpointError::Malformed("MESI state code")),
    }
}

/// A single set-associative, LRU cache level.
///
/// The probe/insert paths exist twice: the optimised default (power-of-
/// two set masking, an MRU-first way check, an L0 "same line again"
/// short circuit, and a single-pass insert scan) and the original
/// reference implementation (`fast_paths == false`: modulo set index,
/// straight-line scans). Both produce bit-identical LRU state, MESI
/// state, evictions and statistics — the golden-stats tier-1 test and
/// the `crit_simulator` harness hold them against each other.
#[derive(Debug, Clone)]
pub struct Cache {
    geo: CacheGeometry,
    /// Per-way records, authoritative **only under the slow path**. The
    /// fast path works exclusively on the dense `tags`/`states`/`perms`
    /// arrays; toggling converts the full representation in both
    /// directions (`rebuild_fast_state` / `materialize_sets`).
    sets: Vec<Way>,
    set_count: u64,
    /// `set_count - 1`; valid because set counts are power-of-two
    /// (enforced by `SimConfig::validate` / `CacheGeometry::new`).
    set_mask: u64,
    tick: u64,
    /// Fast-path mirror of each way's `line`, densely packed so a set's
    /// tags share one host cache line and the match scan vectorises.
    tags: Vec<u64>,
    /// Fast-path mirror of each way's `state` (1 byte per way), so
    /// probe hits never touch the 24-byte `Way` records at all.
    states: Vec<Mesi>,
    /// Fast-path per-set LRU order, packed 4 bits per way: nibble `r`
    /// holds the way index at recency rank `r` (0 = MRU, `ways-1` =
    /// LRU/victim). Replaces per-hit stamp writes with a register
    /// permutation update; equivalent to the stamp order because both
    /// are move-to-front on exactly the same events.
    perms: Vec<u64>,
    /// Fast-path per-set resident-way count. Full sets — the steady
    /// state — skip empty-way tracking in the miss scans entirely.
    occ: Vec<u8>,
    /// L0 hint: the line of the last probe hit and the slot/set it
    /// lives in. Self-validating — the tag is re-checked before use, so
    /// no invalidation bookkeeping is needed on eviction.
    last_line: u64,
    last_slot: usize,
    fast_paths: bool,
}

/// Identity LRU permutation (nibble `r` = way `r`); ranks at and above
/// the way count are never read.
const PERM_IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

/// The way index at recency rank `rank`.
#[inline]
fn perm_way_at(perm: u64, rank: u32) -> usize {
    ((perm >> (4 * rank)) & 0xF) as usize
}

/// Bit offset (4 × rank) of the lowest nibble equal to `way`, found
/// branchlessly with SWAR zero-nibble detection. `way` must be present
/// in the low `ways` nibbles; any stale duplicate in the unused high
/// ranks sits above the real occurrence and is never selected.
#[inline]
fn perm_find(perm: u64, way: u64) -> u32 {
    let x = perm ^ (way.wrapping_mul(0x1111_1111_1111_1111));
    let z = x.wrapping_sub(0x1111_1111_1111_1111) & !x & 0x8888_8888_8888_8888;
    debug_assert!(z != 0, "way {way} absent from permutation {perm:#x}");
    // trailing_zeros is 4r+3; clear the low bits to get 4r. (SWAR
    // borrow propagation can flag nibbles above the first match, never
    // below it, so the lowest set bit is always the true occurrence.)
    z.trailing_zeros() & !3
}

/// Moves the `way` known to sit at bit offset `idx` (4 × its rank) to
/// the MRU nibble, shifting the ranks it overtakes down by one.
#[inline]
fn perm_promote_at(perm: u64, way: u64, idx: u32) -> u64 {
    let below = perm & ((1u64 << idx) - 1);
    // Double shift: `idx + 4` may be 64, which a single shift forbids.
    let above = (perm >> idx >> 4) << idx << 4;
    above | (below << 4) | way
}

/// Moves `way` to the MRU (rank-0) nibble, shifting the ranks it
/// overtakes down by one. No-op if it is already MRU.
#[inline]
fn perm_promote(perm: u64, way: usize) -> u64 {
    let way = way as u64;
    perm_promote_at(perm, way, perm_find(perm, way))
}

/// Scans a set's ways in LRU-recency order, starting at rank 1 (the
/// caller has already checked the MRU way). On a hit, returns the way
/// index and its bit offset in the permutation, so the promote needs
/// no find. Hit/miss and the found slot are identical to a slot-order
/// scan — a line is resident in at most one way — but temporal
/// locality lands hits at the low ranks, where this order exits first.
#[inline]
fn scan_recency(tags: &[u64], base: usize, perm: u64, ways: usize, line: u64) -> Option<(usize, u32)> {
    let mut p = perm >> 4;
    for r in 1..ways as u32 {
        let w = (p & 0xF) as usize;
        if tags[base + w] == line {
            return Some((w, 4 * r));
        }
        p >>= 4;
    }
    None
}

/// Branchless presence test over one fixed-width set: `|`-accumulated
/// compares with no early exit, which the backend turns into SIMD
/// compares — a *miss* (the case that must scan everything anyway)
/// costs a couple of vector ops instead of `ways` compare-and-branch
/// iterations.
#[inline]
fn contain_fixed<const N: usize>(t: &[u64], line: u64) -> bool {
    let t: &[u64; N] = t.try_into().expect("slice length equals the way count");
    let mut hit = false;
    for &x in t {
        hit |= x == line;
    }
    hit
}

/// Presence test over a set's packed tags, specialised for the common
/// associativities so the compare chain vectorises.
#[inline]
fn tags_contain(t: &[u64], line: u64) -> bool {
    match t.len() {
        4 => contain_fixed::<4>(t, line),
        8 => contain_fixed::<8>(t, line),
        16 => contain_fixed::<16>(t, line),
        _ => t.contains(&line),
    }
}

/// Sentinel in a classified way slot: the lane hit (or missed) but the
/// sweep did not extract *which* way — the commit pass re-finds it with
/// the probe cascade. The portable sweep always reports this; the
/// explicit-SIMD sweeps get the way for free from their compare masks.
pub const WAY_UNKNOWN: u8 = u8::MAX;

/// Portable lane sweep: per lane, the same `|`-accumulated compare
/// chain as [`contain_fixed`] (which the backend lowers to vector
/// compares) decides hit/miss; ways are left [`WAY_UNKNOWN`] because
/// extracting a bit *position* from the chain defeats the
/// vectorisation — the commit cascade re-finds it in one or two loads.
///
/// Safety contract shared by every `classify_sweep_*` variant: the
/// caller (`classify_lanes`) guarantees `tags.len()` is `set_count *
/// N` with `set_mask == set_count - 1`, so `(line & set_mask) * N + N
/// <= tags.len()` for any line, and `ways.len() >= lines.len()`. The
/// unchecked indexing below relies on exactly that; the sweeps are the
/// replay's innermost loop and the checks cost more than the compares.
#[inline]
fn classify_sweep_portable<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    let mut mask = 0u32;
    for (j, &line) in lines.iter().enumerate() {
        let base = (line & set_mask) as usize * N;
        // SAFETY: see the contract above.
        let t: &[u64; N] = unsafe { &*tags.as_ptr().add(base).cast() };
        let mut hit = false;
        for &x in t {
            hit |= x == line;
        }
        mask |= u32::from(hit) << j;
        // SAFETY: `ways.len() >= lines.len() > j`.
        unsafe { *ways.get_unchecked_mut(j) = WAY_UNKNOWN };
    }
    mask
}

/// SSE2 lane sweep: two tags per 128-bit register, 64-bit equality
/// composed from the 32-bit compare (SSE2 has no `cmpeq_epi64`) by
/// AND-ing each half with its swapped neighbour. SSE2 is part of the
/// x86-64 baseline, so no runtime detection is needed.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn classify_sweep_sse2<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    use std::arch::x86_64::{
        _mm_and_si128, _mm_castsi128_pd, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_pd,
        _mm_set1_epi64x, _mm_shuffle_epi32,
    };
    let mut mask = 0u32;
    for (j, &line) in lines.iter().enumerate() {
        let base = (line & set_mask) as usize * N;
        // SAFETY: SSE2 is baseline; the classify_sweep contract keeps
        // every 16-byte load inside `tags`.
        let m = unsafe {
            let t = tags.as_ptr().add(base);
            let needle = _mm_set1_epi64x(line as i64);
            let mut m = 0u32;
            for i in 0..N / 2 {
                let v = _mm_loadu_si128(t.add(2 * i).cast());
                let eq32 = _mm_cmpeq_epi32(v, needle);
                let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001));
                m |= (_mm_movemask_pd(_mm_castsi128_pd(eq64)) as u32) << (2 * i);
            }
            m
        };
        mask |= u32::from(m != 0) << j;
        // SAFETY: `ways.len() >= lines.len() > j`.
        unsafe { *ways.get_unchecked_mut(j) = m.trailing_zeros() as u8 };
    }
    mask
}

/// AVX2 lane sweep: native 64-bit compares, four tags per 256-bit
/// register; the compare's sign mask hands back the matching way.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn classify_sweep_avx2<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    use std::arch::x86_64::{
        _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set1_epi64x,
    };
    let mut mask = 0u32;
    for (j, &line) in lines.iter().enumerate() {
        let base = (line & set_mask) as usize * N;
        let needle = _mm256_set1_epi64x(line as i64);
        let mut m = 0u32;
        for i in 0..N / 4 {
            // SAFETY: the caller detected AVX2; the classify_sweep
            // contract keeps every 32-byte load inside `tags`.
            let eq = unsafe {
                _mm256_cmpeq_epi64(_mm256_loadu_si256(tags.as_ptr().add(base + 4 * i).cast()), needle)
            };
            m |= (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32) << (4 * i);
        }
        mask |= u32::from(m != 0) << j;
        // SAFETY: `ways.len() >= lines.len() > j`.
        unsafe { *ways.get_unchecked_mut(j) = m.trailing_zeros() as u8 };
    }
    mask
}

/// AVX-512F lane sweep: one `vpcmpeqq` covers an entire 8-way set and
/// writes the way mask straight into a mask register.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn classify_sweep_avx512<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    use std::arch::x86_64::{_mm512_cmpeq_epi64_mask, _mm512_loadu_si512, _mm512_set1_epi64};
    let mut mask = 0u32;
    for (j, &line) in lines.iter().enumerate() {
        let base = (line & set_mask) as usize * N;
        let needle = _mm512_set1_epi64(line as i64);
        let mut m = 0u32;
        for i in 0..N / 8 {
            // SAFETY: the caller detected AVX-512F; the classify_sweep
            // contract keeps every 64-byte load inside `tags`.
            let eq = unsafe {
                _mm512_cmpeq_epi64_mask(_mm512_loadu_si512(tags.as_ptr().add(base + 8 * i).cast()), needle)
            };
            m |= u32::from(eq) << (8 * i);
        }
        mask |= u32::from(m != 0) << j;
        // SAFETY: `ways.len() >= lines.len() > j`.
        unsafe { *ways.get_unchecked_mut(j) = m.trailing_zeros() as u8 };
    }
    mask
}

/// NEON lane sweep: native 64-bit compares (`vceqq_u64`), two tags per
/// register. NEON is part of the AArch64 baseline.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline]
fn classify_sweep_neon<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    use std::arch::aarch64::{vceqq_u64, vdupq_n_u64, vgetq_lane_u64, vld1q_u64};
    let mut mask = 0u32;
    for (j, &line) in lines.iter().enumerate() {
        let base = (line & set_mask) as usize * N;
        // SAFETY: NEON is mandatory on AArch64; the classify_sweep
        // contract keeps every 16-byte load inside `tags`.
        let m = unsafe {
            let t = tags.as_ptr().add(base);
            let needle = vdupq_n_u64(line);
            let mut m = 0u32;
            for i in 0..N / 2 {
                let eq = vceqq_u64(vld1q_u64(t.add(2 * i)), needle);
                m |= ((vgetq_lane_u64(eq, 0) & 1) as u32) << (2 * i);
                m |= ((vgetq_lane_u64(eq, 1) & 1) as u32) << (2 * i + 1);
            }
            m
        };
        mask |= u32::from(m != 0) << j;
        // SAFETY: `ways.len() >= lines.len() > j`.
        unsafe { *ways.get_unchecked_mut(j) = m.trailing_zeros() as u8 };
    }
    mask
}

/// Best lane sweep for fixed associativity `N` (a multiple of the
/// widest usable vector): explicit `core::arch` forms under the `simd`
/// feature — AVX-512F / AVX2 by runtime detection, SSE2 or NEON as the
/// architecture baseline — and the portable compare chain otherwise.
#[inline]
fn classify_sweep<const N: usize>(
    tags: &[u64],
    set_mask: u64,
    lines: &[u64],
    ways: &mut [u8],
) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if N.is_multiple_of(8) && std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature detected at runtime.
            return unsafe { classify_sweep_avx512::<N>(tags, set_mask, lines, ways) };
        }
        if N.is_multiple_of(4) && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature detected at runtime.
            return unsafe { classify_sweep_avx2::<N>(tags, set_mask, lines, ways) };
        }
        return classify_sweep_sse2::<N>(tags, set_mask, lines, ways);
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return classify_sweep_neon::<N>(tags, set_mask, lines, ways);
    }
    #[allow(unreachable_code)]
    classify_sweep_portable::<N>(tags, set_mask, lines, ways)
}

/// Moves `way` to the LRU (rank `ways-1`) nibble — used when a way is
/// invalidated, mirroring the slow path's `stamp = 0`.
#[inline]
fn perm_demote(perm: u64, way: usize, ways: u32) -> u64 {
    let way64 = way as u64;
    let last = ways - 1;
    if perm_way_at(perm, last) == way {
        return perm;
    }
    let idx = perm_find(perm, way64);
    let below = perm & ((1u64 << idx) - 1);
    let shifted = (perm >> idx >> 4) << idx;
    let res = below | shifted;
    (res & !(0xFu64 << (4 * last))) | (way64 << (4 * last))
}

/// Result of inserting a line into a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address.
    pub line: u64,
    /// Its state at eviction (a `Modified` eviction implies a writeback).
    pub state: Mesi,
}

/// Result of [`Cache::probe_or_plan`]: either a hit (identical to
/// [`Cache::probe`]) or a miss carrying the fill slot the insert scan
/// would choose, computed in the same pass.
#[derive(Debug, Clone, Copy)]
pub enum ProbeFill {
    /// The line is resident; LRU was refreshed. (Presence only — the
    /// streaming call sites never read the MESI state here, coherence
    /// upgrades go through `state_of`/`set_state` at the L3.)
    Hit,
    /// The line is absent; `plan` pre-computes the fill.
    Miss(FillPlan),
}

/// A pre-computed fill decision for a line that just missed: the slot
/// the classic insert scan would pick (first empty way, else the first
/// way with the minimal stamp). Only valid while the set is untouched
/// between the probe and [`Cache::fill_planned`] — the caller
/// guarantees that (upper-level fills on an L2/L3 hit; a full memory
/// miss drops the plan because inclusive back-invalidation may edit
/// the set).
#[derive(Debug, Clone, Copy)]
pub struct FillPlan {
    /// Global way index to fill; `usize::MAX` defers to the classic
    /// [`Cache::insert`] (the reference slow path).
    slot: usize,
    /// The set index (for the MRU hint update).
    set: usize,
    /// The slot's current LRU rank, when the probe learned it (an LRU
    /// victim is at rank `ways-1`); `u32::MAX` when unknown (empty-way
    /// fills), in which case the fill falls back to the SWAR find.
    rank: u32,
}

impl FillPlan {
    /// A plan that defers to the reference `insert` path.
    const DEFER: FillPlan = FillPlan { slot: usize::MAX, set: 0, rank: u32::MAX };
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geo: CacheGeometry) -> Self {
        let set_count = geo.sets();
        assert!(
            set_count.is_power_of_two(),
            "cache set count must be a power of two (got {set_count}); \
             SimConfig::validate reports this as ConfigError::NonPowerOfTwoSets"
        );
        let ways = geo.ways as usize;
        let slots = set_count as usize * ways;
        Cache {
            geo,
            sets: vec![Way { line: EMPTY, stamp: 0, state: Mesi::Shared }; slots],
            set_count,
            set_mask: set_count - 1,
            tick: 0,
            tags: vec![EMPTY; slots],
            states: vec![Mesi::Shared; slots],
            perms: vec![PERM_IDENTITY; set_count as usize],
            occ: vec![0; set_count as usize],
            last_line: EMPTY,
            last_slot: 0,
            // The packed LRU permutation holds 16 4-bit ranks; wider
            // caches fall back to the reference path permanently.
            fast_paths: ways <= 16,
        }
    }

    /// Enables or disables the host-side fast paths (set masking,
    /// MRU-first probe, L0 short circuit, packed-LRU scans). Simulated
    /// behaviour is identical either way; the toggle exists so the
    /// benchmark harness can measure the old path and the golden-stats
    /// test can assert cycle identity between the two. Switching
    /// converts the LRU representation: enabling rebuilds the tag
    /// mirrors and packed permutations from the stamps, disabling
    /// materialises order-preserving stamps from the permutations.
    pub fn set_fast_paths(&mut self, enabled: bool) {
        let enabled = enabled && self.geo.ways <= 16;
        if enabled == self.fast_paths {
            return;
        }
        if enabled {
            self.rebuild_fast_state();
        } else {
            self.materialize_sets();
        }
        self.fast_paths = enabled;
    }

    /// Rebuilds `tags`, `states` and `perms` from the authoritative
    /// `sets` (stamps define recency; ties — possible only among empty
    /// ways, since every real touch writes a unique tick — break by
    /// slot order).
    fn rebuild_fast_state(&mut self) {
        for (slot, w) in self.sets.iter().enumerate() {
            self.tags[slot] = w.line;
            self.states[slot] = w.state;
        }
        let ways = self.geo.ways as usize;
        let mut order: Vec<usize> = Vec::with_capacity(ways);
        for set in 0..self.set_count as usize {
            let base = set * ways;
            order.clear();
            order.extend(0..ways);
            order.sort_by_key(|&i| (std::cmp::Reverse(self.sets[base + i].stamp), i));
            let mut perm = PERM_IDENTITY;
            for (r, &i) in order.iter().enumerate() {
                perm = (perm & !(0xFu64 << (4 * r))) | ((i as u64) << (4 * r));
            }
            self.perms[set] = perm;
            self.occ[set] =
                self.sets[base..base + ways].iter().filter(|w| w.line != EMPTY).count() as u8;
        }
        self.last_line = EMPTY;
        self.last_slot = 0;
    }

    /// Rebuilds the `sets` records from the fast-path arrays: lines and
    /// states come straight from the mirrors, and stamps are written
    /// consistent with the packed LRU order so the slow path's
    /// `min_by_key` picks the same victims. Only the relative stamp
    /// order within a set is observable, never the values; empty ways
    /// get the slow path's canonical stamp 0.
    fn materialize_sets(&mut self) {
        let ways = self.geo.ways as usize;
        // Ensure rank arithmetic cannot underflow and stays below every
        // future tick.
        self.tick = self.tick.max(ways as u64);
        let t = self.tick;
        for set in 0..self.set_count as usize {
            let base = set * ways;
            let perm = self.perms[set];
            for r in 0..ways {
                let slot = base + perm_way_at(perm, r as u32);
                let line = self.tags[slot];
                self.sets[slot] = Way {
                    line,
                    stamp: if line == EMPTY { 0 } else { t - r as u64 },
                    state: self.states[slot],
                };
            }
        }
    }

    /// The geometry of this level.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geo
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.fast_paths {
            (line & self.set_mask) as usize
        } else {
            (line % self.set_count) as usize
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = self.set_of(line);
        let ways = self.geo.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Probes for a line; on hit, refreshes LRU and returns its state.
    #[inline]
    pub fn probe(&mut self, line: u64) -> Option<Mesi> {
        if !self.fast_paths {
            self.tick += 1;
            let tick = self.tick;
            let range = self.set_range(line);
            let way = self.sets[range].iter_mut().find(|w| w.line == line)?;
            way.stamp = tick;
            return Some(way.state);
        }
        // L0: the same line probed again. The tag re-check makes the
        // hint self-validating, so eviction needs no bookkeeping here.
        if line == self.last_line && line != EMPTY && self.tags[self.last_slot] == line {
            let set = (line & self.set_mask) as usize;
            let way = self.last_slot - set * self.geo.ways as usize;
            // Already-MRU promotes are the common case here and are
            // identity — skipping them keeps the L0 hit store-free.
            if (self.perms[set] & 0xF) as usize != way {
                self.perms[set] = perm_promote(self.perms[set], way);
            }
            return Some(self.states[self.last_slot]);
        }
        let set = (line & self.set_mask) as usize;
        let ways = self.geo.ways as usize;
        let base = set * ways;
        let perm = self.perms[set];
        // MRU-first: the way that hit or filled last usually hits again
        // (and then the permutation needs no update at all).
        let mru_slot = base + (perm & 0xF) as usize;
        if self.tags[mru_slot] == line {
            self.last_line = line;
            self.last_slot = mru_slot;
            return Some(self.states[mru_slot]);
        }
        // Rank-1 next: alternating two-line sets hit here every time,
        // with the promote offset known statically.
        let w1 = ((perm >> 4) & 0xF) as usize;
        if ways > 1 && self.tags[base + w1] == line {
            self.perms[set] = perm_promote_at(perm, w1 as u64, 4);
            // No hint update: the line is MRU now, so a repeat access
            // hits the MRU check (which sets the hint) — scan hits stay
            // store-light.
            return Some(self.states[base + w1]);
        }
        if tags_contain(&self.tags[base..base + ways], line) {
            let (w, idx) = scan_recency(&self.tags, base, perm, ways, line)
                .expect("contained line is found by the recency scan");
            self.perms[set] = perm_promote_at(perm, w as u64, idx);
            return Some(self.states[base + w]);
        }
        None
    }

    /// Presence-only probe: refreshes LRU exactly like [`Cache::probe`]
    /// but never reads the state array — the streaming L2/L3 probes only
    /// ask *whether* the level hit (coherence state is handled at the L3
    /// through `state_of`/`set_state`), so the hot loop skips one array
    /// touch per level.
    #[inline]
    pub fn probe_hit(&mut self, line: u64) -> bool {
        if !self.fast_paths {
            return self.probe(line).is_some();
        }
        if line == self.last_line && line != EMPTY && self.tags[self.last_slot] == line {
            let set = (line & self.set_mask) as usize;
            let way = self.last_slot - set * self.geo.ways as usize;
            if (self.perms[set] & 0xF) as usize != way {
                self.perms[set] = perm_promote(self.perms[set], way);
            }
            return true;
        }
        let set = (line & self.set_mask) as usize;
        let ways = self.geo.ways as usize;
        let base = set * ways;
        let perm = self.perms[set];
        let mru_slot = base + (perm & 0xF) as usize;
        if self.tags[mru_slot] == line {
            self.last_line = line;
            self.last_slot = mru_slot;
            return true;
        }
        let w1 = ((perm >> 4) & 0xF) as usize;
        if ways > 1 && self.tags[base + w1] == line {
            self.perms[set] = perm_promote_at(perm, w1 as u64, 4);
            return true;
        }
        if tags_contain(&self.tags[base..base + ways], line) {
            let (w, idx) = scan_recency(&self.tags, base, perm, ways, line)
                .expect("contained line is found by the recency scan");
            self.perms[set] = perm_promote_at(perm, w as u64, idx);
            return true;
        }
        false
    }

    /// Probes for a line like [`Cache::probe`], but on a miss also
    /// returns the fill slot the subsequent insert scan would choose —
    /// computed in the *same* way walk, so the hot L1-miss/L2-hit
    /// pattern scans the set once instead of twice. The plan replicates
    /// the classic choice exactly (first empty way, else the first way
    /// with the minimal stamp, matching `min_by_key`), so consuming it
    /// via [`Cache::fill_planned`] is state-identical to calling
    /// [`Cache::insert`] — provided the set is untouched in between,
    /// which the `MemorySystem` call sites guarantee.
    #[inline]
    pub fn probe_or_plan(&mut self, line: u64) -> ProbeFill {
        if !self.fast_paths {
            // Reference path: the original probe; a miss defers the
            // fill to the original three-pass insert.
            self.tick += 1;
            let tick = self.tick;
            let range = self.set_range(line);
            if let Some(w) = self.sets[range].iter_mut().find(|w| w.line == line) {
                w.stamp = tick;
                return ProbeFill::Hit;
            }
            return ProbeFill::Miss(FillPlan::DEFER);
        }
        if line == self.last_line && line != EMPTY && self.tags[self.last_slot] == line {
            let set = (line & self.set_mask) as usize;
            let way = self.last_slot - set * self.geo.ways as usize;
            if (self.perms[set] & 0xF) as usize != way {
                self.perms[set] = perm_promote(self.perms[set], way);
            }
            return ProbeFill::Hit;
        }
        let set = (line & self.set_mask) as usize;
        let ways = self.geo.ways as usize;
        let base = set * ways;
        let perm = self.perms[set];
        let mru_slot = base + (perm & 0xF) as usize;
        if self.tags[mru_slot] == line {
            self.last_line = line;
            self.last_slot = mru_slot;
            return ProbeFill::Hit;
        }
        let w1 = ((perm >> 4) & 0xF) as usize;
        if ways > 1 && self.tags[base + w1] == line {
            self.perms[set] = perm_promote_at(perm, w1 as u64, 4);
            return ProbeFill::Hit;
        }
        if tags_contain(&self.tags[base..base + ways], line) {
            let (w, idx) = scan_recency(&self.tags, base, perm, ways, line)
                .expect("contained line is found by the recency scan");
            self.perms[set] = perm_promote_at(perm, w as u64, idx);
            return ProbeFill::Hit;
        }
        // The victim is the LRU rank of the packed permutation — no
        // stamp scan needed; its rank rides along so the fill can
        // promote without re-finding the way. Full sets (the steady
        // state, tracked in `occ`) skip the empty-way search.
        let (slot, rank) = if self.occ[set] == ways as u8 {
            let last = self.geo.ways - 1;
            (base + perm_way_at(perm, last), last)
        } else {
            let first_empty = self.tags[base..base + ways]
                .iter()
                .position(|&t| t == EMPTY)
                .expect("occ < ways implies an empty way");
            (base + first_empty, u32::MAX)
        };
        ProbeFill::Miss(FillPlan { slot, set, rank })
    }

    /// Consumes a [`FillPlan`] from [`Cache::probe_or_plan`], filling
    /// the planned slot. Equivalent to `insert(line, state)` under the
    /// plan's validity condition (set untouched since the probe); the
    /// eviction, if any, is the one upper-level fills discard anyway.
    #[inline]
    pub fn fill_planned(&mut self, plan: FillPlan, line: u64, state: Mesi) {
        if plan.slot == usize::MAX {
            self.insert(line, state);
            return;
        }
        let way = (plan.slot - plan.set * self.geo.ways as usize) as u64;
        self.tags[plan.slot] = line;
        self.states[plan.slot] = state;
        let perm = self.perms[plan.set];
        let idx = if plan.rank != u32::MAX {
            4 * plan.rank
        } else {
            // An empty way was planned: it joins the residents.
            self.occ[plan.set] += 1;
            perm_find(perm, way)
        };
        self.perms[plan.set] = perm_promote_at(perm, way, idx);
    }

    /// Pure lane classification for the vectorised plan replay
    /// ([`MemorySystem::run_plan`]'s dense path): bit `j` of the
    /// returned mask is set iff `lines[j]` is resident, and `ways[j]`
    /// records the way it was found in so the commit pass can skip the
    /// probe cascade. No LRU, hint, or stat side effects — and since
    /// *hits* never move tags, a batch classified up front stays valid
    /// across the leading all-hit prefix the caller then commits via
    /// [`Cache::touch_hits`].
    ///
    /// [`MemorySystem::run_plan`]: crate::system::MemorySystem::run_plan
    #[inline]
    #[must_use]
    pub fn classify_lanes(&self, lines: &[u64], ways: &mut [u8]) -> u32 {
        debug_assert!(self.fast_paths, "classify_lanes is a fast-path primitive");
        debug_assert!(lines.len() <= 32 && ways.len() >= lines.len());
        // Dispatch on the associativity once per batch, so the inner
        // sweep is monomorphic and the per-set compares unroll.
        match self.geo.ways {
            4 => classify_sweep::<4>(&self.tags, self.set_mask, lines, ways),
            8 => classify_sweep::<8>(&self.tags, self.set_mask, lines, ways),
            16 => classify_sweep::<16>(&self.tags, self.set_mask, lines, ways),
            _ => {
                let wc = self.geo.ways as usize;
                let mut mask = 0u32;
                for (j, &line) in lines.iter().enumerate() {
                    let base = (line & self.set_mask) as usize * wc;
                    mask |= u32::from(tags_contain(&self.tags[base..base + wc], line)) << j;
                    ways[j] = WAY_UNKNOWN;
                }
                mask
            }
        }
    }

    /// Commits the LRU/hint side effects of a run of probes known to
    /// hit, with the ways already located by [`Cache::classify_lanes`].
    /// Per element it is state-identical to [`Cache::probe_or_plan`]'s
    /// hit arms: the L0 arm promotes without moving the hint, a hit on
    /// the MRU way only moves the hint, and any other way is promoted
    /// to MRU from its current rank (rank 1 — the cascade's dedicated
    /// arm — short-circuits `perm_find`, which would return the same
    /// offset). The arm order matters: the hint trajectory is
    /// serialised by checkpoints, so it must match the probe's exactly.
    /// Batching lets the field borrows split (`&tags` / `&mut perms`),
    /// so the permutation stores can't be taken to alias the tag loads
    /// and the whole run schedules with cross-element parallelism.
    #[inline]
    pub fn touch_hits(&mut self, lines: &[u64], ways: &[u8]) {
        debug_assert!(self.fast_paths, "touch_hits is a fast-path primitive");
        debug_assert!(ways.len() >= lines.len());
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            // Whole batches of plain promotes vectorise: AVX-512CD's
            // conflict detect proves the lanes hit eight *distinct*
            // sets (so the permutation updates commute) and the guard
            // compares prove no lane takes the L0 or MRU arm (the two
            // arms with hint side effects). Any other batch — and the
            // tail — drops to the scalar cascade, which is the
            // reference semantics.
            if ways.first().copied() != Some(WAY_UNKNOWN)
                && is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512cd")
            {
                let mut k = 0usize;
                while lines.len() - k >= 8 {
                    // SAFETY: avx512f + avx512cd were just detected;
                    // both slices have at least 8 elements from `k`.
                    if unsafe { self.touch8_avx512(&lines[k..k + 8], &ways[k..k + 8]) } {
                        k += 8;
                    } else {
                        self.touch_hits_scalar(&lines[k..k + 8], &ways[k..k + 8]);
                        k += 8;
                    }
                }
                self.touch_hits_scalar(&lines[k..], &ways[k..]);
                return;
            }
        }
        self.touch_hits_scalar(lines, ways);
    }

    /// One eight-lane [`Cache::touch_hits`] batch as AVX-512 vector
    /// code, or `false` (no state touched) when the batch is not a
    /// pure order-independent promote: a lane maps to the same set as
    /// an earlier lane (promotes in one set are order-dependent), a
    /// lane's line equals the L0 hint (that arm derives the way from
    /// the hint slot), or a lane is already MRU (that arm refreshes
    /// the hint). For the batches it does take, each lane's new
    /// permutation is exactly `perm_promote_at(perm, way,
    /// perm_find(perm, way))`: the rank is located as the unique zero
    /// nibble of `perm ^ (way * 0x111…1)` — same zero-nibble trick as
    /// the scalar `perm_find`, with `63 - lzcnt(t & -t)` standing in
    /// for `trailing_zeros` — and the splice masks come from
    /// per-lane variable shifts (where `vpsllvq` shifting by 64
    /// yields the 0 the scalar double-shift produces).
    ///
    /// # Safety
    /// Caller detects `avx512f` and `avx512cd`, and passes exactly 8
    /// classified-hit lanes whose `ways` were extracted by the sweep
    /// (no [`WAY_UNKNOWN`]).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx512f,avx512cd")]
    unsafe fn touch8_avx512(&mut self, lines: &[u64], ways: &[u8]) -> bool {
        use core::arch::x86_64::*;
        debug_assert!(lines.len() == 8 && ways.len() == 8);
        debug_assert!(!ways.contains(&WAY_UNKNOWN));
        let lv = _mm512_loadu_si512(lines.as_ptr().cast());
        let sets = _mm512_and_si512(lv, _mm512_set1_epi64(self.set_mask as i64));
        let conf = _mm512_conflict_epi64(sets);
        if _mm512_test_epi64_mask(conf, conf) != 0 {
            return false;
        }
        if _mm512_cmpeq_epi64_mask(lv, _mm512_set1_epi64(self.last_line as i64)) != 0 {
            return false;
        }
        // SAFETY: every set index is <= set_mask < perms.len(); scale 8.
        let perms = _mm512_i64gather_epi64(sets, self.perms.as_ptr().cast(), 8);
        let wv = _mm512_cvtepu8_epi64(_mm_loadl_epi64(ways.as_ptr().cast()));
        let mru = _mm512_and_si512(perms, _mm512_set1_epi64(0xF));
        if _mm512_cmpeq_epi64_mask(mru, wv) != 0 {
            return false;
        }
        // wrep = way * 0x1111_1111_1111_1111, by doubling shifts.
        let mut wrep = _mm512_or_si512(wv, _mm512_slli_epi64(wv, 4));
        wrep = _mm512_or_si512(wrep, _mm512_slli_epi64(wrep, 8));
        wrep = _mm512_or_si512(wrep, _mm512_slli_epi64(wrep, 16));
        wrep = _mm512_or_si512(wrep, _mm512_slli_epi64(wrep, 32));
        let x = _mm512_xor_si512(perms, wrep);
        let t = _mm512_and_si512(
            _mm512_sub_epi64(x, _mm512_set1_epi64(0x1111_1111_1111_1111)),
            _mm512_andnot_si512(x, _mm512_set1_epi64(0x8888_8888_8888_8888_u64 as i64)),
        );
        let blsi = _mm512_and_si512(t, _mm512_sub_epi64(_mm512_setzero_si512(), t));
        let idx = _mm512_and_si512(
            _mm512_sub_epi64(_mm512_set1_epi64(63), _mm512_lzcnt_epi64(blsi)),
            _mm512_set1_epi64(!3_i64),
        );
        let above = _mm512_and_si512(
            perms,
            _mm512_sllv_epi64(_mm512_set1_epi64(-1), _mm512_add_epi64(idx, _mm512_set1_epi64(4))),
        );
        let bmask = _mm512_sub_epi64(
            _mm512_sllv_epi64(_mm512_set1_epi64(1), idx),
            _mm512_set1_epi64(1),
        );
        let below = _mm512_slli_epi64(_mm512_and_si512(perms, bmask), 4);
        let out = _mm512_or_si512(_mm512_or_si512(above, below), wv);
        // SAFETY: same indices the gather proved in-bounds; the
        // conflict test proved them pairwise distinct.
        _mm512_i64scatter_epi64(self.perms.as_mut_ptr().cast(), sets, out, 8);
        true
    }

    /// The scalar [`Cache::touch_hits`] loop — the reference for the
    /// vector batches above and the path every non-x86 or
    /// non-`simd` build takes.
    #[inline]
    fn touch_hits_scalar(&mut self, lines: &[u64], ways: &[u8]) {
        let set_mask = self.set_mask;
        let wc = self.geo.ways as usize;
        let tags = self.tags.as_slice();
        let perms = self.perms.as_mut_slice();
        let mut hint_line = self.last_line;
        let mut hint_slot = self.last_slot;
        // SAFETY throughout: `set <= set_mask < perms.len()`, every
        // way index is `< wc` (from the sweep's compare mask or the
        // permutation's low nibbles), `base + wc <= tags.len()` by the
        // mirror geometry, and `hint_slot` stays a valid slot (it only
        // ever takes `base + way` values).
        for (&line, &way8) in lines.iter().zip(ways) {
            let set = (line & set_mask) as usize;
            if line == hint_line && line != EMPTY && unsafe { *tags.get_unchecked(hint_slot) } == line
            {
                // A resident line occupies exactly one way, so the
                // hinted way is the resident way.
                let way = hint_slot - set * wc;
                let perm = unsafe { *perms.get_unchecked(set) };
                if (perm & 0xF) as usize != way {
                    unsafe { *perms.get_unchecked_mut(set) = perm_promote(perm, way) };
                }
                continue;
            }
            let perm = unsafe { *perms.get_unchecked(set) };
            let base = set * wc;
            if way8 != WAY_UNKNOWN {
                // The sweep extracted the way: nibble compares replace
                // the cascade's tag loads.
                let way = way8 as usize;
                debug_assert!(tags[base + way] == line);
                if (perm & 0xF) as usize == way {
                    hint_line = line;
                    hint_slot = base + way;
                    continue;
                }
                let idx = if ((perm >> 4) & 0xF) as usize == way {
                    4
                } else {
                    perm_find(perm, way as u64)
                };
                unsafe { *perms.get_unchecked_mut(set) = perm_promote_at(perm, way as u64, idx) };
            } else {
                // Portable sweep: re-find the way with the probe
                // cascade (MRU, rank 1, then the recency scan).
                let mru_slot = base + (perm & 0xF) as usize;
                if unsafe { *tags.get_unchecked(mru_slot) } == line {
                    hint_line = line;
                    hint_slot = mru_slot;
                    continue;
                }
                let w1 = ((perm >> 4) & 0xF) as usize;
                if wc > 1 && unsafe { *tags.get_unchecked(base + w1) } == line {
                    unsafe { *perms.get_unchecked_mut(set) = perm_promote_at(perm, w1 as u64, 4) };
                    continue;
                }
                let (w, idx) = scan_recency(tags, base, perm, wc, line)
                    .expect("classified line is found by the recency scan");
                unsafe { *perms.get_unchecked_mut(set) = perm_promote_at(perm, w as u64, idx) };
            }
        }
        self.last_line = hint_line;
        self.last_slot = hint_slot;
    }

    /// Whether the line is resident in state [`Mesi::Modified`],
    /// without disturbing LRU — the plan replay's write-lane ownership
    /// test (`state_of(line) == Some(Mesi::Modified)`).
    #[inline]
    #[must_use]
    pub fn state_modified(&self, line: u64) -> bool {
        self.state_of(line) == Some(Mesi::Modified)
    }

    /// Whether the line is present, without disturbing LRU.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        let range = self.set_range(line);
        if self.fast_paths {
            self.tags[range].contains(&line)
        } else {
            self.sets[range].iter().any(|w| w.line == line)
        }
    }

    /// Reads a line's state without disturbing LRU.
    #[must_use]
    pub fn state_of(&self, line: u64) -> Option<Mesi> {
        let range = self.set_range(line);
        if self.fast_paths {
            let base = range.start;
            let i = self.tags[range].iter().position(|&t| t == line)?;
            Some(self.states[base + i])
        } else {
            self.sets[range].iter().find(|w| w.line == line).map(|w| w.state)
        }
    }

    /// Sets the state of a resident line, returning the *previous*
    /// state so callers can observe the transition (`None` if absent).
    pub fn set_state(&mut self, line: u64, state: Mesi) -> Option<Mesi> {
        let range = self.set_range(line);
        let base = range.start;
        if self.fast_paths {
            let i = self.tags[range].iter().position(|&t| t == line)?;
            let old = self.states[base + i];
            self.states[base + i] = state;
            Some(old)
        } else {
            let i = self.sets[range].iter().position(|w| w.line == line)?;
            let old = self.sets[base + i].state;
            self.sets[base + i].state = state;
            Some(old)
        }
    }

    /// Inserts a line (replacing LRU if the set is full), returning any
    /// eviction. If the line is already resident its state is updated.
    #[inline]
    pub fn insert(&mut self, line: u64, state: Mesi) -> Option<Eviction> {
        if !self.fast_paths {
            self.tick += 1;
            let tick = self.tick;
            let range = self.set_range(line);
            let ways = &mut self.sets[range];
            if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
                w.state = state;
                w.stamp = tick;
                return None;
            }
            if let Some(w) = ways.iter_mut().find(|w| w.line == EMPTY) {
                *w = Way { line, stamp: tick, state };
                return None;
            }
            let victim = ways.iter_mut().min_by_key(|w| w.stamp).expect("ways > 0");
            let evicted = Eviction { line: victim.line, state: victim.state };
            *victim = Way { line, stamp: tick, state };
            Some(evicted)
        } else {
            // One pass over the packed tags finds the matching way and
            // the first empty way; the victim is the permutation's LRU
            // rank (equal to the first-minimal-stamp way `min_by_key`
            // picks, since both orders are move-to-front on the same
            // events).
            let set = (line & self.set_mask) as usize;
            let ways = self.geo.ways as usize;
            let base = set * ways;
            let perm = self.perms[set];
            let mru_slot = base + (perm & 0xF) as usize;
            if self.tags[mru_slot] == line {
                self.states[mru_slot] = state;
                self.last_line = line;
                self.last_slot = mru_slot;
                return None;
            }
            if tags_contain(&self.tags[base..base + ways], line) {
                let (w, idx) = scan_recency(&self.tags, base, perm, ways, line)
                    .expect("contained line is found by the recency scan");
                self.states[base + w] = state;
                self.perms[set] = perm_promote_at(perm, w as u64, idx);
                return None;
            }
            let (slot, evicted, idx) = if self.occ[set] == ways as u8 {
                let last = self.geo.ways - 1;
                let slot = base + perm_way_at(perm, last);
                let ev = Eviction { line: self.tags[slot], state: self.states[slot] };
                (slot, Some(ev), 4 * last)
            } else {
                let first_empty = self.tags[base..base + ways]
                    .iter()
                    .position(|&t| t == EMPTY)
                    .expect("occ < ways implies an empty way");
                self.occ[set] += 1;
                let way = first_empty as u64;
                (base + first_empty, None, perm_find(perm, way))
            };
            self.tags[slot] = line;
            self.states[slot] = state;
            self.perms[set] = perm_promote_at(perm, (slot - base) as u64, idx);
            evicted
        }
    }

    /// Removes a line; returns its state if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        let range = self.set_range(line);
        let base = range.start;
        if self.fast_paths {
            let i = self.tags[range].iter().position(|&t| t == line)?;
            let slot = base + i;
            let state = self.states[slot];
            self.tags[slot] = EMPTY;
            // Mirror the slow path's `stamp = 0`: the emptied way drops
            // to the LRU rank.
            let set = base / self.geo.ways as usize;
            self.perms[set] = perm_demote(self.perms[set], i, self.geo.ways);
            self.occ[set] -= 1;
            Some(state)
        } else {
            let i = self.sets[range].iter().position(|w| w.line == line)?;
            let slot = base + i;
            let state = self.sets[slot].state;
            self.sets[slot].line = EMPTY;
            self.sets[slot].stamp = 0;
            Some(state)
        }
    }

    /// Drops every line (e.g. between experiment phases).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            w.line = EMPTY;
            w.stamp = 0;
        }
        self.tick = 0;
        self.tags.fill(EMPTY);
        self.perms.fill(PERM_IDENTITY);
        self.occ.fill(0);
        self.last_line = EMPTY;
        self.last_slot = 0;
    }

    /// Number of resident lines (for tests and occupancy metrics).
    #[must_use]
    pub fn resident(&self) -> usize {
        if self.fast_paths {
            self.tags.iter().filter(|&&t| t != EMPTY).count()
        } else {
            self.sets.iter().filter(|w| w.line != EMPTY).count()
        }
    }

    /// Serializes the mutable cache state into a checkpoint section.
    ///
    /// Only the *authoritative* LRU representation for the current mode
    /// is written (packed permutations under the fast paths, stamp
    /// records under the reference path) — the toggle machinery already
    /// knows how to rebuild the other side, so restore reuses it.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4343_4845); // "CCHE"
        e.bool(self.fast_paths);
        e.u64(self.tick);
        if self.fast_paths {
            e.u64s(&self.tags);
            let states: Vec<u8> = self.states.iter().map(|&s| mesi_code(s)).collect();
            e.bytes(&states);
            e.u64s(&self.perms);
            e.bytes(&self.occ);
            e.u64(self.last_line);
            e.u64(self.last_slot as u64);
        } else {
            e.u64(self.sets.len() as u64);
            for w in &self.sets {
                e.u64(w.line);
                e.u64(w.stamp);
                e.u8(mesi_code(w.state));
            }
        }
    }

    /// Restores the cache from a checkpoint section taken on an
    /// identically-configured cache.
    ///
    /// # Errors
    ///
    /// Decoding errors, or [`CheckpointError::ConfigMismatch`] when the
    /// artifact's slot count does not match this cache's geometry.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4343_4845)?;
        let saved_fast = d.bool()?;
        self.tick = d.u64()?;
        if saved_fast {
            let tags = d.u64s()?;
            if tags.len() != self.tags.len() {
                return Err(CheckpointError::ConfigMismatch);
            }
            self.tags = tags;
            let states = d.bytes()?;
            if states.len() != self.states.len() {
                return Err(CheckpointError::ConfigMismatch);
            }
            for (dst, &b) in self.states.iter_mut().zip(states) {
                *dst = mesi_from_code(b)?;
            }
            let perms = d.u64s()?;
            if perms.len() != self.perms.len() {
                return Err(CheckpointError::ConfigMismatch);
            }
            self.perms = perms;
            let occ = d.bytes()?;
            if occ.len() != self.occ.len() {
                return Err(CheckpointError::ConfigMismatch);
            }
            self.occ.copy_from_slice(occ);
            self.last_line = d.u64()?;
            self.last_slot = d.u64()? as usize;
            if self.last_slot >= self.tags.len() && self.last_line != EMPTY {
                return Err(CheckpointError::Malformed("cache MRU hint slot"));
            }
            self.last_slot = self.last_slot.min(self.tags.len().saturating_sub(1));
            self.fast_paths = true;
        } else {
            let n = d.u64()? as usize;
            if n != self.sets.len() {
                return Err(CheckpointError::ConfigMismatch);
            }
            for w in &mut self.sets {
                w.line = d.u64()?;
                w.stamp = d.u64()?;
                w.state = mesi_from_code(d.u8()?)?;
            }
            self.fast_paths = false;
        }
        Ok(())
    }

    /// Iterates every resident line with its state, without disturbing
    /// LRU. Used by the coherence auditor.
    pub fn lines(&self) -> impl Iterator<Item = (u64, Mesi)> + '_ {
        let fast = self.fast_paths;
        (0..self.sets.len()).filter_map(move |slot| {
            let (line, state) = if fast {
                (self.tags[slot], self.states[slot])
            } else {
                (self.sets[slot].line, self.sets[slot].state)
            };
            (line != EMPTY).then_some((line, state))
        })
    }
}

/// The per-domain hierarchy: split L1, unified L2, inclusive L3.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// L1 instruction cache (presence only).
    pub l1i: Cache,
    /// L1 data cache (presence only).
    pub l1d: Cache,
    /// Unified L2 (presence only).
    pub l2: Cache,
    /// Unified, inclusive L3 — the coherence point holding MESI state.
    pub l3: Cache,
}

impl CacheHierarchy {
    /// Builds a hierarchy from a domain's cache configuration.
    #[must_use]
    pub fn new(cfg: &stramash_sim::CacheConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
        }
    }

    /// Whether any level holds the line (the L3 suffices: inclusive).
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.l3.contains(line)
    }

    /// The coherence state of a resident line.
    #[must_use]
    pub fn state_of(&self, line: u64) -> Option<Mesi> {
        self.l3.state_of(line)
    }

    /// Invalidates a line in every level; returns the L3 state it had.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        self.l1i.invalidate(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line)
    }

    /// Whether a line is present in a level above the L3 (used to price
    /// back-invalidations on inclusive evictions).
    #[must_use]
    pub fn in_upper_levels(&self, line: u64) -> bool {
        self.l1i.contains(line) || self.l1d.contains(line) || self.l2.contains(line)
    }

    /// Drops the line from the upper levels only (back-invalidation).
    pub fn back_invalidate_upper(&mut self, line: u64) {
        self.l1i.invalidate(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
    }

    /// Flushes every level.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
    }

    /// Toggles the host-side fast paths on every level (see
    /// [`Cache::set_fast_paths`]).
    pub fn set_fast_paths(&mut self, enabled: bool) {
        self.l1i.set_fast_paths(enabled);
        self.l1d.set_fast_paths(enabled);
        self.l2.set_fast_paths(enabled);
        self.l3.set_fast_paths(enabled);
    }

    /// Serializes all four levels into a checkpoint section.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        e.tag(0x4348_4945); // "CHIE"
        self.l1i.save_state(e);
        self.l1d.save_state(e);
        self.l2.save_state(e);
        self.l3.save_state(e);
    }

    /// Restores all four levels from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Decoding errors.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        d.tag(0x4348_4945)?;
        self.l1i.load_state(d)?;
        self.l1d.load_state(d)?;
        self.l2.load_state(d)?;
        self.l3.load_state(d)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::CacheConfig;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheGeometry::new(256, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(10), None);
        assert_eq!(c.insert(10, Mesi::Exclusive), None);
        assert_eq!(c.probe(10), Some(Mesi::Exclusive));
        assert!(c.contains(10));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (2 sets → even lines share set 0).
        c.insert(0, Mesi::Shared);
        c.insert(2, Mesi::Shared);
        c.probe(0); // refresh 0, so 2 is LRU
        let ev = c.insert(4, Mesi::Shared).expect("set full, must evict");
        assert_eq!(ev.line, 2);
        assert!(c.contains(0));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(8, Mesi::Shared);
        assert_eq!(c.insert(8, Mesi::Modified), None);
        assert_eq!(c.state_of(8), Some(Mesi::Modified));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn eviction_reports_modified_state() {
        let mut c = tiny();
        c.insert(0, Mesi::Modified);
        c.insert(2, Mesi::Shared);
        c.probe(2);
        // Refresh 2; 0 is LRU and dirty.
        let ev = c.insert(4, Mesi::Shared).unwrap();
        assert_eq!(ev, Eviction { line: 0, state: Mesi::Modified });
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(6, Mesi::Exclusive);
        assert_eq!(c.invalidate(6), Some(Mesi::Exclusive));
        assert_eq!(c.invalidate(6), None);
        assert!(!c.contains(6));
    }

    #[test]
    fn set_state_on_missing_line_is_none() {
        let mut c = tiny();
        assert_eq!(c.set_state(1, Mesi::Shared), None);
        c.insert(1, Mesi::Exclusive);
        assert_eq!(c.set_state(1, Mesi::Shared), Some(Mesi::Exclusive));
        assert_eq!(c.state_of(1), Some(Mesi::Shared));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.insert(0, Mesi::Shared);
        c.insert(1, Mesi::Shared);
        c.flush();
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0,2 → set 0; lines 1,3 → set 1.
        c.insert(0, Mesi::Shared);
        c.insert(2, Mesi::Shared);
        c.insert(1, Mesi::Shared);
        c.insert(3, Mesi::Shared);
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn hierarchy_inclusive_queries() {
        let mut h = CacheHierarchy::new(&CacheConfig::paper_default());
        h.l3.insert(100, Mesi::Exclusive);
        h.l2.insert(100, Mesi::Exclusive);
        h.l1d.insert(100, Mesi::Exclusive);
        assert!(h.contains(100));
        assert!(h.in_upper_levels(100));
        h.back_invalidate_upper(100);
        assert!(!h.in_upper_levels(100));
        assert!(h.contains(100), "back-invalidation keeps the L3 copy");
        assert_eq!(h.invalidate(100), Some(Mesi::Exclusive));
        assert!(!h.contains(100));
    }

    /// Every observable (return values, LRU victims, MESI states,
    /// residency) must be identical between the fast paths and the
    /// reference implementation over a long deterministic op mix.
    #[test]
    fn fast_paths_are_bit_identical_to_reference() {
        let mut fast = Cache::new(CacheGeometry::new(4 << 10, 4, 64)); // 16 sets
        let mut slow = fast.clone();
        slow.set_fast_paths(false);
        let mut x = 0x9e37_79b9_7f4a_7c15u64; // splitmix-style walk
        for step in 0..20_000u64 {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(step);
            // A small line universe forces hits, conflicts and evictions.
            let line = (x >> 17) % 96;
            let state = match x % 3 {
                0 => Mesi::Modified,
                1 => Mesi::Exclusive,
                _ => Mesi::Shared,
            };
            match x % 8 {
                0 | 1 => assert_eq!(fast.probe(line), slow.probe(line), "probe @{step}"),
                2 => {
                    assert_eq!(fast.probe_hit(line), slow.probe_hit(line), "probe_hit @{step}");
                }
                3 | 4 => {
                    assert_eq!(fast.insert(line, state), slow.insert(line, state), "insert @{step}");
                }
                5 => assert_eq!(fast.invalidate(line), slow.invalidate(line), "inval @{step}"),
                6 => {
                    // The fused streaming pair: probe, then consume the
                    // plan immediately (its validity condition).
                    let (fh, sh) = (fast.probe_or_plan(line), slow.probe_or_plan(line));
                    match (fh, sh) {
                        (ProbeFill::Hit, ProbeFill::Hit) => {}
                        (ProbeFill::Miss(fp), ProbeFill::Miss(sp)) => {
                            fast.fill_planned(fp, line, state);
                            slow.fill_planned(sp, line, state);
                        }
                        _ => panic!("fused hit/miss diverged @{step}"),
                    }
                }
                _ => {
                    assert_eq!(fast.state_of(line), slow.state_of(line), "state @{step}");
                    assert_eq!(fast.set_state(line, state), slow.set_state(line, state));
                }
            }
            assert_eq!(fast.resident(), slow.resident(), "residency diverged @{step}");
        }
        let mut f: Vec<_> = fast.lines().collect();
        let mut s: Vec<_> = slow.lines().collect();
        f.sort_unstable_by_key(|(l, _)| *l);
        s.sort_unstable_by_key(|(l, _)| *l);
        assert_eq!(f, s, "final contents diverged");
    }

    /// Toggling the fast paths mid-stream converts between the stamp
    /// and packed-permutation LRU representations; every observable
    /// must stay identical to an untoggled run on either path.
    #[test]
    fn mid_run_toggling_is_equivalent() {
        let mut fast = Cache::new(CacheGeometry::new(4 << 10, 4, 64));
        let mut slow = fast.clone();
        slow.set_fast_paths(false);
        let mut toggling = fast.clone();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..20_000u64 {
            if step % 500 == 0 {
                toggling.set_fast_paths((step / 500) % 2 == 1);
            }
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(step);
            let line = (x >> 17) % 96;
            let state = match x % 3 {
                0 => Mesi::Modified,
                1 => Mesi::Exclusive,
                _ => Mesi::Shared,
            };
            match x % 5 {
                0 | 1 => {
                    let expect = fast.probe(line);
                    assert_eq!(slow.probe(line), expect, "probe slow @{step}");
                    assert_eq!(toggling.probe(line), expect, "probe toggling @{step}");
                }
                2 | 3 => {
                    let expect = fast.insert(line, state);
                    assert_eq!(slow.insert(line, state), expect, "insert slow @{step}");
                    assert_eq!(toggling.insert(line, state), expect, "insert toggling @{step}");
                }
                _ => {
                    let expect = fast.invalidate(line);
                    assert_eq!(slow.invalidate(line), expect, "inval slow @{step}");
                    assert_eq!(toggling.invalidate(line), expect, "inval toggling @{step}");
                }
            }
        }
        let norm = |c: &Cache| {
            let mut v: Vec<_> = c.lines().collect();
            v.sort_unstable_by_key(|(l, _)| *l);
            v
        };
        assert_eq!(norm(&fast), norm(&slow));
        assert_eq!(norm(&fast), norm(&toggling));
    }

    #[test]
    fn hierarchy_flush() {
        let mut h = CacheHierarchy::new(&CacheConfig::paper_default());
        h.l3.insert(5, Mesi::Shared);
        h.flush();
        assert!(!h.contains(5));
    }
}
