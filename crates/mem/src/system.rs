//! The fused memory system: both domains' cache hierarchies over one
//! coherent physical memory, with CXL snoop accounting.
//!
//! This is the reproduction's equivalent of Stramash-QEMU's shared guest
//! memory (§7.1) plus the cache plugin's timing feedback (§7.3, §8.1):
//! every access probes the issuing domain's hierarchy; on a miss the DRAM
//! latency depends on the address's [`MemClass`] under the configured
//! hardware model, and if the *other* domain caches the line the
//! appropriate MESI transition and CXL snoop overhead are applied.

use crate::cache::{Cache, CacheHierarchy, FillPlan, Mesi, ProbeFill};
use crate::epoch::{EpochEntry, EpochFlushOutcome, EpochState, SnoopWindow};
use crate::hwmodel::{AddressMap, MemClass};
use crate::phys::{PhysAddr, PhysLayout, SparseMemory};
use stramash_sim::config::ConfigError;
use stramash_sim::epoch::EpochReport;
use stramash_sim::trace::{TraceEvent, TraceLevel, TraceMemClass, TraceMesi};
use stramash_sim::{
    Cycles, DomainId, DomainStats, HardwareModel, LatencyTable, SharedTracer, SimConfig,
};

/// Maps a [`HitLevel`] to its trace-event counterpart.
fn trace_level(level: HitLevel) -> TraceLevel {
    match level {
        HitLevel::L1 => TraceLevel::L1,
        HitLevel::L2 => TraceLevel::L2,
        HitLevel::L3 => TraceLevel::L3,
        HitLevel::Memory => TraceLevel::Memory,
    }
}

/// Maps a [`MemClass`] to its trace-event counterpart.
fn trace_class(class: MemClass) -> TraceMemClass {
    match class {
        MemClass::Local => TraceMemClass::Local,
        MemClass::Remote => TraceMemClass::Remote,
        MemClass::RemoteShared => TraceMemClass::RemoteShared,
    }
}

/// Maps a cache [`Mesi`] state to its trace-event counterpart (the
/// cache model has no explicit Invalid state — absence is invalid).
fn trace_mesi(state: Mesi) -> TraceMesi {
    match state {
        Mesi::Modified => TraceMesi::Modified,
        Mesi::Exclusive => TraceMesi::Exclusive,
        Mesi::Shared => TraceMesi::Shared,
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Data access or instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load/store (probes the L1D).
    Data,
    /// An instruction fetch (probes the L1I).
    Instruction,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// L1 (I or D).
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory (local, remote or remote-shared).
    Memory,
}

/// One recorded access (for trace-driven model validation — the
/// Figure 7/8 methodology replays identical traces through the primary
/// and reference simulators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issuing domain.
    pub domain: DomainId,
    /// Physical address.
    pub addr: PhysAddr,
    /// Read or write.
    pub access: Access,
    /// Data or instruction fetch.
    pub kind: AccessKind,
}

/// Outcome of a single timed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency charged.
    pub cycles: Cycles,
    /// The level that satisfied the access.
    pub level: HitLevel,
    /// For memory-level accesses, the DRAM class reached.
    pub class: Option<MemClass>,
    /// Whether a cross-domain snoop was involved.
    pub snooped: bool,
}

/// One journalled ECC fault: the XOR mask a fault injector applied to
/// the 64-bit word at `addr`. DRAM SEC-DED ECC corrects single-bit
/// flips and detects (but cannot repair) double-bit flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccFault {
    /// 8-byte-aligned physical address of the flipped word.
    pub addr: PhysAddr,
    /// XOR mask applied — one set bit for a correctable fault, two
    /// adjacent bits for an uncorrectable one.
    pub mask: u64,
    /// Whether the fault exceeds SEC-DED correction capability.
    pub double: bool,
}

/// Outcome of one [`MemorySystem::ecc_scrub`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EccScrubReport {
    /// Single-bit faults detected and repaired in place.
    pub corrected: u64,
    /// Double-bit faults detected but left corrupted.
    pub uncorrectable: u64,
}

/// The shared, coherent memory system of the simulated platform.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: SimConfig,
    map: AddressMap,
    hierarchies: [CacheHierarchy; 2],
    /// The single shared LLC of the Fully-Shared model; `None` when each
    /// domain has a private L3.
    shared_l3: Option<Cache>,
    store: SparseMemory,
    stats: [DomainStats; 2],
    writebacks: [u64; 2],
    line_bytes: u64,
    /// `log2(line_bytes)` — line numbers come from a shift, not a
    /// division, on the per-access hot path.
    line_shift: u32,
    trace: Option<Vec<TraceEntry>>,
    /// Whether the host-side fast paths are enabled (see
    /// [`MemorySystem::set_fast_paths`]). The bulk run accounting keys
    /// off this too: with fast paths off, runs replay the reference
    /// per-access loop.
    fast_paths: bool,
    /// Per-domain alias windows (§7: the fused simulator supports
    /// "memory remapping" — the single shared memory "may be mapped to
    /// different addresses" on each processor, as on OpenPiton).
    aliases: Vec<AliasWindow>,
    /// Injected-but-unscrubbed ECC faults.
    ecc_journal: Vec<EccFault>,
    /// Observability sink: every timed access, snoop, eviction and MESI
    /// transition is mirrored here as a typed event. Emission is
    /// passive — it never costs a simulated cycle, so the golden
    /// fingerprints are identical with tracing on or off.
    tracer: Option<SharedTracer>,
    /// Deferred-epoch state: while an epoch is open, timed accesses are
    /// logged instead of executed and replayed bit-identically at the
    /// boundary (possibly on two host threads). Host-side only — never
    /// checkpointed.
    epoch: EpochState,
}

/// One per-domain physical alias: `domain` sees
/// `[alias_start, alias_start + len)` as
/// `[canon_start, canon_start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AliasWindow {
    domain: DomainId,
    alias_start: u64,
    len: u64,
    canon_start: u64,
}

impl MemorySystem {
    /// Builds a memory system over the Figure 4 layout.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if `cfg` is inconsistent.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        Self::with_layout(cfg, PhysLayout::paper_default())
    }

    /// Builds a memory system over a custom layout.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if `cfg` is inconsistent.
    pub fn with_layout(cfg: SimConfig, layout: PhysLayout) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let line_bytes = cfg.domains[0].cache.line_bytes() as u64;
        let line_shift = line_bytes.trailing_zeros();
        let hierarchies = [
            CacheHierarchy::new(&cfg.domains[0].cache),
            CacheHierarchy::new(&cfg.domains[1].cache),
        ];
        let shared_l3 = if cfg.hw_model == HardwareModel::FullyShared {
            Some(Cache::new(cfg.domains[0].cache.l3))
        } else {
            None
        };
        let map = AddressMap::new(layout, cfg.hw_model);
        Ok(MemorySystem {
            cfg,
            map,
            hierarchies,
            shared_l3,
            store: SparseMemory::new(),
            stats: [DomainStats::new(), DomainStats::new()],
            writebacks: [0, 0],
            line_bytes,
            line_shift,
            trace: None,
            fast_paths: true,
            aliases: Vec::new(),
            ecc_journal: Vec::new(),
            tracer: None,
            epoch: EpochState::default(),
        })
    }

    /// Installs the shared event tracer. Cache accesses, snoops,
    /// evictions, MESI transitions and TLB lookups are mirrored into it
    /// from this point on, without perturbing any simulated cycle.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Records one event into the tracer, if installed.
    #[inline]
    fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The address map (layout + hardware model).
    #[must_use]
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Cache line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Statistics of `domain`.
    #[must_use]
    pub fn stats(&self, domain: DomainId) -> &DomainStats {
        &self.stats[domain.index()]
    }

    /// Mutable statistics of `domain` (OS layers add runtime here).
    pub fn stats_mut(&mut self, domain: DomainId) -> &mut DomainStats {
        &mut self.stats[domain.index()]
    }

    /// Dirty-line writebacks performed by `domain`'s LLC.
    #[must_use]
    pub fn writebacks(&self, domain: DomainId) -> u64 {
        self.writebacks[domain.index()]
    }

    // ---- software-TLB accounting -------------------------------------------
    //
    // The OS layers keep their translation caches, but every lookup is
    // recorded here so the counter bump and the trace event can never
    // drift apart.

    /// Records one software-TLB hit for `domain`.
    #[inline]
    pub fn note_tlb_hit(&mut self, domain: DomainId) {
        self.note_tlb_hits(domain, 1);
    }

    /// Records `n` software-TLB hits for `domain` (the batched client
    /// pipeline counts a whole page run at once; the trace still carries
    /// one event per lookup so batched and scalar streams agree).
    pub fn note_tlb_hits(&mut self, domain: DomainId, n: u64) {
        if self.epoch.active {
            if n != 0 {
                self.epoch_push(EpochEntry::TlbHits { domain, n });
            }
            return;
        }
        self.stats[domain.index()].tlb_hits += n;
        if let Some(t) = &self.tracer {
            let mut t = t.borrow_mut();
            for _ in 0..n {
                t.record(TraceEvent::TlbLookup { domain, hit: true });
            }
        }
    }

    /// Records one software-TLB miss for `domain`.
    #[inline]
    pub fn note_tlb_miss(&mut self, domain: DomainId) {
        if self.epoch.active {
            self.epoch_push(EpochEntry::TlbMiss { domain });
            return;
        }
        self.stats[domain.index()].tlb_misses += 1;
        self.emit(TraceEvent::TlbLookup { domain, hit: false });
    }

    /// Zeroes all statistics (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
        self.writebacks = [0, 0];
    }

    /// Flushes every cache (contents only; statistics are preserved).
    pub fn flush_caches(&mut self) {
        for h in &mut self.hierarchies {
            h.flush();
        }
        if let Some(l3) = &mut self.shared_l3 {
            l3.flush();
        }
        // Empty caches cannot be snooped: the windows restart clean.
        for w in &mut self.epoch.windows {
            w.clear();
        }
    }

    /// Installs a per-domain physical alias (§7 "memory remapping"):
    /// accesses by `domain` to `[alias_start, alias_start+len)` resolve
    /// to `[canon_start, canon_start+len)`. Coherence and data are
    /// shared with every other path to the canonical range.
    ///
    /// # Panics
    ///
    /// Panics if the alias range overlaps the canonical range.
    pub fn add_alias(
        &mut self,
        domain: DomainId,
        alias_start: PhysAddr,
        len: u64,
        canon_start: PhysAddr,
    ) {
        assert!(
            alias_start.raw() + len <= canon_start.raw()
                || canon_start.raw() + len <= alias_start.raw(),
            "alias must not overlap its canonical range"
        );
        self.aliases.push(AliasWindow {
            domain,
            alias_start: alias_start.raw(),
            len,
            canon_start: canon_start.raw(),
        });
    }

    /// Resolves `addr` through `domain`'s alias windows.
    #[must_use]
    #[inline]
    pub fn canonicalize(&self, domain: DomainId, addr: PhysAddr) -> PhysAddr {
        // Almost every system runs without remapping; skip the window
        // scan entirely in that case.
        if self.aliases.is_empty() {
            return addr;
        }
        for w in &self.aliases {
            if w.domain == domain && addr.raw() >= w.alias_start && addr.raw() < w.alias_start + w.len
            {
                return PhysAddr::new(w.canon_start + (addr.raw() - w.alias_start));
            }
        }
        addr
    }

    /// Starts recording every timed access (clears any prior trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the trace collected so far.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    /// Untimed access to the backing store, for boot-time setup and
    /// checkers that must not perturb the timing statistics.
    #[must_use]
    pub fn store(&self) -> &SparseMemory {
        &self.store
    }

    /// Untimed mutable access to the backing store.
    pub fn store_mut(&mut self) -> &mut SparseMemory {
        &mut self.store
    }

    // ---- fault injection & auditing ----------------------------------------

    /// Injects a transient bit flip into the word containing `addr`
    /// (aligned down to 8 bytes) and journals it for the ECC scrubber.
    /// A single-bit flip is SEC-correctable; `double` flips two adjacent
    /// bits, which SEC-DED detects but cannot repair.
    pub fn inject_bit_flip(&mut self, addr: PhysAddr, bit: u32, double: bool) -> EccFault {
        let addr = PhysAddr::new(addr.raw() & !7);
        let bit = bit % 64;
        let mask = if double { (1u64 << bit) | (1u64 << ((bit + 1) % 64)) } else { 1u64 << bit };
        self.store.flip_bits(addr, mask);
        let fault = EccFault { addr, mask, double };
        self.ecc_journal.push(fault);
        fault
    }

    /// The journalled faults awaiting a scrub pass.
    #[must_use]
    pub fn ecc_pending(&self) -> &[EccFault] {
        &self.ecc_journal
    }

    /// One ECC scrub pass, performed by `domain`'s memory controller:
    /// every journalled single-bit fault is repaired in place (the XOR
    /// mask is involutive), double-bit faults are detected but the data
    /// stays corrupt. Repairs and fatalities are reflected in the
    /// scrubbing domain's fault statistics.
    pub fn ecc_scrub(&mut self, domain: DomainId) -> EccScrubReport {
        let mut report = EccScrubReport::default();
        let faults = std::mem::take(&mut self.ecc_journal);
        for f in &faults {
            if f.double {
                report.uncorrectable += 1;
            } else {
                self.store.flip_bits(f.addr, f.mask);
                report.corrected += 1;
            }
        }
        let s = &mut self.stats[domain.index()];
        s.faults_injected += report.corrected + report.uncorrectable;
        s.faults_recovered += report.corrected;
        s.faults_fatal += report.uncorrectable;
        report
    }

    /// Audits the MESI coherence invariants: a `Modified` or `Exclusive`
    /// line in one private LLC must not coexist with any peer copy, and
    /// every upper-level line must be covered by its inclusive LLC.
    /// Returns one human-readable message per violation (empty = clean).
    #[must_use]
    pub fn audit_coherence(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.shared_l3.is_none() {
            for di in 0..2 {
                let oi = di ^ 1;
                for (line, state) in self.hierarchies[di].l3.lines() {
                    if matches!(state, Mesi::Modified | Mesi::Exclusive) {
                        if let Some(peer) = self.hierarchies[oi].l3.state_of(line) {
                            violations.push(format!(
                                "line {:#x} is {state:?} in domain {di} L3 but {peer:?} in peer L3",
                                line * self.line_bytes
                            ));
                        }
                    }
                }
            }
        }
        for (di, h) in self.hierarchies.iter().enumerate() {
            for (name, cache) in [("L1I", &h.l1i), ("L1D", &h.l1d), ("L2", &h.l2)] {
                for (line, _) in cache.lines() {
                    let covered = match &self.shared_l3 {
                        Some(l3) => l3.contains(line),
                        None => h.l3.contains(line),
                    };
                    if !covered {
                        violations.push(format!(
                            "domain {di} {name} line {:#x} missing from inclusive LLC",
                            line * self.line_bytes
                        ));
                    }
                }
            }
        }
        violations
    }

    // ---- timed access path -------------------------------------------------

    /// Performs one timed access of at most a cache line.
    ///
    /// This is the plugin's per-memory-instruction feedback path: the
    /// returned latency is what the caller adds to the issuing domain's
    /// icount clock.
    #[inline]
    pub fn access(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        access: Access,
        kind: AccessKind,
    ) -> AccessOutcome {
        let addr = self.canonicalize(domain, addr);
        self.access_line(domain, addr, access, kind)
    }

    /// Performs one timed access of at most a cache line on an address
    /// that is **already canonical** (alias windows resolved).
    ///
    /// This is the streaming fast path: bulk transfers canonicalize once
    /// and then drive the hierarchy line by line through this entry
    /// point. Timing, stats and tracing are identical to
    /// [`MemorySystem::access`].
    #[inline]
    pub fn access_line(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        access: Access,
        kind: AccessKind,
    ) -> AccessOutcome {
        if self.epoch.active {
            // Deferred: log the access and return a placeholder. The
            // real outcome is produced at the epoch flush; callers by
            // contract charge the returned (zero) cycles immediately,
            // and the flush re-attaches the accumulated cost to their
            // charge mark.
            self.epoch_defer_access(domain, addr, access, kind, 1);
            return AccessOutcome {
                cycles: Cycles::ZERO,
                level: HitLevel::L1,
                class: None,
                snooped: false,
            };
        }
        let out = self.access_line_inner(domain, addr, access, kind);
        if self.tracer.is_some() {
            // Sub-events (snoops, evictions, MESI transitions) were
            // emitted inside the pipeline; the summarising access event
            // comes last, keyed to the line-aligned address.
            self.emit(TraceEvent::CacheAccess {
                domain,
                addr: (addr.raw() >> self.line_shift) << self.line_shift,
                write: access == Access::Write,
                ifetch: kind == AccessKind::Instruction,
                level: trace_level(out.level),
                class: out.class.map(trace_class),
                snooped: out.snooped,
                cost: out.cycles,
            });
        }
        out
    }

    /// The untraced access pipeline behind [`MemorySystem::access_line`].
    #[inline]
    fn access_line_inner(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        access: Access,
        kind: AccessKind,
    ) -> AccessOutcome {
        let line = addr.raw() >> self.line_shift;
        let di = domain.index();
        let lat = self.cfg.domains[di].latency;
        let is_write = access == Access::Write;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { domain, addr, access, kind });
        }
        if kind == AccessKind::Data {
            self.stats[di].mem_accesses += 1;
        }

        // L1 probe, fused with the fill plan an upper-level hit will
        // consume (one way scan instead of probe + insert scans).
        let probe = match kind {
            AccessKind::Data => self.hierarchies[di].l1d.probe_or_plan(line),
            AccessKind::Instruction => self.hierarchies[di].l1i.probe_or_plan(line),
        };
        let l1_hit = matches!(probe, ProbeFill::Hit);
        match kind {
            AccessKind::Data => self.stats[di].l1d.record(l1_hit),
            AccessKind::Instruction => self.stats[di].l1i.record(l1_hit),
        }
        let plan = match probe {
            ProbeFill::Hit => {
                let mut cycles = Cycles::new(lat.l1 as u64);
                let snooped = is_write && self.ensure_writable(domain, line, &mut cycles);
                return AccessOutcome { cycles, level: HitLevel::L1, class: None, snooped };
            }
            ProbeFill::Miss(plan) => plan,
        };

        // L2 probe.
        let l2_hit = self.hierarchies[di].l2.probe_hit(line);
        self.stats[di].l2.record(l2_hit);
        if l2_hit {
            let mut cycles = Cycles::new(lat.l2 as u64);
            self.fill_l1_planned(di, line, kind, plan);
            let snooped = is_write && self.ensure_writable(domain, line, &mut cycles);
            return AccessOutcome { cycles, level: HitLevel::L2, class: None, snooped };
        }

        // L3 probe (private or shared).
        let l3_hit = match &mut self.shared_l3 {
            Some(l3) => l3.probe_hit(line),
            None => self.hierarchies[di].l3.probe_hit(line),
        };
        self.stats[di].l3.record(l3_hit);
        if l3_hit {
            let mut cycles = Cycles::new(lat.l3 as u64);
            // Same order as `fill_upper`: L2 first, then the L1 plan.
            self.hierarchies[di].l2.insert(line, Mesi::Shared);
            self.fill_l1_planned(di, line, kind, plan);
            let snooped = is_write && self.ensure_writable(domain, line, &mut cycles);
            return AccessOutcome { cycles, level: HitLevel::L3, class: None, snooped };
        }

        // Miss everywhere: go to memory. The fill plan is dropped here
        // on purpose — an inclusive L3 eviction back-invalidates the
        // upper levels, which may edit the planned set first.
        self.miss_to_memory(domain, addr, line, is_write, kind, lat)
    }

    /// Handles a full miss: peer snoop, DRAM latency, fills and evictions.
    fn miss_to_memory(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        line: u64,
        is_write: bool,
        kind: AccessKind,
        lat: stramash_sim::LatencyTable,
    ) -> AccessOutcome {
        let di = domain.index();
        let oi = domain.other().index();
        let line_addr = line << self.line_shift;
        let class = self.map.classify(domain, addr);
        let mut cycles = self.map.dram_latency(&lat, class);
        match class {
            MemClass::Local => self.stats[di].local_mem_hits += 1,
            MemClass::Remote => self.stats[di].remote_mem_hits += 1,
            MemClass::RemoteShared => self.stats[di].remote_shared_mem_hits += 1,
        }

        let mut snooped = false;
        let mut new_state = if is_write { Mesi::Modified } else { Mesi::Exclusive };

        if self.shared_l3.is_none() {
            // Private LLCs: consult the peer's hierarchy (CXL snoops §7.3).
            if self.hierarchies[oi].contains(line) {
                snooped = true;
                if is_write {
                    cycles += Cycles::new(self.cfg.cxl.snoop_invalidate as u64);
                    if self.hierarchies[oi].invalidate(line) == Some(Mesi::Modified) {
                        self.writebacks[oi] += 1;
                    }
                    self.stats[di].snoop_invalidations += 1;
                    self.emit(TraceEvent::Snoop { domain, addr: line_addr, invalidate: true });
                } else {
                    cycles += Cycles::new(self.cfg.cxl.snoop_data as u64);
                    // Demote the peer's copy Exclusive/Modified → Shared.
                    if self.hierarchies[oi].state_of(line) == Some(Mesi::Modified) {
                        self.writebacks[oi] += 1;
                    }
                    let old = self.hierarchies[oi].l3.set_state(line, Mesi::Shared);
                    self.stats[di].snoop_data_hits += 1;
                    new_state = Mesi::Shared;
                    self.emit(TraceEvent::Snoop { domain, addr: line_addr, invalidate: false });
                    if let Some(old) = old {
                        if old != Mesi::Shared {
                            self.emit(TraceEvent::MesiTransition {
                                domain: domain.other(),
                                addr: line_addr,
                                from: trace_mesi(old),
                                to: TraceMesi::Shared,
                            });
                        }
                    }
                }
            }
        } else if is_write && self.hierarchies[oi].in_upper_levels(line) {
            // Shared LLC: only the peer's private L1/L2 can hold a copy.
            snooped = true;
            cycles += Cycles::new(self.cfg.cxl.onchip_snoop as u64);
            self.hierarchies[oi].back_invalidate_upper(line);
            self.stats[di].snoop_invalidations += 1;
            self.emit(TraceEvent::Snoop { domain, addr: line_addr, invalidate: true });
        }

        // Fill the LLC, handling inclusive evictions. Private fills
        // also grow the domain's conservative snoop window (the epoch
        // scheduler's "may the peer hold this line?" oracle; windows
        // never shrink on eviction, which keeps them sound).
        let eviction = match &mut self.shared_l3 {
            Some(l3) => l3.insert(line, new_state),
            None => {
                self.epoch.windows[di].note(line);
                self.hierarchies[di].l3.insert(line, new_state)
            }
        };
        // The fill itself is an Invalid → new-state transition at the
        // coherence point (the line just missed the LLC probe).
        self.emit(TraceEvent::MesiTransition {
            domain,
            addr: line_addr,
            from: TraceMesi::Invalid,
            to: trace_mesi(new_state),
        });
        if let Some(ev) = eviction {
            self.emit(TraceEvent::CacheEvict {
                domain,
                addr: ev.line << self.line_shift,
                dirty: ev.state == Mesi::Modified,
            });
            if ev.state == Mesi::Modified {
                self.writebacks[di] += 1;
                // Dirty evictions drain through the write buffer; under
                // streaming writes this stalls for a fraction of the
                // DRAM write latency.
                cycles += Cycles::new(lat.mem as u64 / 2);
            }
            // Inclusive L3: upper levels must drop the evicted line.
            let mut back = false;
            for h in 0..2 {
                if (h == di || self.shared_l3.is_some()) && self.hierarchies[h].in_upper_levels(ev.line)
                {
                    self.hierarchies[h].back_invalidate_upper(ev.line);
                    back = true;
                }
            }
            if back {
                cycles += Cycles::new(self.cfg.cxl.back_invalidate as u64);
            }
        }
        self.fill_upper(domain, line, kind, /*fill_l2=*/ true);

        AccessOutcome { cycles, level: HitLevel::Memory, class: Some(class), snooped }
    }

    /// Fills the L1 (and optionally the L2) after a lower-level hit.
    /// Fills the kind-matching L1 through a [`FillPlan`] captured by the
    /// probe. The full-miss path must NOT use this: an inclusive L3
    /// eviction back-invalidates the upper levels, which can edit the
    /// planned set and invalidate the plan.
    #[inline]
    fn fill_l1_planned(&mut self, di: usize, line: u64, kind: AccessKind, plan: FillPlan) {
        match kind {
            AccessKind::Data => self.hierarchies[di].l1d.fill_planned(plan, line, Mesi::Shared),
            AccessKind::Instruction => {
                self.hierarchies[di].l1i.fill_planned(plan, line, Mesi::Shared);
            }
        }
    }

    fn fill_upper(&mut self, domain: DomainId, line: u64, kind: AccessKind, fill_l2: bool) {
        let di = domain.index();
        if fill_l2 {
            self.hierarchies[di].l2.insert(line, Mesi::Shared);
        }
        match kind {
            AccessKind::Data => self.hierarchies[di].l1d.insert(line, Mesi::Shared),
            AccessKind::Instruction => self.hierarchies[di].l1i.insert(line, Mesi::Shared),
        };
    }

    /// On a write hit, upgrades the line to Modified, snooping the peer
    /// out if it holds a copy. Returns whether a snoop happened.
    fn ensure_writable(&mut self, domain: DomainId, line: u64, cycles: &mut Cycles) -> bool {
        let di = domain.index();
        let oi = domain.other().index();
        match &mut self.shared_l3 {
            Some(l3) => {
                let old = l3.set_state(line, Mesi::Modified);
                self.emit_upgrade(domain, line, old);
                if self.hierarchies[oi].in_upper_levels(line) {
                    *cycles += Cycles::new(self.cfg.cxl.onchip_snoop as u64);
                    self.hierarchies[oi].back_invalidate_upper(line);
                    self.stats[di].snoop_invalidations += 1;
                    self.emit(TraceEvent::Snoop {
                        domain,
                        addr: line << self.line_shift,
                        invalidate: true,
                    });
                    return true;
                }
                false
            }
            None => {
                let state = self.hierarchies[di].l3.state_of(line);
                if state == Some(Mesi::Modified) || state == Some(Mesi::Exclusive) {
                    let old = self.hierarchies[di].l3.set_state(line, Mesi::Modified);
                    if state == Some(Mesi::Exclusive) {
                        self.emit_upgrade(domain, line, old);
                    }
                    return false;
                }
                // Shared (or L1-resident without L3 state after an odd
                // flush): invalidate the peer if present.
                let mut snooped = false;
                if self.hierarchies[oi].contains(line) {
                    *cycles += Cycles::new(self.cfg.cxl.snoop_invalidate as u64);
                    if self.hierarchies[oi].invalidate(line) == Some(Mesi::Modified) {
                        self.writebacks[oi] += 1;
                    }
                    self.stats[di].snoop_invalidations += 1;
                    self.emit(TraceEvent::Snoop {
                        domain,
                        addr: line << self.line_shift,
                        invalidate: true,
                    });
                    snooped = true;
                }
                let old = self.hierarchies[di].l3.set_state(line, Mesi::Modified);
                self.emit_upgrade(domain, line, old);
                snooped
            }
        }
    }

    /// Emits the MESI transition for a write upgrade to Modified, if the
    /// line was resident in a different state.
    #[inline]
    fn emit_upgrade(&self, domain: DomainId, line: u64, old: Option<Mesi>) {
        if self.tracer.is_none() {
            return;
        }
        if let Some(old) = old {
            if old != Mesi::Modified {
                self.emit(TraceEvent::MesiTransition {
                    domain,
                    addr: line << self.line_shift,
                    from: trace_mesi(old),
                    to: TraceMesi::Modified,
                });
            }
        }
    }

    // ---- timed data transfer ----------------------------------------------

    /// Timed read of `buf.len()` bytes: charges one access per cache line
    /// touched and copies the data out of the backing store.
    pub fn read_bytes(&mut self, domain: DomainId, addr: PhysAddr, buf: &mut [u8]) -> Cycles {
        let addr = self.canonicalize(domain, addr);
        let cycles = self.access_range(domain, addr, buf.len() as u64, Access::Read);
        self.store.read(addr, buf);
        cycles
    }

    /// Timed write of `data`: charges one access per line and stores the
    /// bytes (visible to both domains immediately — §7.1).
    pub fn write_bytes(&mut self, domain: DomainId, addr: PhysAddr, data: &[u8]) -> Cycles {
        let addr = self.canonicalize(domain, addr);
        let cycles = self.access_range(domain, addr, data.len() as u64, Access::Write);
        self.store.write(addr, data);
        cycles
    }

    /// Timed read of a little-endian `u64`.
    pub fn read_u64(&mut self, domain: DomainId, addr: PhysAddr) -> (u64, Cycles) {
        let addr = self.canonicalize(domain, addr);
        let cycles = self.access_range(domain, addr, 8, Access::Read);
        (self.store.read_u64(addr), cycles)
    }

    /// Timed write of a little-endian `u64`.
    pub fn write_u64(&mut self, domain: DomainId, addr: PhysAddr, value: u64) -> Cycles {
        let addr = self.canonicalize(domain, addr);
        let cycles = self.access_range(domain, addr, 8, Access::Write);
        self.store.write_u64(addr, value);
        cycles
    }

    /// Timed atomic read-modify-write of a `u64` (compare-and-swap).
    ///
    /// Models §6.5/§7.1: both ISAs use single-instruction CAS (x86
    /// `lock cmpxchg`, AArch64 LSE `CAS`), so a cross-ISA atomic is one
    /// write-for-ownership access plus a fixed serialisation penalty.
    pub fn cas_u64(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        expected: u64,
        new: u64,
        penalty: Cycles,
    ) -> (Result<u64, u64>, Cycles) {
        let addr = self.canonicalize(domain, addr);
        let out = self.access_line(domain, addr, Access::Write, AccessKind::Data);
        let cycles = out.cycles + penalty;
        let current = self.store.read_u64(addr);
        if current == expected {
            self.store.write_u64(addr, new);
            (Ok(current), cycles)
        } else {
            (Err(current), cycles)
        }
    }

    /// Timed fetch-add on a `u64`.
    pub fn fetch_add_u64(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        delta: u64,
        penalty: Cycles,
    ) -> (u64, Cycles) {
        let addr = self.canonicalize(domain, addr);
        let out = self.access_line(domain, addr, Access::Write, AccessKind::Data);
        let old = self.store.read_u64(addr);
        self.store.write_u64(addr, old.wrapping_add(delta));
        (old, out.cycles + penalty)
    }

    /// Timed copy (e.g. DSM page replication): reads from `src`, writes
    /// to `dst`, charging both sides' line accesses to `domain`.
    pub fn copy_bytes(
        &mut self,
        domain: DomainId,
        src: PhysAddr,
        dst: PhysAddr,
        len: u64,
    ) -> Cycles {
        let src = self.canonicalize(domain, src);
        let dst = self.canonicalize(domain, dst);
        let mut cycles = self.access_range(domain, src, len, Access::Read);
        cycles += self.access_range(domain, dst, len, Access::Write);
        self.store.copy(src, dst, len);
        cycles
    }

    /// Charges one timed access per cache line in `[addr, addr+len)`.
    ///
    /// `addr` must already be canonical — this is the bulk entry point
    /// the timed transfers (and the kernel's streaming `read_mem` /
    /// `write_mem` path) use after canonicalizing once.
    pub fn access_range(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        len: u64,
        access: Access,
    ) -> Cycles {
        if len == 0 {
            return Cycles::ZERO;
        }
        let first = addr.raw() >> self.line_shift;
        let last = (addr.raw() + len - 1) >> self.line_shift;
        let mut cycles = Cycles::ZERO;
        for line in first..=last {
            let line_addr = PhysAddr::new(line << self.line_shift);
            cycles += self.access_line(domain, line_addr, access, AccessKind::Data).cycles;
        }
        cycles
    }

    /// Charges `count` identical timed accesses to the single cache line
    /// at `line_addr` (already canonical, line-aligned).
    ///
    /// Cycle-identical to calling [`MemorySystem::access_line`] `count`
    /// times: the first access runs the full pipeline (it may miss, fill
    /// and snoop); the repeats are guaranteed L1 hits — every access
    /// path fills the L1, a write leaves the line Modified with the peer
    /// already snooped out, and re-touching the MRU line is idempotent —
    /// so they are accounted in bulk (`n` L1 hits at L1 latency, `n`
    /// trace entries) in O(1) instead of `n` pipeline walks. With the
    /// fast paths disabled the repeats replay the reference per-access
    /// loop, so the golden tests can compare the two.
    pub fn access_line_run(
        &mut self,
        domain: DomainId,
        line_addr: PhysAddr,
        access: Access,
        kind: AccessKind,
        count: u64,
    ) -> Cycles {
        if count == 0 {
            return Cycles::ZERO;
        }
        if self.epoch.active {
            self.epoch_defer_access(domain, line_addr, access, kind, count);
            return Cycles::ZERO;
        }
        let mut cycles = self.access_line(domain, line_addr, access, kind).cycles;
        let n = count - 1;
        if n == 0 {
            return cycles;
        }
        if !self.fast_paths {
            for _ in 0..n {
                cycles += self.access_line(domain, line_addr, access, kind).cycles;
            }
            return cycles;
        }
        let di = domain.index();
        let lat = self.cfg.domains[di].latency;
        if let Some(trace) = &mut self.trace {
            for _ in 0..n {
                trace.push(TraceEntry { domain, addr: line_addr, access, kind });
            }
        }
        match kind {
            AccessKind::Data => {
                self.stats[di].mem_accesses += n;
                self.stats[di].l1d.accesses += n;
                self.stats[di].l1d.hits += n;
            }
            AccessKind::Instruction => {
                self.stats[di].l1i.accesses += n;
                self.stats[di].l1i.hits += n;
            }
        }
        if let Some(t) = &self.tracer {
            // The repeats are guaranteed L1 hits; a replayed scalar loop
            // would emit exactly this event `n` times (a repeated write
            // finds the line already Modified, so no snoop, no MESI
            // transition, and the cost stays at the L1 latency).
            let event = TraceEvent::CacheAccess {
                domain,
                addr: (line_addr.raw() >> self.line_shift) << self.line_shift,
                write: access == Access::Write,
                ifetch: kind == AccessKind::Instruction,
                level: TraceLevel::L1,
                class: None,
                snooped: false,
                cost: Cycles::new(lat.l1 as u64),
            };
            let mut t = t.borrow_mut();
            for _ in 0..n {
                t.record(event);
            }
        }
        cycles + Cycles::new(n * lat.l1 as u64)
    }

    // ---- fused element / run transfers -------------------------------------
    //
    // The batched pipeline's mem-layer entry points: one dispatch per
    // element run instead of one `access_range` walk per 8-byte word.

    /// Timed read of an 8-byte-aligned `u64`: one line access plus the
    /// arena read, skipping the generic `access_range` loop. Identical
    /// timing/stats to [`MemorySystem::read_u64`] for aligned addresses
    /// (an aligned word never straddles a line).
    pub fn read_u64_aligned(&mut self, domain: DomainId, addr: PhysAddr) -> (u64, Cycles) {
        debug_assert!(addr.is_aligned(8), "fused element reads must be 8-byte aligned");
        let addr = self.canonicalize(domain, addr);
        let line_addr = addr.align_down(self.line_bytes);
        let out = self.access_line(domain, line_addr, Access::Read, AccessKind::Data);
        (self.store.read_u64(addr), out.cycles)
    }

    /// Timed write of an 8-byte-aligned `u64`; see
    /// [`MemorySystem::read_u64_aligned`].
    pub fn write_u64_aligned(&mut self, domain: DomainId, addr: PhysAddr, value: u64) -> Cycles {
        debug_assert!(addr.is_aligned(8), "fused element writes must be 8-byte aligned");
        let addr = self.canonicalize(domain, addr);
        let line_addr = addr.align_down(self.line_bytes);
        let out = self.access_line(domain, line_addr, Access::Write, AccessKind::Data);
        self.store.write_u64(addr, value);
        out.cycles
    }

    /// Timed read of `out.len()` consecutive aligned `u64`s: canonicalize
    /// once, charge each touched line as a run of repeats, and pull the
    /// payload out of the arena a chunk at a time. Access order (and so
    /// every counter) matches a per-word [`MemorySystem::read_u64`] loop.
    pub fn read_u64_run(&mut self, domain: DomainId, addr: PhysAddr, out: &mut [u64]) -> Cycles {
        debug_assert!(addr.is_aligned(8), "word runs must be 8-byte aligned");
        if out.is_empty() {
            return Cycles::ZERO;
        }
        let addr = self.canonicalize(domain, addr);
        let cycles = self.run_lines(domain, addr, out.len() as u64, Access::Read);
        self.store.read_words(addr, out);
        cycles
    }

    /// Timed write of `words` as consecutive aligned `u64`s; see
    /// [`MemorySystem::read_u64_run`].
    pub fn write_u64_run(&mut self, domain: DomainId, addr: PhysAddr, words: &[u64]) -> Cycles {
        debug_assert!(addr.is_aligned(8), "word runs must be 8-byte aligned");
        if words.is_empty() {
            return Cycles::ZERO;
        }
        let addr = self.canonicalize(domain, addr);
        let cycles = self.run_lines(domain, addr, words.len() as u64, Access::Write);
        self.store.write_words(addr, words);
        cycles
    }

    /// Charges the line accesses of a `words`-long aligned word run
    /// starting at canonical `addr`: per line touched, one
    /// [`MemorySystem::access_line_run`] of however many of the run's
    /// words fall in that line — exactly the per-word access sequence.
    fn run_lines(&mut self, domain: DomainId, addr: PhysAddr, words: u64, access: Access) -> Cycles {
        let mut cycles = Cycles::ZERO;
        let mut pos = addr.raw();
        let mut left = words;
        while left > 0 {
            let line = pos >> self.line_shift;
            let line_end = (line + 1) << self.line_shift;
            let n = ((line_end - pos) / 8).min(left);
            cycles += self.access_line_run(
                domain,
                PhysAddr::new(line << self.line_shift),
                access,
                AccessKind::Data,
                n,
            );
            pos += n * 8;
            left -= n;
        }
        cycles
    }

    /// Toggles the host-side cache fast paths (set masking, MRU probe,
    /// last-line hit) on every cache in the system. Simulated timing is
    /// bit-identical either way; `false` reinstates the reference code
    /// so benches and the golden tests can compare the two.
    pub fn set_fast_paths(&mut self, enabled: bool) {
        self.fast_paths = enabled;
        for h in &mut self.hierarchies {
            h.set_fast_paths(enabled);
        }
        if let Some(l3) = &mut self.shared_l3 {
            l3.set_fast_paths(enabled);
        }
    }

    /// Whether the host-side fast paths are currently enabled.
    #[must_use]
    pub fn fast_paths(&self) -> bool {
        self.fast_paths
    }

    // ---- deferred-epoch execution ------------------------------------------
    //
    // While an epoch is open, the timed access paths append to a log
    // instead of running; the boundary replays the log bit-identically
    // — serially in exact issue order, or on two host threads when the
    // snoop windows prove the domains' footprints cannot interact.

    /// Opens (or nests into) a deferred epoch. `min_lane` is the
    /// per-lane entry count below which a flush replays serially;
    /// `allow_wide` gates the two-thread replay entirely (the caller
    /// resolves its [`stramash_sim::WideReplay`] policy against the
    /// host core count — on a single core the spawn + barrier per
    /// flush is pure overhead).
    pub fn epoch_enter(&mut self, min_lane: usize, allow_wide: bool) {
        self.epoch.nest += 1;
        if self.epoch.nest == 1 {
            debug_assert!(!self.epoch.active && self.epoch.log.is_empty());
            self.epoch.min_lane = min_lane.max(1);
            self.epoch.allow_wide = allow_wide;
            self.epoch.carry = [Cycles::ZERO; 2];
            self.epoch.pending_credit = [Cycles::ZERO; 2];
            self.epoch.tally = EpochReport::default();
            self.epoch.active = true;
        }
    }

    /// Closes one nesting level; the outermost close flushes the log
    /// and returns the tally plus the clock credit the kernel must
    /// apply. Inner closes are no-ops.
    pub fn epoch_exit(&mut self) -> EpochFlushOutcome {
        debug_assert!(self.epoch.nest > 0, "epoch_exit without matching enter");
        if self.epoch.nest == 0 {
            return EpochFlushOutcome::default();
        }
        self.epoch.nest -= 1;
        if self.epoch.nest > 0 {
            return EpochFlushOutcome::default();
        }
        self.epoch_flush_now(false);
        debug_assert!(
            self.epoch.carry[0].raw() == 0 && self.epoch.carry[1].raw() == 0,
            "deferred access cycles left uncharged at epoch exit"
        );
        self.epoch.carry = [Cycles::ZERO; 2];
        let credit = self.epoch.pending_credit;
        self.epoch.pending_credit = [Cycles::ZERO; 2];
        let report = self.epoch.tally;
        self.epoch.tally = EpochReport::default();
        EpochFlushOutcome { report, credit }
    }

    /// Flushes and deactivates an open epoch without closing it (for
    /// mid-epoch operations that must run live, e.g. a page-table walk
    /// whose fault handler sends messages). Returns the clock credit to
    /// apply now; [`MemorySystem::epoch_resume`] reactivates deferral.
    /// Returns `None` when no epoch is active.
    pub fn epoch_suspend(&mut self) -> Option<EpochFlushOutcome> {
        if !self.epoch.active {
            return None;
        }
        self.epoch_flush_now(false);
        let credit = self.epoch.pending_credit;
        self.epoch.pending_credit = [Cycles::ZERO; 2];
        Some(EpochFlushOutcome { report: EpochReport::default(), credit })
    }

    /// Reactivates deferral after [`MemorySystem::epoch_suspend`].
    pub fn epoch_resume(&mut self) {
        if self.epoch.nest > 0 {
            self.epoch.active = true;
        }
    }

    /// Whether accesses are currently being deferred.
    #[must_use]
    #[inline]
    pub fn epoch_active(&self) -> bool {
        self.epoch.active
    }

    /// Defers a charge observed while an epoch is active: a zero
    /// charge is a mark that re-attaches the accumulated deferred
    /// access cycles; a non-zero charge (already credited to the clock
    /// by the caller) only defers its event position.
    pub fn epoch_note_charge(&mut self, domain: DomainId, cost: Cycles) {
        debug_assert!(self.epoch.active);
        if cost.raw() == 0 {
            self.epoch_push(EpochEntry::ChargeAcc { domain });
        } else {
            self.epoch_push(EpochEntry::ChargeNow { domain, cost });
        }
    }

    /// Defers a retire event (clock and instruction counters were
    /// already updated at issue; only the trace position is deferred).
    pub fn epoch_note_retire(&mut self, domain: DomainId, insns: u64) {
        debug_assert!(self.epoch.active);
        self.epoch_push(EpochEntry::Retire { domain, insns });
    }

    /// Log-size cap: past this the epoch flushes in place (staying
    /// open), bounding host memory and pipelining the replay.
    const EPOCH_LOG_CAP: usize = 1 << 20;

    #[inline]
    fn epoch_push(&mut self, entry: EpochEntry) {
        self.epoch.log.push(entry);
        if self.epoch.log.len() >= Self::EPOCH_LOG_CAP {
            self.epoch_flush_now(true);
        }
    }

    #[inline]
    fn epoch_defer_access(
        &mut self,
        domain: DomainId,
        addr: PhysAddr,
        access: Access,
        kind: AccessKind,
        count: u64,
    ) {
        let line = addr.raw() >> self.line_shift;
        self.epoch.ranges[domain.index()].note(line);
        self.epoch_push(EpochEntry::Access { domain, addr: addr.raw(), access, kind, count });
    }

    /// Replays and clears the log. Deferral is off on return;
    /// `reactivate` turns it back on (intra-epoch cap flushes).
    fn epoch_flush_now(&mut self, reactivate: bool) {
        self.epoch.active = false;
        if !self.epoch.log.is_empty() {
            let mut lanes = [0usize; 2];
            for e in &self.epoch.log {
                lanes[e.domain().index()] += 1;
            }
            // The parallel lane executor elides every peer-coherence
            // branch, which is only sound when (a) each lane's touched
            // lines avoid both the peer's epoch and the peer's
            // conservative LLC window, and (b) no cross-lane host
            // state is shared (debug trace off, no shared LLC, no
            // aliases, fast paths on so the run accounting is bulk).
            let parallel = self.epoch.allow_wide
                && lanes[0] >= self.epoch.min_lane
                && lanes[1] >= self.epoch.min_lane
                && self.fast_paths
                && self.shared_l3.is_none()
                && self.aliases.is_empty()
                && self.trace.is_none()
                && self.epoch.ranges[0].disjoint(&self.epoch.ranges[1])
                && self.epoch.ranges[0].disjoint(&self.epoch.windows[1])
                && self.epoch.ranges[1].disjoint(&self.epoch.windows[0]);
            if parallel {
                self.epoch_replay_parallel();
            } else {
                self.epoch_replay_serial();
            }
            self.epoch.tally.absorb(EpochReport {
                entries: lanes[0] + lanes[1],
                lanes,
                parallel,
            });
            self.epoch.ranges[0].clear();
            self.epoch.ranges[1].clear();
        }
        if reactivate {
            self.epoch.active = true;
        }
    }

    /// Serial replay: exact issue order through the normal pipeline.
    fn epoch_replay_serial(&mut self) {
        let log = std::mem::take(&mut self.epoch.log);
        let mut acc = self.epoch.carry;
        for entry in &log {
            match *entry {
                EpochEntry::Access { domain, addr, access, kind, count } => {
                    acc[domain.index()] +=
                        self.access_line_run(domain, PhysAddr::new(addr), access, kind, count);
                }
                EpochEntry::TlbHits { domain, n } => self.note_tlb_hits(domain, n),
                EpochEntry::TlbMiss { domain } => self.note_tlb_miss(domain),
                EpochEntry::Retire { domain, insns } => {
                    self.emit(TraceEvent::Retire { domain, insns });
                }
                EpochEntry::ChargeAcc { domain } => {
                    let di = domain.index();
                    if acc[di].raw() != 0 {
                        self.emit(TraceEvent::Charge { domain, cost: acc[di] });
                        self.epoch.pending_credit[di] += acc[di];
                        acc[di] = Cycles::ZERO;
                    }
                }
                EpochEntry::ChargeNow { domain, cost } => {
                    self.emit(TraceEvent::Charge { domain, cost });
                }
            }
        }
        self.epoch.carry = acc;
        self.epoch.log = log;
        self.epoch.log.clear();
    }

    /// Parallel replay: one host thread per domain lane. Events carry
    /// their global log sequence number and are merged back into the
    /// tracer in issue order, so the stream is identical to the serial
    /// replay's.
    fn epoch_replay_parallel(&mut self) {
        let mut l0: Vec<(u32, EpochEntry)> = Vec::new();
        let mut l1: Vec<(u32, EpochEntry)> = Vec::new();
        for (i, e) in self.epoch.log.iter().enumerate() {
            if e.domain() == DomainId::X86 {
                l0.push((i as u32, *e));
            } else {
                l1.push((i as u32, *e));
            }
        }
        let lat0 = self.cfg.domains[0].latency;
        let lat1 = self.cfg.domains[1].latency;
        let back_inv = self.cfg.cxl.back_invalidate as u64;
        let trace_on = self.tracer.is_some();
        let carry = self.epoch.carry;
        let line_shift = self.line_shift;
        let (r0, r1) = {
            let map = &self.map;
            let [h0, h1] = &mut self.hierarchies;
            let [s0, s1] = &mut self.stats;
            let [wb0, wb1] = &mut self.writebacks;
            let [w0, w1] = &mut self.epoch.windows;
            let c0 = LaneCtx {
                domain: DomainId::X86,
                hier: h0,
                stats: s0,
                writebacks: wb0,
                window: w0,
                lat: lat0,
                back_invalidate: back_inv,
                map,
                line_shift,
                trace_on,
            };
            let c1 = LaneCtx {
                domain: DomainId::ARM,
                hier: h1,
                stats: s1,
                writebacks: wb1,
                window: w1,
                lat: lat1,
                back_invalidate: back_inv,
                map,
                line_shift,
                trace_on,
            };
            std::thread::scope(|sc| {
                let t0 = sc.spawn(move || lane_replay(c0, &l0, carry[0]));
                let r1 = lane_replay(c1, &l1, carry[1]);
                (t0.join().expect("epoch lane panicked"), r1)
            })
        };
        self.epoch.carry = [r0.carry, r1.carry];
        self.epoch.pending_credit[0] += r0.credit;
        self.epoch.pending_credit[1] += r1.credit;
        if trace_on {
            if let Some(t) = &self.tracer {
                let mut t = t.borrow_mut();
                let (a, b) = (&r0.events, &r1.events);
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i].0 < b[j].0 {
                        t.record(a[i].1);
                        i += 1;
                    } else {
                        t.record(b[j].1);
                        j += 1;
                    }
                }
                for &(_, e) in &a[i..] {
                    t.record(e);
                }
                for &(_, e) in &b[j..] {
                    t.record(e);
                }
            }
        }
        self.epoch.log.clear();
    }

    // ---- compiled access plans ---------------------------------------------

    /// Replays the plan's ops in `range` as timed data accesses. Cycle-, stat-
    /// and trace-identical to issuing each op through
    /// [`MemorySystem::access_line`] in order: with the tracer or the
    /// debug trace on (or fast paths off, or a shared LLC) it *is*
    /// that loop; otherwise repeat hits on resident lines — the vast
    /// majority for a compiled loop nest — are accounted in bulk
    /// against the structure-of-arrays mirrors without the per-access
    /// dispatch. Plan addresses must be canonical.
    pub fn run_plan(
        &mut self,
        domain: DomainId,
        plan: &AccessPlan,
        range: std::ops::Range<usize>,
    ) -> Cycles {
        let start = range.start;
        let addrs = &plan.addrs[range];
        let mask = !(self.line_bytes - 1);
        if self.epoch.active {
            for (i, &addr) in addrs.iter().enumerate() {
                let access =
                    if plan.write_at(start + i) { Access::Write } else { Access::Read };
                self.epoch_defer_access(
                    domain,
                    PhysAddr::new(addr & mask),
                    access,
                    AccessKind::Data,
                    1,
                );
            }
            return Cycles::ZERO;
        }
        if !self.fast_paths
            || self.tracer.is_some()
            || self.trace.is_some()
            || self.shared_l3.is_some()
        {
            let mut cycles = Cycles::ZERO;
            for (i, &addr) in addrs.iter().enumerate() {
                let access =
                    if plan.write_at(start + i) { Access::Write } else { Access::Read };
                cycles += self
                    .access_line(domain, PhysAddr::new(addr & mask), access, AccessKind::Data)
                    .cycles;
            }
            return cycles;
        }
        // Dense fast path, lane-parallel (DESIGN.md §11.6): classify
        // up to `PLAN_LANES` ops at once against the structure-of-
        // arrays tag mirrors — a pure sweep with no LRU, hint, or stat
        // side effects — then commit the leading all-hit run with the
        // exact probe side effects and one bulk account, and push the
        // first non-hit op through the full pipeline just as the
        // per-op loop does. An op is a pure L1 hit when the line is
        // L1D-resident and, for writes, the private L3 already holds
        // it Modified (then `ensure_writable` would be a no-op: no
        // event, no snoop, no extra cycles). Classifying a whole batch
        // up front is sound because hits never move tags, so the
        // verdicts stay valid across the committed all-hit prefix; the
        // first fallback op ends the batch and the next iteration
        // re-classifies whatever the full pipeline changed.
        const PLAN_LANES: usize = 16;
        let di = domain.index();
        let shift = self.line_shift;
        let l1_lat = self.cfg.domains[di].latency.l1 as u64;
        let mut fast_ops = 0u64;
        let mut total = Cycles::ZERO;
        let n = addrs.len();
        let mut k = 0usize;
        let mut lines = [0u64; PLAN_LANES];
        let mut ways = [0u8; PLAN_LANES];
        while k < n {
            let w = (n - k).min(PLAN_LANES);
            for (j, &addr) in addrs[k..k + w].iter().enumerate() {
                lines[j] = addr >> shift;
            }
            let wmask = plan.write_window(start + k) as u32;
            let h = &self.hierarchies[di];
            let hit = h.l1d.classify_lanes(&lines[..w], &mut ways);
            // Write lanes additionally need L3 ownership.
            let mut fast = hit;
            let mut writes = fast & wmask;
            while writes != 0 {
                let j = writes.trailing_zeros() as usize;
                if !h.l3.state_modified(lines[j]) {
                    fast &= !(1 << j);
                }
                writes &= writes - 1;
            }
            let run = ((!fast).trailing_zeros() as usize).min(w);
            self.hierarchies[di].l1d.touch_hits(&lines[..run], &ways[..run]);
            fast_ops += run as u64;
            k += run;
            if run < w {
                if fast_ops > 0 {
                    let s = &mut self.stats[di];
                    s.mem_accesses += fast_ops;
                    s.l1d.accesses += fast_ops;
                    s.l1d.hits += fast_ops;
                    total += Cycles::new(fast_ops * l1_lat);
                    fast_ops = 0;
                }
                // A fallback op that probed Hit (a write awaiting
                // ownership) must keep the probe's MRU re-touch before
                // the full pipeline runs, exactly as the per-op loop
                // interleaves them. A true miss probes to a fill plan
                // that mutates nothing, so the probe is skipped
                // entirely — the pipeline rebuilds it anyway.
                let line = lines[run];
                if hit & (1 << run) != 0 {
                    let _ = self.hierarchies[di].l1d.probe_or_plan(line);
                }
                let access =
                    if plan.write_at(start + k) { Access::Write } else { Access::Read };
                total += self
                    .access_line(domain, PhysAddr::new(line << shift), access, AccessKind::Data)
                    .cycles;
                k += 1;
            }
        }
        if fast_ops > 0 {
            let s = &mut self.stats[di];
            s.mem_accesses += fast_ops;
            s.l1d.accesses += fast_ops;
            s.l1d.hits += fast_ops;
            total += Cycles::new(fast_ops * l1_lat);
        }
        total
    }

    /// Serializes the mutable memory-system state into a checkpoint
    /// section: both hierarchies, the shared LLC (if the model has one),
    /// the backing store, per-domain stats, writeback counters, alias
    /// windows and the ECC journal. Config-derived structure (geometry,
    /// address map, latencies) is never written; the debug access trace
    /// and the tracer handle are host-side and excluded.
    pub fn save_state(&self, e: &mut stramash_sim::checkpoint::Encoder) {
        assert!(
            !self.epoch.active && self.epoch.log.is_empty(),
            "checkpoint taken inside an open epoch"
        );
        e.tag(0x4d_454d53); // "MEMS"
        e.bool(self.fast_paths);
        for h in &self.hierarchies {
            h.save_state(e);
        }
        match &self.shared_l3 {
            Some(l3) => {
                e.bool(true);
                l3.save_state(e);
            }
            None => e.bool(false),
        }
        self.store.save_state(e);
        for s in &self.stats {
            s.save_state(e);
        }
        e.u64(self.writebacks[0]);
        e.u64(self.writebacks[1]);
        e.u64(self.aliases.len() as u64);
        for w in &self.aliases {
            e.u8(w.domain.index() as u8);
            e.u64(w.alias_start);
            e.u64(w.len);
            e.u64(w.canon_start);
        }
        e.u64(self.ecc_journal.len() as u64);
        for f in &self.ecc_journal {
            e.u64(f.addr.raw());
            e.u64(f.mask);
            e.bool(f.double);
        }
    }

    /// Restores the mutable memory-system state from a checkpoint
    /// section taken on an identically-configured system.
    ///
    /// # Errors
    ///
    /// Decoding errors, or [`ConfigMismatch`]
    /// (\[`stramash_sim::checkpoint::CheckpointError::ConfigMismatch`\])
    /// when the artifact's shared-LLC presence disagrees with this
    /// system's hardware model.
    pub fn load_state(
        &mut self,
        d: &mut stramash_sim::checkpoint::Decoder<'_>,
    ) -> Result<(), stramash_sim::checkpoint::CheckpointError> {
        use stramash_sim::checkpoint::CheckpointError;
        d.tag(0x4d_454d53)?;
        self.fast_paths = d.bool()?;
        for h in &mut self.hierarchies {
            h.load_state(d)?;
        }
        let has_shared = d.bool()?;
        match (&mut self.shared_l3, has_shared) {
            (Some(l3), true) => l3.load_state(d)?,
            (None, false) => {}
            _ => return Err(CheckpointError::ConfigMismatch),
        }
        self.store.load_state(d)?;
        for s in &mut self.stats {
            s.load_state(d)?;
        }
        self.writebacks[0] = d.u64()?;
        self.writebacks[1] = d.u64()?;
        let n = d.len()?;
        self.aliases.clear();
        for _ in 0..n {
            let domain = match d.u8()? {
                0 => DomainId::X86,
                1 => DomainId::ARM,
                _ => return Err(CheckpointError::Malformed("alias domain")),
            };
            self.aliases.push(AliasWindow {
                domain,
                alias_start: d.u64()?,
                len: d.u64()?,
                canon_start: d.u64()?,
            });
        }
        let n = d.len()?;
        self.ecc_journal.clear();
        for _ in 0..n {
            self.ecc_journal.push(EccFault {
                addr: PhysAddr::new(d.u64()?),
                mask: d.u64()?,
                double: d.bool()?,
            });
        }
        // Epoch state is host-side and restarts clean; the snoop
        // windows are rebuilt from the restored (inclusive) LLCs so the
        // conservative footprint matches the resumed cache contents.
        assert!(
            !self.epoch.active && self.epoch.log.is_empty(),
            "restore inside an open epoch"
        );
        for di in 0..2 {
            let w = &mut self.epoch.windows[di];
            w.clear();
            if self.shared_l3.is_none() {
                for (line, _) in self.hierarchies[di].l3.lines() {
                    w.note(line);
                }
            }
        }
        Ok(())
    }

    /// Whether `domain`'s L1/L2 hold the line containing `addr` — with
    /// inclusive LLCs this implies [`MemorySystem::caches_line`], an
    /// invariant the property tests check.
    #[must_use]
    pub fn upper_levels_resident(&self, domain: DomainId, addr: PhysAddr) -> bool {
        let line = addr.line(self.line_bytes);
        self.hierarchies[domain.index()].in_upper_levels(line)
    }

    /// Whether `domain`'s hierarchy (or the shared LLC) holds the line
    /// containing `addr` — used by tests and the reference comparison.
    #[must_use]
    pub fn caches_line(&self, domain: DomainId, addr: PhysAddr) -> bool {
        let line = addr.line(self.line_bytes);
        match &self.shared_l3 {
            Some(l3) => l3.contains(line),
            None => self.hierarchies[domain.index()].contains(line),
        }
    }
}

// ---- compiled access plans --------------------------------------------------

/// One compiled access-plan operation: a canonical physical address and
/// a direction. The line mapping happens at replay time against the
/// replaying system's geometry, so a plan survives checkpoint/restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOp {
    /// Canonical physical address of the word touched.
    pub addr: u64,
    /// Store (`true`) or load (`false`).
    pub write: bool,
}

/// A compiled access plan: the exact data-access sequence of one loop
/// iteration (or iteration chunk), precomputed once and replayed via
/// [`MemorySystem::run_plan`]. Replay is cycle-, stat- and
/// trace-identical to issuing each op through
/// [`MemorySystem::access_line`] in order.
///
/// Stored structure-of-arrays — a dense address vector plus a
/// write-direction bitset — so the lane-parallel replay sweeps
/// contiguous `u64`s and reads a whole batch's directions in one word.
#[derive(Debug, Clone, Default)]
pub struct AccessPlan {
    /// Canonical physical addresses in element order.
    addrs: Vec<u64>,
    /// Direction bitset: bit `i % 64` of word `i / 64` is set when op
    /// `i` is a store.
    writes: Vec<u64>,
}

impl AccessPlan {
    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the plan holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Appends one operation.
    pub fn push(&mut self, addr: u64, write: bool) {
        let i = self.addrs.len();
        self.addrs.push(addr);
        if i.is_multiple_of(64) {
            self.writes.push(0);
        }
        if write {
            self.writes[i / 64] |= 1 << (i % 64);
        }
    }

    /// Drops all operations, keeping the allocations.
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.writes.clear();
    }

    /// The canonical addresses, one per op in element order.
    #[must_use]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Whether op `i` is a store.
    #[must_use]
    pub fn write_at(&self, i: usize) -> bool {
        (self.writes[i / 64] >> (i % 64)) & 1 != 0
    }

    /// A 64-bit window of direction bits: bit `j` is op `start + j`
    /// (zero past the end of the plan).
    #[must_use]
    pub fn write_window(&self, start: usize) -> u64 {
        let wi = start / 64;
        let off = start % 64;
        let lo = self.writes.get(wi).copied().unwrap_or(0) >> off;
        if off == 0 {
            lo
        } else {
            lo | (self.writes.get(wi + 1).copied().unwrap_or(0) << (64 - off))
        }
    }

    /// Iterates the ops in element order as [`PlanOp`] views.
    pub fn iter(&self) -> impl Iterator<Item = PlanOp> + '_ {
        self.addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| PlanOp { addr, write: self.write_at(i) })
    }
}

// ---- parallel-lane replay ---------------------------------------------------
//
// The lane executor is the serial access pipeline specialised for the
// case the parallel precheck proves: private LLCs, no aliases, no debug
// trace, and no logged line resident in (or enterable into) the peer's
// hierarchy. Every peer-coherence branch of the serial code is then
// dead, and what remains touches only the lane's own borrows below.

/// Everything one replay lane may touch. Two `LaneCtx`s over the same
/// `MemorySystem` borrow disjoint state, which is what lets the two
/// lanes run on separate host threads.
struct LaneCtx<'a> {
    domain: DomainId,
    hier: &'a mut CacheHierarchy,
    stats: &'a mut DomainStats,
    writebacks: &'a mut u64,
    window: &'a mut SnoopWindow,
    lat: LatencyTable,
    /// `cxl.back_invalidate` cost for inclusive-eviction back-invalidates.
    back_invalidate: u64,
    map: &'a AddressMap,
    line_shift: u32,
    trace_on: bool,
}

/// What a lane hands back: clock credit released by charge marks, the
/// still-unattached access cycles, and the lane's trace events tagged
/// with their global log sequence for the in-order merge.
struct LaneResult {
    credit: Cycles,
    carry: Cycles,
    events: Vec<(u32, TraceEvent)>,
}

/// Replays one domain's slice of the epoch log.
fn lane_replay(mut cx: LaneCtx<'_>, log: &[(u32, EpochEntry)], carry_in: Cycles) -> LaneResult {
    let mut out = LaneResult { credit: Cycles::ZERO, carry: carry_in, events: Vec::new() };
    for &(seq, entry) in log {
        match entry {
            EpochEntry::Access { addr, access, kind, count, .. } => {
                out.carry += lane_access(&mut cx, seq, addr, access, kind, count, &mut out.events);
            }
            EpochEntry::TlbHits { n, .. } => {
                cx.stats.tlb_hits += n;
                if cx.trace_on {
                    for _ in 0..n {
                        out.events
                            .push((seq, TraceEvent::TlbLookup { domain: cx.domain, hit: true }));
                    }
                }
            }
            EpochEntry::TlbMiss { .. } => {
                cx.stats.tlb_misses += 1;
                if cx.trace_on {
                    out.events.push((seq, TraceEvent::TlbLookup { domain: cx.domain, hit: false }));
                }
            }
            EpochEntry::Retire { insns, .. } => {
                if cx.trace_on {
                    out.events.push((seq, TraceEvent::Retire { domain: cx.domain, insns }));
                }
            }
            EpochEntry::ChargeAcc { .. } => {
                if out.carry.raw() != 0 {
                    if cx.trace_on {
                        out.events
                            .push((seq, TraceEvent::Charge { domain: cx.domain, cost: out.carry }));
                    }
                    out.credit += out.carry;
                    out.carry = Cycles::ZERO;
                }
            }
            EpochEntry::ChargeNow { cost, .. } => {
                if cx.trace_on {
                    out.events.push((seq, TraceEvent::Charge { domain: cx.domain, cost }));
                }
            }
        }
    }
    out
}

/// Replays one logged access (with its run repeats), mirroring
/// [`MemorySystem::access_line_run`]'s fast path: repeats are
/// guaranteed L1 hits (fast paths are on, or the flush ran serially).
fn lane_access(
    cx: &mut LaneCtx<'_>,
    seq: u32,
    addr: u64,
    access: Access,
    kind: AccessKind,
    count: u64,
    events: &mut Vec<(u32, TraceEvent)>,
) -> Cycles {
    let mut cycles = lane_access_one(cx, seq, addr, access, kind, events);
    let n = count - 1;
    if n > 0 {
        match kind {
            AccessKind::Data => {
                cx.stats.mem_accesses += n;
                cx.stats.l1d.accesses += n;
                cx.stats.l1d.hits += n;
            }
            AccessKind::Instruction => {
                cx.stats.l1i.accesses += n;
                cx.stats.l1i.hits += n;
            }
        }
        if cx.trace_on {
            let event = TraceEvent::CacheAccess {
                domain: cx.domain,
                addr: (addr >> cx.line_shift) << cx.line_shift,
                write: access == Access::Write,
                ifetch: kind == AccessKind::Instruction,
                level: TraceLevel::L1,
                class: None,
                snooped: false,
                cost: Cycles::new(cx.lat.l1 as u64),
            };
            for _ in 0..n {
                events.push((seq, event));
            }
        }
        cycles += Cycles::new(n * cx.lat.l1 as u64);
    }
    cycles
}

/// One timed access through the lane pipeline — the peer-free
/// specialisation of [`MemorySystem::access_line`].
fn lane_access_one(
    cx: &mut LaneCtx<'_>,
    seq: u32,
    addr: u64,
    access: Access,
    kind: AccessKind,
    events: &mut Vec<(u32, TraceEvent)>,
) -> Cycles {
    let line = addr >> cx.line_shift;
    let is_write = access == Access::Write;
    if kind == AccessKind::Data {
        cx.stats.mem_accesses += 1;
    }
    let probe = match kind {
        AccessKind::Data => cx.hier.l1d.probe_or_plan(line),
        AccessKind::Instruction => cx.hier.l1i.probe_or_plan(line),
    };
    let l1_hit = matches!(probe, ProbeFill::Hit);
    match kind {
        AccessKind::Data => cx.stats.l1d.record(l1_hit),
        AccessKind::Instruction => cx.stats.l1i.record(l1_hit),
    }

    let (cycles, level, class) = 'pipeline: {
        let plan = match probe {
            ProbeFill::Hit => {
                let mut cycles = Cycles::new(cx.lat.l1 as u64);
                if is_write {
                    lane_ensure_writable(cx, seq, line, &mut cycles, events);
                }
                break 'pipeline (cycles, HitLevel::L1, None);
            }
            ProbeFill::Miss(plan) => plan,
        };

        let l2_hit = cx.hier.l2.probe_hit(line);
        cx.stats.l2.record(l2_hit);
        if l2_hit {
            let mut cycles = Cycles::new(cx.lat.l2 as u64);
            lane_fill_l1_planned(cx, line, kind, plan);
            if is_write {
                lane_ensure_writable(cx, seq, line, &mut cycles, events);
            }
            break 'pipeline (cycles, HitLevel::L2, None);
        }

        let l3_hit = cx.hier.l3.probe_hit(line);
        cx.stats.l3.record(l3_hit);
        if l3_hit {
            let mut cycles = Cycles::new(cx.lat.l3 as u64);
            cx.hier.l2.insert(line, Mesi::Shared);
            lane_fill_l1_planned(cx, line, kind, plan);
            if is_write {
                lane_ensure_writable(cx, seq, line, &mut cycles, events);
            }
            break 'pipeline (cycles, HitLevel::L3, None);
        }

        // Full miss. The peer cannot hold the line (precheck), so the
        // snoop branches are gone; everything else matches
        // `miss_to_memory`.
        let line_addr = line << cx.line_shift;
        let class = cx.map.classify(cx.domain, PhysAddr::new(addr));
        let mut cycles = cx.map.dram_latency(&cx.lat, class);
        match class {
            MemClass::Local => cx.stats.local_mem_hits += 1,
            MemClass::Remote => cx.stats.remote_mem_hits += 1,
            MemClass::RemoteShared => cx.stats.remote_shared_mem_hits += 1,
        }
        let new_state = if is_write { Mesi::Modified } else { Mesi::Exclusive };
        cx.window.note(line);
        let eviction = cx.hier.l3.insert(line, new_state);
        if cx.trace_on {
            events.push((
                seq,
                TraceEvent::MesiTransition {
                    domain: cx.domain,
                    addr: line_addr,
                    from: TraceMesi::Invalid,
                    to: trace_mesi(new_state),
                },
            ));
        }
        if let Some(ev) = eviction {
            if cx.trace_on {
                events.push((
                    seq,
                    TraceEvent::CacheEvict {
                        domain: cx.domain,
                        addr: ev.line << cx.line_shift,
                        dirty: ev.state == Mesi::Modified,
                    },
                ));
            }
            if ev.state == Mesi::Modified {
                *cx.writebacks += 1;
                cycles += Cycles::new(cx.lat.mem as u64 / 2);
            }
            if cx.hier.in_upper_levels(ev.line) {
                cx.hier.back_invalidate_upper(ev.line);
                cycles += Cycles::new(cx.back_invalidate);
            }
        }
        cx.hier.l2.insert(line, Mesi::Shared);
        match kind {
            AccessKind::Data => cx.hier.l1d.insert(line, Mesi::Shared),
            AccessKind::Instruction => cx.hier.l1i.insert(line, Mesi::Shared),
        };
        (cycles, HitLevel::Memory, Some(class))
    };

    if cx.trace_on {
        events.push((
            seq,
            TraceEvent::CacheAccess {
                domain: cx.domain,
                addr: (addr >> cx.line_shift) << cx.line_shift,
                write: is_write,
                ifetch: kind == AccessKind::Instruction,
                level: trace_level(level),
                class: class.map(trace_class),
                snooped: false,
                cost: cycles,
            },
        ));
    }
    cycles
}

/// Lane counterpart of [`MemorySystem::fill_l1_planned`].
#[inline]
fn lane_fill_l1_planned(cx: &mut LaneCtx<'_>, line: u64, kind: AccessKind, plan: FillPlan) {
    match kind {
        AccessKind::Data => cx.hier.l1d.fill_planned(plan, line, Mesi::Shared),
        AccessKind::Instruction => cx.hier.l1i.fill_planned(plan, line, Mesi::Shared),
    }
}

/// Write-hit upgrade with the peer branches removed: never snoops, so
/// the returned `snooped` of the serial pipeline is always false here.
fn lane_ensure_writable(
    cx: &mut LaneCtx<'_>,
    seq: u32,
    line: u64,
    _cycles: &mut Cycles,
    events: &mut Vec<(u32, TraceEvent)>,
) {
    let state = cx.hier.l3.state_of(line);
    if state == Some(Mesi::Modified) || state == Some(Mesi::Exclusive) {
        cx.hier.l3.set_state(line, Mesi::Modified);
        if state == Some(Mesi::Exclusive) {
            lane_emit_upgrade(cx, seq, line, state, events);
        }
        return;
    }
    let old = cx.hier.l3.set_state(line, Mesi::Modified);
    lane_emit_upgrade(cx, seq, line, old, events);
}

/// Lane counterpart of [`MemorySystem::emit_upgrade`].
#[inline]
fn lane_emit_upgrade(
    cx: &mut LaneCtx<'_>,
    seq: u32,
    line: u64,
    old: Option<Mesi>,
    events: &mut Vec<(u32, TraceEvent)>,
) {
    if !cx.trace_on {
        return;
    }
    if let Some(old) = old {
        if old != Mesi::Modified {
            events.push((
                seq,
                TraceEvent::MesiTransition {
                    domain: cx.domain,
                    addr: line << cx.line_shift,
                    from: trace_mesi(old),
                    to: TraceMesi::Modified,
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stramash_sim::CacheConfig;

    fn sys(model: HardwareModel) -> MemorySystem {
        let cfg = SimConfig::big_pair().with_hw_model(model);
        MemorySystem::new(cfg).unwrap()
    }

    const X86_LOCAL: PhysAddr = PhysAddr::new(0x10_0000);
    const ARM_LOCAL: PhysAddr = PhysAddr::new(0x8000_0000); // 2 GB
    const POOL: PhysAddr = PhysAddr::new(0x1_4000_0000); // 5 GB

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut m = sys(HardwareModel::Separated);
        let out = m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        assert_eq!(out.level, HitLevel::Memory);
        assert_eq!(out.class, Some(MemClass::Local));
        assert_eq!(out.cycles.raw(), 300);
        let out = m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        assert_eq!(out.level, HitLevel::L1);
        assert_eq!(out.cycles.raw(), 4);
        assert_eq!(m.stats(DomainId::X86).local_mem_hits, 1);
        assert_eq!(m.stats(DomainId::X86).mem_accesses, 2);
    }

    #[test]
    fn remote_miss_charges_remote_latency() {
        let mut m = sys(HardwareModel::Separated);
        let out = m.access(DomainId::X86, ARM_LOCAL, Access::Read, AccessKind::Data);
        assert_eq!(out.class, Some(MemClass::Remote));
        assert_eq!(out.cycles.raw(), 640); // Xeon Gold remote-mem
        assert_eq!(m.stats(DomainId::X86).remote_mem_hits, 1);
    }

    #[test]
    fn shared_pool_counts_remote_shared() {
        let mut m = sys(HardwareModel::Shared);
        let out = m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        assert_eq!(out.class, Some(MemClass::RemoteShared));
        assert_eq!(out.cycles.raw(), 620); // ThunderX2 remote-mem
        assert_eq!(m.stats(DomainId::ARM).remote_shared_mem_hits, 1);
    }

    #[test]
    fn read_sharing_triggers_snoop_data() {
        let mut m = sys(HardwareModel::Shared);
        // x86 writes the line (Modified in x86's L3).
        m.access(DomainId::X86, POOL, Access::Write, AccessKind::Data);
        // Arm reads it: Snoop Data demotes x86's copy to Shared (§7.3).
        let out = m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        assert!(out.snooped);
        assert_eq!(out.cycles.raw(), 620 + 80);
        assert_eq!(m.stats(DomainId::ARM).snoop_data_hits, 1);
        // The dirty copy was demoted → counts as a writeback on x86.
        assert_eq!(m.writebacks(DomainId::X86), 1);
    }

    #[test]
    fn write_invalidates_peer_copy() {
        let mut m = sys(HardwareModel::Shared);
        m.access(DomainId::X86, POOL, Access::Read, AccessKind::Data);
        assert!(m.caches_line(DomainId::X86, POOL));
        // Arm writes: Snoop Invalidate (§7.3) drops x86's copy.
        let out = m.access(DomainId::ARM, POOL, Access::Write, AccessKind::Data);
        assert!(out.snooped);
        assert_eq!(out.cycles.raw(), 620 + 90);
        assert!(!m.caches_line(DomainId::X86, POOL));
        assert_eq!(m.stats(DomainId::ARM).snoop_invalidations, 1);
    }

    #[test]
    fn write_hit_on_shared_line_upgrades_and_snoops() {
        let mut m = sys(HardwareModel::Shared);
        // Both domains read the line → Shared in both.
        m.access(DomainId::X86, POOL, Access::Read, AccessKind::Data);
        m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        // x86 writes: L1 hit but must invalidate Arm's copy first.
        let out = m.access(DomainId::X86, POOL, Access::Write, AccessKind::Data);
        assert_eq!(out.level, HitLevel::L1);
        assert!(out.snooped);
        assert_eq!(out.cycles.raw(), 4 + 90);
        assert!(!m.caches_line(DomainId::ARM, POOL));
    }

    #[test]
    fn write_hit_on_exclusive_line_is_silent() {
        let mut m = sys(HardwareModel::Separated);
        m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        let out = m.access(DomainId::X86, X86_LOCAL, Access::Write, AccessKind::Data);
        assert_eq!(out.level, HitLevel::L1);
        assert!(!out.snooped);
        assert_eq!(out.cycles.raw(), 4);
    }

    #[test]
    fn fully_shared_everything_local_and_llc_shared() {
        let mut m = sys(HardwareModel::FullyShared);
        let out = m.access(DomainId::X86, POOL, Access::Write, AccessKind::Data);
        assert_eq!(out.class, Some(MemClass::Local));
        assert_eq!(out.cycles.raw(), 300);
        // Arm finds the line in the *shared* L3 — no DRAM access.
        let out = m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        assert_eq!(out.level, HitLevel::L3);
        assert_eq!(m.stats(DomainId::ARM).memory_hits(), 0);
    }

    #[test]
    fn fully_shared_write_back_invalidates_peer_l1() {
        let mut m = sys(HardwareModel::FullyShared);
        m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        // x86 writes the same line: Arm's L1/L2 copy must go (on-chip snoop).
        let out = m.access(DomainId::X86, POOL, Access::Write, AccessKind::Data);
        assert!(out.snooped);
        // Arm re-reads: shared L3 still hits (no memory access), but its
        // private L1 was dropped, so this is an L2/L3-level access.
        let out = m.access(DomainId::ARM, POOL, Access::Read, AccessKind::Data);
        assert_ne!(out.level, HitLevel::L1);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut m = sys(HardwareModel::Separated);
        m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Instruction);
        m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Instruction);
        let s = m.stats(DomainId::X86);
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1i.hits, 1);
        assert_eq!(s.l1d.accesses, 0);
        // Instruction fetches do not count as data mem_accesses.
        assert_eq!(s.mem_accesses, 0);
    }

    #[test]
    fn timed_data_round_trip() {
        let mut m = sys(HardwareModel::Shared);
        let c = m.write_bytes(DomainId::X86, X86_LOCAL, b"fused-kernel");
        assert!(c.raw() >= 300);
        let mut buf = [0u8; 12];
        let c2 = m.read_bytes(DomainId::ARM, X86_LOCAL, &mut buf);
        assert_eq!(&buf, b"fused-kernel");
        assert!(c2.raw() >= 620, "peer read pays remote latency, got {c2}");
    }

    #[test]
    fn touch_charges_per_line() {
        let mut m = sys(HardwareModel::Separated);
        // 256 bytes = 4 lines, all cold local misses.
        let c = m.write_bytes(DomainId::X86, X86_LOCAL, &[0u8; 256]);
        assert_eq!(c.raw(), 4 * 300);
        assert_eq!(m.stats(DomainId::X86).mem_accesses, 4);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = sys(HardwareModel::Shared);
        m.store_mut().write_u64(POOL, 5);
        let (r, c) = m.cas_u64(DomainId::X86, POOL, 5, 9, Cycles::new(20));
        assert_eq!(r, Ok(5));
        assert!(c.raw() > 20);
        assert_eq!(m.store().read_u64(POOL), 9);
        let (r, _) = m.cas_u64(DomainId::ARM, POOL, 5, 11, Cycles::new(20));
        assert_eq!(r, Err(9));
        assert_eq!(m.store().read_u64(POOL), 9, "failed CAS must not write");
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = sys(HardwareModel::Shared);
        let (old, _) = m.fetch_add_u64(DomainId::X86, POOL, 3, Cycles::new(20));
        assert_eq!(old, 0);
        let (old, _) = m.fetch_add_u64(DomainId::ARM, POOL, 4, Cycles::new(20));
        assert_eq!(old, 3);
        assert_eq!(m.store().read_u64(POOL), 7);
    }

    #[test]
    fn copy_bytes_moves_data_and_charges_both_sides() {
        let mut m = sys(HardwareModel::Separated);
        m.store_mut().write(X86_LOCAL, &[7u8; 4096]);
        let c = m.copy_bytes(DomainId::ARM, X86_LOCAL, ARM_LOCAL, 4096);
        // 64 line reads from remote (x86) memory + 64 line writes local.
        assert!(c.raw() >= 64 * (640 + 300) - 64 * 300, "copy cost too low: {c}");
        let mut buf = [0u8; 8];
        m.store().read(ARM_LOCAL, &mut buf);
        assert_eq!(buf, [7u8; 8]);
    }

    #[test]
    fn llc_eviction_back_invalidates_upper_levels() {
        // Tiny caches to force evictions quickly.
        let mut cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Separated);
        for d in &mut cfg.domains {
            d.cache = CacheConfig {
                l1i: stramash_sim::CacheGeometry::new(128, 2, 64),
                l1d: stramash_sim::CacheGeometry::new(128, 2, 64),
                l2: stramash_sim::CacheGeometry::new(256, 2, 64),
                l3: stramash_sim::CacheGeometry::new(256, 2, 64),
            };
        }
        let mut m = MemorySystem::new(cfg).unwrap();
        // Fill one L3 set (2 ways, 2 sets: same-set lines are 128 B apart).
        for i in 0..3u64 {
            m.access(
                DomainId::X86,
                PhysAddr::new(0x10_0000 + i * 128),
                Access::Read,
                AccessKind::Data,
            );
        }
        // First line must be gone from the entire hierarchy (inclusive).
        assert!(!m.caches_line(DomainId::X86, PhysAddr::new(0x10_0000)));
        let out = m.access(DomainId::X86, PhysAddr::new(0x10_0000), Access::Read, AccessKind::Data);
        assert_eq!(out.level, HitLevel::Memory);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut cfg = SimConfig::big_pair().with_hw_model(HardwareModel::Separated);
        for d in &mut cfg.domains {
            d.cache = CacheConfig {
                l1i: stramash_sim::CacheGeometry::new(128, 2, 64),
                l1d: stramash_sim::CacheGeometry::new(128, 2, 64),
                l2: stramash_sim::CacheGeometry::new(256, 2, 64),
                l3: stramash_sim::CacheGeometry::new(256, 2, 64),
            };
        }
        let mut m = MemorySystem::new(cfg).unwrap();
        for i in 0..3u64 {
            m.access(
                DomainId::X86,
                PhysAddr::new(0x10_0000 + i * 128),
                Access::Write,
                AccessKind::Data,
            );
        }
        assert!(m.writebacks(DomainId::X86) >= 1);
    }

    #[test]
    fn aliases_remap_per_domain_and_stay_coherent() {
        // §7 "memory remapping": the Arm instance maps the pool at a
        // different physical base (as OpenPiton-style platforms do);
        // both views are the same coherent memory.
        let mut m = sys(HardwareModel::FullyShared);
        let arm_view = PhysAddr::new(0x7_0000_0000);
        let canon = PhysAddr::new(5 << 30);
        m.add_alias(DomainId::ARM, arm_view, 1 << 20, canon);
        // Arm writes through its alias…
        m.write_u64(DomainId::ARM, arm_view.offset(0x40), 0xfade);
        // …and x86 reads the canonical address coherently.
        let (v, _) = m.read_u64(DomainId::X86, canon.offset(0x40));
        assert_eq!(v, 0xfade);
        // Writes the other way are visible through the alias.
        m.write_u64(DomainId::X86, canon.offset(0x80), 7);
        let (v, _) = m.read_u64(DomainId::ARM, arm_view.offset(0x80));
        assert_eq!(v, 7);
        // The alias does not apply to the other domain.
        assert_eq!(m.canonicalize(DomainId::X86, arm_view), arm_view);
        assert_eq!(m.canonicalize(DomainId::ARM, arm_view), canon);
    }

    #[test]
    fn alias_views_share_cache_lines() {
        // Cache coherence must key on the canonical address: an aliased
        // write invalidates the peer's canonically-cached copy.
        let mut m = sys(HardwareModel::Shared);
        let arm_view = PhysAddr::new(0x7_0000_0000);
        let canon = PhysAddr::new(5 << 30);
        m.add_alias(DomainId::ARM, arm_view, 1 << 20, canon);
        m.access(DomainId::X86, canon, Access::Read, AccessKind::Data);
        assert!(m.caches_line(DomainId::X86, canon));
        let out = m.access(DomainId::ARM, arm_view, Access::Write, AccessKind::Data);
        assert!(out.snooped, "aliased write must snoop the canonical copy");
        assert!(!m.caches_line(DomainId::X86, canon));
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn alias_overlap_rejected() {
        let mut m = sys(HardwareModel::Shared);
        m.add_alias(DomainId::ARM, PhysAddr::new(0x1000), 0x2000, PhysAddr::new(0x2000));
    }

    #[test]
    fn ecc_single_bit_flip_is_corrected_by_scrub() {
        let mut m = sys(HardwareModel::Shared);
        m.store_mut().write_u64(POOL, 0xdead_beef);
        let f = m.inject_bit_flip(POOL.offset(3), 5, false);
        assert_eq!(f.addr, POOL, "flip aligns down to the word");
        assert_eq!(f.mask.count_ones(), 1);
        assert_ne!(m.store().read_u64(POOL), 0xdead_beef, "fault visible before scrub");
        assert_eq!(m.ecc_pending().len(), 1);
        let report = m.ecc_scrub(DomainId::X86);
        assert_eq!(report, EccScrubReport { corrected: 1, uncorrectable: 0 });
        assert_eq!(m.store().read_u64(POOL), 0xdead_beef, "SEC repairs the word");
        assert!(m.ecc_pending().is_empty());
        assert_eq!(m.stats(DomainId::X86).faults_recovered, 1);
        assert_eq!(m.stats(DomainId::X86).faults_fatal, 0);
    }

    #[test]
    fn ecc_double_bit_flip_is_detected_but_fatal() {
        let mut m = sys(HardwareModel::Shared);
        m.store_mut().write_u64(POOL, 77);
        let f = m.inject_bit_flip(POOL, 63, true);
        assert_eq!(f.mask.count_ones(), 2);
        let report = m.ecc_scrub(DomainId::ARM);
        assert_eq!(report, EccScrubReport { corrected: 0, uncorrectable: 1 });
        assert_ne!(m.store().read_u64(POOL), 77, "DED cannot repair the data");
        assert_eq!(m.stats(DomainId::ARM).faults_fatal, 1);
        assert_eq!(m.stats(DomainId::ARM).faults_recovered, 0);
    }

    #[test]
    fn coherence_audit_clean_after_cross_domain_traffic() {
        for model in [HardwareModel::Separated, HardwareModel::Shared, HardwareModel::FullyShared]
        {
            let mut m = sys(model);
            for i in 0..32u64 {
                m.access(DomainId::X86, POOL.offset(i * 64), Access::Write, AccessKind::Data);
                m.access(DomainId::ARM, POOL.offset(i * 32), Access::Read, AccessKind::Data);
                m.access(DomainId::ARM, X86_LOCAL.offset(i * 64), Access::Write, AccessKind::Data);
            }
            assert!(m.audit_coherence().is_empty(), "model {model:?} must audit clean");
        }
    }

    #[test]
    fn coherence_audit_flags_forged_double_owner() {
        let mut m = sys(HardwareModel::Shared);
        m.access(DomainId::X86, POOL, Access::Write, AccessKind::Data);
        // Forge an impossible state: the peer L3 also claims the line.
        let line = POOL.line(m.line_bytes());
        m.hierarchies[1].l3.insert(line, Mesi::Exclusive);
        let violations = m.audit_coherence();
        assert!(
            violations.iter().any(|v| v.contains("peer L3")),
            "double ownership must be reported, got {violations:?}"
        );
    }

    #[test]
    fn coherence_audit_flags_forged_inclusivity_break() {
        let mut m = sys(HardwareModel::Separated);
        m.access(DomainId::ARM, ARM_LOCAL, Access::Read, AccessKind::Data);
        let line = ARM_LOCAL.line(m.line_bytes());
        m.hierarchies[1].l3.invalidate(line);
        let violations = m.audit_coherence();
        assert!(
            violations.iter().any(|v| v.contains("missing from inclusive LLC")),
            "inclusivity break must be reported, got {violations:?}"
        );
    }

    #[test]
    fn checkpoint_round_trip_resumes_bit_identically() {
        for model in [HardwareModel::Separated, HardwareModel::Shared, HardwareModel::FullyShared]
        {
            let mut m = sys(model);
            // Warm up with mixed cross-domain traffic and a pending
            // ECC fault so every serialized section is non-trivial.
            for i in 0..96u64 {
                m.access(DomainId::X86, POOL.offset(i * 64), Access::Write, AccessKind::Data);
                m.access(DomainId::ARM, POOL.offset(i * 32), Access::Read, AccessKind::Data);
                m.access(DomainId::ARM, X86_LOCAL.offset(i * 48), Access::Write, AccessKind::Data);
            }
            m.write_bytes(DomainId::X86, X86_LOCAL, b"checkpointed payload");
            m.inject_bit_flip(POOL, 9, false);

            let mut e = stramash_sim::Encoder::new();
            m.save_state(&mut e);
            let bytes = e.finish();

            let mut r = sys(model);
            let mut d = stramash_sim::Decoder::new_verified(&bytes).unwrap();
            r.load_state(&mut d).unwrap();
            assert_eq!(d.remaining(), 0, "model {model:?} leaves trailing bytes");

            // Checkpointing the restored system again must be
            // byte-identical (proves the stream is deterministic).
            let mut e2 = stramash_sim::Encoder::new();
            r.save_state(&mut e2);
            assert_eq!(e2.finish(), bytes, "model {model:?} re-save drifted");

            // Both systems must agree on every subsequent outcome.
            for i in 0..96u64 {
                let a = m.access(DomainId::ARM, POOL.offset(i * 64), Access::Write, AccessKind::Data);
                let b = r.access(DomainId::ARM, POOL.offset(i * 64), Access::Write, AccessKind::Data);
                assert_eq!(a, b, "model {model:?} diverged at access {i}");
            }
            assert_eq!(m.stats(DomainId::X86), r.stats(DomainId::X86));
            assert_eq!(m.stats(DomainId::ARM), r.stats(DomainId::ARM));
            assert_eq!(m.ecc_scrub(DomainId::X86), r.ecc_scrub(DomainId::X86));
            let mut buf = [0u8; 20];
            r.store().read(X86_LOCAL, &mut buf);
            assert_eq!(&buf, b"checkpointed payload");
        }
    }

    #[test]
    fn checkpoint_rejects_mismatched_model() {
        let m = sys(HardwareModel::FullyShared);
        let mut e = stramash_sim::Encoder::new();
        m.save_state(&mut e);
        let bytes = e.finish();
        let mut r = sys(HardwareModel::Separated);
        let mut d = stramash_sim::Decoder::new_verified(&bytes).unwrap();
        assert_eq!(
            r.load_state(&mut d),
            Err(stramash_sim::CheckpointError::ConfigMismatch),
            "shared-LLC presence mismatch must be rejected"
        );
    }

    #[test]
    fn reset_and_flush() {
        let mut m = sys(HardwareModel::Shared);
        m.access(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        m.reset_stats();
        assert_eq!(m.stats(DomainId::X86).mem_accesses, 0);
        assert!(m.caches_line(DomainId::X86, X86_LOCAL), "reset_stats keeps contents");
        m.flush_caches();
        assert!(!m.caches_line(DomainId::X86, X86_LOCAL));
    }

    // ---- deferred epochs ---------------------------------------------------

    /// Drives one deferred epoch with disjoint per-domain footprints:
    /// singles, runs, TLB notes, retires and charge marks on both lanes.
    fn drive_epoch(m: &mut MemorySystem, min_lane: usize) -> EpochFlushOutcome {
        m.epoch_enter(min_lane, true);
        for i in 0..400u64 {
            for (domain, base) in [(DomainId::X86, X86_LOCAL), (DomainId::ARM, ARM_LOCAL)] {
                let addr = PhysAddr::new(base.raw() + (i % 96) * 64);
                let access = if i % 3 == 0 { Access::Write } else { Access::Read };
                m.note_tlb_hit(domain);
                m.access_line(domain, addr, access, AccessKind::Data);
                if i % 7 == 0 {
                    let far = PhysAddr::new(base.raw() + 0x10_0000 + i * 64);
                    m.access_line_run(domain, far, Access::Read, AccessKind::Data, 5);
                    m.note_tlb_miss(domain);
                }
                m.epoch_note_retire(domain, 3);
                if i % 11 == 0 {
                    m.epoch_note_charge(domain, Cycles::new(9));
                }
                m.epoch_note_charge(domain, Cycles::ZERO);
            }
        }
        m.epoch_exit()
    }

    #[test]
    fn epoch_parallel_replay_matches_serial() {
        let mut serial = sys(HardwareModel::Separated);
        let mut parallel = sys(HardwareModel::Separated);
        let ts = stramash_sim::shared_tracer(1 << 16);
        let tp = stramash_sim::shared_tracer(1 << 16);
        serial.set_tracer(ts.clone());
        parallel.set_tracer(tp.clone());

        // A lane threshold above the lane sizes forces serial replay;
        // 1 lets the precheck take the two-thread path.
        let os = drive_epoch(&mut serial, usize::MAX);
        let op = drive_epoch(&mut parallel, 1);
        assert!(!os.report.parallel);
        assert!(op.report.parallel, "disjoint footprints must replay on two threads");
        assert_eq!(os.report.entries, op.report.entries);
        assert_eq!(os.credit, op.credit);
        for d in [DomainId::X86, DomainId::ARM] {
            assert_eq!(serial.stats(d), parallel.stats(d));
            assert_eq!(serial.writebacks(d), parallel.writebacks(d));
        }
        let es = ts.borrow().events();
        let ep = tp.borrow().events();
        assert_eq!(es.len(), ep.len());
        assert_eq!(es, ep, "parallel replay must emit the identical event stream");

        // Cache state converged too: the next accesses hit identically.
        let probe = PhysAddr::new(X86_LOCAL.raw() + 64);
        let a = serial.access_line(DomainId::X86, probe, Access::Read, AccessKind::Data);
        let b = parallel.access_line(DomainId::X86, probe, Access::Read, AccessKind::Data);
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_overlapping_footprints_fall_back_to_serial() {
        let mut m = sys(HardwareModel::Separated);
        m.epoch_enter(1, true);
        for i in 0..64u64 {
            // Both domains touch the same pool lines: never parallel.
            let addr = PhysAddr::new(POOL.raw() + i * 64);
            m.access_line(DomainId::X86, addr, Access::Read, AccessKind::Data);
            m.access_line(DomainId::ARM, addr, Access::Read, AccessKind::Data);
        }
        m.epoch_note_charge(DomainId::X86, Cycles::ZERO);
        m.epoch_note_charge(DomainId::ARM, Cycles::ZERO);
        let out = m.epoch_exit();
        assert!(!out.report.parallel, "shared lines must force the serial replay");
        assert_eq!(out.report.entries, 130);
    }

    #[test]
    fn epoch_defer_matches_undeferred_run() {
        let mut direct = sys(HardwareModel::Separated);
        let mut deferred = sys(HardwareModel::Separated);
        let mut direct_cycles = Cycles::ZERO;
        for i in 0..200u64 {
            let addr = PhysAddr::new(X86_LOCAL.raw() + (i % 80) * 64);
            let access = if i % 4 == 0 { Access::Write } else { Access::Read };
            direct_cycles += direct.access_line(DomainId::X86, addr, access, AccessKind::Data).cycles;
        }
        deferred.epoch_enter(usize::MAX, true);
        for i in 0..200u64 {
            let addr = PhysAddr::new(X86_LOCAL.raw() + (i % 80) * 64);
            let access = if i % 4 == 0 { Access::Write } else { Access::Read };
            deferred.access_line(DomainId::X86, addr, access, AccessKind::Data);
        }
        deferred.epoch_note_charge(DomainId::X86, Cycles::ZERO);
        let out = deferred.epoch_exit();
        assert_eq!(out.credit[0], direct_cycles, "deferral must conserve charged cycles");
        assert_eq!(direct.stats(DomainId::X86), deferred.stats(DomainId::X86));
    }

    #[test]
    fn epoch_suspend_runs_live_and_resumes() {
        let mut m = sys(HardwareModel::Separated);
        m.epoch_enter(1, true);
        m.access_line(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        m.epoch_note_charge(DomainId::X86, Cycles::ZERO);
        let flushed = m.epoch_suspend().expect("epoch was active");
        assert_eq!(flushed.credit[0].raw(), 300, "suspend flushes the pending log");
        assert!(!m.epoch_active());
        let live = m.access_line(DomainId::X86, X86_LOCAL, Access::Read, AccessKind::Data);
        assert_eq!(live.cycles.raw(), 4, "suspended accesses run the live pipeline");
        m.epoch_resume();
        assert!(m.epoch_active());
        let out = m.epoch_exit();
        assert_eq!(out.report.entries, 2, "final tally still counts the suspend flush");
        assert_eq!(out.credit[0].raw(), 0, "suspend already drained the credit");
    }

    // ---- compiled access plans --------------------------------------------

    /// A small mixed plan: a resident working set plus a streaming leg,
    /// with writes sprinkled through both.
    fn mixed_plan() -> AccessPlan {
        let mut plan = AccessPlan::default();
        for i in 0..2048u64 {
            if i % 8 == 7 {
                plan.push(X86_LOCAL.raw() + 0x20_0000 + i * 512, i % 16 == 15);
            } else {
                plan.push(X86_LOCAL.raw() + (i % 1024) * 8, i % 5 == 0);
            }
        }
        plan
    }

    #[test]
    fn run_plan_matches_per_access_loop() {
        let plan = mixed_plan();
        let mut fast = sys(HardwareModel::Separated);
        let mut slow = sys(HardwareModel::Separated);
        let line_mask = !(fast.line_bytes() - 1);
        for round in 0..3 {
            let got = fast.run_plan(DomainId::X86, &plan, 0..plan.len());
            let mut want = Cycles::ZERO;
            for op in plan.iter() {
                let access = if op.write { Access::Write } else { Access::Read };
                let addr = PhysAddr::new(op.addr & line_mask);
                want += slow.access_line(DomainId::X86, addr, access, AccessKind::Data).cycles;
            }
            assert_eq!(got, want, "round {round}: plan replay must charge loop cycles");
            assert_eq!(fast.stats(DomainId::X86), slow.stats(DomainId::X86));
            assert_eq!(fast.writebacks(DomainId::X86), slow.writebacks(DomainId::X86));
        }
    }

    #[test]
    fn run_plan_traced_matches_untraced_counters() {
        let plan = mixed_plan();
        let mut traced = sys(HardwareModel::Separated);
        let mut plain = sys(HardwareModel::Separated);
        let t = stramash_sim::shared_tracer(1 << 15);
        traced.set_tracer(t.clone());
        let a = traced.run_plan(DomainId::X86, &plan, 0..plan.len());
        let b = plain.run_plan(DomainId::X86, &plan, 0..plan.len());
        assert_eq!(a, b, "tracing must not change plan-replay cycles");
        assert_eq!(traced.stats(DomainId::X86), plain.stats(DomainId::X86));
        assert!(!t.borrow().events().is_empty());
    }

    #[test]
    fn run_plan_defers_inside_epoch() {
        let plan = mixed_plan();
        let mut epoched = sys(HardwareModel::Separated);
        let mut direct = sys(HardwareModel::Separated);
        epoched.epoch_enter(usize::MAX, true);
        assert_eq!(epoched.run_plan(DomainId::X86, &plan, 0..plan.len()), Cycles::ZERO);
        epoched.epoch_note_charge(DomainId::X86, Cycles::ZERO);
        let out = epoched.epoch_exit();
        let want = direct.run_plan(DomainId::X86, &plan, 0..plan.len());
        assert_eq!(out.credit[0], want);
        assert_eq!(epoched.stats(DomainId::X86), direct.stats(DomainId::X86));
    }
}
