//! Deferred-epoch bookkeeping for the memory system.
//!
//! While an epoch is open the timed access pipeline does not run;
//! every access is appended to a log ([`EpochEntry`]) and replayed at
//! the epoch boundary — serially (exact issue order) or, when the two
//! domains' footprints provably cannot interact, on two host threads.
//! The proof obligation is carried by [`SnoopWindow`]: a conservative,
//! never-shrinking set of cache-line intervals a domain's LLC may
//! hold. If domain A's epoch touches no line inside domain B's window
//! (and vice versa, and the two epochs' own footprints are disjoint),
//! then no snoop, demotion or back-invalidation can cross between the
//! lanes and each one is a pure function of its own hierarchy.
//!
//! Nothing in this module affects simulated cycles: the log replay is
//! bit-identical to the undeferred pipeline by construction (the
//! parallel-lane executor in `system.rs` is a specialisation of the
//! serial pipeline with the provably-dead peer branches removed, and a
//! unit test pins the equivalence).

use crate::system::{Access, AccessKind};
use stramash_sim::epoch::EpochReport;
use stramash_sim::{Cycles, DomainId};

/// One deferred operation. `Access` stores the address exactly as the
/// pipeline received it (canonical, but not line-aligned) so the
/// replay reproduces the same debug-trace entries and the same
/// `AddressMap::classify` result.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EpochEntry {
    /// A timed line access (`count > 1` = an `access_line_run`).
    Access { domain: DomainId, addr: u64, access: Access, kind: AccessKind, count: u64 },
    /// `count` software-TLB hits.
    TlbHits { domain: DomainId, n: u64 },
    /// One software-TLB miss.
    TlbMiss { domain: DomainId },
    /// A retire event (the clock/stat side effects happened at issue;
    /// only the trace event is deferred to keep stream order).
    Retire { domain: DomainId, insns: u64 },
    /// A zero-cycle charge observed at issue: at replay it emits one
    /// `Charge` event carrying the cycles accumulated by the deferred
    /// accesses since the previous charge mark, and credits the clock.
    ChargeAcc { domain: DomainId },
    /// A non-zero charge observed at issue (already credited to the
    /// clock there); only the event position is deferred.
    ChargeNow { domain: DomainId, cost: Cycles },
}

impl EpochEntry {
    /// The domain whose lane replays this entry.
    pub(crate) fn domain(&self) -> DomainId {
        match *self {
            EpochEntry::Access { domain, .. }
            | EpochEntry::TlbHits { domain, .. }
            | EpochEntry::TlbMiss { domain }
            | EpochEntry::Retire { domain, .. }
            | EpochEntry::ChargeAcc { domain }
            | EpochEntry::ChargeNow { domain, .. } => domain,
        }
    }
}

/// A conservative set of cache-line intervals, used both for the
/// persistent per-domain LLC footprint ("window") and for the lines an
/// open epoch has touched ("range").
///
/// The set is a sorted list of disjoint inclusive `[start, end]` line
/// intervals, capped at [`SnoopWindow::MAX_INTERVALS`]; on overflow
/// the two closest intervals are merged, which only ever *grows* the
/// covered set — safe for a proof that asks "can these two sets
/// overlap?". Windows never shrink on eviction for the same reason.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct SnoopWindow {
    iv: Vec<(u64, u64)>,
}

impl SnoopWindow {
    /// Interval cap: enough for rings + per-domain locals + a few pool
    /// allocation runs before coalescing kicks in.
    const MAX_INTERVALS: usize = 24;

    /// Adds one line to the set.
    pub(crate) fn note(&mut self, line: u64) {
        let idx = match self.iv.binary_search_by(|&(s, _)| s.cmp(&line)) {
            Ok(_) => return, // an interval starts exactly here
            Err(idx) => idx,
        };
        if idx > 0 {
            let (_, e) = self.iv[idx - 1];
            if line <= e {
                return;
            }
            if line == e + 1 {
                self.iv[idx - 1].1 = line;
                if idx < self.iv.len() && self.iv[idx].0 == line + 1 {
                    self.iv[idx - 1].1 = self.iv[idx].1;
                    self.iv.remove(idx);
                }
                return;
            }
        }
        if idx < self.iv.len() && self.iv[idx].0 == line + 1 {
            self.iv[idx].0 = line;
            return;
        }
        self.iv.insert(idx, (line, line));
        if self.iv.len() > Self::MAX_INTERVALS {
            self.coalesce();
        }
    }

    /// Merges the two adjacent intervals with the smallest gap.
    fn coalesce(&mut self) {
        let mut best = 0;
        let mut best_gap = u64::MAX;
        for i in 0..self.iv.len() - 1 {
            let gap = self.iv[i + 1].0 - self.iv[i].1;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        self.iv[best].1 = self.iv[best + 1].1;
        self.iv.remove(best + 1);
    }

    /// True when the two sets share no line.
    pub(crate) fn disjoint(&self, other: &SnoopWindow) -> bool {
        let (a, b) = (&self.iv, &other.iv);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].1 < b[j].0 {
                i += 1;
            } else if b[j].1 < a[i].0 {
                j += 1;
            } else {
                return false;
            }
        }
        true
    }

    /// Empties the set (cache flush / rebuild).
    pub(crate) fn clear(&mut self) {
        self.iv.clear();
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, line: u64) -> bool {
        self.iv.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// All per-`MemorySystem` epoch state. Host-side only: none of it is
/// checkpointed (a checkpoint with a non-empty log is a caller bug and
/// asserts), and `load_state` rebuilds the windows from the restored
/// LLC contents.
#[derive(Debug, Default)]
pub(crate) struct EpochState {
    /// Nesting depth of `epoch_enter` calls.
    pub(crate) nest: u32,
    /// Whether accesses defer right now (false while suspended or
    /// replaying).
    pub(crate) active: bool,
    /// Minimum entries per lane before a flush uses two host threads.
    pub(crate) min_lane: usize,
    /// Whether a qualifying flush may spawn threads at all (the
    /// caller's resolved `WideReplay` policy).
    pub(crate) allow_wide: bool,
    /// The deferred-operation log, in exact issue order.
    pub(crate) log: Vec<EpochEntry>,
    /// Lines touched by the open epoch, per domain.
    pub(crate) ranges: [SnoopWindow; 2],
    /// Persistent conservative LLC footprint, per domain.
    pub(crate) windows: [SnoopWindow; 2],
    /// Access cycles accumulated since the last charge mark, per
    /// domain — carried across intra-epoch flushes so a `ChargeAcc`
    /// after a log-cap flush still emits the full amount.
    pub(crate) carry: [Cycles; 2],
    /// Clock credit owed to the timebase, drained by the kernel at
    /// suspend/exit boundaries.
    pub(crate) pending_credit: [Cycles; 2],
    /// Running tally of flushes since the outermost enter.
    pub(crate) tally: EpochReport,
}

/// What an epoch boundary hands back to the kernel layer: how the
/// flush(es) ran, and the clock credit to apply per domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochFlushOutcome {
    /// Flush tally since the outermost `epoch_enter`.
    pub report: EpochReport,
    /// Deferred-access cycles to add to each domain's clock.
    pub credit: [Cycles; 2],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_notes_merge_adjacent_lines() {
        let mut w = SnoopWindow::default();
        for line in [5u64, 6, 7, 9, 8] {
            w.note(line);
        }
        assert_eq!(w.iv, vec![(5, 9)]);
        w.note(3);
        assert_eq!(w.iv, vec![(3, 3), (5, 9)]);
        w.note(4);
        assert_eq!(w.iv, vec![(3, 9)]);
        assert!(w.contains(6));
        assert!(!w.contains(10));
    }

    #[test]
    fn window_overflow_coalesces_closest_pair() {
        let mut w = SnoopWindow::default();
        // MAX_INTERVALS singletons far apart, plus one close neighbour.
        for i in 0..SnoopWindow::MAX_INTERVALS as u64 {
            w.note(i * 1000);
        }
        w.note(3); // closest to the interval at 0
        assert_eq!(w.iv.len(), SnoopWindow::MAX_INTERVALS);
        assert!(w.contains(0) && w.contains(3), "coalescing must only grow the set");
        assert!(w.contains(1), "gap absorbed by the merge");
    }

    #[test]
    fn window_disjointness() {
        let mut a = SnoopWindow::default();
        let mut b = SnoopWindow::default();
        for i in 0..10 {
            a.note(i);
            b.note(100 + i);
        }
        assert!(a.disjoint(&b) && b.disjoint(&a));
        b.note(5);
        assert!(!a.disjoint(&b) && !b.disjoint(&a));
        assert!(SnoopWindow::default().disjoint(&a));
    }
}
